from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Hardware-assisted malware detection with uncertainty-aware "
        "fleet monitoring (paper reproduction + scaling extensions)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    # The fleet worker backend builds on multiprocessing.shared_memory
    # (3.8+) and modern typing syntax; 3.10 is the tested floor.
    python_requires=">=3.10",
    classifiers=[
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Operating System :: POSIX",
    ],
)
