from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    python_requires=">=3.10",
)
