"""Dependency-free text formatting shared across layers.

Lives outside :mod:`repro.experiments` so core packages (e.g.
:mod:`repro.fleet` reports) can render tables without depending on the
experiment harness that sits above them.
"""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width text table for reports."""
    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
