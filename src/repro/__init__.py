"""repro — reproduction of "Towards Improving the Trustworthiness of
Hardware based Malware Detector using Online Uncertainty Estimation"
(Kumar, Chawla, Mukhopadhyay — DAC 2021, arXiv:2103.11519).

Subpackages
-----------
``repro.ml``
    From-scratch classical-ML substrate (estimators, ensembles,
    metrics, PCA, t-SNE, Platt calibration).
``repro.sim``
    Hardware substrates: workload archetypes, SoC DVFS governor
    simulator, CPU performance-counter model.
``repro.hmd``
    HMD components: application catalogues and feature extraction.
``repro.data``
    Dataset builders reproducing the paper's Table I.
``repro.uncertainty``
    The paper's contribution: ensemble vote-entropy uncertainty,
    rejection policies, trusted-HMD pipeline, online monitoring loop.
``repro.fleet``
    Fleet-scale batched streaming inference: multiplexed device
    streams, backpressure, vectorised batch verdicts, fleet reports.
``repro.obs``
    Telemetry plane: metrics registry, sampled window tracing and the
    live terminal dashboard over the running fleet.
``repro.experiments``
    Runners regenerating every table and figure of the evaluation.
"""

from . import data, experiments, fleet, hmd, ml, obs, sim, uncertainty, viz

__version__ = "1.1.0"

__all__ = [
    "data",
    "experiments",
    "fleet",
    "hmd",
    "ml",
    "obs",
    "sim",
    "uncertainty",
    "viz",
    "__version__",
]
