"""Hardware substrates (systems S7-S8 in DESIGN.md).

* :mod:`repro.sim.workloads` — parametric application archetypes and
  activity-trace generation;
* :mod:`repro.sim.power` — SoC DVFS governor + thermal simulator
  producing frequency-state traces;
* :mod:`repro.sim.cpu` — analytic CPU microarchitecture model producing
  hardware performance counter samples.
"""

from .cpu import DEFAULT_CPU, HPC_COUNTERS, CpuConfig, HpcSimulator
from .em import EmConfig, EmFeatureExtractor, EmSimulator, EmSpectrum
from .power import (
    DEFAULT_SOC,
    ConservativeGovernor,
    DvfsChannelConfig,
    OndemandGovernor,
    PerformanceGovernor,
    SocConfig,
    SocSimulator,
)
from .trace import INSTRUCTION_KINDS, ActivityTrace, DvfsTrace, HpcTrace
from .workloads import (
    FleetDevice,
    FleetPopulation,
    FleetTraceGenerator,
    WorkloadGenerator,
    WorkloadPhase,
    WorkloadSpec,
    blend_specs,
)

__all__ = [
    "ActivityTrace",
    "ConservativeGovernor",
    "CpuConfig",
    "DEFAULT_CPU",
    "DEFAULT_SOC",
    "DvfsChannelConfig",
    "DvfsTrace",
    "EmConfig",
    "EmFeatureExtractor",
    "EmSimulator",
    "EmSpectrum",
    "FleetDevice",
    "FleetPopulation",
    "FleetTraceGenerator",
    "HPC_COUNTERS",
    "HpcSimulator",
    "HpcTrace",
    "INSTRUCTION_KINDS",
    "OndemandGovernor",
    "PerformanceGovernor",
    "SocConfig",
    "SocSimulator",
    "WorkloadGenerator",
    "WorkloadPhase",
    "WorkloadSpec",
    "blend_specs",
]
