"""Hardware substrates (systems S7-S8 in DESIGN.md).

* :mod:`repro.sim.workloads` — parametric application archetypes and
  activity-trace generation;
* :mod:`repro.sim.power` — SoC DVFS governor + thermal simulator
  producing frequency-state traces;
* :mod:`repro.sim.cpu` — analytic CPU microarchitecture model producing
  hardware performance counter samples.
"""

from .batch import (
    ActivityBatch,
    DvfsBatch,
    HpcBatch,
    device_seed_sequence,
    device_stream_key,
)
from .cpu import DEFAULT_CPU, HPC_COUNTERS, CpuConfig, HpcSimulator
from .em import EmConfig, EmFeatureExtractor, EmSimulator, EmSpectrum
from .power import (
    DEFAULT_SOC,
    ConservativeGovernor,
    DvfsChannelConfig,
    OndemandGovernor,
    PerformanceGovernor,
    SocConfig,
    SocSimulator,
)
from .trace import INSTRUCTION_KINDS, ActivityTrace, DvfsTrace, HpcTrace
from .workloads import (
    FleetDevice,
    FleetPopulation,
    FleetTraceGenerator,
    WorkloadGenerator,
    WorkloadPhase,
    WorkloadSpec,
    blend_specs,
)

__all__ = [
    "ActivityBatch",
    "ActivityTrace",
    "ConservativeGovernor",
    "CpuConfig",
    "DEFAULT_CPU",
    "DEFAULT_SOC",
    "DvfsBatch",
    "DvfsChannelConfig",
    "DvfsTrace",
    "EmConfig",
    "device_seed_sequence",
    "device_stream_key",
    "EmFeatureExtractor",
    "EmSimulator",
    "EmSpectrum",
    "FleetDevice",
    "FleetPopulation",
    "FleetTraceGenerator",
    "HPC_COUNTERS",
    "HpcBatch",
    "HpcSimulator",
    "HpcTrace",
    "INSTRUCTION_KINDS",
    "OndemandGovernor",
    "PerformanceGovernor",
    "SocConfig",
    "SocSimulator",
    "WorkloadGenerator",
    "WorkloadPhase",
    "WorkloadSpec",
    "blend_specs",
]
