"""Whole-tensor trace batches for the vectorized simulator backend.

The per-step simulators (:meth:`WorkloadGenerator.generate`,
:meth:`SocSimulator.run`, :meth:`HpcSimulator.run`) produce one trace
object per window.  The batched paths introduced alongside them
(``generate_batch`` / ``run_batch``) produce the containers in this
module instead: one contiguous tensor whose leading axis is the window
(device) axis, with ``window(i)`` returning a zero-copy per-window view
in the classic trace types.

Tensor layouts
--------------
``ActivityBatch``
    every per-step series is ``(n_windows, n_steps)`` C-contiguous;
    ``instr_mix`` is ``(n_windows, n_steps, 4)``.
``DvfsBatch``
    ``states`` is ``(n_windows, n_steps, n_channels)`` int64,
    ``temperature_c`` is ``(n_windows, n_steps)``.
``HpcBatch``
    ``counters`` is ``(n_windows, n_intervals, n_counters)``.

Because the window axis leads, ``reshape`` flattens a batch into the
step-concatenated single trace the feature extractors already accept
(:meth:`DvfsBatch.as_trace`, :meth:`HpcBatch.as_matrix`) without
copying.

RNG-stream contract
-------------------
Fleet-scale generation keeps one independent ``np.random.Generator``
per device so that a device's trace stream depends only on the root
seed and its ``device_id`` — never on fleet order, fleet membership, or
how many windows are generated per call.  The derivation is pinned as a
compatibility contract:

* ``device_stream_key(device_id)`` is the 64-bit FNV-1a hash of the
  UTF-8 encoded device id;
* the trace stream of a device is
  ``SeedSequence(entropy=root, spawn_key=(0, device_stream_key(id)))``;
* the duty-cycle stream (one draw per round, consumed whether or not
  the device emits) is the same with stream index ``1``.

Tests pin hash values and golden trace values; changing any part of
this derivation is a compatibility break.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trace import INSTRUCTION_KINDS, ActivityTrace, DvfsTrace, HpcTrace

__all__ = [
    "ActivityBatch",
    "DvfsBatch",
    "HpcBatch",
    "device_stream_key",
    "device_seed_sequence",
    "TRACE_STREAM",
    "DUTY_STREAM",
]

#: Spawn-key stream indices of the per-device RNG contract.
TRACE_STREAM = 0
DUTY_STREAM = 1

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def device_stream_key(device_id: str) -> int:
    """64-bit FNV-1a hash of a device id (the pinned stream key).

    The same platform-stable hash family the shard router uses; defined
    here independently so the simulator has no dependency on the fleet
    package.
    """
    h = _FNV_OFFSET
    for byte in device_id.encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & _MASK64
    return h


def device_seed_sequence(
    root_entropy: int, device_id: str, *, stream: int = TRACE_STREAM
) -> np.random.SeedSequence:
    """The pinned per-device seed derivation (see module docstring)."""
    return np.random.SeedSequence(
        entropy=root_entropy, spawn_key=(stream, device_stream_key(device_id))
    )


@dataclass
class ActivityBatch:
    """A stack of same-length activity traces as one tensor per field.

    ``names[i]`` is the workload name of window ``i``; all windows share
    ``dt``.  Field semantics match :class:`ActivityTrace`.
    """

    cpu_demand: np.ndarray
    gpu_demand: np.ndarray
    instr_mix: np.ndarray
    working_set_kib: np.ndarray
    branch_entropy: np.ndarray
    io_rate: np.ndarray
    phase_id: np.ndarray
    dt: float
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.cpu_demand.ndim != 2:
            raise ValueError(
                f"cpu_demand must be (n_windows, n_steps); got shape "
                f"{self.cpu_demand.shape}."
            )
        shape = self.cpu_demand.shape
        for attr in ("gpu_demand", "working_set_kib", "branch_entropy", "io_rate", "phase_id"):
            if getattr(self, attr).shape != shape:
                raise ValueError(
                    f"ActivityBatch field {attr!r} has shape "
                    f"{getattr(self, attr).shape}, expected {shape}."
                )
        if self.instr_mix.shape != shape + (len(INSTRUCTION_KINDS),):
            raise ValueError(
                f"instr_mix must be {shape + (len(INSTRUCTION_KINDS),)}; "
                f"got {self.instr_mix.shape}."
            )
        if len(self.names) != shape[0]:
            raise ValueError(
                f"names has {len(self.names)} entries for {shape[0]} windows."
            )
        if self.dt <= 0:
            raise ValueError(f"dt must be positive; got {self.dt}.")

    @property
    def n_windows(self) -> int:
        """Number of stacked windows."""
        return self.cpu_demand.shape[0]

    @property
    def n_steps(self) -> int:
        """Steps per window."""
        return self.cpu_demand.shape[1]

    def __len__(self) -> int:
        return self.n_windows

    def window(self, i: int) -> ActivityTrace:
        """Zero-copy :class:`ActivityTrace` view of window ``i``."""
        return ActivityTrace(
            cpu_demand=self.cpu_demand[i],
            gpu_demand=self.gpu_demand[i],
            instr_mix=self.instr_mix[i],
            working_set_kib=self.working_set_kib[i],
            branch_entropy=self.branch_entropy[i],
            io_rate=self.io_rate[i],
            phase_id=self.phase_id[i],
            dt=self.dt,
            name=self.names[i],
        )

    def windows(self) -> list[ActivityTrace]:
        """All windows as per-window trace views."""
        return [self.window(i) for i in range(self.n_windows)]

    @classmethod
    def from_traces(cls, traces) -> "ActivityBatch":
        """Stack same-length :class:`ActivityTrace` objects (copies)."""
        traces = list(traces)
        if not traces:
            raise ValueError("At least one trace is required.")
        n_steps = traces[0].n_steps
        dt = traces[0].dt
        for t in traces:
            if t.n_steps != n_steps or t.dt != dt:
                raise ValueError(
                    "All traces must share n_steps and dt to be batched."
                )
        return cls(
            cpu_demand=np.stack([t.cpu_demand for t in traces]),
            gpu_demand=np.stack([t.gpu_demand for t in traces]),
            instr_mix=np.stack([t.instr_mix for t in traces]),
            working_set_kib=np.stack([t.working_set_kib for t in traces]),
            branch_entropy=np.stack([t.branch_entropy for t in traces]),
            io_rate=np.stack([t.io_rate for t in traces]),
            phase_id=np.stack([t.phase_id for t in traces]),
            dt=dt,
            names=tuple(t.name for t in traces),
        )

    @classmethod
    def empty(cls, n_windows: int, n_steps: int, dt: float, names) -> "ActivityBatch":
        """Uninitialised batch for scatter-fill assembly."""
        shape = (n_windows, n_steps)
        return cls(
            cpu_demand=np.empty(shape),
            gpu_demand=np.empty(shape),
            instr_mix=np.empty(shape + (len(INSTRUCTION_KINDS),)),
            working_set_kib=np.empty(shape),
            branch_entropy=np.empty(shape),
            io_rate=np.empty(shape),
            phase_id=np.empty(shape, dtype=np.int64),
            dt=dt,
            names=tuple(names),
        )

    def scatter(self, positions: np.ndarray, other: "ActivityBatch") -> None:
        """Write ``other``'s rows into this batch at ``positions``."""
        self.cpu_demand[positions] = other.cpu_demand
        self.gpu_demand[positions] = other.gpu_demand
        self.instr_mix[positions] = other.instr_mix
        self.working_set_kib[positions] = other.working_set_kib
        self.branch_entropy[positions] = other.branch_entropy
        self.io_rate[positions] = other.io_rate
        self.phase_id[positions] = other.phase_id


@dataclass
class DvfsBatch:
    """A stack of same-length DVFS state traces (window axis leads)."""

    states: np.ndarray
    frequencies_mhz: tuple[tuple[float, ...], ...]
    channel_names: tuple[str, ...]
    temperature_c: np.ndarray
    dt: float
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.states.ndim != 3:
            raise ValueError(
                f"states must be (n_windows, n_steps, n_channels); got "
                f"shape {self.states.shape}."
            )
        if self.states.shape[2] != len(self.channel_names):
            raise ValueError(
                f"states has {self.states.shape[2]} channels but "
                f"{len(self.channel_names)} names were given."
            )
        if self.temperature_c.shape != self.states.shape[:2]:
            raise ValueError(
                f"temperature_c must be {self.states.shape[:2]}; got "
                f"{self.temperature_c.shape}."
            )
        if len(self.names) != self.states.shape[0]:
            raise ValueError(
                f"names has {len(self.names)} entries for "
                f"{self.states.shape[0]} windows."
            )

    @property
    def n_windows(self) -> int:
        """Number of stacked windows."""
        return self.states.shape[0]

    @property
    def n_steps(self) -> int:
        """DVFS samples per window."""
        return self.states.shape[1]

    @property
    def n_channels(self) -> int:
        """Number of DVFS channels."""
        return self.states.shape[2]

    def __len__(self) -> int:
        return self.n_windows

    def window(self, i: int) -> DvfsTrace:
        """Zero-copy :class:`DvfsTrace` view of window ``i``."""
        return DvfsTrace(
            states=self.states[i],
            frequencies_mhz=self.frequencies_mhz,
            channel_names=self.channel_names,
            temperature_c=self.temperature_c[i],
            dt=self.dt,
            name=self.names[i],
        )

    def as_trace(self, name: str = "") -> DvfsTrace:
        """Window-concatenated single trace (zero-copy reshape).

        Equivalent to ``np.vstack`` of every window's states — the
        shape the batched feature extractor consumes directly.
        """
        n_windows, n_steps, n_channels = self.states.shape
        return DvfsTrace(
            states=self.states.reshape(n_windows * n_steps, n_channels),
            frequencies_mhz=self.frequencies_mhz,
            channel_names=self.channel_names,
            temperature_c=self.temperature_c.reshape(n_windows * n_steps),
            dt=self.dt,
            name=name,
        )


@dataclass
class HpcBatch:
    """A stack of same-length HPC counter traces (window axis leads)."""

    counters: np.ndarray
    counter_names: tuple[str, ...]
    dt: float
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.counters.ndim != 3:
            raise ValueError(
                f"counters must be (n_windows, n_intervals, n_counters); "
                f"got shape {self.counters.shape}."
            )
        if self.counters.shape[2] != len(self.counter_names):
            raise ValueError(
                f"counters has {self.counters.shape[2]} columns but "
                f"{len(self.counter_names)} names were given."
            )
        if len(self.names) != self.counters.shape[0]:
            raise ValueError(
                f"names has {len(self.names)} entries for "
                f"{self.counters.shape[0]} windows."
            )

    @property
    def n_windows(self) -> int:
        """Number of stacked windows."""
        return self.counters.shape[0]

    @property
    def n_intervals(self) -> int:
        """Sampling intervals per window."""
        return self.counters.shape[1]

    def __len__(self) -> int:
        return self.n_windows

    def window(self, i: int) -> HpcTrace:
        """Zero-copy :class:`HpcTrace` view of window ``i``."""
        return HpcTrace(
            counters=self.counters[i],
            counter_names=self.counter_names,
            dt=self.dt,
            name=self.names[i],
        )

    def windows(self) -> list[HpcTrace]:
        """All windows as per-window trace views."""
        return [self.window(i) for i in range(self.n_windows)]

    def as_matrix(self) -> np.ndarray:
        """Interval-concatenated ``(n_windows * n_intervals, n_counters)``
        counter matrix (zero-copy reshape)."""
        n_windows, n_intervals, n_counters = self.counters.shape
        return self.counters.reshape(n_windows * n_intervals, n_counters)
