"""Electromagnetic side-channel substrate (extension: third HMD family).

The paper's introduction lists three hardware signal families used for
HMDs: performance counters, power-management (DVFS) signatures, and
**electromagnetic emissions** (EDDIE, Nazari et al. ISCA'17).  The main
evaluation covers the first two; this module supplies the third so the
framework can be exercised on it (extension experiment E1).

Physical model — EM emission of a CPU is dominated by:

* a **clock-harmonic carrier** at the core frequency and its
  harmonics, whose amplitude scales with switching activity;
* **amplitude modulation** by program activity: loops with period T
  produce sidebands at ±1/T around each carrier (this is the
  modulation EDDIE keys on);
* broadband **memory-access noise** proportional to cache-miss traffic.

The simulator produces per-window RF spectra (power in dB over a
frequency grid); the feature extractor summarises band energies and
sideband structure.  Code with rigid, timer-driven loops (malware
archetypes) yields sharp, stable sidebands; interactive software
smears them — the same geometry mechanism as the DVFS domain, observed
through a different physical channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.validation import check_random_state
from .trace import ActivityTrace

__all__ = ["EmConfig", "EmSpectrum", "EmSimulator", "EmFeatureExtractor"]


@dataclass(frozen=True)
class EmConfig:
    """Parameters of the EM emission model.

    Frequencies are normalised to the sampling Nyquist band [0, 1];
    the carrier sits well inside the band so two harmonics fit.
    """

    carrier_freq: float = 0.2          # normalised clock fundamental
    n_harmonics: int = 3
    harmonic_rolloff_db: float = 8.0   # per-harmonic amplitude decay
    spectrum_bins: int = 256
    noise_floor_db: float = -80.0
    measurement_noise_db: float = 1.2

    def __post_init__(self) -> None:
        if not 0.0 < self.carrier_freq < 0.5:
            raise ValueError("carrier_freq must be in (0, 0.5).")
        if self.n_harmonics < 1:
            raise ValueError("n_harmonics must be >= 1.")
        if self.carrier_freq * self.n_harmonics >= 1.0:
            raise ValueError("Harmonics exceed the Nyquist band.")
        if self.spectrum_bins < 32:
            raise ValueError("spectrum_bins must be >= 32.")


@dataclass
class EmSpectrum:
    """One EM measurement window: power spectrum in dB."""

    power_db: np.ndarray      # (spectrum_bins,)
    frequencies: np.ndarray   # normalised frequency grid
    name: str = ""

    def __post_init__(self) -> None:
        if self.power_db.shape != self.frequencies.shape:
            raise ValueError("power_db and frequencies shapes differ.")

    @property
    def n_bins(self) -> int:
        """Number of spectral bins."""
        return len(self.power_db)


class EmSimulator:
    """Maps an :class:`ActivityTrace` window to an EM power spectrum.

    The activity trace's temporal structure enters through its FFT:
    periodic activity concentrates modulation energy at discrete
    offsets, which is copied as sidebands around each clock harmonic.
    """

    def __init__(
        self,
        config: EmConfig = EmConfig(),
        *,
        random_state: int | np.random.Generator | None = None,
    ):
        self.config = config
        self.rng = check_random_state(random_state)

    def run(self, activity: ActivityTrace) -> EmSpectrum:
        """Produce the emission spectrum for one activity window."""
        cfg = self.config
        rng = self.rng
        freqs = np.linspace(0.0, 1.0, cfg.spectrum_bins, endpoint=False)
        power = np.full(cfg.spectrum_bins, 10.0 ** (cfg.noise_floor_db / 10.0))

        # Modulation spectrum of the switching activity.
        signal = activity.cpu_demand - activity.cpu_demand.mean()
        mod = np.abs(np.fft.rfft(signal)) ** 2
        if mod.sum() > 0:
            mod = mod / mod.sum()
        mod_freqs = np.fft.rfftfreq(activity.n_steps)  # in [0, 0.5]

        mean_activity = float(activity.cpu_demand.mean())
        miss_noise = float(
            np.mean(activity.working_set_kib) / (np.mean(activity.working_set_kib) + 4096.0)
        )

        for h in range(1, cfg.n_harmonics + 1):
            carrier = cfg.carrier_freq * h
            carrier_power = (
                (0.05 + mean_activity)
                * 10.0 ** (-(h - 1) * cfg.harmonic_rolloff_db / 10.0)
            )
            # Carrier line.
            idx = int(round(carrier * cfg.spectrum_bins))
            if idx < cfg.spectrum_bins:
                power[idx] += carrier_power
            # Sidebands: modulation spectrum mirrored around the carrier.
            for sign in (-1.0, +1.0):
                positions = carrier + sign * mod_freqs[1:]
                bins = np.round(positions * cfg.spectrum_bins).astype(int)
                valid = (bins >= 0) & (bins < cfg.spectrum_bins)
                np.add.at(
                    power,
                    bins[valid],
                    0.3 * carrier_power * mod[1:][valid],
                )

        # Broadband memory noise raises the floor between harmonics.
        power += miss_noise * 10.0 ** ((cfg.noise_floor_db + 25.0) / 10.0)

        power_db = 10.0 * np.log10(np.maximum(power, 1e-30))
        power_db += rng.normal(scale=cfg.measurement_noise_db, size=cfg.spectrum_bins)
        return EmSpectrum(power_db=power_db, frequencies=freqs, name=activity.name)


class EmFeatureExtractor:
    """Summarise an EM spectrum into a fixed-length feature vector.

    Features: per-band mean/max power (8 bands), carrier-harmonic
    amplitudes, sideband-to-carrier ratios and spectral flatness — the
    kind of descriptors EM-based monitoring systems derive.
    """

    N_BANDS = 8

    def __init__(self, config: EmConfig = EmConfig()):
        self.config = config

    def feature_names(self) -> list[str]:
        """Names matching :meth:`extract` output order."""
        names = []
        for b in range(self.N_BANDS):
            names.extend([f"band{b}_mean_db", f"band{b}_max_db"])
        for h in range(1, self.config.n_harmonics + 1):
            names.append(f"harmonic{h}_db")
            names.append(f"harmonic{h}_sideband_ratio")
        names.extend(["spectral_flatness", "total_power_db"])
        return names

    def extract(self, spectrum: EmSpectrum) -> np.ndarray:
        """Feature vector for one spectrum."""
        cfg = self.config
        power_db = spectrum.power_db
        feats: list[float] = []
        for band in np.array_split(power_db, self.N_BANDS):
            feats.append(float(band.mean()))
            feats.append(float(band.max()))

        n = spectrum.n_bins
        linear = 10.0 ** (power_db / 10.0)
        for h in range(1, cfg.n_harmonics + 1):
            idx = int(round(cfg.carrier_freq * h * n))
            idx = min(idx, n - 1)
            carrier_db = float(power_db[idx])
            lo, hi = max(idx - 8, 0), min(idx + 9, n)
            sideband = np.concatenate(
                [linear[lo:idx], linear[idx + 1 : hi]]
            )
            ratio = float(sideband.mean() / max(linear[idx], 1e-30))
            feats.append(carrier_db)
            feats.append(ratio)

        geometric = float(np.exp(np.mean(np.log(np.maximum(linear, 1e-30)))))
        arithmetic = float(linear.mean())
        feats.append(geometric / max(arithmetic, 1e-30))
        feats.append(float(10.0 * np.log10(max(linear.sum(), 1e-30))))
        return np.asarray(feats)

    def extract_windows(
        self,
        activity: ActivityTrace,
        window_steps: int,
        *,
        simulator: EmSimulator,
    ) -> np.ndarray:
        """Split an activity trace into windows, one spectrum each."""
        if window_steps < 8:
            raise ValueError("window_steps must be >= 8.")
        n_windows = activity.n_steps // window_steps
        if n_windows == 0:
            raise ValueError("Trace shorter than one window.")
        rows = []
        for w in range(n_windows):
            sub = activity.slice(w * window_steps, (w + 1) * window_steps)
            rows.append(self.extract(simulator.run(sub)))
        return np.stack(rows)
