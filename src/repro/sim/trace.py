"""Trace containers shared by the workload, DVFS and HPC simulators.

An :class:`ActivityTrace` is the hardware-agnostic description of what a
workload *does* over time (CPU demand, instruction mix, memory working
set, ...).  The DVFS simulator consumes it to produce a
:class:`DvfsTrace` of frequency-state indices, and the CPU counter model
consumes it to produce an :class:`HpcTrace` of counter samples — the two
signal families the paper's HMDs observe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ActivityTrace", "DvfsTrace", "HpcTrace", "INSTRUCTION_KINDS"]

# Instruction-mix categories modelled by the CPU substrate.
INSTRUCTION_KINDS = ("alu", "branch", "load", "store")


@dataclass
class ActivityTrace:
    """Time-series description of a workload's demands on the hardware.

    All arrays share the same length ``n_steps``; one step corresponds
    to ``dt`` seconds of wall-clock time.

    Attributes
    ----------
    cpu_demand:
        Requested CPU utilisation in [0, 1] (before governor decisions).
    gpu_demand:
        Requested GPU utilisation in [0, 1] (rendering / media load).
    instr_mix:
        ``(n_steps, 4)`` fractions over :data:`INSTRUCTION_KINDS`
        (rows sum to 1).
    working_set_kib:
        Active memory working-set size in KiB (drives cache miss rates).
    branch_entropy:
        Unpredictability of branch outcomes in [0, 1] (0 = perfectly
        predictable, 1 = random), drives branch-misprediction rates.
    io_rate:
        Relative I/O intensity in [0, 1] (drives context switches and
        page faults).
    phase_id:
        Integer id of the workload phase active at each step.
    dt:
        Seconds per step.
    name:
        Workload (application) name the trace was generated from.
    """

    cpu_demand: np.ndarray
    gpu_demand: np.ndarray
    instr_mix: np.ndarray
    working_set_kib: np.ndarray
    branch_entropy: np.ndarray
    io_rate: np.ndarray
    phase_id: np.ndarray
    dt: float = 0.05
    name: str = ""

    def __post_init__(self) -> None:
        n = len(self.cpu_demand)
        for attr in ("gpu_demand", "instr_mix", "working_set_kib", "branch_entropy", "io_rate", "phase_id"):
            if len(getattr(self, attr)) != n:
                raise ValueError(
                    f"ActivityTrace field {attr!r} has length "
                    f"{len(getattr(self, attr))}, expected {n}."
                )
        if self.instr_mix.ndim != 2 or self.instr_mix.shape[1] != len(INSTRUCTION_KINDS):
            raise ValueError(
                f"instr_mix must be (n_steps, {len(INSTRUCTION_KINDS)}); "
                f"got {self.instr_mix.shape}."
            )
        if self.dt <= 0:
            raise ValueError(f"dt must be positive; got {self.dt}.")

    @property
    def n_steps(self) -> int:
        """Number of simulation steps in the trace."""
        return len(self.cpu_demand)

    @property
    def duration(self) -> float:
        """Trace duration in seconds."""
        return self.n_steps * self.dt

    def slice(self, start: int, stop: int) -> "ActivityTrace":
        """Return a sub-trace covering steps ``[start, stop)``."""
        if not 0 <= start < stop <= self.n_steps:
            raise ValueError(
                f"Invalid slice [{start}, {stop}) for trace of {self.n_steps} steps."
            )
        return ActivityTrace(
            cpu_demand=self.cpu_demand[start:stop],
            gpu_demand=self.gpu_demand[start:stop],
            instr_mix=self.instr_mix[start:stop],
            working_set_kib=self.working_set_kib[start:stop],
            branch_entropy=self.branch_entropy[start:stop],
            io_rate=self.io_rate[start:stop],
            phase_id=self.phase_id[start:stop],
            dt=self.dt,
            name=self.name,
        )


@dataclass
class DvfsTrace:
    """Time series of DVFS states produced by the SoC power simulator.

    Attributes
    ----------
    states:
        ``(n_steps, n_channels)`` integer frequency-state indices,
        one column per DVFS channel (e.g. big cluster, LITTLE cluster,
        GPU).
    frequencies_mhz:
        Per-channel tuple of the frequency table, indexable by state.
    channel_names:
        Human-readable channel labels.
    temperature_c:
        Simulated die temperature per step (thermal-throttle telemetry).
    dt:
        Seconds per step.
    name:
        Source workload name.
    """

    states: np.ndarray
    frequencies_mhz: tuple[tuple[float, ...], ...]
    channel_names: tuple[str, ...]
    temperature_c: np.ndarray
    dt: float = 0.05
    name: str = ""

    def __post_init__(self) -> None:
        if self.states.ndim != 2:
            raise ValueError(f"states must be 2-d; got shape {self.states.shape}.")
        if self.states.shape[1] != len(self.channel_names):
            raise ValueError(
                f"states has {self.states.shape[1]} channels but "
                f"{len(self.channel_names)} names were given."
            )
        if len(self.frequencies_mhz) != len(self.channel_names):
            raise ValueError("One frequency table per channel is required.")

    @property
    def n_steps(self) -> int:
        """Number of DVFS samples."""
        return self.states.shape[0]

    @property
    def n_channels(self) -> int:
        """Number of DVFS channels."""
        return self.states.shape[1]

    def n_states(self, channel: int) -> int:
        """Number of frequency states available on ``channel``."""
        return len(self.frequencies_mhz[channel])

    def frequency_mhz(self) -> np.ndarray:
        """Decode state indices into frequencies (MHz), same shape as states."""
        out = np.empty_like(self.states, dtype=np.float64)
        for c in range(self.n_channels):
            table = np.asarray(self.frequencies_mhz[c])
            out[:, c] = table[self.states[:, c]]
        return out


@dataclass
class HpcTrace:
    """Per-interval hardware performance counter samples.

    Attributes
    ----------
    counters:
        ``(n_intervals, n_counters)`` non-negative event counts.
    counter_names:
        Names matching the counter columns.
    dt:
        Seconds per sampling interval.
    name:
        Source workload name.
    """

    counters: np.ndarray
    counter_names: tuple[str, ...]
    dt: float = 0.1
    name: str = ""

    def __post_init__(self) -> None:
        if self.counters.ndim != 2:
            raise ValueError(f"counters must be 2-d; got shape {self.counters.shape}.")
        if self.counters.shape[1] != len(self.counter_names):
            raise ValueError(
                f"counters has {self.counters.shape[1]} columns but "
                f"{len(self.counter_names)} names were given."
            )
        if np.any(self.counters < 0):
            raise ValueError("Counter values must be non-negative.")

    @property
    def n_intervals(self) -> int:
        """Number of sampling intervals."""
        return self.counters.shape[0]

    def column(self, counter: str) -> np.ndarray:
        """Return one counter's time series by name."""
        try:
            idx = self.counter_names.index(counter)
        except ValueError:
            raise KeyError(
                f"Unknown counter {counter!r}; available: {self.counter_names}."
            ) from None
        return self.counters[:, idx]
