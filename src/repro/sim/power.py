"""SoC power-management substrate: DVFS governors and state traces (S7b).

The DVFS-based HMD of Chawla et al. observes the sequence of Dynamic
Voltage and Frequency Scaling states that the OS governor selects while
an application runs.  This module reproduces that signal chain:

``ActivityTrace`` (what the app demands)
    → per-channel utilisation (demand routed to CPU clusters / GPU,
      plus background system load)
    → governor policy (ondemand / conservative / performance)
    → thermal model (power ∝ C·V²·f, throttling caps the state)
    → :class:`DvfsTrace` of state indices per channel.

The governor's non-linear, hysteretic response is what makes DVFS
signatures so application-discriminative: bursty interactive apps pull
rapid max-frequency jumps followed by step-downs, steady compute pins
the top states, and low-duty beaconing malware hovers in the low states.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from ..ml.validation import check_random_state
from .trace import ActivityTrace, DvfsTrace

__all__ = [
    "DvfsChannelConfig",
    "SocConfig",
    "OndemandGovernor",
    "ConservativeGovernor",
    "PerformanceGovernor",
    "SocSimulator",
    "DEFAULT_SOC",
]


@dataclass(frozen=True)
class DvfsChannelConfig:
    """One DVFS domain (CPU cluster or GPU).

    Attributes
    ----------
    name:
        Channel label (e.g. "cpu_big").
    frequencies_mhz:
        Ascending operating-point frequency table.
    voltages_v:
        Per-state supply voltage (same length as the frequency table).
    demand_share:
        Fraction of the workload's CPU demand routed to this channel.
    background_util:
        Mean background (OS/system services) utilisation added on top.
    capacitance_nf:
        Effective switched capacitance for the power model.
    """

    name: str
    frequencies_mhz: tuple[float, ...]
    voltages_v: tuple[float, ...]
    demand_share: float
    background_util: float = 0.03
    capacitance_nf: float = 1.0

    def __post_init__(self) -> None:
        if len(self.frequencies_mhz) != len(self.voltages_v):
            raise ValueError("frequencies_mhz and voltages_v lengths differ.")
        if len(self.frequencies_mhz) < 2:
            raise ValueError("At least 2 frequency states are required.")
        freqs = np.asarray(self.frequencies_mhz)
        if np.any(np.diff(freqs) <= 0):
            raise ValueError("frequencies_mhz must be strictly ascending.")
        if not 0.0 <= self.demand_share <= 1.0:
            raise ValueError(f"demand_share must be in [0, 1]; got {self.demand_share}.")

    @property
    def n_states(self) -> int:
        """Number of operating points."""
        return len(self.frequencies_mhz)


@dataclass(frozen=True)
class SocConfig:
    """Whole-SoC configuration: channels plus the thermal envelope."""

    channels: tuple[DvfsChannelConfig, ...]
    ambient_c: float = 30.0
    thermal_resistance: float = 18.0   # °C per Watt at steady state
    thermal_tau_s: float = 4.0         # thermal RC time constant
    throttle_temp_c: float = 75.0      # above this the max state is capped
    throttle_cap_states: int = 2       # how many top states throttling removes

    def __post_init__(self) -> None:
        if not self.channels:
            raise ValueError("At least one DVFS channel is required.")


# A Snapdragon-like big.LITTLE SoC with a GPU domain: the three DVFS
# channels whose state time-series form the HMD signature.
DEFAULT_SOC = SocConfig(
    channels=(
        DvfsChannelConfig(
            name="cpu_big",
            frequencies_mhz=(300, 652, 1036, 1401, 1766, 2016, 2150, 2457),
            voltages_v=(0.57, 0.62, 0.69, 0.76, 0.83, 0.90, 0.95, 1.05),
            demand_share=0.60,
            background_util=0.02,
            capacitance_nf=1.3,
        ),
        DvfsChannelConfig(
            name="cpu_little",
            frequencies_mhz=(300, 576, 748, 998, 1209, 1516, 1708),
            voltages_v=(0.55, 0.58, 0.62, 0.67, 0.73, 0.80, 0.86),
            demand_share=0.40,
            background_util=0.04,
            capacitance_nf=0.7,
        ),
        DvfsChannelConfig(
            name="gpu",
            frequencies_mhz=(180, 267, 355, 430, 504, 585),
            voltages_v=(0.60, 0.64, 0.70, 0.76, 0.82, 0.90),
            demand_share=0.05,
            background_util=0.06,
            capacitance_nf=1.8,
        ),
    ),
)


class OndemandGovernor:
    """The classic Linux ``ondemand`` policy.

    If utilisation exceeds ``up_threshold`` the governor jumps straight
    to the highest state; otherwise it picks the lowest state whose
    capacity covers the demand with margin, stepping down at most
    gradually (hysteresis via ``down_differential``).
    """

    def __init__(self, *, up_threshold: float = 0.80, down_differential: float = 0.10):
        if not 0.0 < up_threshold <= 1.0:
            raise ValueError(f"up_threshold must be in (0, 1]; got {up_threshold}.")
        if not 0.0 <= down_differential < up_threshold:
            raise ValueError(
                "down_differential must be in [0, up_threshold)."
            )
        self.up_threshold = up_threshold
        self.down_differential = down_differential

    def next_state(
        self, state: int, utilization: float, channel: DvfsChannelConfig
    ) -> int:
        """One governor decision given current state and utilisation.

        Implemented with :mod:`bisect` on the plain frequency tuple —
        this method runs once per step per channel, so it must stay free
        of NumPy per-call overhead.
        """
        n = channel.n_states
        freqs = channel.frequencies_mhz
        if utilization > self.up_threshold:
            return n - 1
        # Utilisation is measured relative to current capacity; convert
        # to absolute demand and find the smallest adequate state.
        demand = utilization * freqs[state]
        target_capacity = demand / max(self.up_threshold - self.down_differential, 1e-9)
        target = bisect_left(freqs, target_capacity)
        if target >= n:
            target = n - 1
        # Never step down more than one state per decision (hysteresis).
        if target < state - 1:
            target = state - 1
        return target


class ConservativeGovernor:
    """Linux ``conservative`` policy: single-state steps up and down."""

    def __init__(self, *, up_threshold: float = 0.75, down_threshold: float = 0.35):
        if not 0.0 <= down_threshold < up_threshold <= 1.0:
            raise ValueError(
                "Require 0 <= down_threshold < up_threshold <= 1."
            )
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold

    def next_state(
        self, state: int, utilization: float, channel: DvfsChannelConfig
    ) -> int:
        """Step at most one state per decision."""
        if utilization > self.up_threshold:
            return min(state + 1, channel.n_states - 1)
        if utilization < self.down_threshold:
            return max(state - 1, 0)
        return state


class PerformanceGovernor:
    """Pins the maximum state (used in ablations — it destroys the
    DVFS signature, illustrating why the sensor choice matters)."""

    def next_state(
        self, state: int, utilization: float, channel: DvfsChannelConfig
    ) -> int:
        """Always select the top state."""
        return channel.n_states - 1


class SocSimulator:
    """Simulates governor decisions and thermals for a workload trace.

    Parameters
    ----------
    config:
        SoC description (channels, thermal envelope).
    governor:
        Policy object with a ``next_state(state, util, channel)`` method;
        one independent instance of state per channel is maintained here.
    noise:
        Std-dev of multiplicative utilisation measurement noise.
    random_state:
        Seed / generator for reproducibility.
    """

    def __init__(
        self,
        config: SocConfig = DEFAULT_SOC,
        *,
        governor=None,
        noise: float = 0.04,
        random_state: int | np.random.Generator | None = None,
    ):
        self.config = config
        self.governor = governor if governor is not None else OndemandGovernor()
        self.noise = noise
        self.rng = check_random_state(random_state)

    def run(self, activity: ActivityTrace) -> DvfsTrace:
        """Produce the DVFS state trace for one workload activity trace.

        All stochastic inputs (background load, measurement noise) are
        drawn vectorised up front; the remaining sequential loop — the
        governor's state feedback and the thermal RC — uses plain Python
        scalars, keeping full-dataset generation fast.
        """
        config = self.config
        n_steps = activity.n_steps
        channels = config.channels
        n_channels = len(channels)
        rng = self.rng

        # Vectorised pre-computation of the measured utilisation demand.
        demand = activity.cpu_demand[:, None] * np.array(
            [c.demand_share for c in channels]
        )
        for c, channel in enumerate(channels):
            if channel.name == "cpu_little":
                # I/O and housekeeping threads land on the little cluster.
                demand[:, c] += 0.25 * activity.io_rate
            elif channel.name == "gpu":
                # The GPU domain serves rendering/media demand directly.
                demand[:, c] += activity.gpu_demand
        background = np.array([c.background_util for c in channels])
        demand += background[None, :] * rng.exponential(size=(n_steps, n_channels))
        demand *= 1.0 + rng.normal(scale=self.noise, size=(n_steps, n_channels))
        measured = np.clip(demand, 0.0, 1.0)
        measured_list = measured.tolist()

        # Per-channel lookup tables as plain Python objects.
        freq_tables = [c.frequencies_mhz for c in channels]
        inv_fmax = [1.0 / c.frequencies_mhz[-1] for c in channels]
        # Power per (channel, state) at unit activity: C * V^2 * f.
        power_tables = [
            [
                c.capacitance_nf * v * v * (f / 1000.0)
                for f, v in zip(c.frequencies_mhz, c.voltages_v)
            ]
            for c in channels
        ]
        throttle_caps = [
            max(c.n_states - 1 - config.throttle_cap_states, 0) for c in channels
        ]

        states = np.zeros((n_steps, n_channels), dtype=np.int64)
        states_list = states.tolist()
        temperature = [0.0] * n_steps
        temp = config.ambient_c + 5.0
        alpha = activity.dt / config.thermal_tau_s
        ambient = config.ambient_c
        thermal_r = config.thermal_resistance
        throttle_temp = config.throttle_temp_c
        governor_step = self.governor.next_state

        current = [0] * n_channels
        for t in range(n_steps):
            total_power = 0.0
            row_measured = measured_list[t]
            row_states = states_list[t]
            throttled = temp > throttle_temp
            for c in range(n_channels):
                m = row_measured[c]
                # Utilisation relative to the *current* state's capacity.
                cap_ratio = freq_tables[c][current[c]] * inv_fmax[c]
                utilization = m / cap_ratio
                if utilization > 1.0:
                    utilization = 1.0
                next_state = governor_step(current[c], utilization, channels[c])
                if throttled and next_state > throttle_caps[c]:
                    next_state = throttle_caps[c]
                current[c] = next_state
                row_states[c] = next_state
                activity_factor = m if m > 0.05 else 0.05
                total_power += power_tables[c][next_state] * activity_factor

            # First-order thermal RC update.
            steady = ambient + thermal_r * total_power
            temp += alpha * (steady - temp)
            temperature[t] = temp

        states = np.asarray(states_list, dtype=np.int64)
        temperature = np.asarray(temperature)

        return DvfsTrace(
            states=states,
            frequencies_mhz=tuple(c.frequencies_mhz for c in config.channels),
            channel_names=tuple(c.name for c in config.channels),
            temperature_c=temperature,
            dt=activity.dt,
            name=activity.name,
        )
