"""SoC power-management substrate: DVFS governors and state traces (S7b).

The DVFS-based HMD of Chawla et al. observes the sequence of Dynamic
Voltage and Frequency Scaling states that the OS governor selects while
an application runs.  This module reproduces that signal chain:

``ActivityTrace`` (what the app demands)
    → per-channel utilisation (demand routed to CPU clusters / GPU,
      plus background system load)
    → governor policy (ondemand / conservative / performance)
    → thermal model (power ∝ C·V²·f, throttling caps the state)
    → :class:`DvfsTrace` of state indices per channel.

The governor's non-linear, hysteretic response is what makes DVFS
signatures so application-discriminative: bursty interactive apps pull
rapid max-frequency jumps followed by step-downs, steady compute pins
the top states, and low-duty beaconing malware hovers in the low states.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from ..ml.validation import check_random_state
from .batch import ActivityBatch, DvfsBatch
from .trace import ActivityTrace, DvfsTrace

__all__ = [
    "DvfsChannelConfig",
    "SocConfig",
    "OndemandGovernor",
    "ConservativeGovernor",
    "PerformanceGovernor",
    "SocSimulator",
    "DEFAULT_SOC",
]


@dataclass(frozen=True)
class DvfsChannelConfig:
    """One DVFS domain (CPU cluster or GPU).

    Attributes
    ----------
    name:
        Channel label (e.g. "cpu_big").
    frequencies_mhz:
        Ascending operating-point frequency table.
    voltages_v:
        Per-state supply voltage (same length as the frequency table).
    demand_share:
        Fraction of the workload's CPU demand routed to this channel.
    background_util:
        Mean background (OS/system services) utilisation added on top.
    capacitance_nf:
        Effective switched capacitance for the power model.
    """

    name: str
    frequencies_mhz: tuple[float, ...]
    voltages_v: tuple[float, ...]
    demand_share: float
    background_util: float = 0.03
    capacitance_nf: float = 1.0

    def __post_init__(self) -> None:
        if len(self.frequencies_mhz) != len(self.voltages_v):
            raise ValueError("frequencies_mhz and voltages_v lengths differ.")
        if len(self.frequencies_mhz) < 2:
            raise ValueError("At least 2 frequency states are required.")
        freqs = np.asarray(self.frequencies_mhz)
        if np.any(np.diff(freqs) <= 0):
            raise ValueError("frequencies_mhz must be strictly ascending.")
        if not 0.0 <= self.demand_share <= 1.0:
            raise ValueError(f"demand_share must be in [0, 1]; got {self.demand_share}.")

    @property
    def n_states(self) -> int:
        """Number of operating points."""
        return len(self.frequencies_mhz)


_FREQ_ARRAYS: dict[tuple[float, ...], np.ndarray] = {}


def _freq_array(channel: DvfsChannelConfig) -> np.ndarray:
    """Memoised float64 frequency table (the batch scan gathers it per
    step; rebuilding the array per call would dominate)."""
    freqs = _FREQ_ARRAYS.get(channel.frequencies_mhz)
    if freqs is None:
        freqs = np.asarray(channel.frequencies_mhz, dtype=np.float64)
        _FREQ_ARRAYS[channel.frequencies_mhz] = freqs
    return freqs


@dataclass(frozen=True)
class SocConfig:
    """Whole-SoC configuration: channels plus the thermal envelope."""

    channels: tuple[DvfsChannelConfig, ...]
    ambient_c: float = 30.0
    thermal_resistance: float = 18.0   # °C per Watt at steady state
    thermal_tau_s: float = 4.0         # thermal RC time constant
    throttle_temp_c: float = 75.0      # above this the max state is capped
    throttle_cap_states: int = 2       # how many top states throttling removes

    def __post_init__(self) -> None:
        if not self.channels:
            raise ValueError("At least one DVFS channel is required.")


# A Snapdragon-like big.LITTLE SoC with a GPU domain: the three DVFS
# channels whose state time-series form the HMD signature.
DEFAULT_SOC = SocConfig(
    channels=(
        DvfsChannelConfig(
            name="cpu_big",
            frequencies_mhz=(300, 652, 1036, 1401, 1766, 2016, 2150, 2457),
            voltages_v=(0.57, 0.62, 0.69, 0.76, 0.83, 0.90, 0.95, 1.05),
            demand_share=0.60,
            background_util=0.02,
            capacitance_nf=1.3,
        ),
        DvfsChannelConfig(
            name="cpu_little",
            frequencies_mhz=(300, 576, 748, 998, 1209, 1516, 1708),
            voltages_v=(0.55, 0.58, 0.62, 0.67, 0.73, 0.80, 0.86),
            demand_share=0.40,
            background_util=0.04,
            capacitance_nf=0.7,
        ),
        DvfsChannelConfig(
            name="gpu",
            frequencies_mhz=(180, 267, 355, 430, 504, 585),
            voltages_v=(0.60, 0.64, 0.70, 0.76, 0.82, 0.90),
            demand_share=0.05,
            background_util=0.06,
            capacitance_nf=1.8,
        ),
    ),
)


class OndemandGovernor:
    """The classic Linux ``ondemand`` policy.

    If utilisation exceeds ``up_threshold`` the governor jumps straight
    to the highest state; otherwise it picks the lowest state whose
    capacity covers the demand with margin, stepping down at most
    gradually (hysteresis via ``down_differential``).
    """

    def __init__(self, *, up_threshold: float = 0.80, down_differential: float = 0.10):
        if not 0.0 < up_threshold <= 1.0:
            raise ValueError(f"up_threshold must be in (0, 1]; got {up_threshold}.")
        if not 0.0 <= down_differential < up_threshold:
            raise ValueError(
                "down_differential must be in [0, up_threshold)."
            )
        self.up_threshold = up_threshold
        self.down_differential = down_differential

    def next_state(
        self, state: int, utilization: float, channel: DvfsChannelConfig
    ) -> int:
        """One governor decision given current state and utilisation.

        Implemented with :mod:`bisect` on the plain frequency tuple —
        this method runs once per step per channel, so it must stay free
        of NumPy per-call overhead.
        """
        n = channel.n_states
        freqs = channel.frequencies_mhz
        if utilization > self.up_threshold:
            return n - 1
        # Utilisation is measured relative to current capacity; convert
        # to absolute demand and find the smallest adequate state.
        demand = utilization * freqs[state]
        target_capacity = demand / max(self.up_threshold - self.down_differential, 1e-9)
        target = bisect_left(freqs, target_capacity)
        if target >= n:
            target = n - 1
        # Never step down more than one state per decision (hysteresis).
        if target < state - 1:
            target = state - 1
        return target

    def next_state_batch(
        self, states: np.ndarray, utilization: np.ndarray, channel: DvfsChannelConfig
    ) -> np.ndarray:
        """Vectorised :meth:`next_state` over a window axis.

        Bitwise-equal to the scalar policy: ``searchsorted`` on the
        float64 frequency table reproduces ``bisect_left`` on the plain
        tuple exactly (table values are exactly representable).
        """
        freqs = _freq_array(channel)
        n = channel.n_states
        demand = utilization * freqs[states]
        denom = max(self.up_threshold - self.down_differential, 1e-9)
        target = np.searchsorted(freqs, demand / denom, side="left")
        np.minimum(target, n - 1, out=target)
        np.maximum(target, states - 1, out=target)
        return np.where(utilization > self.up_threshold, n - 1, target)


class ConservativeGovernor:
    """Linux ``conservative`` policy: single-state steps up and down."""

    def __init__(self, *, up_threshold: float = 0.75, down_threshold: float = 0.35):
        if not 0.0 <= down_threshold < up_threshold <= 1.0:
            raise ValueError(
                "Require 0 <= down_threshold < up_threshold <= 1."
            )
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold

    def next_state(
        self, state: int, utilization: float, channel: DvfsChannelConfig
    ) -> int:
        """Step at most one state per decision."""
        if utilization > self.up_threshold:
            return min(state + 1, channel.n_states - 1)
        if utilization < self.down_threshold:
            return max(state - 1, 0)
        return state

    def next_state_batch(
        self, states: np.ndarray, utilization: np.ndarray, channel: DvfsChannelConfig
    ) -> np.ndarray:
        """Vectorised :meth:`next_state` over a window axis."""
        n = channel.n_states
        return np.where(
            utilization > self.up_threshold,
            np.minimum(states + 1, n - 1),
            np.where(
                utilization < self.down_threshold,
                np.maximum(states - 1, 0),
                states,
            ),
        )


class PerformanceGovernor:
    """Pins the maximum state (used in ablations — it destroys the
    DVFS signature, illustrating why the sensor choice matters)."""

    def next_state(
        self, state: int, utilization: float, channel: DvfsChannelConfig
    ) -> int:
        """Always select the top state."""
        return channel.n_states - 1

    def next_state_batch(
        self, states: np.ndarray, utilization: np.ndarray, channel: DvfsChannelConfig
    ) -> np.ndarray:
        """Vectorised :meth:`next_state` over a window axis."""
        return np.full(states.shape, channel.n_states - 1, dtype=states.dtype)


class SocSimulator:
    """Simulates governor decisions and thermals for a workload trace.

    Parameters
    ----------
    config:
        SoC description (channels, thermal envelope).
    governor:
        Policy object with a ``next_state(state, util, channel)`` method;
        one independent instance of state per channel is maintained here.
    noise:
        Std-dev of multiplicative utilisation measurement noise.
    random_state:
        Seed / generator for reproducibility.
    """

    def __init__(
        self,
        config: SocConfig = DEFAULT_SOC,
        *,
        governor=None,
        noise: float = 0.04,
        random_state: int | np.random.Generator | None = None,
    ):
        self.config = config
        self.governor = governor if governor is not None else OndemandGovernor()
        self.noise = noise
        self.rng = check_random_state(random_state)

    def run(self, activity: ActivityTrace) -> DvfsTrace:
        """Produce the DVFS state trace for one workload activity trace.

        All stochastic inputs (background load, measurement noise) are
        drawn vectorised up front; the remaining sequential loop — the
        governor's state feedback and the thermal RC — uses plain Python
        scalars, keeping full-dataset generation fast.
        """
        config = self.config
        n_steps = activity.n_steps
        channels = config.channels
        n_channels = len(channels)
        rng = self.rng

        # Vectorised pre-computation of the measured utilisation demand.
        demand = activity.cpu_demand[:, None] * np.array(
            [c.demand_share for c in channels]
        )
        for c, channel in enumerate(channels):
            if channel.name == "cpu_little":
                # I/O and housekeeping threads land on the little cluster.
                demand[:, c] += 0.25 * activity.io_rate
            elif channel.name == "gpu":
                # The GPU domain serves rendering/media demand directly.
                demand[:, c] += activity.gpu_demand
        background = np.array([c.background_util for c in channels])
        demand += background[None, :] * rng.exponential(size=(n_steps, n_channels))
        demand *= 1.0 + rng.normal(scale=self.noise, size=(n_steps, n_channels))
        measured = np.clip(demand, 0.0, 1.0)
        measured_list = measured.tolist()

        # Per-channel lookup tables as plain Python objects.
        freq_tables = [c.frequencies_mhz for c in channels]
        inv_fmax = [1.0 / c.frequencies_mhz[-1] for c in channels]
        # Power per (channel, state) at unit activity: C * V^2 * f.
        power_tables = [
            [
                c.capacitance_nf * v * v * (f / 1000.0)
                for f, v in zip(c.frequencies_mhz, c.voltages_v)
            ]
            for c in channels
        ]
        throttle_caps = [
            max(c.n_states - 1 - config.throttle_cap_states, 0) for c in channels
        ]

        states = np.zeros((n_steps, n_channels), dtype=np.int64)
        states_list = states.tolist()
        temperature = [0.0] * n_steps
        temp = config.ambient_c + 5.0
        alpha = activity.dt / config.thermal_tau_s
        ambient = config.ambient_c
        thermal_r = config.thermal_resistance
        throttle_temp = config.throttle_temp_c
        governor_step = self.governor.next_state

        current = [0] * n_channels
        for t in range(n_steps):
            total_power = 0.0
            row_measured = measured_list[t]
            row_states = states_list[t]
            throttled = temp > throttle_temp
            for c in range(n_channels):
                m = row_measured[c]
                # Utilisation relative to the *current* state's capacity.
                cap_ratio = freq_tables[c][current[c]] * inv_fmax[c]
                utilization = m / cap_ratio
                if utilization > 1.0:
                    utilization = 1.0
                next_state = governor_step(current[c], utilization, channels[c])
                if throttled and next_state > throttle_caps[c]:
                    next_state = throttle_caps[c]
                current[c] = next_state
                row_states[c] = next_state
                activity_factor = m if m > 0.05 else 0.05
                total_power += power_tables[c][next_state] * activity_factor

            # First-order thermal RC update.
            steady = ambient + thermal_r * total_power
            temp += alpha * (steady - temp)
            temperature[t] = temp

        states = np.asarray(states_list, dtype=np.int64)
        temperature = np.asarray(temperature)

        return DvfsTrace(
            states=states,
            frequencies_mhz=tuple(c.frequencies_mhz for c in config.channels),
            channel_names=tuple(c.name for c in config.channels),
            temperature_c=temperature,
            dt=activity.dt,
            name=activity.name,
        )

    def run_reference(self, activity: ActivityTrace) -> DvfsTrace:
        """The retained per-step reference path (alias for :meth:`run`).

        :meth:`run_batch` is fuzz-gated bitwise against this method.
        """
        return self.run(activity)

    def _governor_step_batch(self):
        """Window-vectorised governor decision function.

        Uses the policy's ``next_state_batch`` when it provides one;
        custom governors without a batch method fall back to scalar
        calls per window (bitwise-equal by construction, just slower).
        """
        step_batch = getattr(self.governor, "next_state_batch", None)
        if step_batch is not None:
            return step_batch
        scalar = self.governor.next_state

        def fallback(states, utilization, channel):
            return np.array(
                [
                    scalar(int(s), float(u), channel)
                    for s, u in zip(states, utilization)
                ],
                dtype=states.dtype,
            )

        return fallback

    def run_batch(self, batch: ActivityBatch, *, rngs=None) -> DvfsBatch:
        """Whole-tensor DVFS simulation of a stack of activity windows.

        Bitwise identical to calling :meth:`run` on ``batch.window(i)``
        for ``i = 0, 1, ...`` with the same generator: the stochastic
        inputs are drawn window-by-window in the reference order (so
        the RNG stream is consumed identically), while the governor /
        thermal recurrence runs as a scan over the step axis — every
        step updates all windows at once with per-channel frequency,
        power and throttle tables gathered whole-tensor.  Per-window
        Python cost drops from ``n_steps * n_channels`` governor calls
        to ``n_steps * n_channels / n_windows`` vector operations.

        ``rngs`` optionally supplies one generator per window (fleet
        use: each device owns its stream); the default draws every
        window from this simulator's own stream.
        """
        config = self.config
        channels = config.channels
        n_windows, n_steps = batch.n_windows, batch.n_steps
        n_channels = len(channels)
        if rngs is not None and len(rngs) != n_windows:
            raise ValueError(
                f"rngs has {len(rngs)} generators for {n_windows} windows."
            )

        # Demand routing, identical elementwise math to the scalar path.
        demand = batch.cpu_demand[:, :, None] * np.array(
            [c.demand_share for c in channels]
        )
        for c, channel in enumerate(channels):
            if channel.name == "cpu_little":
                demand[:, :, c] += 0.25 * batch.io_rate
            elif channel.name == "gpu":
                demand[:, :, c] += batch.gpu_demand
        background = np.array([c.background_util for c in channels])
        # Stochastic inputs: one (exponential, normal) pair per window,
        # drawn in window order — the reference RNG consumption.
        expo = np.empty((n_windows, n_steps, n_channels))
        noise = np.empty((n_windows, n_steps, n_channels))
        for w in range(n_windows):
            rng = self.rng if rngs is None else rngs[w]
            expo[w] = rng.exponential(size=(n_steps, n_channels))
            noise[w] = rng.normal(scale=self.noise, size=(n_steps, n_channels))
        # In-place composition — same elementwise expressions as the
        # scalar path (`clip` is exactly maximum-then-minimum).
        expo *= background[None, None, :]
        demand += expo
        noise += 1.0
        demand *= noise
        np.maximum(demand, 0.0, out=demand)
        np.minimum(demand, 1.0, out=demand)
        # Step-leading contiguous layout so every scan slice is flat.
        measured_t = np.ascontiguousarray(demand.transpose(1, 2, 0))

        # Per-entry products f * (1/f_max) — the same two floats the
        # scalar path multiplies per step, precomputed per state.
        cap_tables = [
            np.array(
                [f * (1.0 / c.frequencies_mhz[-1]) for f in c.frequencies_mhz]
            )
            for c in channels
        ]
        power_tables = [
            np.array(
                [
                    c.capacitance_nf * v * v * (f / 1000.0)
                    for f, v in zip(c.frequencies_mhz, c.voltages_v)
                ]
            )
            for c in channels
        ]
        throttle_caps = [
            max(c.n_states - 1 - config.throttle_cap_states, 0) for c in channels
        ]
        governor_step = self._governor_step_batch()

        states_t = np.empty((n_steps, n_channels, n_windows), dtype=np.int64)
        temperature_t = np.empty((n_steps, n_windows))
        temp = np.full(n_windows, config.ambient_c + 5.0)
        alpha = batch.dt / config.thermal_tau_s
        ambient = config.ambient_c
        thermal_r = config.thermal_resistance
        throttle_temp = config.throttle_temp_c

        current = [np.zeros(n_windows, dtype=np.int64) for _ in range(n_channels)]
        for t in range(n_steps):
            throttled = temp > throttle_temp
            any_throttled = bool(throttled.any())
            total_power = np.zeros(n_windows)
            m_t = measured_t[t]
            s_t = states_t[t]
            for c in range(n_channels):
                m = m_t[c]
                cap_ratio = cap_tables[c][current[c]]
                utilization = m / cap_ratio
                np.minimum(utilization, 1.0, out=utilization)
                next_state = governor_step(current[c], utilization, channels[c])
                if any_throttled:
                    cap = throttle_caps[c]
                    next_state = np.where(
                        throttled & (next_state > cap), cap, next_state
                    )
                current[c] = next_state
                s_t[c] = next_state
                activity_factor = np.maximum(m, 0.05)
                # Accumulated channel-by-channel, matching the scalar
                # left-to-right summation order exactly.
                total_power += power_tables[c][next_state] * activity_factor

            steady = ambient + thermal_r * total_power
            temp += alpha * (steady - temp)
            temperature_t[t] = temp

        states = np.ascontiguousarray(states_t.transpose(2, 0, 1))
        temperature = np.ascontiguousarray(temperature_t.T)
        return DvfsBatch(
            states=states,
            frequencies_mhz=tuple(c.frequencies_mhz for c in config.channels),
            channel_names=tuple(c.name for c in config.channels),
            temperature_c=temperature,
            dt=batch.dt,
            names=batch.names,
        )
