"""Synthetic workload archetypes and activity-trace generation (S7a).

The paper's datasets were collected by running real Android applications
and malware samples (DVFS dataset, Chawla et al.) and desktop
benign/malware binaries (HPC dataset, Zhou et al.).  Offline we replace
those with *parametric workload archetypes*: each application is a small
Markov machine over behavioural phases, each phase specifying the
demands the application places on the hardware (CPU utilisation
dynamics, instruction mix, memory working set, branch predictability,
I/O).  Running the machine produces an :class:`ActivityTrace` that the
DVFS and HPC substrates turn into sensor signatures.

Per-application *individuality* comes from two levels of randomness:

* every application instance draws a persistent parameter offset
  (``app_jitter``) once, making e.g. two browsing sessions similar but
  not identical;
* every step adds observation noise.

This mirrors the paper's setting where signatures cluster per
application, and lets the dataset builder place whole *applications*
(not samples) into the known/unknown buckets exactly as in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..ml.validation import check_random_state
from .batch import (
    DUTY_STREAM,
    TRACE_STREAM,
    ActivityBatch,
    device_seed_sequence,
)
from .trace import INSTRUCTION_KINDS, ActivityTrace

__all__ = [
    "WorkloadPhase",
    "WorkloadSpec",
    "WorkloadGenerator",
    "blend_specs",
    "FleetDevice",
    "FleetPopulation",
    "FleetTraceGenerator",
]


@dataclass(frozen=True)
class WorkloadPhase:
    """One behavioural phase of an application.

    Attributes
    ----------
    name:
        Phase label (for debugging and trace inspection).
    cpu_mean / cpu_std:
        Mean and standard deviation of CPU demand in [0, 1].
    gpu_mean:
        Mean GPU demand in [0, 1] (rendering, video decode, UI
        compositing); most malware archetypes leave this near zero.
    burst_prob / burst_height:
        Per-step probability of a short demand burst and its amplitude —
        bursts are what distinguish interactive apps from steady
        compute loops in the DVFS signal.
    mix:
        Instruction-mix fractions over (alu, branch, load, store);
        normalised at generation time.
    working_set_kib:
        Log-mean of the active working set in KiB.
    working_set_sigma:
        Log-space standard deviation of the working set.
    branch_entropy:
        Branch-outcome unpredictability in [0, 1].
    io_rate:
        Relative I/O intensity in [0, 1].
    mean_duration_steps:
        Mean dwell time before the Markov machine may leave the phase.
    dwell_cv:
        Coefficient of variation of the dwell time.  ``None`` (default)
        uses a geometric distribution — the memoryless, human-driven
        case.  A small value (e.g. 0.05) makes dwells nearly
        deterministic, modelling timer-driven malware behaviour (ad
        popups, C2 beacons, SMS bursts) whose rigid cadence is exactly
        the "invariant functionality" HMDs key on.
    """

    name: str
    cpu_mean: float
    cpu_std: float = 0.05
    gpu_mean: float = 0.0
    burst_prob: float = 0.0
    burst_height: float = 0.0
    mix: tuple[float, float, float, float] = (0.55, 0.15, 0.20, 0.10)
    working_set_kib: float = 512.0
    working_set_sigma: float = 0.25
    branch_entropy: float = 0.3
    io_rate: float = 0.1
    mean_duration_steps: int = 40
    dwell_cv: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_mean <= 1.0:
            raise ValueError(f"cpu_mean must be in [0, 1]; got {self.cpu_mean}.")
        if len(self.mix) != len(INSTRUCTION_KINDS):
            raise ValueError(
                f"mix must have {len(INSTRUCTION_KINDS)} entries; got {len(self.mix)}."
            )
        if any(m < 0 for m in self.mix) or sum(self.mix) <= 0:
            raise ValueError(f"mix fractions must be non-negative and not all zero.")
        if self.mean_duration_steps < 1:
            raise ValueError("mean_duration_steps must be >= 1.")


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete application archetype.

    Attributes
    ----------
    name:
        Application name (unique within a dataset).
    label:
        0 = benign, 1 = malware.
    family:
        Malware family or benign category (used for reporting).
    phases:
        The behavioural phases.
    transitions:
        Row-stochastic phase transition matrix (rows/cols follow
        ``phases`` order); ``None`` means uniform transitions.
    app_jitter:
        Scale of the per-instance persistent parameter offset: each
        generated trace perturbs phase means by a random factor drawn
        once, modelling device/app-session variation.
    """

    name: str
    label: int
    family: str
    phases: tuple[WorkloadPhase, ...]
    transitions: tuple[tuple[float, ...], ...] | None = None
    app_jitter: float = 0.05

    def __post_init__(self) -> None:
        if self.label not in (0, 1):
            raise ValueError(f"label must be 0 (benign) or 1 (malware); got {self.label}.")
        if not self.phases:
            raise ValueError("At least one phase is required.")
        if self.transitions is not None:
            n = len(self.phases)
            matrix = np.asarray(self.transitions, dtype=float)
            if matrix.shape != (n, n):
                raise ValueError(
                    f"transitions must be {n}x{n}; got {matrix.shape}."
                )
            if np.any(matrix < 0) or not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-6):
                raise ValueError("transitions rows must be non-negative and sum to 1.")

    def transition_matrix(self) -> np.ndarray:
        """Return the (possibly default-uniform) transition matrix."""
        n = len(self.phases)
        if self.transitions is None:
            return np.full((n, n), 1.0 / n)
        return np.asarray(self.transitions, dtype=float)


def _sample_phase_schedule(
    rng: np.random.Generator,
    n_steps: int,
    n_phases: int,
    transition: np.ndarray,
    means: np.ndarray,
    dwell_cvs: list[float | None],
) -> np.ndarray:
    """Run the Markov phase machine and return per-step phase ids.

    The single phase-machine implementation shared by the per-window
    reference path and the batched kernel, so the two consume the RNG
    stream identically by construction.  Only the (few) phase
    *transitions* run in a Python loop; the schedule itself is
    materialised as one array via ``np.repeat`` over the sampled
    (phase, dwell) pairs.

    Transitions draw one uniform and invert the precomputed row CDF —
    exactly the stream consumption and arithmetic of
    ``rng.choice(n_phases, p=row)``, minus its per-call validation.
    """
    cdfs = np.asarray(transition, dtype=np.float64).cumsum(axis=1)
    cdfs /= cdfs[:, -1:]
    phases: list[int] = []
    dwells: list[int] = []
    total = 0
    phase_idx = int(rng.integers(n_phases))
    while total < n_steps:
        cv = dwell_cvs[phase_idx]
        if cv is None:
            dwell = int(rng.geometric(1.0 / means[phase_idx]))
        else:
            dwell = max(
                1,
                int(round(rng.normal(means[phase_idx], cv * means[phase_idx]))),
            )
        dwell = min(dwell, n_steps - total)
        phases.append(phase_idx)
        dwells.append(dwell)
        total += dwell
        phase_idx = int(cdfs[phase_idx].searchsorted(rng.random(), side="right"))
    return np.repeat(
        np.asarray(phases, dtype=np.int64), np.asarray(dwells, dtype=np.int64)
    )


def _generate_batch(
    spec: WorkloadSpec, rngs, n_steps: int, dt: float
) -> ActivityBatch:
    """Whole-tensor activity generation: one window per entry of ``rngs``.

    Window ``w`` consumes ``rngs[w]`` exactly as one
    :meth:`WorkloadGenerator.generate` call would (phase machine first,
    then session offsets, then the six per-step noise vectors), so:

    * passing the same generator ``n`` times is bitwise identical to
      ``n`` successive ``generate()`` calls on it;
    * passing per-device generators yields each device's own stream,
      independent of how windows are batched together.

    All remaining arithmetic — phase-table gathers, demand/noise
    composition, clipping — runs once over the full
    ``(n_windows, n_steps)`` tensor; every operation is elementwise (or
    a length-4 innermost-axis sum for the instruction-mix
    normalisation), so no reduction order changes.
    """
    n_windows = len(rngs)
    n_phases = len(spec.phases)
    transition = spec.transition_matrix()
    means = np.array([p.mean_duration_steps for p in spec.phases], dtype=float)
    dwell_cvs = [p.dwell_cv for p in spec.phases]
    n_kinds = len(INSTRUCTION_KINDS)

    phase_ids = np.empty((n_windows, n_steps), dtype=np.int64)
    cpu_offset = np.empty(n_windows)
    ws_offset = np.empty(n_windows)
    mix_offset = np.empty((n_windows, n_kinds))
    cpu_noise = np.empty((n_windows, n_steps))
    burst_draw = np.empty((n_windows, n_steps))
    gpu_noise = np.empty((n_windows, n_steps))
    ws_noise = np.empty((n_windows, n_steps))
    be_noise = np.empty((n_windows, n_steps))
    io_noise = np.empty((n_windows, n_steps))

    for w, rng in enumerate(rngs):
        phase_ids[w] = _sample_phase_schedule(
            rng, n_steps, n_phases, transition, means, dwell_cvs
        )
        cpu_offset[w] = rng.normal(scale=spec.app_jitter)
        ws_offset[w] = rng.normal(scale=spec.app_jitter)
        mix_offset[w] = rng.normal(scale=spec.app_jitter, size=n_kinds)
        cpu_noise[w] = rng.normal(size=n_steps)
        burst_draw[w] = rng.random(n_steps)
        gpu_noise[w] = rng.normal(scale=0.03, size=n_steps)
        ws_noise[w] = rng.normal(size=n_steps)
        be_noise[w] = rng.normal(scale=0.03, size=n_steps)
        io_noise[w] = rng.normal(scale=0.03, size=n_steps)

    cpu_mean = np.array([p.cpu_mean for p in spec.phases])
    cpu_std = np.array([p.cpu_std for p in spec.phases])
    gpu_mean = np.array([p.gpu_mean for p in spec.phases])
    burst_prob = np.array([p.burst_prob for p in spec.phases])
    burst_height = np.array([p.burst_height for p in spec.phases])
    ws_log_mean = np.log([p.working_set_kib for p in spec.phases])
    ws_sigma = np.array([p.working_set_sigma for p in spec.phases])
    be_mean = np.array([p.branch_entropy for p in spec.phases])
    io_mean = np.array([p.io_rate for p in spec.phases])
    mix_table = np.array([p.mix for p in spec.phases], dtype=float)
    mix_tables = mix_table[None, :, :] * np.exp(mix_offset * 0.5)[:, None, :]
    mix_tables = np.maximum(mix_tables, 1e-6)
    mix_tables /= mix_tables.sum(axis=2, keepdims=True)

    pid = phase_ids
    off = cpu_offset[:, None]
    cpu = cpu_mean[pid] + off + cpu_noise * cpu_std[pid]
    bursts = burst_draw < burst_prob[pid]
    cpu = np.clip(cpu + bursts * burst_height[pid], 0.0, 1.0)

    gpu = np.clip(gpu_mean[pid] + 0.5 * off + gpu_noise, 0.0, 1.0)

    mix = mix_tables[np.arange(n_windows)[:, None], pid]

    working_set = np.exp(ws_log_mean[pid] + ws_offset[:, None] + ws_noise * ws_sigma[pid])
    branch_entropy = np.clip(be_mean[pid] + be_noise, 0.0, 1.0)
    io_rate = np.clip(io_mean[pid] + io_noise, 0.0, 1.0)

    return ActivityBatch(
        cpu_demand=cpu,
        gpu_demand=gpu,
        instr_mix=mix,
        working_set_kib=working_set,
        branch_entropy=branch_entropy,
        io_rate=io_rate,
        phase_id=phase_ids,
        dt=dt,
        names=(spec.name,) * n_windows,
    )


class WorkloadGenerator:
    """Turns a :class:`WorkloadSpec` into :class:`ActivityTrace` windows.

    Parameters
    ----------
    dt:
        Seconds per step.
    random_state:
        Seed / generator for reproducible traces.
    """

    def __init__(self, *, dt: float = 0.05, random_state: int | np.random.Generator | None = None):
        if dt <= 0:
            raise ValueError(f"dt must be positive; got {dt}.")
        self.dt = dt
        self.rng = check_random_state(random_state)

    def _phase_sequence(self, spec: WorkloadSpec, n_steps: int) -> np.ndarray:
        """Run the Markov phase machine and return per-step phase ids."""
        return _sample_phase_schedule(
            self.rng,
            n_steps,
            len(spec.phases),
            spec.transition_matrix(),
            np.array([p.mean_duration_steps for p in spec.phases], dtype=float),
            [p.dwell_cv for p in spec.phases],
        )

    def generate(self, spec: WorkloadSpec, n_steps: int) -> ActivityTrace:
        """Simulate ``n_steps`` of the application's phase machine.

        Per-step sampling is fully vectorised; only phase transitions
        run in Python.
        """
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1; got {n_steps}.")
        rng = self.rng
        phase_ids = self._phase_sequence(spec, n_steps)

        # Persistent per-instance offsets (the "session personality").
        cpu_offset = rng.normal(scale=spec.app_jitter)
        ws_offset = rng.normal(scale=spec.app_jitter)
        mix_offset = rng.normal(scale=spec.app_jitter, size=len(INSTRUCTION_KINDS))

        # Per-phase parameter tables, indexed by the phase sequence.
        cpu_mean = np.array([p.cpu_mean for p in spec.phases])
        cpu_std = np.array([p.cpu_std for p in spec.phases])
        gpu_mean = np.array([p.gpu_mean for p in spec.phases])
        burst_prob = np.array([p.burst_prob for p in spec.phases])
        burst_height = np.array([p.burst_height for p in spec.phases])
        ws_log_mean = np.log([p.working_set_kib for p in spec.phases])
        ws_sigma = np.array([p.working_set_sigma for p in spec.phases])
        be_mean = np.array([p.branch_entropy for p in spec.phases])
        io_mean = np.array([p.io_rate for p in spec.phases])
        mix_table = np.array([p.mix for p in spec.phases], dtype=float)
        mix_table = mix_table * np.exp(mix_offset * 0.5)[None, :]
        mix_table = np.maximum(mix_table, 1e-6)
        mix_table /= mix_table.sum(axis=1, keepdims=True)

        cpu = cpu_mean[phase_ids] + cpu_offset + rng.normal(size=n_steps) * cpu_std[phase_ids]
        bursts = rng.random(n_steps) < burst_prob[phase_ids]
        cpu = np.clip(cpu + bursts * burst_height[phase_ids], 0.0, 1.0)

        gpu = gpu_mean[phase_ids] + 0.5 * cpu_offset + rng.normal(scale=0.03, size=n_steps)
        gpu = np.clip(gpu, 0.0, 1.0)

        mix = mix_table[phase_ids]

        working_set = np.exp(
            ws_log_mean[phase_ids] + ws_offset + rng.normal(size=n_steps) * ws_sigma[phase_ids]
        )
        branch_entropy = np.clip(be_mean[phase_ids] + rng.normal(scale=0.03, size=n_steps), 0.0, 1.0)
        io_rate = np.clip(io_mean[phase_ids] + rng.normal(scale=0.03, size=n_steps), 0.0, 1.0)

        return ActivityTrace(
            cpu_demand=cpu,
            gpu_demand=gpu,
            instr_mix=mix,
            working_set_kib=working_set,
            branch_entropy=branch_entropy,
            io_rate=io_rate,
            phase_id=phase_ids,
            dt=self.dt,
            name=spec.name,
        )

    def generate_batch(
        self, spec: WorkloadSpec, n_windows: int, n_steps: int
    ) -> ActivityBatch:
        """Generate ``n_windows`` independent windows as one tensor.

        Bitwise identical to ``n_windows`` successive :meth:`generate`
        calls (each window re-draws the session personality from the
        same stream, in the same order), but with all per-step
        arithmetic batched over the ``(n_windows, n_steps)`` plane.
        """
        if n_windows < 1:
            raise ValueError(f"n_windows must be >= 1; got {n_windows}.")
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1; got {n_steps}.")
        return _generate_batch(spec, [self.rng] * n_windows, n_steps, self.dt)

    def generate_windows(
        self, spec: WorkloadSpec, n_windows: int, window_steps: int
    ) -> list[ActivityTrace]:
        """Generate ``n_windows`` independent windows of the application.

        Each window re-draws the session personality, modelling separate
        runs / devices contributing signatures for the same app.  Runs
        on the batched path; bitwise identical to
        :meth:`generate_windows_reference`.
        """
        if n_windows < 1:
            raise ValueError(f"n_windows must be >= 1; got {n_windows}.")
        return self.generate_batch(spec, n_windows, window_steps).windows()

    def generate_windows_reference(
        self, spec: WorkloadSpec, n_windows: int, window_steps: int
    ) -> list[ActivityTrace]:
        """Per-window reference for :meth:`generate_windows` (bitwise)."""
        if n_windows < 1:
            raise ValueError(f"n_windows must be >= 1; got {n_windows}.")
        return [self.generate(spec, window_steps) for _ in range(n_windows)]


@dataclass(frozen=True)
class FleetDevice:
    """One simulated device in a monitored fleet.

    Attributes
    ----------
    device_id:
        Unique identifier within the fleet (e.g. ``"dev-0042"``).
    spec:
        The application archetype the device is currently running.
    cohort:
        Population bucket: ``"benign"``, ``"malware"`` or ``"zero_day"``
        — the latter runs apps *outside* the HMD's training catalogue.
    """

    device_id: str
    spec: WorkloadSpec
    cohort: str

    _COHORTS = ("benign", "malware", "zero_day")

    def __post_init__(self) -> None:
        if self.cohort not in self._COHORTS:
            raise ValueError(
                f"cohort must be one of {self._COHORTS}; got {self.cohort!r}."
            )


class FleetPopulation:
    """Draw mixed benign/malware/zero-day device populations.

    Models the deployment the ROADMAP targets: a central monitor serving
    many devices, most of them clean, a small fraction infected with
    known malware families, and a sliver running workloads the HMD has
    never seen (new apps or new malware — the Fig. 6 "unknown" bucket).

    Parameters
    ----------
    benign_specs / malware_specs / zero_day_specs:
        Archetype pools for each cohort (e.g. the
        :mod:`repro.hmd.apps` DVFS catalogues).
    malware_fraction / zero_day_fraction:
        Expected cohort fractions; the remainder is benign.
    random_state:
        Seed / generator for reproducible fleets.
    """

    def __init__(
        self,
        benign_specs,
        malware_specs,
        zero_day_specs=(),
        *,
        malware_fraction: float = 0.05,
        zero_day_fraction: float = 0.02,
        random_state: int | np.random.Generator | None = None,
    ):
        self.benign_specs = tuple(benign_specs)
        self.malware_specs = tuple(malware_specs)
        self.zero_day_specs = tuple(zero_day_specs)
        if not self.benign_specs:
            raise ValueError("At least one benign spec is required.")
        if malware_fraction < 0 or zero_day_fraction < 0:
            raise ValueError("Cohort fractions must be non-negative.")
        if malware_fraction + zero_day_fraction > 1.0:
            raise ValueError("Cohort fractions must sum to <= 1.")
        if malware_fraction > 0 and not self.malware_specs:
            raise ValueError("malware_fraction > 0 needs malware_specs.")
        if zero_day_fraction > 0 and not self.zero_day_specs:
            raise ValueError("zero_day_fraction > 0 needs zero_day_specs.")
        self.malware_fraction = float(malware_fraction)
        self.zero_day_fraction = float(zero_day_fraction)
        self.rng = check_random_state(random_state)

    def sample(self, n_devices: int) -> tuple[FleetDevice, ...]:
        """Draw ``n_devices`` devices with deterministic cohort counts.

        Cohort sizes are ``round(fraction * n)``, bumped to at least
        one whenever the fraction is positive so small test fleets
        still contain every requested cohort — but never at the cost
        of the benign majority: at least one device stays benign, with
        the zero-day cohort clipped first when a tiny fleet cannot fit
        every cohort.
        """
        if n_devices < 1:
            raise ValueError(f"n_devices must be >= 1; got {n_devices}.")
        n_zero = self._cohort_count(self.zero_day_fraction, n_devices)
        n_mal = self._cohort_count(self.malware_fraction, n_devices)
        overflow = n_mal + n_zero - (n_devices - 1)
        if overflow > 0:
            clipped = min(overflow, n_zero)
            n_zero -= clipped
            n_mal -= overflow - clipped
        cohorts = (
            ["benign"] * (n_devices - n_mal - n_zero)
            + ["malware"] * n_mal
            + ["zero_day"] * n_zero
        )
        self.rng.shuffle(cohorts)
        pools = {
            "benign": self.benign_specs,
            "malware": self.malware_specs,
            "zero_day": self.zero_day_specs,
        }
        width = max(4, len(str(n_devices - 1)))
        return tuple(
            FleetDevice(
                device_id=f"dev-{i:0{width}d}",
                spec=pools[cohort][int(self.rng.integers(len(pools[cohort])))],
                cohort=cohort,
            )
            for i, cohort in enumerate(cohorts)
        )

    @staticmethod
    def _cohort_count(fraction: float, n_devices: int) -> int:
        if fraction <= 0:
            return 0
        return max(1, int(round(fraction * n_devices)))


def _root_entropy(random_state: int | np.random.Generator | None) -> int:
    """Root entropy of the per-device seed-derivation contract.

    An integer seed *is* the root entropy (so the contract is a pure
    function of the user-visible seed); ``None`` or a generator derive
    one fresh 63-bit value.
    """
    if isinstance(random_state, (int, np.integer)):
        return int(random_state)
    return int(check_random_state(random_state).integers(2**63))


class FleetTraceGenerator:
    """Interleaved activity-trace streams for a whole device fleet.

    Each device owns two independent RNG streams derived from the root
    seed and its ``device_id`` alone (see
    :func:`repro.sim.batch.device_seed_sequence`): a *trace* stream
    feeding its :class:`WorkloadGenerator` and a *duty* stream deciding
    whether it emits in a round.  A device's output is therefore
    invariant under fleet reordering, fleet subsetting, and how many
    windows are generated per call — the reproducibility contract the
    fleet tests pin.

    Traces are produced by the batched kernel one fleet-tensor per
    round (:meth:`stream_batch`); :meth:`stream` is a thin per-device
    wrapper over it and remains bitwise identical to the per-device
    reference loop (:meth:`stream_reference`).

    Parameters
    ----------
    devices:
        The fleet, e.g. from :meth:`FleetPopulation.sample`.
    dt:
        Seconds per simulation step.
    duty_cycle:
        Probability that a device emits a window in a given round.
    random_state:
        Root seed; per-device streams are spawned from it by device id.
    """

    def __init__(
        self,
        devices,
        *,
        dt: float = 0.05,
        duty_cycle: float = 1.0,
        random_state: int | np.random.Generator | None = None,
    ):
        self.devices = tuple(devices)
        if not self.devices:
            raise ValueError("At least one device is required.")
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError(f"duty_cycle must be in (0, 1]; got {duty_cycle}.")
        self.dt = dt
        self.duty_cycle = duty_cycle
        self.root_entropy = _root_entropy(random_state)
        self._generators = {
            device.device_id: WorkloadGenerator(
                dt=dt,
                random_state=np.random.default_rng(
                    device_seed_sequence(
                        self.root_entropy, device.device_id, stream=TRACE_STREAM
                    )
                ),
            )
            for device in self.devices
        }
        self._duty_rngs = {
            device.device_id: np.random.default_rng(
                device_seed_sequence(
                    self.root_entropy, device.device_id, stream=DUTY_STREAM
                )
            )
            for device in self.devices
        }

    def device_windows(
        self, device: FleetDevice, n_windows: int, window_steps: int
    ) -> list[ActivityTrace]:
        """All windows of one device (independent sessions)."""
        generator = self._generators[device.device_id]
        return generator.generate_windows(device.spec, n_windows, window_steps)

    def _emitting(self) -> list[FleetDevice]:
        """One round of duty decisions (consumes one duty draw per
        device when thinning is active)."""
        if self.duty_cycle >= 1.0:
            return list(self.devices)
        return [
            device
            for device in self.devices
            if self._duty_rngs[device.device_id].random() < self.duty_cycle
        ]

    def _round_batch(self, emitting, window_steps: int) -> ActivityBatch:
        """One fleet tensor: a window per emitting device, device order.

        Devices are grouped by workload spec so each group runs through
        the batched kernel once (with that group's per-device RNG
        streams), then the group rows scatter back into fleet order.
        """
        batch = ActivityBatch.empty(
            len(emitting),
            window_steps,
            self.dt,
            (device.spec.name for device in emitting),
        )
        groups: dict[int, list[int]] = {}
        for pos, device in enumerate(emitting):
            groups.setdefault(id(device.spec), []).append(pos)
        for positions in groups.values():
            spec = emitting[positions[0]].spec
            rngs = [self._generators[emitting[p].device_id].rng for p in positions]
            sub = _generate_batch(spec, rngs, window_steps, self.dt)
            batch.scatter(np.asarray(positions), sub)
        return batch

    def stream_batch(self, n_rounds: int, window_steps: int):
        """Yield ``(devices, batch)`` — one whole-fleet tensor per round.

        ``devices`` is the tuple of devices that emitted this round (in
        fleet order) and ``batch`` an :class:`ActivityBatch` whose row
        ``i`` is ``devices[i]``'s window.  The rows feed the substrate
        batch simulators — and, featurised, land in
        ``FleetMonitor.submit_many`` / ``ShardedFleetMonitor`` as one
        block per device with no per-window Python work.
        """
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1; got {n_rounds}.")
        for _ in range(n_rounds):
            emitting = self._emitting()
            if not emitting:
                continue
            yield tuple(emitting), self._round_batch(emitting, window_steps)

    def stream(self, n_rounds: int, window_steps: int):
        """Yield ``(device, trace)`` events, round-robin over the fleet.

        Each round visits every device once; a device emits a window
        with probability ``duty_cycle``.  This is the arrival process
        the fleet monitor multiplexes into batches.  Implemented as a
        thin per-device wrapper over :meth:`stream_batch`; bitwise
        identical to :meth:`stream_reference`.
        """
        for devices, batch in self.stream_batch(n_rounds, window_steps):
            for i, device in enumerate(devices):
                yield device, batch.window(i)

    def stream_reference(self, n_rounds: int, window_steps: int):
        """Per-device reference loop for :meth:`stream` (bitwise oracle)."""
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1; got {n_rounds}.")
        for _ in range(n_rounds):
            for device in self._emitting():
                generator = self._generators[device.device_id]
                yield device, generator.generate(device.spec, window_steps)


def scaled_phase(phase: WorkloadPhase, **overrides) -> WorkloadPhase:
    """Convenience helper: copy ``phase`` with field overrides."""
    return replace(phase, **overrides)


def blend_specs(
    malware: WorkloadSpec,
    benign: WorkloadSpec,
    stealth: float,
    *,
    name: str | None = None,
) -> WorkloadSpec:
    """Build a mimicry variant: malware interleaving benign-like phases.

    Models the evasion strategy studied by the adversarial-HMD
    literature (Khasawneh et al. ICCAD'18; Kuruvila et al.): the
    malicious payload still has to run, but the binary pads its
    schedule with phases imitating a benign application.

    Parameters
    ----------
    malware / benign:
        Source archetypes (labels 1 and 0 respectively).
    stealth:
        Fraction of time spent in the mimicked benign phases, in
        [0, 1).  0 = plain malware; 0.9 = payload squeezed into 10% of
        the schedule.
    name:
        Optional name for the blended spec.

    Returns
    -------
    A new spec labelled **malware** (the payload is still there) whose
    phase machine spends ``stealth`` of its time in the benign phases.
    """
    if malware.label != 1 or benign.label != 0:
        raise ValueError("blend_specs expects (malware, benign) source specs.")
    if not 0.0 <= stealth < 1.0:
        raise ValueError(f"stealth must be in [0, 1); got {stealth}.")

    phases = malware.phases + benign.phases
    n_mal = len(malware.phases)
    n_ben = len(benign.phases)
    mal_matrix = malware.transition_matrix()
    ben_matrix = benign.transition_matrix()

    n = n_mal + n_ben
    matrix = np.zeros((n, n))
    # Within-group dynamics preserved; cross-group mass set by stealth.
    matrix[:n_mal, :n_mal] = (1.0 - stealth) * mal_matrix
    matrix[:n_mal, n_mal:] = stealth / n_ben
    matrix[n_mal:, n_mal:] = stealth * ben_matrix
    matrix[n_mal:, :n_mal] = (1.0 - stealth) / n_mal
    matrix /= matrix.sum(axis=1, keepdims=True)

    return WorkloadSpec(
        name=name if name is not None else f"{malware.name}_mimic_{benign.name}",
        label=1,
        family=f"mimicry_{malware.family}",
        phases=phases,
        transitions=tuple(tuple(row) for row in matrix),
        app_jitter=malware.app_jitter,
    )
