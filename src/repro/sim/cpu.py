"""CPU microarchitecture counter substrate (S8).

The HPC-based HMD of Zhou et al. samples hardware performance counters
(instructions, branch misses, cache misses, ...) at fixed intervals
while workloads run.  This module reproduces that signal with an
analytic microarchitecture model:

* **pipeline**: cycles follow utilisation × frequency; instructions
  follow cycles / CPI, where CPI accumulates stall penalties;
* **branch predictor**: per-branch misprediction probability grows with
  the workload's branch-outcome entropy;
* **cache hierarchy**: L1/L2/LLC miss ratios follow a saturating
  working-set curve (a smooth stand-in for stack-distance profiles);
* **TLB / OS events**: TLB misses track working-set reach; page faults
  and context switches track I/O intensity and multiprogramming.

Measurement realism — counter multiplexing noise, background-process
interference and per-interval jitter — is modelled explicitly because it
is the mechanism behind the paper's central HPC finding: *benign and
malware workloads overlap in counter space* (Fig. 8b), making the HPC
dataset high in data (aleatoric) uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.validation import check_random_state
from .batch import ActivityBatch, HpcBatch
from .trace import ActivityTrace, HpcTrace

__all__ = ["CpuConfig", "HpcSimulator", "HPC_COUNTERS", "DEFAULT_CPU"]

# Counter columns emitted by the simulator, matching the style of the
# `perf stat` event list used by Zhou et al.
HPC_COUNTERS = (
    "instructions",
    "cycles",
    "branch_instructions",
    "branch_misses",
    "l1d_accesses",
    "l1d_misses",
    "l2_misses",
    "llc_misses",
    "dtlb_misses",
    "itlb_misses",
    "page_faults",
    "context_switches",
    "loads",
    "stores",
    "stalled_cycles_frontend",
    "stalled_cycles_backend",
)


@dataclass(frozen=True)
class CpuConfig:
    """Parameters of the analytic CPU model.

    Sizes are in KiB; penalties in cycles; ``freq_ghz`` is the fixed
    core frequency of the measurement platform (the HPC testbed pins the
    governor to ``performance``, unlike the DVFS substrate).
    """

    freq_ghz: float = 3.0
    base_cpi: float = 0.45
    l1d_size_kib: float = 32.0
    l2_size_kib: float = 512.0
    llc_size_kib: float = 8192.0
    l1_penalty: float = 10.0
    l2_penalty: float = 35.0
    llc_penalty: float = 180.0
    branch_penalty: float = 16.0
    branch_mispredict_floor: float = 0.002
    branch_mispredict_slope: float = 0.08
    dtlb_reach_kib: float = 2048.0
    measurement_noise: float = 0.18
    interference_scale: float = 0.25

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError(f"freq_ghz must be positive; got {self.freq_ghz}.")
        if self.base_cpi <= 0:
            raise ValueError(f"base_cpi must be positive; got {self.base_cpi}.")
        if not (0 < self.l1d_size_kib < self.l2_size_kib < self.llc_size_kib):
            raise ValueError("Cache sizes must be ascending and positive.")


DEFAULT_CPU = CpuConfig()


def _miss_ratio(working_set_kib: np.ndarray, cache_size_kib: float, *, sharpness: float = 1.4) -> np.ndarray:
    """Saturating miss-ratio curve of working set vs. cache capacity.

    Behaves like ``(ws / (ws + size))^sharpness``: ≈0 while the working
    set fits, rising smoothly toward 1 once it spills — a standard
    analytic approximation of stack-distance cache behaviour.
    """
    ratio = working_set_kib / (working_set_kib + cache_size_kib)
    return ratio**sharpness


class HpcSimulator:
    """Maps an :class:`ActivityTrace` to per-interval counter samples.

    Parameters
    ----------
    config:
        CPU model parameters.
    dt:
        Counter sampling interval in seconds (distinct from the activity
        trace step; the activity trace is resampled onto this grid).
    random_state:
        Seed / generator for measurement noise.
    """

    def __init__(
        self,
        config: CpuConfig = DEFAULT_CPU,
        *,
        dt: float = 0.1,
        random_state: int | np.random.Generator | None = None,
    ):
        if dt <= 0:
            raise ValueError(f"dt must be positive; got {dt}.")
        self.config = config
        self.dt = dt
        self.rng = check_random_state(random_state)

    def _resample(self, series: np.ndarray, n_intervals: int, steps_per_interval: float) -> np.ndarray:
        """Average an activity series onto the counter sampling grid."""
        idx = (np.arange(n_intervals + 1) * steps_per_interval).astype(int)
        idx = np.minimum(idx, len(series))
        sums = np.concatenate([[0.0], np.cumsum(series, dtype=float)])
        widths = np.maximum(idx[1:] - idx[:-1], 1)
        return (sums[idx[1:]] - sums[idx[:-1]]) / widths

    def run(self, activity: ActivityTrace) -> HpcTrace:
        """Simulate counter sampling for the full activity trace."""
        cfg = self.config
        rng = self.rng
        steps_per_interval = self.dt / activity.dt
        n_intervals = max(int(round(activity.n_steps * activity.dt / self.dt)), 1)

        util = self._resample(activity.cpu_demand, n_intervals, steps_per_interval)
        ws = self._resample(activity.working_set_kib, n_intervals, steps_per_interval)
        be = self._resample(activity.branch_entropy, n_intervals, steps_per_interval)
        io = self._resample(activity.io_rate, n_intervals, steps_per_interval)
        mix = np.stack(
            [
                self._resample(activity.instr_mix[:, k], n_intervals, steps_per_interval)
                for k in range(activity.instr_mix.shape[1])
            ],
            axis=1,
        )  # columns: alu, branch, load, store

        branch_frac = mix[:, 1]
        load_frac = mix[:, 2]
        store_frac = mix[:, 3]

        # --- microarchitectural rates -----------------------------------
        mispredict_rate = np.clip(
            cfg.branch_mispredict_floor + cfg.branch_mispredict_slope * be**1.5,
            0.0,
            0.5,
        )
        l1_miss_ratio = _miss_ratio(ws, cfg.l1d_size_kib)
        l2_miss_ratio = _miss_ratio(ws, cfg.l2_size_kib)
        llc_miss_ratio = _miss_ratio(ws, cfg.llc_size_kib, sharpness=1.8)
        dtlb_miss_ratio = 0.002 + 0.03 * _miss_ratio(ws, cfg.dtlb_reach_kib)

        mem_frac = load_frac + store_frac
        # Per-instruction stall contributions compose the CPI.
        branch_stalls = branch_frac * mispredict_rate * cfg.branch_penalty
        l1_stalls = mem_frac * l1_miss_ratio * (1.0 - l2_miss_ratio) * cfg.l1_penalty
        l2_stalls = mem_frac * l1_miss_ratio * l2_miss_ratio * (1.0 - llc_miss_ratio) * cfg.l2_penalty
        llc_stalls = mem_frac * l1_miss_ratio * l2_miss_ratio * llc_miss_ratio * cfg.llc_penalty
        cpi = cfg.base_cpi + branch_stalls + l1_stalls + l2_stalls + llc_stalls

        # --- absolute counts per interval -------------------------------
        cycles = util * cfg.freq_ghz * 1e9 * self.dt
        instructions = cycles / cpi

        branch_instructions = instructions * branch_frac
        branch_misses = branch_instructions * mispredict_rate
        loads = instructions * load_frac
        stores = instructions * store_frac
        l1d_accesses = loads + stores
        l1d_misses = l1d_accesses * l1_miss_ratio
        l2_misses = l1d_misses * l2_miss_ratio
        llc_misses = l2_misses * llc_miss_ratio
        dtlb_misses = l1d_accesses * dtlb_miss_ratio
        itlb_misses = instructions * 2e-5 * (1.0 + 4.0 * io)
        page_faults = (40.0 + 1500.0 * io) * self.dt * (0.5 + util)
        context_switches = (80.0 + 900.0 * io) * self.dt * (0.5 + 0.8 * util)
        stalled_frontend = cycles * np.clip(
            0.05 + branch_stalls / np.maximum(cpi, 1e-9), 0.0, 0.9
        )
        stalled_backend = cycles * np.clip(
            0.05 + (l1_stalls + l2_stalls + llc_stalls) / np.maximum(cpi, 1e-9),
            0.0,
            0.9,
        )

        counters = np.column_stack(
            [
                instructions,
                cycles,
                branch_instructions,
                branch_misses,
                l1d_accesses,
                l1d_misses,
                l2_misses,
                llc_misses,
                dtlb_misses,
                itlb_misses,
                page_faults,
                context_switches,
                loads,
                stores,
                stalled_frontend,
                stalled_backend,
            ]
        )

        # --- measurement realism -----------------------------------------
        # Counter multiplexing and background processes add heavy noise;
        # interference is correlated across counters within an interval.
        interference = 1.0 + cfg.interference_scale * np.abs(
            rng.normal(size=(n_intervals, 1))
        )
        multiplexing = rng.lognormal(
            mean=0.0, sigma=cfg.measurement_noise, size=counters.shape
        )
        counters = counters * interference * multiplexing
        np.maximum(counters, 0.0, out=counters)

        return HpcTrace(
            counters=counters,
            counter_names=HPC_COUNTERS,
            dt=self.dt,
            name=activity.name,
        )

    def run_reference(self, activity: ActivityTrace) -> HpcTrace:
        """The retained per-trace reference path (alias for :meth:`run`).

        :meth:`run_batch` is fuzz-gated bitwise against this method.
        """
        return self.run(activity)

    def _resample_batch(
        self, series: np.ndarray, n_intervals: int, steps_per_interval: float
    ) -> np.ndarray:
        """Batched :meth:`_resample` over the leading window axis.

        ``series`` is ``(n_windows, n_steps)`` or ``(n_windows,
        n_steps, k)``; the cumulative sum runs along the step axis, so
        every window reproduces the 1-d prefix-sum order bitwise.
        """
        n_steps = series.shape[1]
        idx = (np.arange(n_intervals + 1) * steps_per_interval).astype(int)
        idx = np.minimum(idx, n_steps)
        zeros = np.zeros((series.shape[0], 1) + series.shape[2:])
        sums = np.concatenate(
            [zeros, np.cumsum(series, axis=1, dtype=float)], axis=1
        )
        widths = np.maximum(idx[1:] - idx[:-1], 1)
        if series.ndim == 3:
            widths = widths[:, None]
        return (sums[:, idx[1:]] - sums[:, idx[:-1]]) / widths

    def run_batch(self, batch: ActivityBatch) -> HpcBatch:
        """Whole-tensor counter synthesis for a stack of activity windows.

        Bitwise identical to calling :meth:`run` on ``batch.window(i)``
        for ``i = 0, 1, ...`` with the same generator: the measurement
        noise is drawn window-by-window in the reference order, while
        the resampling and microarchitectural rate math run once over
        the full ``(n_windows, n_intervals)`` tensor — every operation
        is elementwise (or a per-window prefix sum), so no reduction
        order changes.
        """
        cfg = self.config
        rng = self.rng
        n_windows, n_steps = batch.n_windows, batch.n_steps
        steps_per_interval = self.dt / batch.dt
        n_intervals = max(int(round(n_steps * batch.dt / self.dt)), 1)

        util = self._resample_batch(batch.cpu_demand, n_intervals, steps_per_interval)
        ws = self._resample_batch(batch.working_set_kib, n_intervals, steps_per_interval)
        be = self._resample_batch(batch.branch_entropy, n_intervals, steps_per_interval)
        io = self._resample_batch(batch.io_rate, n_intervals, steps_per_interval)
        mix = self._resample_batch(batch.instr_mix, n_intervals, steps_per_interval)

        branch_frac = mix[..., 1]
        load_frac = mix[..., 2]
        store_frac = mix[..., 3]

        # --- microarchitectural rates (identical formulas, leading
        # window axis) ----------------------------------------------------
        mispredict_rate = np.clip(
            cfg.branch_mispredict_floor + cfg.branch_mispredict_slope * be**1.5,
            0.0,
            0.5,
        )
        l1_miss_ratio = _miss_ratio(ws, cfg.l1d_size_kib)
        l2_miss_ratio = _miss_ratio(ws, cfg.l2_size_kib)
        llc_miss_ratio = _miss_ratio(ws, cfg.llc_size_kib, sharpness=1.8)
        dtlb_miss_ratio = 0.002 + 0.03 * _miss_ratio(ws, cfg.dtlb_reach_kib)

        mem_frac = load_frac + store_frac
        branch_stalls = branch_frac * mispredict_rate * cfg.branch_penalty
        l1_stalls = mem_frac * l1_miss_ratio * (1.0 - l2_miss_ratio) * cfg.l1_penalty
        l2_stalls = mem_frac * l1_miss_ratio * l2_miss_ratio * (1.0 - llc_miss_ratio) * cfg.l2_penalty
        llc_stalls = mem_frac * l1_miss_ratio * l2_miss_ratio * llc_miss_ratio * cfg.llc_penalty
        cpi = cfg.base_cpi + branch_stalls + l1_stalls + l2_stalls + llc_stalls

        # --- absolute counts per interval -------------------------------
        cycles = util * cfg.freq_ghz * 1e9 * self.dt
        instructions = cycles / cpi

        branch_instructions = instructions * branch_frac
        branch_misses = branch_instructions * mispredict_rate
        loads = instructions * load_frac
        stores = instructions * store_frac
        l1d_accesses = loads + stores
        l1d_misses = l1d_accesses * l1_miss_ratio
        l2_misses = l1d_misses * l2_miss_ratio
        llc_misses = l2_misses * llc_miss_ratio
        dtlb_misses = l1d_accesses * dtlb_miss_ratio
        itlb_misses = instructions * 2e-5 * (1.0 + 4.0 * io)
        page_faults = (40.0 + 1500.0 * io) * self.dt * (0.5 + util)
        context_switches = (80.0 + 900.0 * io) * self.dt * (0.5 + 0.8 * util)
        stalled_frontend = cycles * np.clip(
            0.05 + branch_stalls / np.maximum(cpi, 1e-9), 0.0, 0.9
        )
        stalled_backend = cycles * np.clip(
            0.05 + (l1_stalls + l2_stalls + llc_stalls) / np.maximum(cpi, 1e-9),
            0.0,
            0.9,
        )

        counters = np.stack(
            [
                instructions,
                cycles,
                branch_instructions,
                branch_misses,
                l1d_accesses,
                l1d_misses,
                l2_misses,
                llc_misses,
                dtlb_misses,
                itlb_misses,
                page_faults,
                context_switches,
                loads,
                stores,
                stalled_frontend,
                stalled_backend,
            ],
            axis=2,
        )

        # --- measurement realism: one (interference, multiplexing) pair
        # per window, drawn in window order (reference RNG consumption).
        interference = np.empty((n_windows, n_intervals, 1))
        multiplexing = np.empty((n_windows, n_intervals, len(HPC_COUNTERS)))
        for w in range(n_windows):
            interference[w] = 1.0 + cfg.interference_scale * np.abs(
                rng.normal(size=(n_intervals, 1))
            )
            multiplexing[w] = rng.lognormal(
                mean=0.0, sigma=cfg.measurement_noise, size=(n_intervals, len(HPC_COUNTERS))
            )
        counters = counters * interference * multiplexing
        np.maximum(counters, 0.0, out=counters)

        return HpcBatch(
            counters=counters,
            counter_names=HPC_COUNTERS,
            dt=self.dt,
            names=batch.names,
        )
