"""Low-overhead fleet metrics: counters, gauges, latency histograms.

The telemetry plane the ROADMAP's "operable system" needs, kept cheap
enough to leave on in production:

* instruments are plain Python objects bound **once** at component
  construction — the hot path pays one attribute call per *batch*
  (never per window), and a disabled registry hands out shared no-op
  instruments so uninstrumented deployments pay a no-op method call
  and nothing else;
* histograms are fixed-bucket numpy count arrays updated lock-free
  (``np.add.at`` for bulk observations); only instrument *creation*
  takes a lock;
* :meth:`MetricsRegistry.snapshot` is plain data, and
  :func:`merge_snapshots` is **associative** — per-shard and per-worker
  registries fold into one fleet view in any grouping, the same
  contract :func:`~repro.fleet.report.merge_reports` relies on.

Exposition: :func:`render_prometheus` (text format),
:func:`summarize_snapshot` (terminal tables) and :class:`JsonlExporter`
(periodic JSONL append).  No dependencies beyond numpy.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

from ..formatting import format_table

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "default_registry",
    "histogram_percentile",
    "merge_snapshots",
    "render_prometheus",
    "resolve_registry",
    "summarize_snapshot",
]

# Latency buckets: log-ish upper bounds from 10 µs to 10 s, wide enough
# for a single verdict pass and a full worker block round-trip alike.
DEFAULT_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing count (windows admitted, restarts, ...)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, n: int = 1) -> None:
        self._value += n

    @property
    def value(self):
        return self._value


class Gauge:
    """Point-in-time level (queue depth, arena occupancy)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value) -> None:
        self._value = value

    @property
    def value(self):
        return self._value


class Histogram:
    """Fixed-bucket distribution with lock-free numpy bucket counts.

    ``buckets`` are inclusive upper bounds; one overflow bucket catches
    everything beyond the last bound.  :meth:`observe` is a single
    ``searchsorted`` + increment, :meth:`observe_many` folds a whole
    array in one ``np.add.at`` pass.
    """

    __slots__ = ("name", "help", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self._bounds = np.asarray(buckets, dtype=float)
        if len(self._bounds) == 0 or np.any(np.diff(self._bounds) <= 0):
            raise ValueError("buckets must be strictly increasing and non-empty.")
        self._counts = np.zeros(len(self._bounds) + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[np.searchsorted(self._bounds, value, side="left")] += 1
        self._sum += float(value)
        self._count += 1

    def observe_many(self, values) -> None:
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        np.add.at(
            self._counts, np.searchsorted(self._bounds, values, side="left"), 1
        )
        self._sum += float(values.sum())
        self._count += len(values)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Bucket-resolution percentile estimate (upper-bound convention)."""
        return histogram_percentile(
            {
                "buckets": self._bounds.tolist(),
                "counts": self._counts.tolist(),
                "sum": self._sum,
                "count": self._count,
            },
            q,
        )


def histogram_percentile(hist: dict, q: float) -> float:
    """Percentile estimate from a histogram *snapshot* dict.

    Returns the upper bound of the bucket containing the ``q``-th
    percentile observation (the Prometheus convention, biased at most
    one bucket high); the overflow bucket reports the last bound.
    Empty histograms report 0.0.
    """
    counts = np.asarray(hist["counts"], dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return 0.0
    rank = max(1, int(np.ceil(q / 100.0 * total)))
    bucket = int(np.searchsorted(np.cumsum(counts), rank, side="left"))
    bounds = hist["buckets"]
    return float(bounds[min(bucket, len(bounds) - 1)])


class _NullCounter:
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    help = ""
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    help = ""
    value = 0.0

    def set(self, value) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    help = ""
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instrument namespace with get-or-create semantics.

    One process-global :func:`default_registry` exists for ad-hoc use;
    fleet monitors create (or are handed) their own instance so shard
    and worker registries stay independent and merge explicitly.  A
    registry built with ``enabled=False`` returns the shared no-op
    instruments from every factory and snapshots to ``{}`` — the
    zero-cost off switch.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = bool(enabled)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, table: dict, name: str, factory):
        with self._lock:
            instrument = table.get(name)
            if instrument is None:
                for other in (self._counters, self._gauges, self._histograms):
                    if other is not table and name in other:
                        raise ValueError(
                            f"metric {name!r} already registered as a "
                            "different instrument kind."
                        )
                instrument = table[name] = factory()
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get_or_create(
            self._counters, name, lambda: Counter(name, help)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get_or_create(self._gauges, name, lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get_or_create(
            self._histograms, name, lambda: Histogram(name, help, buckets)
        )

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (``{}`` when disabled)."""
        if not self.enabled:
            return {}
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {name: g.value for name, g in self._gauges.items()},
                "histograms": {
                    name: {
                        "buckets": h._bounds.tolist(),
                        "counts": h._counts.tolist(),
                        "sum": h._sum,
                        "count": h._count,
                    }
                    for name, h in self._histograms.items()
                },
            }


NULL_REGISTRY = MetricsRegistry(enabled=False)

_DEFAULT_REGISTRY: MetricsRegistry | None = None
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The lazily created process-global registry."""
    global _DEFAULT_REGISTRY
    with _DEFAULT_LOCK:
        if _DEFAULT_REGISTRY is None:
            _DEFAULT_REGISTRY = MetricsRegistry()
        return _DEFAULT_REGISTRY


def resolve_registry(telemetry) -> MetricsRegistry:
    """Normalise a monitor's ``telemetry=`` argument to a registry.

    ``None``/``False`` → the shared no-op registry, ``True`` → a fresh
    per-monitor registry, a :class:`MetricsRegistry` → itself.
    """
    if telemetry is None or telemetry is False:
        return NULL_REGISTRY
    if telemetry is True:
        return MetricsRegistry()
    return telemetry


def merge_snapshots(snapshots) -> dict:
    """Fold registry snapshots into one (associative, order-insensitive).

    Counters and gauges sum — a summed gauge is the fleet-wide level
    (e.g. total queued windows across shard queues).  Histograms sum
    bucket counts element-wise and require identical bucket bounds.
    Empty snapshots (disabled registries) merge as identities, which is
    what lets :func:`~repro.fleet.report.merge_reports` tolerate a mix
    of reporting and non-reporting shards.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            merged["gauges"][name] = merged["gauges"].get(name, 0) + value
        for name, hist in snapshot.get("histograms", {}).items():
            into = merged["histograms"].get(name)
            if into is None:
                merged["histograms"][name] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "sum": float(hist["sum"]),
                    "count": int(hist["count"]),
                }
                continue
            if list(hist["buckets"]) != into["buckets"]:
                raise ValueError(
                    f"histogram {name!r} has mismatched bucket bounds; "
                    "snapshots must come from identically configured "
                    "instruments."
                )
            into["counts"] = [
                a + b for a, b in zip(into["counts"], hist["counts"])
            ]
            into["sum"] += float(hist["sum"])
            into["count"] += int(hist["count"])
    return merged


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition of one snapshot."""
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(f'{name}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += hist["counts"][-1] if len(hist["counts"]) > len(
            hist["buckets"]
        ) else 0
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {hist['sum']}")
        lines.append(f"{name}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def summarize_snapshot(snapshot: dict) -> str:
    """Terminal-friendly tables of one snapshot (``--telemetry`` output)."""
    if not snapshot:
        return "telemetry disabled (no snapshot)"
    parts: list[str] = []
    scalars = [
        [name, value]
        for name, value in sorted(snapshot.get("counters", {}).items())
    ] + [
        [name, value]
        for name, value in sorted(snapshot.get("gauges", {}).items())
    ]
    if scalars:
        parts.append(format_table(["metric", "value"], scalars))
    hist_rows = [
        [
            name,
            hist["count"],
            f"{histogram_percentile(hist, 50) * 1e3:.2f}",
            f"{histogram_percentile(hist, 95) * 1e3:.2f}",
            f"{histogram_percentile(hist, 99) * 1e3:.2f}",
        ]
        for name, hist in sorted(snapshot.get("histograms", {}).items())
    ]
    if hist_rows:
        parts.append(
            format_table(
                ["histogram", "count", "p50_ms", "p95_ms", "p99_ms"], hist_rows
            )
        )
    return "\n".join(parts) if parts else "no instruments registered"


class JsonlExporter:
    """Append registry snapshots to a JSONL file, optionally on a cadence.

    :meth:`export` writes one line now; :meth:`maybe_export` writes only
    when ``interval`` seconds have passed since the last write — call it
    from the drain loop and exports pace themselves.
    """

    def __init__(
        self,
        path,
        registry: MetricsRegistry | None = None,
        *,
        interval: float = 5.0,
    ):
        self.path = path
        self.registry = registry
        self.interval = float(interval)
        self._last = None
        self._file = None
        self.n_exports = 0

    def export(self, snapshot: dict | None = None) -> dict:
        if snapshot is None:
            if self.registry is None:
                raise ValueError("no snapshot given and no registry bound.")
            snapshot = self.registry.snapshot()
        record = {"t": time.time(), "telemetry": snapshot}
        if self._file is None:
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()
        self._last = time.monotonic()
        self.n_exports += 1
        return record

    def maybe_export(self) -> bool:
        now = time.monotonic()
        if self._last is not None and now - self._last < self.interval:
            return False
        self.export()
        return True

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
