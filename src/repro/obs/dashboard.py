"""Live terminal fleet dashboard: message-driven state, pure rendering.

Follows the gridworks-scada admin TUI shape (SNIPPETS.md snippet 3): a
widget owns a state table, *messages* carry every state change, and the
view is re-rendered from state — never mutated in place.  Here the
"widget" is :class:`Dashboard`, the messages are the small frozen
dataclasses below (posted by whatever drives the monitor: the
``dashboard`` experiment runner, a test, a service loop), and the view
is :meth:`Dashboard.render` — a **pure function to a string**, so
frames are testable headless and the live loop is just
``print(ansi_frame(dashboard.render()))`` on a cadence.

No curses dependency: plain ANSI clear-and-home redraws, degrading to
sequential frame prints on dumb terminals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..formatting import format_table
from .metrics import histogram_percentile
from .tracing import STAGES

__all__ = [
    "Dashboard",
    "MetricsUpdate",
    "ReportUpdate",
    "ShardSample",
    "ShardsUpdate",
    "TraceUpdate",
    "ansi_frame",
    "bar",
    "sparkline",
]

SPARK_CHARS = "▁▂▃▄▅▆▇█"
ANSI_CLEAR = "\x1b[2J\x1b[H"


def sparkline(values, width: int = 16) -> str:
    """Render a value series as a fixed-height unicode sparkline."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(vals)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[int(round((v - lo) / span * top))] for v in vals
    )


def bar(value: float, maximum: float, width: int = 10) -> str:
    """Render a level as a fixed-width block bar."""
    if maximum <= 0:
        filled = 0
    else:
        filled = int(round(min(max(value / maximum, 0.0), 1.0) * width))
    return "[" + "█" * filled + "░" * (width - filled) + "]"


def ansi_frame(text: str) -> str:
    """Wrap a frame for in-place terminal redraw (clear + home)."""
    return ANSI_CLEAR + text


# -- messages ----------------------------------------------------------


@dataclass(frozen=True)
class ShardSample:
    """One shard's health/throughput row at a sampling instant."""

    shard_id: int
    health: str
    n_seen: int
    n_flagged: int
    pending: int
    restarts: int = 0


@dataclass(frozen=True)
class ShardsUpdate:
    """Per-shard samples, stamped so the dashboard can derive rates."""

    rows: tuple
    ts: float


@dataclass(frozen=True)
class ReportUpdate:
    """A fresh :class:`~repro.fleet.report.FleetReport` snapshot."""

    report: object
    ts: float


@dataclass(frozen=True)
class MetricsUpdate:
    """A registry snapshot (merged fleet view)."""

    snapshot: dict


@dataclass(frozen=True)
class TraceUpdate:
    """A :meth:`~repro.obs.tracing.TraceContext.summary` dict."""

    summary: dict


# -- the dashboard -----------------------------------------------------


@dataclass
class _DeviceTrend:
    history: deque = field(default_factory=lambda: deque(maxlen=32))


class Dashboard:
    """Fleet state accumulated from messages, rendered on demand."""

    def __init__(self, *, history: int = 32):
        self.history = int(history)
        self.report = None
        self.snapshot: dict = {}
        self.trace: dict | None = None
        self.shards: dict[int, ShardSample] = {}
        self._shard_marks: dict[int, deque] = {}
        self._device_trends: dict[str, deque] = {}
        self.n_frames = 0
        self.n_messages = 0

    # -- message intake ------------------------------------------------

    def post(self, message) -> None:
        """Fold one state-change message into the dashboard."""
        self.n_messages += 1
        if isinstance(message, ShardsUpdate):
            for row in message.rows:
                self.shards[row.shard_id] = row
                marks = self._shard_marks.setdefault(
                    row.shard_id, deque(maxlen=self.history)
                )
                marks.append((message.ts, row.n_seen))
        elif isinstance(message, ReportUpdate):
            self.report = message.report
            for device in message.report.devices:
                trend = self._device_trends.setdefault(
                    device.device_id, deque(maxlen=self.history)
                )
                trend.append(float(device.rejection_rate))
        elif isinstance(message, MetricsUpdate):
            self.snapshot = message.snapshot
        elif isinstance(message, TraceUpdate):
            self.trace = message.summary
        else:
            raise TypeError(f"unknown dashboard message: {message!r}")

    def shard_wps(self, shard_id: int) -> float:
        """Windows/sec this shard verdicted over its sample history."""
        marks = self._shard_marks.get(shard_id)
        if not marks or len(marks) < 2:
            return 0.0
        (t0, n0), (t1, n1) = marks[0], marks[-1]
        return (n1 - n0) / (t1 - t0) if t1 > t0 else 0.0

    # -- rendering -----------------------------------------------------

    def render(self, *, max_devices: int = 8, spark_width: int = 16) -> str:
        """One full frame as a plain string (headless-safe, no TTY)."""
        self.n_frames += 1
        sections = [self._header()]
        if self.shards:
            sections.append(self._shard_table())
        if self.report is not None and self.report.devices:
            sections.append(self._device_table(max_devices, spark_width))
        if self.trace:
            sections.append(self._latency_table())
        counters = self._counters_line()
        if counters:
            sections.append(counters)
        return "\n\n".join(sections)

    def _header(self) -> str:
        report = self.report
        if report is None:
            return f"fleet dashboard — frame {self.n_frames} · waiting for traffic"
        return (
            f"fleet dashboard — frame {self.n_frames} · "
            f"{report.n_devices} devices · {report.n_seen} seen · "
            f"{report.n_flagged} flagged ({report.rejection_rate:.1%}) · "
            f"{report.n_malware_alerts} alerts · "
            f"pending {report.n_pending} · shed {report.n_shed}"
        )

    def _shard_table(self) -> str:
        rows = [self.shards[k] for k in sorted(self.shards)]
        depth_scale = max((row.pending for row in rows), default=0)
        return format_table(
            ["shard", "health", "seen", "flagged", "pending", "wps",
             "restarts", "queue"],
            [
                [
                    row.shard_id,
                    row.health,
                    row.n_seen,
                    row.n_flagged,
                    row.pending,
                    f"{self.shard_wps(row.shard_id):.0f}",
                    row.restarts,
                    bar(row.pending, depth_scale),
                ]
                for row in rows
            ],
        )

    def _device_table(self, max_devices: int, spark_width: int) -> str:
        ranked = sorted(
            self.report.devices,
            key=lambda d: (-d.alert_rate, -d.rejection_rate, -d.recent_entropy),
        )[:max_devices]
        table = format_table(
            ["device", "cohort", "seen", "alerts", "flag%", "flag trend"],
            [
                [
                    d.device_id,
                    d.cohort,
                    d.n_seen,
                    d.n_malware_alerts,
                    f"{d.rejection_rate:.1%}",
                    sparkline(
                        self._device_trends.get(d.device_id, ()), spark_width
                    ),
                ]
                for d in ranked
            ],
        )
        hidden = self.report.n_devices - len(ranked)
        if hidden > 0:
            table += f"\n({hidden} more devices not shown)"
        return table

    def _latency_table(self) -> str:
        rows = [
            [
                name,
                f"{stats['p50'] * 1e3:.2f}",
                f"{stats['p95'] * 1e3:.2f}",
                f"{stats['p99'] * 1e3:.2f}",
                stats["n"],
            ]
            for name, stats in self.trace.get("transitions", {}).items()
        ]
        total = self.trace.get("total")
        if total:
            rows.append(
                [
                    "total",
                    f"{total['p50'] * 1e3:.2f}",
                    f"{total['p95'] * 1e3:.2f}",
                    f"{total['p99'] * 1e3:.2f}",
                    total["n"],
                ]
            )
        title = (
            f"stage latencies — 1/{self.trace.get('rate', '?')} sampled, "
            f"{self.trace.get('n_completed', 0)} spans, stages: "
            + "→".join(self.trace.get("stages", []))
        )
        if not rows:
            return title + "\n(no completed spans yet)"
        return title + "\n" + format_table(
            ["transition", "p50_ms", "p95_ms", "p99_ms", "n"], rows
        )

    def _counters_line(self) -> str:
        counters = self.snapshot.get("counters", {}) if self.snapshot else {}
        if not counters:
            return ""
        shown = [
            ("admitted", "fleet_windows_admitted_total"),
            ("shed", "fleet_windows_shed_total"),
            ("drained", "fleet_windows_drained_total"),
            ("flagged", "fleet_windows_flagged_total"),
            ("restarts", "fleet_worker_restarts_total"),
            ("failovers", "fleet_worker_failovers_total"),
            ("quarantined", "fleet_windows_quarantined_total"),
            ("retrains", "fleet_retrain_refits_total"),
        ]
        parts = [
            f"{label}={counters[name]}"
            for label, name in shown
            if name in counters
        ]
        hists = self.snapshot.get("histograms", {})
        verdict = hists.get("fleet_verdict_seconds")
        if verdict:
            parts.append(
                f"verdict_p50={histogram_percentile(verdict, 50) * 1e3:.2f}ms"
            )
        return "counters: " + "  ".join(parts) if parts else ""
