"""repro.obs — the fleet's telemetry plane.

Three pieces, all dependency-free (numpy + stdlib):

* :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms in
  a :class:`MetricsRegistry`, with an associative snapshot merge,
  Prometheus text rendering and JSONL export;
* :mod:`repro.obs.tracing` — deterministic sampled window-lifecycle
  spans (ingest→queue→ship→verdict→scatter) with per-transition
  duration percentiles;
* :mod:`repro.obs.dashboard` — a message-driven, headless-renderable
  live terminal dashboard over the running fleet.

The fleet engine threads these through every layer behind a
``telemetry=`` / ``tracer=`` pair of constructor arguments; both
default off, and off costs a no-op method call per batch.
"""

from .dashboard import (
    Dashboard,
    MetricsUpdate,
    ReportUpdate,
    ShardSample,
    ShardsUpdate,
    TraceUpdate,
    ansi_frame,
    bar,
    sparkline,
)
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    JsonlExporter,
    MetricsRegistry,
    NULL_REGISTRY,
    default_registry,
    histogram_percentile,
    merge_snapshots,
    render_prometheus,
    resolve_registry,
    summarize_snapshot,
)
from .tracing import STAGES, TraceContext, TraceSampler, TraceSpan

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Dashboard",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricsRegistry",
    "MetricsUpdate",
    "NULL_REGISTRY",
    "ReportUpdate",
    "STAGES",
    "ShardSample",
    "ShardsUpdate",
    "TraceContext",
    "TraceSampler",
    "TraceSpan",
    "TraceUpdate",
    "ansi_frame",
    "bar",
    "default_registry",
    "histogram_percentile",
    "merge_snapshots",
    "render_prometheus",
    "resolve_registry",
    "sparkline",
    "summarize_snapshot",
]
