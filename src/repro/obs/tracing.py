"""Sampled window-lifecycle tracing across the fleet pipeline.

A traced window carries monotonic timestamps through the stages

    ingest → queue → ship → verdict → scatter

(``ship`` exists only on the multi-process path, where the block
crosses the shm boundary; the worker's verdict timestamp rides back in
the :class:`~repro.fleet.shm.ShmBlockRing` per-slot trace sidecar and
is merged parent-side — ``time.monotonic`` is ``CLOCK_MONOTONIC`` on
Linux, so parent and worker stamps share a clock).

Sampling is deterministic: :class:`TraceSampler` hashes
``(device_id, seq)`` with a seeded integer mix, so at the default
1/1024 rate the *same* windows are sampled on every backend and every
replay — spans from an in-process drain and a worker drain of the same
traffic cover the same windows.  The per-batch cost of the vectorised
row check is a few microseconds against a millisecond-scale verdict
pass (gated in ``benchmarks/test_bench_obs.py``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["STAGES", "TraceContext", "TraceSampler", "TraceSpan"]

# Pipeline stages in lifecycle order.  Percentiles are reported per
# *transition* between the consecutive stages a span actually visited,
# so in-process spans (no ship stage) and worker spans coexist.
STAGES = ("ingest", "queue", "ship", "verdict", "scatter")

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193
_MASK32 = 0xFFFFFFFF


def _fnv1a_32(text: str) -> int:
    """FNV-1a over the utf-8 bytes (same family as the shard router)."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & _MASK32
    return value


class TraceSampler:
    """Deterministic 1-in-``rate`` sampler keyed on ``(device_id, seq)``."""

    __slots__ = ("rate", "seed", "_device_hashes")

    def __init__(self, rate: int = 1024, seed: int = 0):
        if rate < 1:
            raise ValueError(f"rate must be >= 1; got {rate}.")
        self.rate = int(rate)
        self.seed = int(seed)
        self._device_hashes: dict[str, int] = {}

    def _device_hash(self, device_id: str) -> int:
        cached = self._device_hashes.get(device_id)
        if cached is None:
            cached = self._device_hashes[device_id] = _fnv1a_32(str(device_id))
        return cached

    def _mix(self, device_hash, seqs):
        return (
            seqs * 2654435761 + device_hash * 40503 + self.seed * 97
        ) & _MASK32

    def sample(self, device_id: str, seq: int) -> bool:
        """Whether this one window is traced."""
        return self._mix(self._device_hash(device_id), int(seq)) % self.rate == 0

    def sample_block(self, device_id: str, seqs) -> np.ndarray:
        """Boolean mask over one device's sequence block."""
        seqs = np.asarray(seqs, dtype=np.int64)
        return self._mix(self._device_hash(device_id), seqs) % self.rate == 0

    def sample_rows(self, device_ids, seqs) -> np.ndarray:
        """Boolean mask over a mixed-device batch (one vectorised pass)."""
        seqs = np.asarray(seqs, dtype=np.int64)
        unique, inverse = np.unique(np.asarray(device_ids), return_inverse=True)
        hashes = np.asarray(
            [self._device_hash(str(device_id)) for device_id in unique],
            dtype=np.int64,
        )
        return self._mix(hashes[inverse], seqs) % self.rate == 0


@dataclass(frozen=True)
class TraceSpan:
    """One sampled window's completed lifecycle stamps."""

    device_id: str
    seq: int
    stamps: dict

    def duration(self, start: str = "ingest", stop: str = "scatter"):
        """Seconds between two stamped stages (``None`` if either missing)."""
        if start not in self.stamps or stop not in self.stamps:
            return None
        return self.stamps[stop] - self.stamps[start]

    def transitions(self) -> list[tuple[str, str, float]]:
        """``(from, to, seconds)`` between consecutive visited stages."""
        visited = [stage for stage in STAGES if stage in self.stamps]
        return [
            (a, b, self.stamps[b] - self.stamps[a])
            for a, b in zip(visited, visited[1:])
        ]


class TraceContext:
    """Collects sampled spans as batches move through a monitor.

    The monitor calls :meth:`begin`/:meth:`begin_block` at ingress (the
    sampler decides there, once, which windows are traced), then
    :meth:`stamp_rows` at each later stage and :meth:`complete_rows` at
    scatter.  Post-ingress stages re-run the same deterministic sampler
    mask and touch only the handful of sampled rows, so the per-batch
    cost is one vectorised hash plus O(sampled) dict work.
    """

    def __init__(self, sampler: TraceSampler | None = None, *, max_spans: int = 4096):
        self.sampler = sampler if sampler is not None else TraceSampler()
        self._pending: dict[tuple[str, int], dict] = {}
        self.spans: deque[TraceSpan] = deque(maxlen=max_spans)
        self.n_sampled = 0
        self.n_completed = 0

    # -- ingress -------------------------------------------------------

    def begin(self, device_id: str, seq: int, ts: float | None = None) -> bool:
        """Start a span if the sampler picks this window."""
        if not self.sampler.sample(device_id, seq):
            return False
        self._pending[(str(device_id), int(seq))] = {
            "ingest": time.monotonic() if ts is None else ts
        }
        self.n_sampled += 1
        return True

    def begin_block(self, device_id: str, seqs, ts: float | None = None) -> int:
        """Start spans for the sampled rows of one submitted block."""
        picked = np.flatnonzero(self.sampler.sample_block(device_id, seqs))
        if len(picked) == 0:
            return 0
        t = time.monotonic() if ts is None else ts
        device_id = str(device_id)
        for i in picked:
            self._pending[(device_id, int(seqs[i]))] = {"ingest": t}
        self.n_sampled += len(picked)
        return len(picked)

    # -- later stages --------------------------------------------------

    def _sampled_rows(self, device_ids, seqs) -> np.ndarray:
        if not self._pending:
            return np.empty(0, dtype=np.int64)
        mask = self.sampler.sample_rows(device_ids, seqs)
        return np.flatnonzero(mask)

    def stamp(
        self, device_id: str, seq: int, stage: str, ts: float | None = None
    ) -> None:
        """Stamp one stage on an open span (no-op for untraced windows)."""
        entry = self._pending.get((str(device_id), int(seq)))
        if entry is not None:
            entry[stage] = time.monotonic() if ts is None else ts

    def stamp_rows(
        self, device_ids, seqs, stage: str, ts: float | None = None
    ) -> None:
        """Stamp a stage on every open span present in this batch."""
        rows = self._sampled_rows(device_ids, seqs)
        if len(rows) == 0:
            return
        t = time.monotonic() if ts is None else ts
        for i in rows:
            entry = self._pending.get((str(device_ids[i]), int(seqs[i])))
            if entry is not None:
                entry[stage] = t

    def complete_rows(
        self, device_ids, seqs, stage: str = "scatter", ts: float | None = None
    ) -> int:
        """Stamp the final stage and move finished spans out of pending."""
        rows = self._sampled_rows(device_ids, seqs)
        if len(rows) == 0:
            return 0
        t = time.monotonic() if ts is None else ts
        completed = 0
        for i in rows:
            key = (str(device_ids[i]), int(seqs[i]))
            entry = self._pending.pop(key, None)
            if entry is None:
                continue
            entry[stage] = t
            self.spans.append(
                TraceSpan(device_id=key[0], seq=key[1], stamps=entry)
            )
            completed += 1
        self.n_completed += completed
        return completed

    # -- aggregation ---------------------------------------------------

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    def stages_covered(self) -> set:
        """Every stage stamped on at least one completed span."""
        covered: set = set()
        for span in self.spans:
            covered.update(span.stamps)
        return covered

    def summary(self, percentiles=(50, 95, 99)) -> dict:
        """Per-transition duration percentiles over completed spans.

        Returns ``{"n_sampled": ..., "n_completed": ..., "stages":
        [...], "transitions": {"queue→verdict": {"p50": ...}, ...},
        "total": {...}}`` — durations in seconds.  The ``total`` row is
        ingest→scatter.
        """
        durations: dict[tuple[str, str], list] = {}
        totals: list = []
        for span in self.spans:
            for a, b, dt in span.transitions():
                durations.setdefault((a, b), []).append(dt)
            total = span.duration()
            if total is not None:
                totals.append(total)

        def stats(values) -> dict:
            arr = np.asarray(values, dtype=float)
            return {
                f"p{q}": float(np.percentile(arr, q)) for q in percentiles
            } | {"n": len(values)}

        return {
            "n_sampled": self.n_sampled,
            "n_completed": self.n_completed,
            "n_pending": len(self._pending),
            "rate": self.sampler.rate,
            "stages": sorted(
                self.stages_covered(), key=STAGES.index
            ),
            "transitions": {
                f"{a}→{b}": stats(values)
                for (a, b), values in sorted(
                    durations.items(),
                    key=lambda kv: (STAGES.index(kv[0][0]), STAGES.index(kv[0][1])),
                )
            },
            "total": stats(totals) if totals else None,
        }
