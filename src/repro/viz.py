"""Terminal-friendly plotting: ASCII boxplots, line charts, histograms.

The offline environment has no graphics stack, so the experiment
reports render their figures as text.  These helpers produce compact,
deterministic ASCII renderings used by ``as_text``-style reports and
the examples; they are intentionally simple (no colors, fixed-width
output) so diffs of benchmark logs stay readable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_boxplot", "ascii_line_chart", "ascii_histogram"]


def _scale_position(value: float, lo: float, hi: float, width: int) -> int:
    """Map ``value`` in [lo, hi] onto a column index in [0, width-1]."""
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return int(round(np.clip(frac, 0.0, 1.0) * (width - 1)))


def ascii_boxplot(
    groups: dict[str, np.ndarray],
    *,
    width: int = 60,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Horizontal boxplots, one row per named group.

    Rendering per row: ``|--[  :  ]--|`` = whiskers, quartile box and
    median, on a shared axis.

    Parameters
    ----------
    groups:
        Mapping of label → 1-d samples.
    width:
        Plot width in characters (excluding labels).
    lo / hi:
        Optional shared axis limits (default: data range).
    """
    if not groups:
        raise ValueError("groups is empty.")
    arrays = {name: np.asarray(v, dtype=float) for name, v in groups.items()}
    for name, arr in arrays.items():
        if arr.size == 0:
            raise ValueError(f"Group {name!r} is empty.")
    if width < 20:
        raise ValueError("width must be >= 20.")

    all_values = np.concatenate(list(arrays.values()))
    axis_lo = float(all_values.min()) if lo is None else lo
    axis_hi = float(all_values.max()) if hi is None else hi
    if axis_hi <= axis_lo:
        axis_hi = axis_lo + 1.0

    label_width = max(len(name) for name in arrays)
    lines = []
    for name, values in arrays.items():
        q1, median, q3 = np.percentile(values, [25, 50, 75])
        iqr = q3 - q1
        whisker_lo = float(values[values >= q1 - 1.5 * iqr].min())
        whisker_hi = float(values[values <= q3 + 1.5 * iqr].max())

        row = [" "] * width
        c_lo = _scale_position(whisker_lo, axis_lo, axis_hi, width)
        c_hi = _scale_position(whisker_hi, axis_lo, axis_hi, width)
        c_q1 = _scale_position(float(q1), axis_lo, axis_hi, width)
        c_q3 = _scale_position(float(q3), axis_lo, axis_hi, width)
        c_med = _scale_position(float(median), axis_lo, axis_hi, width)
        for c in range(c_lo, c_hi + 1):
            row[c] = "-"
        for c in range(c_q1, c_q3 + 1):
            row[c] = "="
        row[c_lo] = "|"
        row[c_hi] = "|"
        if c_q1 != c_lo:
            row[c_q1] = "["
        if c_q3 != c_hi:
            row[c_q3] = "]"
        row[c_med] = ":"
        lines.append(f"{name:>{label_width}} {''.join(row)}")

    axis = f"{'':>{label_width}} {axis_lo:<10.3f}{'':^{max(width - 20, 0)}}{axis_hi:>10.3f}"
    lines.append(axis)
    return "\n".join(lines)


def ascii_line_chart(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    *,
    width: int = 64,
    height: int = 16,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Parameters
    ----------
    series:
        Mapping of label → (x, y) arrays. Each series is drawn with its
        own marker character (``*+o#@%`` in order).
    width / height:
        Grid dimensions in characters.
    """
    if not series:
        raise ValueError("series is empty.")
    if width < 20 or height < 5:
        raise ValueError("Require width >= 20 and height >= 5.")
    markers = "*+o#@%"
    if len(series) > len(markers):
        raise ValueError(f"At most {len(markers)} series supported.")

    xs = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if xs.size == 0:
        raise ValueError("series contain no points.")
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, (x, y)) in zip(markers, series.items()):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(x) != len(y):
            raise ValueError(f"Series {label!r} x/y lengths differ.")
        for xi, yi in zip(x, y):
            col = _scale_position(float(xi), x_lo, x_hi, width)
            row = height - 1 - _scale_position(float(yi), y_lo, y_hi, height)
            grid[row][col] = marker

    lines = [f"{y_hi:>9.3f} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 9 + " |" + "".join(row))
    lines.append(f"{y_lo:>9.3f} +" + "".join(grid[-1]))
    lines.append(" " * 11 + f"{x_lo:<12.3f}{'':^{max(width - 24, 0)}}{x_hi:>12.3f}")
    legend = "   ".join(
        f"{marker}={label}" for marker, label in zip(markers, series.keys())
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def ascii_histogram(
    values,
    *,
    n_bins: int = 12,
    width: int = 50,
    label: str = "",
) -> str:
    """Vertical-bar histogram rendered as horizontal rows of '#'."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("values is empty.")
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2.")
    counts, edges = np.histogram(values, bins=n_bins)
    peak = max(int(counts.max()), 1)
    lines = [label] if label else []
    for b in range(n_bins):
        bar = "#" * int(round(counts[b] / peak * width))
        lines.append(
            f"[{edges[b]:8.3f}, {edges[b + 1]:8.3f})  {bar} {counts[b]}"
        )
    return "\n".join(lines)
