"""Application catalogues for the two HMD domains (S10 support).

Every entry is a :class:`repro.sim.workloads.WorkloadSpec`.  The split
into *known* and *unknown* applications mirrors Fig. 6 of the paper: the
known apps supply the train/test signatures, the unknown apps supply the
out-of-training signatures used to evaluate zero-day behaviour.

Geometry rationale (see DESIGN.md substitution note):

* **DVFS domain** — benign Android apps are interactive: bursty CPU,
  significant GPU compositing/rendering load, moderate I/O.  Malware
  runs programmatic loops (steady mining, periodic encryption, low-duty
  beaconing) with almost no GPU activity and rigid, timer-driven
  cadences (small ``dwell_cv``).  The governor turns those dynamics into
  cleanly distinct state-residency signatures, giving the well-separated
  classes of Fig. 8a.  The unknown apps (video call, file sync,
  benchmark, a new banking-trojan family) have dynamics unlike any
  training app, landing out-of-distribution / in contested regions.
* **HPC domain** — at the microarchitectural level malware is just
  code.  The catalogue is built around *overlap clusters*: each cluster
  pairs a benign application with a malware "twin" drawn from the same
  instruction-mix / working-set / branch-entropy region, plus a set of
  distinctive apps occupying clean regions.  The result is the
  heterogeneous overlap the paper reports: ~84% accuracy overall, with
  the errors and the predictive uncertainty concentrated in the overlap
  clusters (Fig. 8b).  The unknown apps are parameterised *inside* the
  overlap clusters, which is why they land in the contested region
  rather than out-of-distribution (Section V.B).  Per-session jitter is
  deliberately higher than in the DVFS domain, mimicking the noisy
  multi-tenant testbed.
"""

from __future__ import annotations

from ..sim.workloads import WorkloadPhase, WorkloadSpec

__all__ = [
    "DVFS_KNOWN_BENIGN",
    "DVFS_KNOWN_MALWARE",
    "DVFS_UNKNOWN",
    "HPC_KNOWN_BENIGN",
    "HPC_KNOWN_MALWARE",
    "HPC_UNKNOWN",
    "dvfs_known_apps",
    "dvfs_unknown_apps",
    "hpc_known_apps",
    "hpc_unknown_apps",
]

#: Per-session parameter jitter used by all DVFS apps (small: one phone,
#: controlled collection) and HPC apps (large: noisy desktop testbed).
_DVFS_JITTER = 0.025
_HPC_JITTER = 0.12


# ----------------------------------------------------------------------
# DVFS domain (Android-like SoC, Chawla et al. dataset analogue)
# ----------------------------------------------------------------------

DVFS_KNOWN_BENIGN: tuple[WorkloadSpec, ...] = (
    WorkloadSpec(
        name="browser",
        label=0,
        family="interactive",
        phases=(
            WorkloadPhase("idle_read", cpu_mean=0.10, cpu_std=0.03, gpu_mean=0.06,
                          burst_prob=0.05, burst_height=0.25, io_rate=0.05,
                          mean_duration_steps=50),
            WorkloadPhase("scroll", cpu_mean=0.34, cpu_std=0.08, gpu_mean=0.22,
                          burst_prob=0.22, burst_height=0.35, io_rate=0.15,
                          mean_duration_steps=25),
            WorkloadPhase("page_load", cpu_mean=0.78, cpu_std=0.10, gpu_mean=0.16,
                          burst_prob=0.10, burst_height=0.20, io_rate=0.45,
                          mean_duration_steps=8),
        ),
        transitions=((0.55, 0.30, 0.15), (0.35, 0.45, 0.20), (0.50, 0.40, 0.10)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="video_stream",
        label=0,
        family="media",
        phases=(
            WorkloadPhase("decode", cpu_mean=0.40, cpu_std=0.05, gpu_mean=0.46,
                          burst_prob=0.03, burst_height=0.15, io_rate=0.30,
                          mean_duration_steps=120),
            WorkloadPhase("buffer", cpu_mean=0.60, cpu_std=0.08, gpu_mean=0.25,
                          burst_prob=0.05, burst_height=0.18, io_rate=0.60,
                          mean_duration_steps=10),
        ),
        transitions=((0.92, 0.08), (0.70, 0.30)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="music_player",
        label=0,
        family="media",
        phases=(
            WorkloadPhase("playback", cpu_mean=0.22, cpu_std=0.035, gpu_mean=0.12,
                          burst_prob=0.05, burst_height=0.14, io_rate=0.14,
                          mean_duration_steps=130),
            WorkloadPhase("track_change", cpu_mean=0.33, cpu_std=0.06, gpu_mean=0.12,
                          burst_prob=0.10, burst_height=0.15, io_rate=0.22,
                          mean_duration_steps=5),
        ),
        transitions=((0.94, 0.06), (0.85, 0.15)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="casual_game",
        label=0,
        family="game",
        phases=(
            WorkloadPhase("play", cpu_mean=0.64, cpu_std=0.09, gpu_mean=0.60,
                          burst_prob=0.25, burst_height=0.22, io_rate=0.10,
                          mean_duration_steps=80),
            WorkloadPhase("menu", cpu_mean=0.28, cpu_std=0.06, gpu_mean=0.26,
                          burst_prob=0.08, burst_height=0.20, io_rate=0.05,
                          mean_duration_steps=15),
        ),
        transitions=((0.90, 0.10), (0.60, 0.40)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="social_feed",
        label=0,
        family="interactive",
        phases=(
            WorkloadPhase("browse", cpu_mean=0.26, cpu_std=0.07, gpu_mean=0.18,
                          burst_prob=0.18, burst_height=0.30, io_rate=0.25,
                          mean_duration_steps=35),
            WorkloadPhase("media_view", cpu_mean=0.52, cpu_std=0.08, gpu_mean=0.36,
                          burst_prob=0.12, burst_height=0.25, io_rate=0.35,
                          mean_duration_steps=12),
            WorkloadPhase("idle", cpu_mean=0.08, cpu_std=0.02, gpu_mean=0.04,
                          burst_prob=0.03, burst_height=0.15, io_rate=0.04,
                          mean_duration_steps=35),
        ),
        transitions=((0.55, 0.25, 0.20), (0.55, 0.35, 0.10), (0.45, 0.15, 0.40)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="email_client",
        label=0,
        family="productivity",
        phases=(
            WorkloadPhase("read", cpu_mean=0.19, cpu_std=0.045, gpu_mean=0.10,
                          burst_prob=0.10, burst_height=0.22, io_rate=0.08,
                          mean_duration_steps=45),
            WorkloadPhase("sync", cpu_mean=0.46, cpu_std=0.08, gpu_mean=0.04,
                          burst_prob=0.08, burst_height=0.18, io_rate=0.55,
                          mean_duration_steps=7),
        ),
        transitions=((0.88, 0.12), (0.75, 0.25)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="navigation",
        label=0,
        family="maps",
        phases=(
            WorkloadPhase("track", cpu_mean=0.46, cpu_std=0.07, gpu_mean=0.38,
                          burst_prob=0.10, burst_height=0.20, io_rate=0.30,
                          mean_duration_steps=90),
            WorkloadPhase("reroute", cpu_mean=0.80, cpu_std=0.08, gpu_mean=0.30,
                          burst_prob=0.15, burst_height=0.15, io_rate=0.40,
                          mean_duration_steps=6),
        ),
        transitions=((0.93, 0.07), (0.80, 0.20)),
        app_jitter=_DVFS_JITTER,
    ),
)

DVFS_KNOWN_MALWARE: tuple[WorkloadSpec, ...] = (
    WorkloadSpec(
        name="ransomware",
        label=1,
        family="ransomware",
        phases=(
            WorkloadPhase("scan_fs", cpu_mean=0.22, cpu_std=0.05, burst_prob=0.05,
                          burst_height=0.15, io_rate=0.70, mean_duration_steps=20),
            WorkloadPhase("encrypt", cpu_mean=0.92, cpu_std=0.04, burst_prob=0.02,
                          burst_height=0.06, io_rate=0.55, mean_duration_steps=55),
        ),
        transitions=((0.35, 0.65), (0.25, 0.75)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="cryptominer",
        label=1,
        family="miner",
        phases=(
            WorkloadPhase("mine", cpu_mean=0.96, cpu_std=0.02, burst_prob=0.0,
                          burst_height=0.0, io_rate=0.04, mean_duration_steps=300),
            WorkloadPhase("share_submit", cpu_mean=0.85, cpu_std=0.05, burst_prob=0.05,
                          burst_height=0.10, io_rate=0.20, mean_duration_steps=4),
        ),
        transitions=((0.97, 0.03), (0.90, 0.10)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="spyware",
        label=1,
        family="spyware",
        phases=(
            WorkloadPhase("dormant", cpu_mean=0.04, cpu_std=0.015, burst_prob=0.01,
                          burst_height=0.08, io_rate=0.02, mean_duration_steps=65),
            WorkloadPhase("harvest", cpu_mean=0.38, cpu_std=0.05, burst_prob=0.06,
                          burst_height=0.10, io_rate=0.45, mean_duration_steps=8),
            WorkloadPhase("exfiltrate", cpu_mean=0.20, cpu_std=0.04, burst_prob=0.04,
                          burst_height=0.10, io_rate=0.80, mean_duration_steps=6),
        ),
        transitions=((0.80, 0.15, 0.05), (0.30, 0.40, 0.30), (0.70, 0.10, 0.20)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="adware",
        label=1,
        family="adware",
        phases=(
            WorkloadPhase("background", cpu_mean=0.08, cpu_std=0.015, burst_prob=0.02,
                          burst_height=0.08, io_rate=0.10, mean_duration_steps=18,
                          dwell_cv=0.08),
            WorkloadPhase("ad_fetch_render", cpu_mean=0.66, cpu_std=0.035, gpu_mean=0.08,
                          burst_prob=0.35, burst_height=0.20, io_rate=0.55,
                          mean_duration_steps=8, dwell_cv=0.08),
        ),
        transitions=((0.70, 0.30), (0.45, 0.55)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="botnet_client",
        label=1,
        family="botnet",
        phases=(
            WorkloadPhase("beacon_idle", cpu_mean=0.06, cpu_std=0.02, burst_prob=0.08,
                          burst_height=0.12, io_rate=0.12, mean_duration_steps=70,
                          dwell_cv=0.15),
            WorkloadPhase("command_exec", cpu_mean=0.82, cpu_std=0.07, burst_prob=0.10,
                          burst_height=0.12, io_rate=0.60, mean_duration_steps=12),
        ),
        transitions=((0.93, 0.07), (0.60, 0.40)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="sms_fraud",
        label=1,
        family="fraud",
        phases=(
            WorkloadPhase("wait", cpu_mean=0.07, cpu_std=0.02, burst_prob=0.02,
                          burst_height=0.08, io_rate=0.05, mean_duration_steps=40,
                          dwell_cv=0.10),
            WorkloadPhase("send_burst", cpu_mean=0.33, cpu_std=0.04, burst_prob=0.50,
                          burst_height=0.12, io_rate=0.35, mean_duration_steps=6,
                          dwell_cv=0.10),
        ),
        transitions=((0.82, 0.18), (0.70, 0.30)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="keylogger",
        label=1,
        family="spyware",
        phases=(
            WorkloadPhase("hook_loop", cpu_mean=0.05, cpu_std=0.012, burst_prob=0.15,
                          burst_height=0.05, io_rate=0.06, mean_duration_steps=110,
                          dwell_cv=0.12),
            WorkloadPhase("flush_log", cpu_mean=0.18, cpu_std=0.03, burst_prob=0.05,
                          burst_height=0.08, io_rate=0.40, mean_duration_steps=4,
                          dwell_cv=0.12),
        ),
        transitions=((0.95, 0.05), (0.90, 0.10)),
        app_jitter=_DVFS_JITTER,
    ),
)

DVFS_UNKNOWN: tuple[WorkloadSpec, ...] = (
    WorkloadSpec(
        name="video_call",
        label=0,
        family="unknown_benign",
        phases=(
            WorkloadPhase("call", cpu_mean=0.58, cpu_std=0.06, gpu_mean=0.50,
                          burst_prob=0.35, burst_height=0.18, io_rate=0.65,
                          mean_duration_steps=200),
            WorkloadPhase("screen_share", cpu_mean=0.74, cpu_std=0.07, gpu_mean=0.42,
                          burst_prob=0.25, burst_height=0.15, io_rate=0.75,
                          mean_duration_steps=40),
        ),
        transitions=((0.90, 0.10), (0.80, 0.20)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="file_sync",
        label=0,
        family="unknown_benign",
        phases=(
            WorkloadPhase("watch", cpu_mean=0.13, cpu_std=0.03, burst_prob=0.06,
                          burst_height=0.10, io_rate=0.18, mean_duration_steps=25),
            WorkloadPhase("bulk_transfer", cpu_mean=0.40, cpu_std=0.05, burst_prob=0.08,
                          burst_height=0.12, io_rate=0.95, mean_duration_steps=20),
            WorkloadPhase("hash_verify", cpu_mean=0.68, cpu_std=0.05, burst_prob=0.03,
                          burst_height=0.08, io_rate=0.30, mean_duration_steps=12),
        ),
        transitions=((0.70, 0.20, 0.10), (0.30, 0.55, 0.15), (0.50, 0.25, 0.25)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="benchmark_suite",
        label=0,
        family="unknown_benign",
        phases=(
            WorkloadPhase("compute_burn", cpu_mean=0.99, cpu_std=0.01, gpu_mean=0.10,
                          burst_prob=0.0, burst_height=0.0, io_rate=0.02,
                          mean_duration_steps=25),
            WorkloadPhase("cooldown", cpu_mean=0.15, cpu_std=0.03, gpu_mean=0.04,
                          burst_prob=0.02, burst_height=0.08, io_rate=0.05,
                          mean_duration_steps=12),
            WorkloadPhase("gpu_stress", cpu_mean=0.55, cpu_std=0.05, gpu_mean=0.85,
                          burst_prob=0.05, burst_height=0.10, io_rate=0.10,
                          mean_duration_steps=18),
        ),
        transitions=((0.55, 0.30, 0.15), (0.45, 0.20, 0.35), (0.35, 0.35, 0.30)),
        app_jitter=_DVFS_JITTER,
    ),
    WorkloadSpec(
        name="banking_trojan",
        label=1,
        family="unknown_malware",
        phases=(
            WorkloadPhase("overlay_wait", cpu_mean=0.12, cpu_std=0.030, gpu_mean=0.04,
                          burst_prob=0.12, burst_height=0.22, io_rate=0.15,
                          mean_duration_steps=28),
            WorkloadPhase("credential_grab", cpu_mean=0.47, cpu_std=0.06, gpu_mean=0.18,
                          burst_prob=0.22, burst_height=0.20, io_rate=0.40,
                          mean_duration_steps=9),
            WorkloadPhase("c2_sync", cpu_mean=0.30, cpu_std=0.05, burst_prob=0.10,
                          burst_height=0.15, io_rate=0.85, mean_duration_steps=7),
        ),
        transitions=((0.66, 0.20, 0.14), (0.40, 0.35, 0.25), (0.60, 0.20, 0.20)),
        app_jitter=_DVFS_JITTER,
    ),
)


# ----------------------------------------------------------------------
# HPC domain (desktop/server CPU, Zhou et al. dataset analogue)
# ----------------------------------------------------------------------

def _hpc_phases(
    ws_kib: float,
    branch_entropy: float,
    mix: tuple[float, float, float, float],
    io_rate: float,
    util: float = 0.85,
    util_low: float | None = None,
) -> tuple[WorkloadPhase, ...]:
    """Two-phase compute/housekeeping structure shared by HPC apps."""
    low = util_low if util_low is not None else max(util - 0.35, 0.1)
    return (
        WorkloadPhase(
            "compute",
            cpu_mean=util,
            cpu_std=0.06,
            mix=mix,
            working_set_kib=ws_kib,
            working_set_sigma=0.45,
            branch_entropy=branch_entropy,
            io_rate=io_rate,
            mean_duration_steps=80,
        ),
        WorkloadPhase(
            "housekeeping",
            cpu_mean=low,
            cpu_std=0.07,
            mix=(0.45, 0.20, 0.22, 0.13),
            working_set_kib=ws_kib * 0.3,
            working_set_sigma=0.5,
            branch_entropy=min(branch_entropy + 0.1, 1.0),
            io_rate=min(io_rate + 0.2, 1.0),
            mean_duration_steps=25,
        ),
    )


def _hpc_spec(name: str, label: int, family: str, phases) -> WorkloadSpec:
    return WorkloadSpec(
        name=name, label=label, family=family, phases=phases, app_jitter=_HPC_JITTER
    )


HPC_KNOWN_BENIGN: tuple[WorkloadSpec, ...] = (
    # --- overlap clusters (shared parameter regions with malware) -----
    _hpc_spec("compression_tool", 0, "compute",       # ~ pc_ransomware
              _hpc_phases(9000, 0.35, (0.50, 0.12, 0.25, 0.13), 0.35, util=0.88)),
    _hpc_spec("file_indexer", 0, "system",            # ~ pc_spyware
              _hpc_phases(7800, 0.52, (0.40, 0.20, 0.27, 0.13), 0.75, util=0.50)),
    _hpc_spec("web_server", 0, "server",              # ~ pc_banking_bot
              _hpc_phases(14000, 0.60, (0.40, 0.24, 0.24, 0.12), 0.65, util=0.55)),
    _hpc_spec("sci_simulation", 0, "compute",         # ~ pc_cryptominer
              _hpc_phases(80000, 0.14, (0.60, 0.06, 0.24, 0.10), 0.09, util=0.95)),
    _hpc_spec("compiler", 0, "compute",               # ~ pc_worm
              _hpc_phases(16000, 0.56, (0.43, 0.22, 0.24, 0.11), 0.45, util=0.60)),
    _hpc_spec("text_editor", 0, "office",             # ~ pc_keylogger
              _hpc_phases(2600, 0.48, (0.48, 0.21, 0.21, 0.10), 0.15, util=0.30)),
    _hpc_spec("antivirus_scan", 0, "system",          # ~ pc_ddos_bot
              _hpc_phases(9500, 0.50, (0.44, 0.19, 0.25, 0.12), 0.72, util=0.70)),
    # --- distinctive benign apps (clean regions) -----------------------
    _hpc_spec("image_editor", 0, "compute",
              _hpc_phases(48000, 0.25, (0.58, 0.08, 0.24, 0.10), 0.15, util=0.74)),
    _hpc_spec("database_engine", 0, "server",
              _hpc_phases(200000, 0.42, (0.36, 0.16, 0.32, 0.16), 0.55, util=0.68)),
    _hpc_spec("spreadsheet", 0, "office",
              _hpc_phases(4800, 0.30, (0.54, 0.14, 0.21, 0.11), 0.18, util=0.42)),
    _hpc_spec("pdf_renderer", 0, "office",
              _hpc_phases(26000, 0.36, (0.50, 0.13, 0.26, 0.11), 0.20, util=0.56)),
    _hpc_spec("video_encoder", 0, "media",
              _hpc_phases(22000, 0.10, (0.64, 0.05, 0.21, 0.10), 0.28, util=0.90)),
)

HPC_KNOWN_MALWARE: tuple[WorkloadSpec, ...] = (
    # --- overlap clusters (twins of the benign apps above) -------------
    _hpc_spec("pc_ransomware", 1, "ransomware",       # ~ compression_tool
              _hpc_phases(10000, 0.37, (0.51, 0.11, 0.25, 0.13), 0.45, util=0.86)),
    _hpc_spec("pc_spyware", 1, "spyware",             # ~ file_indexer
              _hpc_phases(7200, 0.54, (0.41, 0.21, 0.26, 0.12), 0.70, util=0.48)),
    _hpc_spec("pc_banking_bot", 1, "botnet",          # ~ web_server
              _hpc_phases(13000, 0.62, (0.39, 0.24, 0.25, 0.12), 0.60, util=0.52)),
    _hpc_spec("pc_cryptominer", 1, "miner",           # ~ sci_simulation
              _hpc_phases(72000, 0.15, (0.60, 0.07, 0.23, 0.10), 0.10, util=0.94)),
    _hpc_spec("pc_worm", 1, "worm",                   # ~ compiler
              _hpc_phases(15500, 0.58, (0.42, 0.22, 0.24, 0.12), 0.50, util=0.58)),
    _hpc_spec("pc_keylogger", 1, "spyware",           # ~ text_editor
              _hpc_phases(3100, 0.50, (0.46, 0.21, 0.22, 0.11), 0.20, util=0.33)),
    _hpc_spec("pc_ddos_bot", 1, "botnet",             # ~ antivirus_scan
              _hpc_phases(8600, 0.53, (0.42, 0.20, 0.25, 0.13), 0.78, util=0.68)),
    # --- distinctive malware (clean regions) ---------------------------
    _hpc_spec("pc_rootkit", 1, "rootkit",
              _hpc_phases(1200, 0.66, (0.40, 0.26, 0.22, 0.12), 0.35, util=0.22)),
    _hpc_spec("pc_adware", 1, "adware",
              _hpc_phases(38000, 0.62, (0.42, 0.23, 0.24, 0.11), 0.58, util=0.46)),
    _hpc_spec("pc_packer_virus", 1, "virus",
              _hpc_phases(55000, 0.44, (0.48, 0.16, 0.25, 0.11), 0.30, util=0.80)),
)

HPC_UNKNOWN: tuple[WorkloadSpec, ...] = (
    # New applications / malware families parameterised INSIDE the
    # overlap clusters above — they land in the contested region, not
    # out-of-distribution (the paper's Section V.B finding).
    _hpc_spec("archiver_new", 0, "unknown_benign",    # compression cluster
              _hpc_phases(9600, 0.36, (0.50, 0.12, 0.25, 0.13), 0.40, util=0.87)),
    _hpc_spec("game_engine", 0, "unknown_benign",     # compiler/worm cluster
              _hpc_phases(15800, 0.57, (0.43, 0.22, 0.24, 0.11), 0.48, util=0.59)),
    _hpc_spec("crypto_wallet", 0, "unknown_benign",   # text/keylogger cluster
              _hpc_phases(2900, 0.49, (0.47, 0.21, 0.21, 0.11), 0.17, util=0.31)),
    _hpc_spec("new_ransomware_family", 1, "unknown_malware",
              _hpc_phases(9400, 0.38, (0.51, 0.12, 0.24, 0.13), 0.48, util=0.85)),
    _hpc_spec("new_miner_family", 1, "unknown_malware",
              _hpc_phases(76000, 0.14, (0.60, 0.07, 0.23, 0.10), 0.11, util=0.94)),
    _hpc_spec("new_infostealer", 1, "unknown_malware",
              _hpc_phases(7500, 0.53, (0.41, 0.20, 0.26, 0.13), 0.72, util=0.49)),
)


def dvfs_known_apps() -> tuple[WorkloadSpec, ...]:
    """Known DVFS applications (benign + malware), Fig. 6 left bucket."""
    return DVFS_KNOWN_BENIGN + DVFS_KNOWN_MALWARE


def dvfs_unknown_apps() -> tuple[WorkloadSpec, ...]:
    """Unknown DVFS applications, Fig. 6 right bucket."""
    return DVFS_UNKNOWN


def hpc_known_apps() -> tuple[WorkloadSpec, ...]:
    """Known HPC applications (benign + malware)."""
    return HPC_KNOWN_BENIGN + HPC_KNOWN_MALWARE


def hpc_unknown_apps() -> tuple[WorkloadSpec, ...]:
    """Unknown HPC applications."""
    return HPC_UNKNOWN
