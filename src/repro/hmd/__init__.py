"""Hardware malware detector components (S9): application catalogues,
feature extraction and detector pipelines."""

from .apps import (
    DVFS_KNOWN_BENIGN,
    DVFS_KNOWN_MALWARE,
    DVFS_UNKNOWN,
    HPC_KNOWN_BENIGN,
    HPC_KNOWN_MALWARE,
    HPC_UNKNOWN,
    dvfs_known_apps,
    dvfs_unknown_apps,
    hpc_known_apps,
    hpc_unknown_apps,
)
from .features import DvfsFeatureExtractor, HpcFeatureExtractor
from .pipeline import DvfsHmdFrontend, HpcHmdFrontend

__all__ = [
    "DvfsHmdFrontend",
    "HpcHmdFrontend",
    "DVFS_KNOWN_BENIGN",
    "DVFS_KNOWN_MALWARE",
    "DVFS_UNKNOWN",
    "DvfsFeatureExtractor",
    "HPC_KNOWN_BENIGN",
    "HPC_KNOWN_MALWARE",
    "HPC_UNKNOWN",
    "HpcFeatureExtractor",
    "dvfs_known_apps",
    "dvfs_unknown_apps",
    "hpc_known_apps",
    "hpc_unknown_apps",
]
