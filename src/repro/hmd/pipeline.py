"""Raw-signal HMD front-ends: sensor traces in, verdicts out (S9).

The :mod:`repro.uncertainty` pipelines operate on *feature vectors*.
These front-ends close the remaining gap to the hardware: they accept
raw sensor traces (DVFS state sequences / HPC counter intervals),
window them, extract features and delegate to a
:class:`~repro.uncertainty.trust.TrustedHMD` — the full Fig. 2 chain.
"""

from __future__ import annotations

import numpy as np

from ..ml.base import BaseEstimator
from ..sim.trace import DvfsTrace, HpcTrace
from ..uncertainty.trust import TrustedHMD, TrustedVerdict
from .features import DvfsFeatureExtractor, HpcFeatureExtractor

__all__ = ["DvfsHmdFrontend", "HpcHmdFrontend"]


class DvfsHmdFrontend:
    """DVFS-trace → window features → trusted verdicts.

    Parameters
    ----------
    ensemble:
        Unfitted ensemble prototype for the inner :class:`TrustedHMD`.
    window_steps:
        Governor samples per signature window.
    threshold:
        Entropy rejection threshold (bits).
    """

    def __init__(
        self,
        ensemble: BaseEstimator,
        *,
        window_steps: int = 240,
        threshold: float = 0.40,
    ):
        if window_steps < 2:
            raise ValueError("window_steps must be >= 2.")
        self.window_steps = window_steps
        self.extractor = DvfsFeatureExtractor()
        self.hmd = TrustedHMD(ensemble, threshold=threshold)

    def _featurize(self, traces: list[DvfsTrace]) -> np.ndarray:
        # One batched extract_windows pass per trace: each call is a
        # whole-tensor computation over all of that trace's windows.
        rows = [
            self.extractor.extract_windows(trace, self.window_steps)
            for trace in traces
        ]
        return np.vstack(rows)

    def fit(self, traces: list[DvfsTrace], labels: list[int]) -> "DvfsHmdFrontend":
        """Fit from labelled traces; each trace's windows inherit its label."""
        if len(traces) != len(labels):
            raise ValueError("traces and labels lengths differ.")
        if not traces:
            raise ValueError("At least one trace is required.")
        X_parts, y_parts = [], []
        for trace, label in zip(traces, labels):
            X = self.extractor.extract_windows(trace, self.window_steps)
            X_parts.append(X)
            y_parts.append(np.full(len(X), label))
        self.hmd.fit(np.vstack(X_parts), np.concatenate(y_parts))
        self.hmd.compile()
        return self

    def analyze(self, trace: DvfsTrace) -> TrustedVerdict:
        """Screen every window of one trace."""
        X = self.extractor.extract_windows(trace, self.window_steps)
        return self.hmd.analyze(X)


class HpcHmdFrontend:
    """HPC counter trace → per-interval features → trusted verdicts."""

    def __init__(self, ensemble: BaseEstimator, *, threshold: float = 0.40):
        self.extractor = HpcFeatureExtractor()
        self.hmd = TrustedHMD(ensemble, threshold=threshold)

    def fit(self, traces: list[HpcTrace], labels: list[int]) -> "HpcHmdFrontend":
        """Fit from labelled counter traces (per-interval samples)."""
        if len(traces) != len(labels):
            raise ValueError("traces and labels lengths differ.")
        if not traces:
            raise ValueError("At least one trace is required.")
        # One bulk featurisation pass over all traces; labels expand to
        # per-interval rows by each trace's interval count.
        X = self.extractor.extract_many(traces)
        y = np.repeat(
            np.asarray(labels), np.array([t.n_intervals for t in traces])
        )
        self.hmd.fit(X, y)
        self.hmd.compile()
        return self

    def analyze(self, trace: HpcTrace) -> TrustedVerdict:
        """Screen every sampling interval of one counter trace."""
        return self.hmd.analyze(self.extractor.extract(trace))
