"""Feature extraction (S9): sensor traces → classifier feature vectors.

This is the "Feature Extraction" box of the paper's HMD pipeline
(Figs. 1-2):

* :class:`DvfsFeatureExtractor` — one feature vector per *window* of the
  DVFS state time-series: per-channel state residency histograms,
  transition statistics and temperature telemetry.  Matches the style of
  Chawla et al., where a signature summarises several seconds of DVFS
  activity.
* :class:`HpcFeatureExtractor` — one feature vector per *sampling
  interval*: derived per-instruction/per-cycle rates (IPC, MPKI, ...)
  plus log-scaled raw counts.  Matches Zhou et al., where every counter
  sample is a data point (hence the much larger HPC dataset in Table I).

Two extraction paths are maintained per extractor:

* a **per-window reference path** (:meth:`DvfsFeatureExtractor.extract`,
  :meth:`DvfsFeatureExtractor.extract_windows_reference`) — one window
  at a time, the readable specification of every feature;
* a **batched path** (:meth:`DvfsFeatureExtractor.extract_windows`) —
  the trace is reshaped to ``(n_windows, n_channels, window_steps)``
  and every feature is computed for *all* windows at once with
  whole-tensor numpy ops.

The batched path is **bitwise identical** to the reference path.  That
is not automatic for floating point — it holds because both paths are
written against the same numpy reduction machinery: every float
accumulation reduces a *contiguous* innermost axis (numpy applies the
same pairwise summation to a 1-D contiguous array and to each line of a
C-contiguous 2-D array), dot products are spelled multiply-then-sum
(BLAS ``ddot`` has a different accumulation order and is avoided on
both paths), and everything else is either elementwise or an exact
integer reduction.  ``tests/hmd/test_features_batched.py`` enforces the
equivalence across randomized traces.
"""

from __future__ import annotations

import numpy as np

from ..sim.trace import DvfsTrace, HpcTrace

__all__ = ["DvfsFeatureExtractor", "HpcFeatureExtractor"]


class DvfsFeatureExtractor:
    """Summarise a DVFS window into a fixed-length feature vector.

    Features per channel: state-residency histogram, normalised
    frequency statistics, transition dynamics (rates, jump sizes, dwell
    lengths), temporal structure (lag-1 autocorrelation, spectral band
    energies) — the kind of time-series summary Chawla et al. derive
    from DVFS state sequences.  Cross-channel correlations and
    temperature telemetry complete the signature.
    """

    #: Number of spectral bands of the normalised frequency signal.
    N_SPECTRAL_BANDS = 4

    _CHANNEL_STATS = (
        "mean_norm_freq",
        "std_norm_freq",
        "transition_rate",
        "up_transition_rate",
        "mean_abs_jump",
        "max_jump",
        "frac_max_state",
        "frac_min_state",
        "frac_low_half",
        "mean_dwell",
        "max_dwell_frac",
        "lag1_autocorr",
    )

    def feature_names(self, trace: DvfsTrace) -> list[str]:
        """Names matching :meth:`extract` output order."""
        names: list[str] = []
        for c, channel in enumerate(trace.channel_names):
            for s in range(trace.n_states(c)):
                names.append(f"{channel}_residency_{s}")
            names.extend(f"{channel}_{stat}" for stat in self._CHANNEL_STATS)
            names.extend(
                f"{channel}_spectral_band_{b}" for b in range(self.N_SPECTRAL_BANDS)
            )
        for a in range(trace.n_channels):
            for b in range(a + 1, trace.n_channels):
                names.append(
                    f"xcorr_{trace.channel_names[a]}_{trace.channel_names[b]}"
                )
        names.extend(["temp_mean", "temp_std", "temp_slope"])
        return names

    # -- per-window reference path -------------------------------------

    @staticmethod
    def _dwell_stats(states: np.ndarray) -> tuple[float, float]:
        """Mean run length and longest-run fraction of the state series."""
        change_points = np.flatnonzero(np.diff(states) != 0)
        boundaries = np.concatenate([[-1], change_points, [len(states) - 1]])
        run_lengths = np.diff(boundaries).astype(float)
        return float(run_lengths.mean()), float(run_lengths.max() / len(states))

    def _spectral_bands(self, norm: np.ndarray) -> list[float]:
        """Energy in N equal-width frequency bands of the signal."""
        spectrum = np.abs(np.fft.rfft(norm - norm.mean())) ** 2
        if len(spectrum) <= 1:
            return [0.0] * self.N_SPECTRAL_BANDS
        spectrum = spectrum[1:]  # drop DC
        total = spectrum.sum()
        if total <= 0:
            return [0.0] * self.N_SPECTRAL_BANDS
        bands = np.array_split(spectrum, self.N_SPECTRAL_BANDS)
        return [float(band.sum() / total) for band in bands]

    def extract(self, trace: DvfsTrace) -> np.ndarray:
        """Feature vector for one DVFS window (reference path)."""
        feats: list[float] = []
        norms = []
        for c in range(trace.n_channels):
            states = trace.states[:, c]
            n_states = trace.n_states(c)
            hist = np.bincount(states, minlength=n_states).astype(float)
            hist /= len(states)
            feats.extend(hist.tolist())

            norm = states / max(n_states - 1, 1)
            norms.append(norm)
            diffs = np.diff(states)
            transition_rate = float(np.mean(diffs != 0)) if len(diffs) else 0.0
            up_rate = float(np.mean(diffs > 0)) if len(diffs) else 0.0
            mean_jump = float(np.mean(np.abs(diffs))) if len(diffs) else 0.0
            max_jump = float(np.max(np.abs(diffs))) if len(diffs) else 0.0
            mean_dwell, max_dwell_frac = self._dwell_stats(states)
            centered = norm - norm.mean()
            # Multiply-then-sum, not ``centered @ centered``: the batched
            # path must reproduce this bitwise, and BLAS ddot accumulates
            # in a different order than numpy's pairwise reduction.
            var = float((centered * centered).sum())
            if var > 1e-12 and len(norm) > 1:
                autocorr = float((centered[:-1] * centered[1:]).sum()) / var
            else:
                autocorr = 0.0
            feats.extend(
                [
                    float(norm.mean()),
                    float(norm.std()),
                    transition_rate,
                    up_rate,
                    mean_jump,
                    max_jump,
                    float(np.mean(states == n_states - 1)),
                    float(np.mean(states == 0)),
                    float(np.mean(norm < 0.5)),
                    mean_dwell,
                    max_dwell_frac,
                    autocorr,
                ]
            )
            feats.extend(self._spectral_bands(norm))

        for a in range(trace.n_channels):
            for b in range(a + 1, trace.n_channels):
                sa, sb = norms[a], norms[b]
                if sa.std() > 1e-9 and sb.std() > 1e-9:
                    ca = sa - sa.mean()
                    cb = sb - sb.mean()
                    denom = np.sqrt((ca * ca).sum() * (cb * cb).sum())
                    corr = float(np.clip((ca * cb).sum() / denom, -1.0, 1.0))
                    feats.append(corr)
                else:
                    feats.append(0.0)

        temp = trace.temperature_c
        slope = float((temp[-1] - temp[0]) / max(len(temp) - 1, 1))
        feats.extend([float(temp.mean()), float(temp.std()), slope])
        return np.asarray(feats)

    def _check_windowing(self, trace: DvfsTrace, window_steps: int) -> int:
        if window_steps < 2:
            raise ValueError("window_steps must be >= 2.")
        n_windows = trace.n_steps // window_steps
        if n_windows == 0:
            raise ValueError(
                f"Trace of {trace.n_steps} steps shorter than one window "
                f"({window_steps})."
            )
        return n_windows

    def extract_windows_reference(
        self, trace: DvfsTrace, window_steps: int
    ) -> np.ndarray:
        """Per-window loop over :meth:`extract` (reference path).

        Kept as the readable specification the batched
        :meth:`extract_windows` is tested bitwise against, and as the
        baseline the ingest benchmark measures the speedup over.
        """
        n_windows = self._check_windowing(trace, window_steps)
        rows = []
        for w in range(n_windows):
            sub = DvfsTrace(
                states=trace.states[w * window_steps : (w + 1) * window_steps],
                frequencies_mhz=trace.frequencies_mhz,
                channel_names=trace.channel_names,
                temperature_c=trace.temperature_c[w * window_steps : (w + 1) * window_steps],
                dt=trace.dt,
                name=trace.name,
            )
            rows.append(self.extract(sub))
        return np.stack(rows)

    # -- batched path --------------------------------------------------

    def extract_windows(self, trace: DvfsTrace, window_steps: int) -> np.ndarray:
        """Split a long trace into windows and extract all of them at once.

        Trailing steps that do not fill a whole window are dropped.
        Returns the same ``(n_windows, n_features)`` matrix as
        :meth:`extract_windows_reference`, bitwise, but computed with
        whole-tensor ops: one offset-``bincount`` per channel for the
        residency histograms, axis-wise ``diff`` reductions for the
        transition statistics, flattened change-point arithmetic for the
        dwell run-lengths, one batched ``rfft`` per channel for the
        spectral bands, and pairwise multiply-sum for the cross-channel
        correlations.
        """
        n_windows = self._check_windowing(trace, window_steps)
        n_channels = trace.n_channels
        used = n_windows * window_steps
        # (n_windows, n_channels, window_steps) with each per-(window,
        # channel) series contiguous — the layout every reduction below
        # needs for bitwise identity with the 1-D reference path.
        S = np.ascontiguousarray(
            trace.states[:used]
            .reshape(n_windows, window_steps, n_channels)
            .transpose(0, 2, 1)
        )

        blocks: list[np.ndarray] = []
        stds = np.empty((n_windows, n_channels))
        variances = np.empty((n_windows, n_channels))
        centered_all = np.empty((n_windows, n_channels, window_steps))

        for c in range(n_channels):
            states = S[:, c, :]
            n_states = trace.n_states(c)
            if states.size and int(states.max()) >= n_states:
                # The offset bincount below would silently bleed an
                # out-of-range state into the next window's bin block;
                # fail loudly instead (the per-window reference path
                # errors on such traces too, at stack time).
                raise ValueError(
                    f"channel {trace.channel_names[c]!r} contains state "
                    f"{int(states.max())} but only {n_states} frequency "
                    "states are defined."
                )

            # Residency histogram: one bincount over all windows, each
            # window shifted into its own bin block.
            offsets = np.arange(n_windows, dtype=np.int64)[:, None] * n_states
            counts = np.bincount(
                (states + offsets).ravel(), minlength=n_windows * n_states
            ).reshape(n_windows, n_states)
            hist = counts.astype(float)
            hist /= window_steps

            norm = states / max(n_states - 1, 1)
            mean = norm.mean(axis=-1)
            std = norm.std(axis=-1)
            stds[:, c] = std

            diffs = np.diff(states, axis=-1)
            nonzero = diffs != 0
            transition_rate = nonzero.mean(axis=-1)
            up_rate = (diffs > 0).mean(axis=-1)
            abs_jump = np.abs(diffs)
            mean_jump = abs_jump.mean(axis=-1)
            max_jump = abs_jump.max(axis=-1).astype(float)

            mean_dwell, max_dwell_frac = self._dwell_stats_batched(nonzero)

            centered = norm - mean[:, None]
            centered_all[:, c, :] = centered
            var = (centered * centered).sum(axis=-1)
            variances[:, c] = var
            numer = (centered[:, :-1] * centered[:, 1:]).sum(axis=-1)
            autocorr = np.zeros(n_windows)
            valid = var > 1e-12
            if window_steps > 1:
                np.divide(numer, var, out=autocorr, where=valid)

            bands = self._spectral_bands_batched(centered)

            blocks.append(
                np.column_stack(
                    [
                        hist,
                        mean,
                        std,
                        transition_rate,
                        up_rate,
                        mean_jump,
                        max_jump,
                        (states == n_states - 1).mean(axis=-1),
                        (states == 0).mean(axis=-1),
                        (norm < 0.5).mean(axis=-1),
                        mean_dwell,
                        max_dwell_frac,
                        autocorr,
                        bands,
                    ]
                )
            )

        if n_channels > 1:
            idx_a, idx_b = np.triu_indices(n_channels, k=1)
            # Fancy indexing copies → contiguous lines → the per-pair
            # multiply-sum reduces exactly like the 1-D reference.
            ca = centered_all[:, idx_a, :]
            cb = centered_all[:, idx_b, :]
            numer = (ca * cb).sum(axis=-1)
            denom = np.sqrt(variances[:, idx_a] * variances[:, idx_b])
            valid = (stds[:, idx_a] > 1e-9) & (stds[:, idx_b] > 1e-9)
            xcorr = np.zeros_like(numer)
            np.divide(numer, denom, out=xcorr, where=valid)
            np.clip(xcorr, -1.0, 1.0, out=xcorr)
            blocks.append(xcorr)

        temp = trace.temperature_c[:used].reshape(n_windows, window_steps)
        slope = (temp[:, -1] - temp[:, 0]) / max(window_steps - 1, 1)
        blocks.append(
            np.column_stack([temp.mean(axis=-1), temp.std(axis=-1), slope])
        )
        return np.concatenate(
            [b if b.ndim == 2 else b[:, None] for b in blocks], axis=1
        )

    @staticmethod
    def _dwell_stats_batched(nonzero_diffs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-window dwell statistics via flattened run-length arithmetic.

        ``nonzero_diffs`` is the boolean ``(n_windows, window_steps-1)``
        change mask.  Runs never span windows (each window's first step
        starts a run), so run lengths of *all* windows fall out of one
        ``flatnonzero``/``diff`` pass over the flattened mask.
        """
        n_windows, m = nonzero_diffs.shape
        window_steps = m + 1
        starts = np.empty((n_windows, window_steps), dtype=bool)
        starts[:, 0] = True
        starts[:, 1:] = nonzero_diffs
        flat_starts = np.flatnonzero(starts.ravel())
        run_lengths = np.diff(
            np.append(flat_starts, n_windows * window_steps)
        )
        window_of_run = flat_starts // window_steps
        n_runs = np.bincount(window_of_run, minlength=n_windows)
        first_run = np.searchsorted(window_of_run, np.arange(n_windows))
        max_run = np.maximum.reduceat(run_lengths, first_run)
        # Run lengths per window sum to exactly window_steps, so the
        # reference's float mean is exactly window_steps / n_runs.
        mean_dwell = window_steps / n_runs
        max_dwell_frac = max_run / window_steps
        return mean_dwell, max_dwell_frac

    def _spectral_bands_batched(self, centered: np.ndarray) -> np.ndarray:
        """Band energies for all windows of one channel at once.

        ``centered`` is the mean-removed normalised signal,
        ``(n_windows, window_steps)`` contiguous; one batched ``rfft``
        covers every window.
        """
        n_windows = centered.shape[0]
        spectrum = np.abs(np.fft.rfft(centered, axis=-1)) ** 2
        out = np.zeros((n_windows, self.N_SPECTRAL_BANDS))
        if spectrum.shape[-1] <= 1:
            return out
        spectrum = spectrum[:, 1:]  # drop DC
        total = spectrum.sum(axis=-1)
        valid = total > 0
        # Same band boundaries as np.array_split in the reference.
        edges = np.array_split(np.arange(spectrum.shape[-1]), self.N_SPECTRAL_BANDS)
        for b, edge in enumerate(edges):
            if len(edge) == 0:
                continue
            band_sum = spectrum[:, edge[0] : edge[-1] + 1].sum(axis=-1)
            np.divide(band_sum, total, out=out[:, b], where=valid)
        return out


class HpcFeatureExtractor:
    """Convert HPC counter intervals into per-sample feature vectors.

    Every sampling interval becomes one sample (matching the HPC
    dataset's per-interval granularity).  Features combine derived
    architecture-independent rates with log-scaled raw counts.
    """

    #: Derived-rate feature names (computed from counter ratios).
    RATE_FEATURES = (
        "ipc",
        "branch_miss_per_kinst",
        "l1d_mpki",
        "l2_mpki",
        "llc_mpki",
        "dtlb_mpki",
        "itlb_mpki",
        "branch_frac",
        "load_frac",
        "store_frac",
        "frontend_stall_frac",
        "backend_stall_frac",
        "page_fault_rate",
        "context_switch_rate",
    )

    def feature_names(self, trace: HpcTrace) -> list[str]:
        """Names matching :meth:`extract` output order."""
        return list(self.RATE_FEATURES) + [
            f"log_{name}" for name in trace.counter_names
        ]

    @staticmethod
    def _features(counters: np.ndarray, counter_names, dt) -> np.ndarray:
        """Shared feature kernel over a counter matrix.

        ``dt`` is a scalar (one trace) or a per-row vector (bulk path);
        every op is elementwise per row, so stacking traces first and
        extracting once is bitwise identical to extracting per trace.
        """
        idx = {name: i for i, name in enumerate(counter_names)}

        def col(name: str) -> np.ndarray:
            return counters[:, idx[name]]

        instructions = np.maximum(col("instructions"), 1.0)
        cycles = np.maximum(col("cycles"), 1.0)
        kinst = instructions / 1e3

        rates = np.column_stack(
            [
                instructions / cycles,
                col("branch_misses") / kinst,
                col("l1d_misses") / kinst,
                col("l2_misses") / kinst,
                col("llc_misses") / kinst,
                col("dtlb_misses") / kinst,
                col("itlb_misses") / kinst,
                col("branch_instructions") / instructions,
                col("loads") / instructions,
                col("stores") / instructions,
                col("stalled_cycles_frontend") / cycles,
                col("stalled_cycles_backend") / cycles,
                col("page_faults") / dt,
                col("context_switches") / dt,
            ]
        )
        logs = np.log1p(counters)
        return np.hstack([rates, logs])

    def extract(self, trace: HpcTrace) -> np.ndarray:
        """Feature matrix ``(n_intervals, n_features)`` for the trace."""
        return self._features(trace.counters, trace.counter_names, trace.dt)

    def extract_many(self, traces: list[HpcTrace]) -> np.ndarray:
        """Feature matrix for several traces in one whole-tensor pass.

        Counter matrices are stacked once and the feature kernel runs a
        single time over all intervals of all traces — bitwise identical
        to ``np.vstack([self.extract(t) for t in traces])`` because every
        HPC feature is elementwise per interval.  Per-trace sampling
        periods are honoured via a per-row ``dt`` vector.
        """
        if not traces:
            raise ValueError("At least one trace is required.")
        counter_names = traces[0].counter_names
        for trace in traces[1:]:
            if trace.counter_names != counter_names:
                raise ValueError(
                    "All traces must share the same counter layout; got "
                    f"{trace.counter_names} vs {counter_names}."
                )
        counters = (
            traces[0].counters
            if len(traces) == 1
            else np.vstack([t.counters for t in traces])
        )
        dts = np.repeat(
            np.array([t.dt for t in traces]),
            np.array([t.n_intervals for t in traces]),
        )
        return self._features(counters, counter_names, dts)
