"""Feature extraction (S9): sensor traces → classifier feature vectors.

This is the "Feature Extraction" box of the paper's HMD pipeline
(Figs. 1-2):

* :class:`DvfsFeatureExtractor` — one feature vector per *window* of the
  DVFS state time-series: per-channel state residency histograms,
  transition statistics and temperature telemetry.  Matches the style of
  Chawla et al., where a signature summarises several seconds of DVFS
  activity.
* :class:`HpcFeatureExtractor` — one feature vector per *sampling
  interval*: derived per-instruction/per-cycle rates (IPC, MPKI, ...)
  plus log-scaled raw counts.  Matches Zhou et al., where every counter
  sample is a data point (hence the much larger HPC dataset in Table I).
"""

from __future__ import annotations

import numpy as np

from ..sim.trace import DvfsTrace, HpcTrace

__all__ = ["DvfsFeatureExtractor", "HpcFeatureExtractor"]


class DvfsFeatureExtractor:
    """Summarise a DVFS window into a fixed-length feature vector.

    Features per channel: state-residency histogram, normalised
    frequency statistics, transition dynamics (rates, jump sizes, dwell
    lengths), temporal structure (lag-1 autocorrelation, spectral band
    energies) — the kind of time-series summary Chawla et al. derive
    from DVFS state sequences.  Cross-channel correlations and
    temperature telemetry complete the signature.
    """

    #: Number of spectral bands of the normalised frequency signal.
    N_SPECTRAL_BANDS = 4

    _CHANNEL_STATS = (
        "mean_norm_freq",
        "std_norm_freq",
        "transition_rate",
        "up_transition_rate",
        "mean_abs_jump",
        "max_jump",
        "frac_max_state",
        "frac_min_state",
        "frac_low_half",
        "mean_dwell",
        "max_dwell_frac",
        "lag1_autocorr",
    )

    def feature_names(self, trace: DvfsTrace) -> list[str]:
        """Names matching :meth:`extract` output order."""
        names: list[str] = []
        for c, channel in enumerate(trace.channel_names):
            for s in range(trace.n_states(c)):
                names.append(f"{channel}_residency_{s}")
            names.extend(f"{channel}_{stat}" for stat in self._CHANNEL_STATS)
            names.extend(
                f"{channel}_spectral_band_{b}" for b in range(self.N_SPECTRAL_BANDS)
            )
        for a in range(trace.n_channels):
            for b in range(a + 1, trace.n_channels):
                names.append(
                    f"xcorr_{trace.channel_names[a]}_{trace.channel_names[b]}"
                )
        names.extend(["temp_mean", "temp_std", "temp_slope"])
        return names

    @staticmethod
    def _dwell_stats(states: np.ndarray) -> tuple[float, float]:
        """Mean run length and longest-run fraction of the state series."""
        change_points = np.flatnonzero(np.diff(states) != 0)
        boundaries = np.concatenate([[-1], change_points, [len(states) - 1]])
        run_lengths = np.diff(boundaries).astype(float)
        return float(run_lengths.mean()), float(run_lengths.max() / len(states))

    def _spectral_bands(self, norm: np.ndarray) -> list[float]:
        """Energy in N equal-width frequency bands of the signal."""
        spectrum = np.abs(np.fft.rfft(norm - norm.mean())) ** 2
        if len(spectrum) <= 1:
            return [0.0] * self.N_SPECTRAL_BANDS
        spectrum = spectrum[1:]  # drop DC
        total = spectrum.sum()
        if total <= 0:
            return [0.0] * self.N_SPECTRAL_BANDS
        bands = np.array_split(spectrum, self.N_SPECTRAL_BANDS)
        return [float(band.sum() / total) for band in bands]

    def extract(self, trace: DvfsTrace) -> np.ndarray:
        """Feature vector for one DVFS window."""
        feats: list[float] = []
        norms = []
        for c in range(trace.n_channels):
            states = trace.states[:, c]
            n_states = trace.n_states(c)
            hist = np.bincount(states, minlength=n_states).astype(float)
            hist /= len(states)
            feats.extend(hist.tolist())

            norm = states / max(n_states - 1, 1)
            norms.append(norm)
            diffs = np.diff(states)
            transition_rate = float(np.mean(diffs != 0)) if len(diffs) else 0.0
            up_rate = float(np.mean(diffs > 0)) if len(diffs) else 0.0
            mean_jump = float(np.mean(np.abs(diffs))) if len(diffs) else 0.0
            max_jump = float(np.max(np.abs(diffs))) if len(diffs) else 0.0
            mean_dwell, max_dwell_frac = self._dwell_stats(states)
            centered = norm - norm.mean()
            var = float(centered @ centered)
            if var > 1e-12 and len(norm) > 1:
                autocorr = float(centered[:-1] @ centered[1:]) / var
            else:
                autocorr = 0.0
            feats.extend(
                [
                    float(norm.mean()),
                    float(norm.std()),
                    transition_rate,
                    up_rate,
                    mean_jump,
                    max_jump,
                    float(np.mean(states == n_states - 1)),
                    float(np.mean(states == 0)),
                    float(np.mean(norm < 0.5)),
                    mean_dwell,
                    max_dwell_frac,
                    autocorr,
                ]
            )
            feats.extend(self._spectral_bands(norm))

        for a in range(trace.n_channels):
            for b in range(a + 1, trace.n_channels):
                sa, sb = norms[a], norms[b]
                if sa.std() > 1e-9 and sb.std() > 1e-9:
                    feats.append(float(np.corrcoef(sa, sb)[0, 1]))
                else:
                    feats.append(0.0)

        temp = trace.temperature_c
        slope = float((temp[-1] - temp[0]) / max(len(temp) - 1, 1))
        feats.extend([float(temp.mean()), float(temp.std()), slope])
        return np.asarray(feats)

    def extract_windows(self, trace: DvfsTrace, window_steps: int) -> np.ndarray:
        """Split a long trace into windows and extract each.

        Trailing steps that do not fill a whole window are dropped.
        """
        if window_steps < 2:
            raise ValueError("window_steps must be >= 2.")
        n_windows = trace.n_steps // window_steps
        if n_windows == 0:
            raise ValueError(
                f"Trace of {trace.n_steps} steps shorter than one window "
                f"({window_steps})."
            )
        rows = []
        for w in range(n_windows):
            sub = DvfsTrace(
                states=trace.states[w * window_steps : (w + 1) * window_steps],
                frequencies_mhz=trace.frequencies_mhz,
                channel_names=trace.channel_names,
                temperature_c=trace.temperature_c[w * window_steps : (w + 1) * window_steps],
                dt=trace.dt,
                name=trace.name,
            )
            rows.append(self.extract(sub))
        return np.stack(rows)


class HpcFeatureExtractor:
    """Convert HPC counter intervals into per-sample feature vectors.

    Every sampling interval becomes one sample (matching the HPC
    dataset's per-interval granularity).  Features combine derived
    architecture-independent rates with log-scaled raw counts.
    """

    #: Derived-rate feature names (computed from counter ratios).
    RATE_FEATURES = (
        "ipc",
        "branch_miss_per_kinst",
        "l1d_mpki",
        "l2_mpki",
        "llc_mpki",
        "dtlb_mpki",
        "itlb_mpki",
        "branch_frac",
        "load_frac",
        "store_frac",
        "frontend_stall_frac",
        "backend_stall_frac",
        "page_fault_rate",
        "context_switch_rate",
    )

    def feature_names(self, trace: HpcTrace) -> list[str]:
        """Names matching :meth:`extract` output order."""
        return list(self.RATE_FEATURES) + [
            f"log_{name}" for name in trace.counter_names
        ]

    def extract(self, trace: HpcTrace) -> np.ndarray:
        """Feature matrix ``(n_intervals, n_features)`` for the trace."""
        c = {name: trace.column(name) for name in trace.counter_names}
        instructions = np.maximum(c["instructions"], 1.0)
        cycles = np.maximum(c["cycles"], 1.0)
        kinst = instructions / 1e3

        rates = np.column_stack(
            [
                instructions / cycles,
                c["branch_misses"] / kinst,
                c["l1d_misses"] / kinst,
                c["l2_misses"] / kinst,
                c["llc_misses"] / kinst,
                c["dtlb_misses"] / kinst,
                c["itlb_misses"] / kinst,
                c["branch_instructions"] / instructions,
                c["loads"] / instructions,
                c["stores"] / instructions,
                c["stalled_cycles_frontend"] / cycles,
                c["stalled_cycles_backend"] / cycles,
                c["page_faults"] / trace.dt,
                c["context_switches"] / trace.dt,
            ]
        )
        logs = np.log1p(trace.counters)
        return np.hstack([rates, logs])
