"""Fig. 5 — entropy boxplots for the HPC dataset.

Expected shape (the paper's central negative result): the estimated
entropy for the *known* test data is as high as for the unknown data —
the overlapping benign/malware classes make the ensemble uncertain even
in-distribution.  SVM is absent: it fails to converge on the
bootstrapped HPC dataset (reproduced as a :class:`ConvergenceError`
demonstration in :mod:`repro.experiments.claims`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import (
    ENSEMBLE_KINDS,
    ExperimentConfig,
    ExperimentContext,
    boxplot_stats,
    format_table,
)

__all__ = ["Fig5Result", "run_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    """Boxplot statistics per (ensemble, split), HPC dataset."""

    stats: dict

    def rows(self) -> list[list]:
        """Table rows: kind, split, five-number summary."""
        out = []
        for (kind, split), s in self.stats.items():
            out.append(
                [kind, split, s["whisker_low"], s["q1"], s["median"], s["q3"],
                 s["whisker_high"], s["mean"]]
            )
        return out

    def known_unknown_gap(self, kind: str) -> float:
        """Median entropy difference unknown − known (≈0 for HPC)."""
        return (
            self.stats[(kind, "unknown")]["median"]
            - self.stats[(kind, "known")]["median"]
        )

    def as_text(self) -> str:
        """Render the boxplot summary table."""
        table = format_table(
            ["ensemble", "split", "wlow", "q1", "median", "q3", "whigh", "mean"],
            self.rows(),
        )
        note = "(SVM omitted: fails to converge on the bootstrapped HPC data)"
        return f"Fig. 5 — HPC predictive-entropy boxplots\n{table}\n{note}"


def run_fig5(config: ExperimentConfig | None = None,
             context: ExperimentContext | None = None) -> Fig5Result:
    """Compute entropy boxplot statistics on the HPC dataset."""
    ctx = context if context is not None else ExperimentContext(config)
    stats = {}
    for kind in ENSEMBLE_KINDS["hpc"]:
        fitted = ctx.fitted("hpc", kind)
        stats[(kind, "known")] = boxplot_stats(fitted.entropy_test)
        stats[(kind, "unknown")] = boxplot_stats(fitted.entropy_unknown)
    return Fig5Result(stats=stats)
