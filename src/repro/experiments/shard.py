"""Sharded fleet experiment (beyond-paper extension).

Stands up the same simulated device fleet twice — behind a single
:class:`~repro.fleet.engine.FleetMonitor` and behind a
:class:`~repro.fleet.sharding.ShardedFleetMonitor` (K device-hash
routed cores sharing one read-only compiled HMD) — and reports the
drain-throughput ratio, bitwise verdict equivalence, merged-report
consistency, and a mid-stream checkpoint/restore round trip.  With
``--processes K`` the drain also runs through the multi-process
:class:`~repro.fleet.workers.WorkerShardedFleetMonitor` backend and the
in-process and multi-process numbers print side by side.  Adding
``--chaos SEED`` replays the same traffic once more under a seeded
fault-injection campaign (worker kills, hangs, slow drains, shm
corruption) and reports whether the degraded drain stayed bitwise
equivalent and lost nothing.

    python -m repro.experiments shard
    python -m repro.experiments shard --processes 4
    python -m repro.experiments shard --processes 4 --chaos 7
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass

from ..fleet import (
    BackpressurePolicy,
    FaultPlan,
    FleetMonitor,
    FleetWindowSampler,
    ShardedFleetMonitor,
    WorkerShardedFleetMonitor,
    account_windows,
)
from ..fleet.engine import batch_verdict_key, batch_window_keys
from ..fleet.report import device_report_key
from ..hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from ..ml.ensemble import RandomForestClassifier
from ..obs import JsonlExporter, merge_snapshots, summarize_snapshot
from ..sim.workloads import FleetPopulation
from ..uncertainty.trust import TrustedHMD
from .common import (
    ExperimentConfig,
    ExperimentContext,
    format_table,
    resolve_mode,
)

__all__ = ["ShardResult", "run_shard"]


@dataclass(frozen=True)
class ShardResult:
    """Throughput + equivalence summary of the sharding experiment."""

    n_devices: int
    n_windows: int
    n_shards: int
    batch_size: int
    single_wps: float
    sharded_wps: float
    verdicts_identical: bool
    reports_identical: bool
    restore_identical: bool
    n_flagged: int
    n_shed: int
    report_text: str
    n_processes: int | None = None
    mp_wps: float | None = None
    mp_verdicts_identical: bool | None = None
    mp_reports_identical: bool | None = None
    mode: str = "float64"
    chaos_seed: int | None = None
    chaos_wps: float | None = None
    chaos_counts: dict | None = None
    chaos_restarts: int | None = None
    chaos_verdicts_identical: bool | None = None
    chaos_windows_lost: int | None = None
    telemetry_text: str | None = None

    @property
    def speedup(self) -> float:
        """Sharded drain windows/sec over the single monitor's."""
        return self.sharded_wps / self.single_wps if self.single_wps else 0.0

    @property
    def mp_speedup(self) -> float:
        """Multi-process drain windows/sec over the in-process sharded."""
        if self.mp_wps is None or not self.sharded_wps:
            return 0.0
        return self.mp_wps / self.sharded_wps

    @property
    def chaos_ratio(self) -> float:
        """Chaos-campaign drain throughput over the fault-free mp drain."""
        if self.chaos_wps is None or not self.mp_wps:
            return 0.0
        return self.chaos_wps / self.mp_wps

    def as_text(self) -> str:
        """Render the throughput table and the merged fleet dashboard."""
        rows = [
            ["single FleetMonitor", self.single_wps],
            [f"ShardedFleetMonitor (K={self.n_shards})", self.sharded_wps],
        ]
        if self.mp_wps is not None:
            rows.append(
                [
                    f"WorkerShardedFleetMonitor (K={self.n_processes} procs)",
                    self.mp_wps,
                ]
            )
        if self.chaos_wps is not None:
            rows.append(
                [
                    f"  + chaos campaign (seed {self.chaos_seed})",
                    self.chaos_wps,
                ]
            )
        table = format_table(["mode", "drain windows/sec"], rows)
        text = (
            f"Sharded fleet — {self.n_devices} devices, "
            f"{self.n_windows} windows, batch={self.batch_size}, "
            f"mode={self.mode}\n{table}\n"
            f"speedup: {self.speedup:.1f}x   "
            f"verdicts identical: {self.verdicts_identical}   "
            f"reports identical: {self.reports_identical}\n"
            f"snapshot→restore resumes identically: {self.restore_identical}\n"
        )
        if self.mp_wps is not None:
            text += (
                f"multi-process vs in-process: {self.mp_speedup:.1f}x   "
                f"verdicts identical: {self.mp_verdicts_identical}   "
                f"reports identical: {self.mp_reports_identical}\n"
            )
        if self.chaos_wps is not None:
            text += (
                f"chaos campaign {self.chaos_counts} "
                f"(restarts: {self.chaos_restarts}): "
                f"{self.chaos_ratio:.2f}x fault-free throughput   "
                f"verdicts identical: {self.chaos_verdicts_identical}   "
                f"windows lost: {self.chaos_windows_lost}\n"
            )
        rendered = (
            f"{text}"
            f"flagged={self.n_flagged}  shed={self.n_shed}\n\n"
            f"{self.report_text}"
        )
        if self.telemetry_text is not None:
            rendered += f"\n\ntelemetry\n{self.telemetry_text}"
        return rendered


def run_shard(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    n_devices: int = 96,
    windows_per_device: int = 30,
    n_shards: int = 4,
    batch_size: int = 256,
    processes: int | None = None,
    chaos: int | None = None,
    dtype: str = "float64",
    quantized: bool = False,
    telemetry: bool = False,
    telemetry_out=None,
) -> ShardResult:
    """Drain the same fleet traffic unsharded vs. K-sharded.

    With ``processes`` set, the same traffic is additionally drained
    through a :class:`WorkerShardedFleetMonitor` with that many shard
    worker processes, and the in-process vs multi-process drains print
    side by side.  ``chaos`` (requires ``processes``) replays the
    worker drain under a :meth:`FaultPlan.generate` campaign derived
    from that seed and reports degraded throughput, equivalence and
    window accounting.  ``dtype``/``quantized`` select the inference
    precision (all monitors run the same mode, so the equivalence
    checks remain bitwise).  ``telemetry`` drains the sharded (and
    worker) monitors with live metrics registries — the equivalence
    checks against the uninstrumented single monitor then double as
    the telemetry-neutrality check — and renders the merged snapshot
    after the report; ``telemetry_out`` additionally appends it to
    that JSONL path on exit (implies ``telemetry``).
    """
    telemetry = telemetry or telemetry_out is not None
    if chaos is not None and processes is None:
        raise ValueError("chaos requires processes (the faults are injected "
                         "into the worker backend).")
    mode = resolve_mode(dtype, quantized)
    ctx = context if context is not None else ExperimentContext(config)
    cfg = ctx.config
    dataset = ctx.dataset("dvfs")

    # One trusted HMD shared by every core (no PCA: row-independent
    # front keeps batched results bitwise reproducible).
    hmd = TrustedHMD(
        RandomForestClassifier(
            n_estimators=cfg.n_estimators,
            random_state=cfg.seed,
            grower="hist" if mode == "quantized" else "exact",
        ),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)
    hmd.compile(mode=mode)

    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=cfg.seed,
    )
    devices = population.sample(n_devices)
    sampler = FleetWindowSampler(dataset, devices, random_state=cfg.seed)
    arrivals = list(sampler.rounds(windows_per_device))
    policy = BackpressurePolicy(max_pending=len(arrivals) + 1)

    def drive(monitor):
        monitor.register_fleet(devices)
        for device_id, window in arrivals:
            monitor.submit(device_id, window)
        t0 = time.perf_counter()
        batches = monitor.drain()
        return batches, time.perf_counter() - t0

    single = FleetMonitor(hmd, batch_size=batch_size, policy=policy)
    single_batches, single_elapsed = drive(single)

    sharded = ShardedFleetMonitor(
        hmd,
        n_shards=n_shards,
        batch_size=batch_size,
        policy=policy,
        telemetry=telemetry or None,
    )
    sharded_batches, sharded_elapsed = drive(sharded)

    verdicts_identical = batch_verdict_key(sharded_batches) == batch_verdict_key(
        single_batches
    )
    sharded_report = sharded.report()
    reports_identical = device_report_key(sharded_report) == device_report_key(
        single.report()
    )
    telemetry_snapshots = (
        [sharded_report.telemetry] if sharded_report.telemetry else []
    )

    # Checkpoint/restore: snapshot a half-drained fleet, restore it
    # from pickled bytes, and check the remaining drains agree.
    probe = ShardedFleetMonitor(
        hmd, n_shards=n_shards, batch_size=batch_size, policy=policy
    )
    probe.register_fleet(devices)
    for device_id, window in arrivals:
        probe.submit(device_id, window)
    probe.drain(max_batches=1)
    restored = ShardedFleetMonitor.restore(
        hmd, pickle.loads(pickle.dumps(probe.snapshot()))
    )
    restore_identical = batch_verdict_key(restored.drain()) == batch_verdict_key(
        probe.drain()
    )

    n_processes = None
    mp_wps = None
    mp_verdicts_identical = None
    mp_reports_identical = None
    chaos_wps = None
    chaos_counts = None
    chaos_restarts = None
    chaos_verdicts_identical = None
    chaos_windows_lost = None
    if processes is not None:
        with WorkerShardedFleetMonitor(
            hmd,
            n_shards=processes,
            batch_size=batch_size,
            policy=policy,
            telemetry=telemetry or None,
        ) as worker_fleet:
            mp_batches, mp_elapsed = drive(worker_fleet)
            mp_verdicts_identical = batch_verdict_key(
                mp_batches
            ) == batch_verdict_key(single_batches)
            mp_report = worker_fleet.report()
            mp_reports_identical = device_report_key(
                mp_report
            ) == device_report_key(single.report())
            if mp_report.telemetry:
                telemetry_snapshots.append(mp_report.telemetry)
        n_processes = processes
        mp_wps = len(arrivals) / max(mp_elapsed, 1e-9)

        if chaos is not None:
            plan = FaultPlan.generate(
                chaos,
                n_shards=processes,
                crashes=3,
                hangs=1,
                slows=2,
                corruptions=2,
                horizon=max(
                    2, len(arrivals) // (processes * batch_size)
                ),
                slow_seconds=0.01,
                hang_seconds=0.03,
            )
            with WorkerShardedFleetMonitor(
                hmd,
                n_shards=processes,
                batch_size=batch_size,
                policy=policy,
                checkpoint_every=4,
                chaos=plan,
            ) as chaos_fleet:
                chaos_batches, chaos_elapsed = drive(chaos_fleet)
                chaos_verdicts_identical = batch_verdict_key(
                    chaos_batches
                ) == batch_verdict_key(mp_batches)
                chaos_windows_lost = len(
                    account_windows(
                        batch_window_keys(mp_batches),
                        batch_window_keys(chaos_batches),
                        chaos_fleet.quarantine.keys(),
                    )
                )
                chaos_restarts = sum(
                    r.total_restarts for r in chaos_fleet.shard_health()
                )
            chaos_counts = plan.counts()
            chaos_wps = len(arrivals) / max(chaos_elapsed, 1e-9)

    telemetry_text = None
    if telemetry:
        merged_snapshot = merge_snapshots(telemetry_snapshots)
        telemetry_text = summarize_snapshot(merged_snapshot)
        if telemetry_out is not None:
            with JsonlExporter(telemetry_out) as exporter:
                exporter.export(merged_snapshot)

    n_windows = len(arrivals)
    return ShardResult(
        n_devices=n_devices,
        n_windows=n_windows,
        n_shards=n_shards,
        batch_size=batch_size,
        single_wps=n_windows / max(single_elapsed, 1e-9),
        sharded_wps=n_windows / max(sharded_elapsed, 1e-9),
        verdicts_identical=verdicts_identical,
        reports_identical=reports_identical,
        restore_identical=restore_identical,
        n_flagged=sharded.stats.n_flagged,
        n_shed=sum(
            shard.queue.total_shed for shard in sharded.shards
        ),
        report_text=sharded_report.as_text(max_rows=10),
        n_processes=n_processes,
        mp_wps=mp_wps,
        mp_verdicts_identical=mp_verdicts_identical,
        mp_reports_identical=mp_reports_identical,
        mode=mode,
        chaos_seed=chaos,
        chaos_wps=chaos_wps,
        chaos_counts=chaos_counts,
        chaos_restarts=chaos_restarts,
        chaos_verdicts_identical=chaos_verdicts_identical,
        chaos_windows_lost=chaos_windows_lost,
        telemetry_text=telemetry_text,
    )
