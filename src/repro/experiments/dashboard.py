"""Live fleet dashboard experiment (beyond-paper extension).

Stands up a small simulated fleet behind a telemetry-enabled sharded
monitor — in-process :class:`~repro.fleet.sharding.ShardedFleetMonitor`
by default, the multi-process
:class:`~repro.fleet.workers.WorkerShardedFleetMonitor` with
``--processes K`` — and drives the traffic through it in slices,
posting a message burst into :class:`~repro.obs.Dashboard` after each
slice and rendering a frame.  On a TTY the frames redraw in place
(plain ANSI clear-and-home, no curses); headless, the frames are
captured as strings on the result, which is what makes the dashboard
snapshot-testable without a terminal.

    python -m repro.experiments dashboard
    python -m repro.experiments dashboard --processes 4
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from ..fleet import (
    BackpressurePolicy,
    FleetWindowSampler,
    ShardedFleetMonitor,
    WorkerShardedFleetMonitor,
)
from ..hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from ..ml.ensemble import RandomForestClassifier
from ..obs import (
    Dashboard,
    MetricsUpdate,
    ReportUpdate,
    ShardSample,
    ShardsUpdate,
    TraceContext,
    TraceSampler,
    TraceUpdate,
    ansi_frame,
)
from ..sim.workloads import FleetPopulation
from ..uncertainty.trust import TrustedHMD
from .common import ExperimentConfig, ExperimentContext, resolve_mode

__all__ = ["DashboardResult", "run_dashboard"]


@dataclass(frozen=True)
class DashboardResult:
    """Captured dashboard frames plus the drive summary."""

    backend: str
    n_devices: int
    n_windows: int
    n_shards: int
    n_frames: int
    n_messages: int
    n_flagged: int
    n_spans: int
    frames: tuple[str, ...]

    @property
    def final_frame(self) -> str:
        """The last rendered frame (the steady-state view)."""
        return self.frames[-1] if self.frames else ""

    def as_text(self) -> str:
        """The final frame with a one-line drive summary on top."""
        return (
            f"Dashboard drive — {self.backend} backend, {self.n_devices} "
            f"devices, {self.n_windows} windows, K={self.n_shards}, "
            f"{self.n_frames} frames from {self.n_messages} messages, "
            f"{self.n_spans} trace spans\n\n{self.final_frame}"
        )


def _sample_shards(monitor, dashboard: Dashboard) -> None:
    """Post one per-shard health/throughput sample burst."""
    health: dict[int, tuple[str, int]] = {}
    if hasattr(monitor, "shard_health"):
        health = {
            row.shard_id: (row.health.value, row.total_restarts)
            for row in monitor.shard_health()
        }
    rows = []
    for shard in monitor.shards:
        stats = shard.monitor.stats
        state, restarts = health.get(shard.shard_id, ("healthy", 0))
        rows.append(
            ShardSample(
                shard_id=shard.shard_id,
                health=state,
                n_seen=stats.n_seen,
                n_flagged=stats.n_flagged,
                pending=len(shard.queue),
                restarts=restarts,
            )
        )
    dashboard.post(ShardsUpdate(rows=tuple(rows), ts=time.monotonic()))


def _drive(
    monitor,
    tracer: TraceContext,
    dashboard: Dashboard,
    devices,
    arrivals,
    *,
    frames: int,
    refresh: float,
    live: bool,
    stream=None,
) -> list[str]:
    """Feed the traffic in ``frames`` slices, rendering after each."""
    out = stream if stream is not None else sys.stdout
    monitor.register_fleet(devices)
    slices = max(1, int(frames))
    per_slice = max(1, (len(arrivals) + slices - 1) // slices)
    rendered: list[str] = []
    for start in range(0, len(arrivals), per_slice):
        for device_id, window in arrivals[start : start + per_slice]:
            monitor.submit(device_id, window)
        _sample_shards(monitor, dashboard)  # queues loaded, pre-drain
        monitor.drain()
        _sample_shards(monitor, dashboard)
        report = monitor.report()
        dashboard.post(ReportUpdate(report=report, ts=time.monotonic()))
        if report.telemetry:
            dashboard.post(MetricsUpdate(snapshot=report.telemetry))
        dashboard.post(TraceUpdate(summary=tracer.summary()))
        frame = dashboard.render()
        rendered.append(frame)
        if live:
            out.write(ansi_frame(frame) + "\n")
            out.flush()
            if refresh > 0:
                time.sleep(refresh)
    return rendered


def run_dashboard(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    n_devices: int = 48,
    windows_per_device: int = 12,
    n_shards: int = 4,
    batch_size: int = 256,
    processes: int | None = None,
    frames: int = 6,
    refresh: float = 0.0,
    trace_rate: int = 8,
    live: bool | None = None,
    stream=None,
    dtype: str = "float64",
    quantized: bool = False,
) -> DashboardResult:
    """Drive a telemetry-enabled fleet and capture dashboard frames.

    ``live`` defaults to "stdout is a TTY"; pass ``False`` (or any
    non-TTY ``stream``) for headless capture — the returned
    :class:`DashboardResult` carries every rendered frame either way.
    ``trace_rate`` oversamples spans relative to the production 1/1024
    default so short demo drives still populate the latency table.
    """
    mode = resolve_mode(dtype, quantized)
    ctx = context if context is not None else ExperimentContext(config)
    cfg = ctx.config
    dataset = ctx.dataset("dvfs")

    hmd = TrustedHMD(
        RandomForestClassifier(
            n_estimators=cfg.n_estimators,
            random_state=cfg.seed,
            grower="hist" if mode == "quantized" else "exact",
        ),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)
    hmd.compile(mode=mode)

    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=cfg.seed,
    )
    devices = population.sample(n_devices)
    sampler = FleetWindowSampler(dataset, devices, random_state=cfg.seed)
    arrivals = list(sampler.rounds(windows_per_device))
    policy = BackpressurePolicy(max_pending=len(arrivals) + 1)

    tracer = TraceContext(TraceSampler(rate=trace_rate, seed=cfg.seed))
    dashboard = Dashboard()
    if live is None:
        live = stream is None and sys.stdout.isatty()

    if processes is not None:
        backend = "worker"
        with WorkerShardedFleetMonitor(
            hmd,
            n_shards=processes,
            batch_size=batch_size,
            policy=policy,
            telemetry=True,
            tracer=tracer,
        ) as monitor:
            rendered = _drive(
                monitor, tracer, dashboard, devices, arrivals,
                frames=frames, refresh=refresh, live=live, stream=stream,
            )
            n_flagged = monitor.stats.n_flagged
        n_shards = processes
    else:
        backend = "in-process"
        monitor = ShardedFleetMonitor(
            hmd,
            n_shards=n_shards,
            batch_size=batch_size,
            policy=policy,
            telemetry=True,
            tracer=tracer,
        )
        rendered = _drive(
            monitor, tracer, dashboard, devices, arrivals,
            frames=frames, refresh=refresh, live=live, stream=stream,
        )
        n_flagged = monitor.stats.n_flagged

    return DashboardResult(
        backend=backend,
        n_devices=n_devices,
        n_windows=len(arrivals),
        n_shards=n_shards,
        n_frames=len(rendered),
        n_messages=dashboard.n_messages,
        n_flagged=n_flagged,
        n_spans=tracer.n_completed,
        frames=tuple(rendered),
    )
