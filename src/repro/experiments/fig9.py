"""Fig. 9 — ensemble-size convergence and HPC rejection curves.

* **Fig. 9a**: mean predictive entropy of the DVFS RF ensemble as the
  number of base classifiers grows 1→100, for known and unknown data.
  Expected shape: both curves stabilise once M ≳ 20 (the paper's
  guidance that more than ~20 members adds only overhead).
* **Fig. 9b**: % rejected vs. threshold on the HPC dataset for RF and
  LR.  Expected shape: known and unknown curves track each other — the
  rejection mechanism cannot tell them apart because the uncertainty is
  aleatoric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..uncertainty.rejection import rejection_curve
from .common import ENSEMBLE_KINDS, ExperimentConfig, ExperimentContext, format_table

__all__ = ["Fig9aResult", "Fig9bResult", "run_fig9a", "run_fig9b"]

#: Ensemble sizes swept in Fig. 9a.
FIG9A_SIZES = (1, 2, 3, 5, 7, 10, 15, 20, 30, 40, 50, 60, 70, 80, 90, 100)


@dataclass(frozen=True)
class Fig9aResult:
    """Mean entropy vs. ensemble size for known and unknown data."""

    sizes: tuple[int, ...]
    known: tuple[float, ...]
    unknown: tuple[float, ...]

    def rows(self) -> list[list]:
        """One row per ensemble size."""
        return [
            [m, k, u] for m, k, u in zip(self.sizes, self.known, self.unknown)
        ]

    def stabilization_size(self, *, tolerance: float = 0.02) -> int:
        """Smallest M whose mean entropy stays within ``tolerance`` of
        the full-ensemble value for both curves (the paper's ≈20)."""
        final_known, final_unknown = self.known[-1], self.unknown[-1]
        for i, m in enumerate(self.sizes):
            tail_known = np.asarray(self.known[i:])
            tail_unknown = np.asarray(self.unknown[i:])
            if (
                np.all(np.abs(tail_known - final_known) <= tolerance)
                and np.all(np.abs(tail_unknown - final_unknown) <= tolerance)
            ):
                return int(m)
        return int(self.sizes[-1])

    def as_text(self) -> str:
        """Render the convergence table."""
        table = format_table(
            ["n_members", "mean entropy (known)", "mean entropy (unknown)"],
            self.rows(),
        )
        return (
            "Fig. 9a — average entropy vs # base-classifiers (RF, DVFS)\n"
            + table
            + f"\nstabilises at M ≈ {self.stabilization_size()}"
        )


def run_fig9a(config: ExperimentConfig | None = None,
              context: ExperimentContext | None = None,
              *, sizes: tuple[int, ...] = FIG9A_SIZES) -> Fig9aResult:
    """Sweep the effective ensemble size of the fitted DVFS RF."""
    ctx = context if context is not None else ExperimentContext(config)
    fitted = ctx.fitted("dvfs", "rf")
    max_m = len(fitted.ensemble.estimators_)
    sizes = tuple(m for m in sizes if m <= max_m)
    _, X_test, X_unknown = ctx.scaled_splits("dvfs")
    known = fitted.estimator.entropy_vs_ensemble_size(X_test, sizes)
    unknown = fitted.estimator.entropy_vs_ensemble_size(X_unknown, sizes)
    return Fig9aResult(
        sizes=sizes,
        known=tuple(known[m] for m in sizes),
        unknown=tuple(unknown[m] for m in sizes),
    )


@dataclass(frozen=True)
class Fig9bResult:
    """HPC rejection curves per (ensemble, split)."""

    thresholds: tuple[float, ...]
    curves: dict

    def rows(self) -> list[list]:
        """One row per threshold with all curve values."""
        keys = sorted(self.curves)
        return [
            [t] + [float(self.curves[k][i]) for k in keys]
            for i, t in enumerate(self.thresholds)
        ]

    def known_unknown_tracking_error(self, kind: str) -> float:
        """Mean |known − unknown| rejection gap (% points) — small for
        HPC, because the two populations are indistinguishable."""
        known = np.asarray(self.curves[(kind, "known")])
        unknown = np.asarray(self.curves[(kind, "unknown")])
        return float(np.mean(np.abs(known - unknown)))

    def as_text(self) -> str:
        """Render the HPC rejection curves."""
        keys = sorted(self.curves)
        headers = ["threshold"] + [f"{k}-{s}" for k, s in keys]
        return "Fig. 9b — HPC rejected inputs (%) vs entropy threshold\n" + format_table(
            headers, self.rows()
        )


def run_fig9b(config: ExperimentConfig | None = None,
              context: ExperimentContext | None = None) -> Fig9bResult:
    """Sweep rejection thresholds over the HPC ensembles."""
    ctx = context if context is not None else ExperimentContext(config)
    thresholds = ctx.config.fig9b_thresholds
    curves = {}
    for kind in ENSEMBLE_KINDS["hpc"]:
        fitted = ctx.fitted("hpc", kind)
        curves[(kind, "known")] = rejection_curve(fitted.entropy_test, thresholds)
        curves[(kind, "unknown")] = rejection_curve(fitted.entropy_unknown, thresholds)
    return Fig9bResult(thresholds=thresholds, curves=curves)
