"""Ingest-path experiment: raw traces → features → fleet verdicts.

The fleet experiment (:mod:`repro.experiments.fleet`) measures the
*vote* path — its windows are pre-featurised.  This runner measures the
**whole ingest front** the monitor→flag→retrain loop actually pays per
device: raw DVFS trace in, windowed feature extraction, bulk submission
into the fleet queue, batched verdicts out.

The same simulated device traces travel twice:

* **reference path** — per-window feature extraction
  (:meth:`~repro.hmd.features.DvfsFeatureExtractor.extract_windows_reference`)
  and one :meth:`~repro.fleet.FleetMonitor.submit` call per window: the
  ingest front as it stood after PR 3;
* **batched path** — whole-tensor
  :meth:`~repro.hmd.features.DvfsFeatureExtractor.extract_windows` and
  one zero-copy :meth:`~repro.fleet.FleetMonitor.submit_many` block per
  device.

Feature extraction is bitwise identical between the paths, and every
downstream stage is row-independent, so the verdicts must match
bitwise — the runner checks that alongside the throughput ratio.

    python -m repro.experiments ingest
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..fleet import BackpressurePolicy, FleetMonitor
from ..fleet.engine import batch_verdict_key
from ..hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from ..hmd.features import DvfsFeatureExtractor
from ..ml.ensemble import RandomForestClassifier
from ..ml.validation import check_random_state
from ..obs import JsonlExporter, summarize_snapshot
from ..sim.batch import ActivityBatch
from ..sim.power import SocSimulator
from ..sim.trace import DvfsTrace
from ..sim.workloads import FleetPopulation, _generate_batch
from ..uncertainty.trust import TrustedHMD
from .common import (
    ExperimentConfig,
    ExperimentContext,
    format_table,
    resolve_mode,
)

__all__ = ["IngestResult", "run_ingest"]


@dataclass(frozen=True)
class IngestResult:
    """Throughput + equivalence summary of the trace→verdict experiment."""

    n_devices: int
    n_windows: int
    window_steps: int
    batch_size: int
    reference_wps: float
    batched_wps: float
    features_identical: bool
    verdicts_identical: bool
    n_flagged: int
    mode: str = "float64"
    telemetry_text: str | None = None

    @property
    def speedup(self) -> float:
        """Batched trace→verdict throughput over the per-window path."""
        return self.batched_wps / self.reference_wps if self.reference_wps else 0.0

    def as_text(self) -> str:
        """Render the ingest throughput table."""
        table = format_table(
            ["ingest path", "windows/sec"],
            [
                ["per-window extract + per-row submit", self.reference_wps],
                ["batched extract + bulk submit", self.batched_wps],
            ],
        )
        text = (
            f"Ingest front — {self.n_devices} devices, {self.n_windows} "
            f"windows of {self.window_steps} steps (batch={self.batch_size}, "
            f"mode={self.mode})\n"
            f"{table}\n"
            f"speedup: {self.speedup:.1f}x   "
            f"features identical: {self.features_identical}   "
            f"verdicts identical: {self.verdicts_identical}\n"
            f"flagged: {self.n_flagged}"
        )
        if self.telemetry_text is not None:
            text += f"\n\ntelemetry\n{self.telemetry_text}"
        return text


def _device_traces(
    devices, window_steps: int, windows_per_device: int, seed: int
) -> list[tuple[str, DvfsTrace]]:
    """One raw multi-window DVFS trace per device.

    Runs on the batched simulator backend: workload generation is
    grouped by spec and the whole fleet's governor/thermal scan is one
    tensor pass, with one RNG stream per device — bitwise identical to
    the per-device reference loop
    (``WorkloadGenerator(seed * 100 + d).generate`` followed by
    ``SocSimulator(seed + 1).run``).
    """
    devices = list(devices)
    n_steps = windows_per_device * window_steps
    batch = ActivityBatch.empty(
        len(devices), n_steps, 0.05, (d.spec.name for d in devices)
    )
    groups: dict[int, list[int]] = {}
    for pos, device in enumerate(devices):
        groups.setdefault(id(device.spec), []).append(pos)
    for positions in groups.values():
        spec = devices[positions[0]].spec
        rngs = [check_random_state(seed * 100 + p) for p in positions]
        batch.scatter(
            np.asarray(positions), _generate_batch(spec, rngs, n_steps, 0.05)
        )
    soc = SocSimulator(random_state=seed + 1)
    dvfs = soc.run_batch(
        batch, rngs=[check_random_state(seed + 1) for _ in devices]
    )
    return [
        (device.device_id, dvfs.window(i)) for i, device in enumerate(devices)
    ]


def run_ingest(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    n_devices: int = 48,
    windows_per_device: int = 8,
    batch_size: int = 256,
    dtype: str = "float64",
    quantized: bool = False,
    telemetry: bool = False,
    telemetry_out=None,
) -> IngestResult:
    """Screen raw device traces through both ingest fronts.

    ``dtype``/``quantized`` select the inference precision
    (``TrustedHMD.compile`` modes): ``--dtype float32`` narrows the
    front and forest, ``--quantized`` runs the uint8 bin-code kernel
    (implies a hist-grown ensemble and the float64 front).  Both paths
    run the same mode, so the bitwise verdict-equivalence check stays
    meaningful in every mode.

    ``telemetry`` runs the batched front with a live metrics registry
    and renders its snapshot after the throughput table — the verdict
    equivalence check then doubles as the telemetry-neutrality check;
    ``telemetry_out`` additionally appends the snapshot to that JSONL
    path on exit (implies ``telemetry``).
    """
    telemetry = telemetry or telemetry_out is not None
    mode = resolve_mode(dtype, quantized)
    ctx = context if context is not None else ExperimentContext(config)
    cfg = ctx.config
    dataset = ctx.dataset("dvfs")
    window_steps = dataset.metadata.get("window_steps", 240)

    # No PCA: with the scaler-only front every per-window computation is
    # row-independent and bitwise reproducible across batch composition.
    hmd = TrustedHMD(
        RandomForestClassifier(
            n_estimators=cfg.n_estimators,
            random_state=cfg.seed,
            grower="hist" if mode == "quantized" else "exact",
        ),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)
    hmd.compile(mode=mode)

    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=cfg.seed,
    )
    devices = population.sample(n_devices)
    traces = _device_traces(
        devices, window_steps, windows_per_device, seed=cfg.seed
    )
    extractor = DvfsFeatureExtractor()
    n_windows = n_devices * windows_per_device
    policy = BackpressurePolicy(max_pending=n_windows + 1)

    # -- reference: per-window extraction, per-row submission ----------
    reference = FleetMonitor(hmd, batch_size=batch_size, policy=policy)
    t0 = time.perf_counter()
    reference_features = {}
    for device_id, trace in traces:
        X = extractor.extract_windows_reference(trace, window_steps)
        reference_features[device_id] = X
        for row in X:
            reference.submit(device_id, row)
    reference_batches = reference.drain()
    reference_elapsed = time.perf_counter() - t0

    # -- batched: whole-tensor extraction, bulk block submission -------
    batched = FleetMonitor(
        hmd, batch_size=batch_size, policy=policy, telemetry=telemetry or None
    )
    t0 = time.perf_counter()
    batched_features = {}
    for device_id, trace in traces:
        X = extractor.extract_windows(trace, window_steps)
        batched_features[device_id] = X
        batched.submit_many(device_id, X)
    batched_batches = batched.drain()
    batched_elapsed = time.perf_counter() - t0

    features_identical = all(
        np.array_equal(reference_features[d], batched_features[d])
        for d, _ in traces
    )
    verdicts_identical = (
        batch_verdict_key(reference_batches) == batch_verdict_key(batched_batches)
    )
    telemetry_text = None
    if telemetry:
        snapshot = batched.metrics.snapshot()
        telemetry_text = summarize_snapshot(snapshot)
        if telemetry_out is not None:
            with JsonlExporter(telemetry_out) as exporter:
                exporter.export(snapshot)
    return IngestResult(
        n_devices=n_devices,
        n_windows=n_windows,
        window_steps=window_steps,
        batch_size=batch_size,
        reference_wps=n_windows / max(reference_elapsed, 1e-9),
        batched_wps=n_windows / max(batched_elapsed, 1e-9),
        features_identical=features_identical,
        verdicts_identical=verdicts_identical,
        n_flagged=batched.stats.n_flagged,
        mode=mode,
        telemetry_text=telemetry_text,
    )
