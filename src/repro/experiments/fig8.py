"""Fig. 8 — t-SNE of the training + unknown data latent space.

The paper's figure is visual; offline we report the embedding plus
quantitative geometry metrics that capture its conclusion:

* **DVFS** (Fig. 8a): benign and malware form disjoint clusters and the
  unknown data sits away from the training data → high neighbourhood
  purity, positive silhouette, low unknown-to-train affinity;
* **HPC** (Fig. 8b): benign and malware overlap and the unknown data
  falls inside the overlap → purity near the class prior, silhouette
  near zero, unknown-to-train affinity comparable to test data.

Exact t-SNE is O(n²), so embeddings are computed on a stratified
subsample; the scalar geometry metrics use the same subsample for
consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.manifold import TSNE
from ..ml.metrics import (
    centroid_separation_ratio,
    class_overlap_score,
    neighborhood_purity,
    silhouette_score,
)
from ..ml.validation import check_random_state
from .common import ExperimentConfig, ExperimentContext, format_table

__all__ = ["Fig8Result", "run_fig8"]


@dataclass(frozen=True)
class Fig8Result:
    """Embeddings + latent-space geometry metrics for both datasets."""

    embeddings: dict    # {domain: (Y, labels, groups)} groups∈{benign,malware,unknown}
    metrics: dict       # {domain: {metric: value}}

    def rows(self) -> list[list]:
        """One row per (domain, metric)."""
        out = []
        for domain in sorted(self.metrics):
            for name, value in sorted(self.metrics[domain].items()):
                out.append([domain, name, value])
        return out

    def as_text(self) -> str:
        """Render the geometry metric table."""
        table = format_table(["dataset", "metric", "value"], self.rows())
        return (
            "Fig. 8 — latent-space geometry (t-SNE + quantitative metrics)\n"
            + table
            + "\n(disjoint classes -> purity near 1, silhouette > 0; "
            "overlap -> purity near prior, silhouette near 0)"
        )


def _stratified_subsample(
    X: np.ndarray, y: np.ndarray, n_max: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices of a label-stratified subsample of at most ``n_max``."""
    if len(y) <= n_max:
        return np.arange(len(y))
    idx_parts = []
    labels = np.unique(y)
    per_label = n_max // len(labels)
    for label in labels:
        members = np.flatnonzero(y == label)
        take = min(per_label, len(members))
        idx_parts.append(rng.choice(members, size=take, replace=False))
    return np.concatenate(idx_parts)


def run_fig8(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    n_embed: int = 900,
    tsne_iterations: int = 350,
) -> Fig8Result:
    """Embed train+unknown data and quantify class geometry."""
    ctx = context if context is not None else ExperimentContext(config)
    rng = check_random_state(ctx.config.seed)
    embeddings = {}
    metrics = {}
    for domain in ("dvfs", "hpc"):
        ds = ctx.dataset(domain)
        X_train, _, X_unknown = ctx.scaled_splits(domain)

        train_idx = _stratified_subsample(
            X_train, ds.train.y, int(n_embed * 0.7), rng
        )
        unknown_idx = _stratified_subsample(
            X_unknown, ds.unknown.y, n_embed - len(train_idx), rng
        )
        X_sub = np.vstack([X_train[train_idx], X_unknown[unknown_idx]])
        y_sub = np.concatenate([ds.train.y[train_idx], ds.unknown.y[unknown_idx]])
        groups = np.array(
            ["benign" if label == 0 else "malware" for label in ds.train.y[train_idx]]
            + ["unknown"] * len(unknown_idx)
        )

        perplexity = min(30.0, (len(X_sub) - 1) / 3.5)
        tsne = TSNE(
            perplexity=perplexity,
            n_iter=tsne_iterations,
            random_state=ctx.config.seed,
        )
        Y = tsne.fit_transform(X_sub)
        embeddings[domain] = (Y, y_sub, groups)

        train_mask = groups != "unknown"
        Xt, yt = X_sub[train_mask], y_sub[train_mask]
        n_neighbors = min(10, len(yt) - 1)
        metrics[domain] = {
            "train_neighborhood_purity": neighborhood_purity(
                Xt, yt, n_neighbors=n_neighbors
            ),
            "train_class_overlap": class_overlap_score(
                Xt, yt, n_neighbors=n_neighbors
            ),
            "train_silhouette": silhouette_score(Xt, yt),
            "train_centroid_separation": centroid_separation_ratio(Xt, yt),
            "embedding_purity": neighborhood_purity(
                Y[train_mask], yt, n_neighbors=n_neighbors
            ),
            "tsne_kl_divergence": tsne.kl_divergence_,
        }
    return Fig8Result(embeddings=embeddings, metrics=metrics)
