"""Command-line experiment runner.

Regenerate any (or all) of the paper's tables and figures:

    python -m repro.experiments --list
    python -m repro.experiments table1 fig4 claims --dvfs-scale 0.5
    python -m repro.experiments all --dvfs-scale 1.0 --hpc-scale 0.25
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    ExperimentConfig,
    run_counter_budget_ablation,
    ExperimentContext,
    run_claims,
    run_dashboard,
    run_decomposition_ablation,
    run_diversity_ablation,
    run_fig4,
    run_fig5,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_fig9a,
    run_fig9b,
    run_em_extension,
    run_evasion_ablation,
    run_fleet,
    run_governor_ablation,
    run_ingest,
    run_shard,
    run_platt_ablation,
    run_table1,
)

RUNNERS = {
    "table1": run_table1,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "fig8": run_fig8,
    "fig9a": run_fig9a,
    "fig9b": run_fig9b,
    "claims": run_claims,
    "ablation-platt": run_platt_ablation,
    "ablation-decomposition": run_decomposition_ablation,
    "ablation-diversity": run_diversity_ablation,
    "ablation-governor": run_governor_ablation,
    "ablation-evasion": run_evasion_ablation,
    "ablation-counter-budget": run_counter_budget_ablation,
    "extension-em": run_em_extension,
    "fleet": run_fleet,
    "ingest": run_ingest,
    "shard": run_shard,
    "dashboard": run_dashboard,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment names (or 'all'); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--dvfs-scale", type=float, default=0.5,
                        help="fraction of the Table I DVFS counts (1.0 = paper)")
    parser.add_argument("--hpc-scale", type=float, default=0.1,
                        help="fraction of the Table I HPC counts (1.0 = paper)")
    parser.add_argument("--n-estimators", type=int, default=100,
                        help="ensemble size M")
    parser.add_argument("--processes", type=int, default=None, metavar="K",
                        help="shard experiment only: also drain through K "
                             "worker processes and print both backends")
    parser.add_argument("--chaos", type=int, default=None, metavar="SEED",
                        help="shard experiment only (requires --processes): "
                             "replay the worker drain under a seeded "
                             "fault-injection campaign and report degraded "
                             "throughput, equivalence and accounting")
    parser.add_argument("--dtype", choices=("float64", "float32"),
                        default="float64",
                        help="ingest/shard experiments: inference precision "
                             "(float32 narrows the fused front and forest)")
    parser.add_argument("--quantized", action="store_true",
                        help="ingest/shard experiments: hist-grown ensemble "
                             "traversed in uint8 bin codes (float64 front, "
                             "votes identical by construction)")
    parser.add_argument("--telemetry", action="store_true",
                        help="ingest/shard experiments: drain with live "
                             "metrics registries and print the snapshot "
                             "summary after the result")
    parser.add_argument("--telemetry-out", type=str, default=None,
                        metavar="PATH",
                        help="ingest/shard experiments: append the final "
                             "telemetry snapshot to this JSONL file "
                             "(implies --telemetry)")
    parser.add_argument("--frames", type=int, default=None, metavar="N",
                        help="dashboard experiment: number of drive slices "
                             "/ rendered frames (default 6)")
    parser.add_argument("--refresh", type=float, default=None, metavar="S",
                        help="dashboard experiment: pause between live "
                             "frames in seconds (default 0, full speed)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        print("\n".join(RUNNERS))
        return 0

    names = list(RUNNERS) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        print(f"Unknown experiments: {unknown}; use --list.", file=sys.stderr)
        return 2

    config = ExperimentConfig(
        seed=args.seed,
        dvfs_scale=args.dvfs_scale,
        hpc_scale=args.hpc_scale,
        n_estimators=args.n_estimators,
    )
    context = ExperimentContext(config)
    for name in names:
        t0 = time.time()
        kwargs = {}
        if name in ("shard", "dashboard") and args.processes is not None:
            kwargs["processes"] = args.processes
        if name == "shard" and args.chaos is not None:
            kwargs["chaos"] = args.chaos
        if name in ("ingest", "shard", "dashboard"):
            if args.dtype != "float64":
                kwargs["dtype"] = args.dtype
            if args.quantized:
                kwargs["quantized"] = True
        if name in ("ingest", "shard"):
            if args.telemetry:
                kwargs["telemetry"] = True
            if args.telemetry_out is not None:
                kwargs["telemetry_out"] = args.telemetry_out
        if name == "dashboard":
            if args.frames is not None:
                kwargs["frames"] = args.frames
            if args.refresh is not None:
                kwargs["refresh"] = args.refresh
        result = RUNNERS[name](context=context, **kwargs)
        print(f"\n{'=' * 70}\n{name}  [{time.time() - t0:.1f}s]\n{'=' * 70}")
        print(result.as_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
