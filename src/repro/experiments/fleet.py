"""Fleet-scale monitoring experiment (beyond-paper extension).

Stands up a simulated device fleet on the DVFS domain, screens the same
traffic twice — sequentially through the paper's
:class:`~repro.uncertainty.online.OnlineMonitor` (one ensemble pass per
window) and batched through the
:class:`~repro.fleet.engine.FleetMonitor` (one vectorised pass per
batch) — and reports the throughput ratio, verdict equivalence, and the
fleet dashboard view.

    python -m repro.experiments fleet
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..fleet import (
    BackpressurePolicy,
    FleetMonitor,
    FleetWindowSampler,
    batched_verdicts_equal_sequential,
)
from ..hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from ..ml.ensemble import RandomForestClassifier
from ..sim.workloads import FleetPopulation
from ..uncertainty.online import ForensicQueue, OnlineMonitor
from ..uncertainty.trust import TrustedHMD
from .common import ExperimentConfig, ExperimentContext, format_table

__all__ = ["FleetResult", "run_fleet"]


@dataclass(frozen=True)
class FleetResult:
    """Throughput + equivalence summary of the fleet experiment."""

    n_devices: int
    n_windows: int
    batch_size: int
    sequential_wps: float
    batched_wps: float
    verdicts_identical: bool
    n_flagged: int
    n_malware_alerts: int
    n_shed: int
    report_text: str

    @property
    def speedup(self) -> float:
        """Batched windows/sec over sequential windows/sec."""
        return self.batched_wps / self.sequential_wps if self.sequential_wps else 0.0

    def as_text(self) -> str:
        """Render the throughput table and the fleet dashboard."""
        table = format_table(
            ["mode", "windows/sec"],
            [
                ["sequential (OnlineMonitor)", self.sequential_wps],
                [f"batched (FleetMonitor, batch={self.batch_size})", self.batched_wps],
            ],
        )
        return (
            f"Fleet monitoring — {self.n_devices} devices, "
            f"{self.n_windows} windows\n{table}\n"
            f"speedup: {self.speedup:.1f}x   "
            f"verdicts identical: {self.verdicts_identical}\n"
            f"flagged={self.n_flagged}  alerts={self.n_malware_alerts}  "
            f"shed={self.n_shed}\n\n{self.report_text}"
        )


def run_fleet(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    n_devices: int = 64,
    windows_per_device: int = 30,
    batch_size: int = 256,
) -> FleetResult:
    """Screen a simulated fleet sequentially vs. batched."""
    ctx = context if context is not None else ExperimentContext(config)
    cfg = ctx.config
    dataset = ctx.dataset("dvfs")

    # One trusted HMD shared by the fleet.  No PCA: every per-window
    # computation stays row-independent, so batched results are bitwise
    # reproducible against the sequential path.
    hmd = TrustedHMD(
        RandomForestClassifier(
            n_estimators=cfg.n_estimators, random_state=cfg.seed
        ),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)

    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=cfg.seed,
    )
    devices = population.sample(n_devices)
    sampler = FleetWindowSampler(dataset, devices, random_state=cfg.seed)
    arrivals = list(sampler.rounds(windows_per_device))

    # -- sequential baseline: one ensemble pass per window -------------
    sequential = OnlineMonitor(hmd, queue=ForensicQueue())
    t0 = time.perf_counter()
    seq_verdicts = [
        (device_id, sequential.observe(window)) for device_id, window in arrivals
    ]
    sequential_elapsed = time.perf_counter() - t0

    # -- batched fleet engine: one vectorised pass per batch -----------
    fleet = FleetMonitor(
        hmd,
        batch_size=batch_size,
        policy=BackpressurePolicy(max_pending=len(arrivals) + 1),
    )
    fleet.register_fleet(devices)
    t0 = time.perf_counter()
    for device_id, window in arrivals:
        fleet.submit(device_id, window)
    batches = fleet.drain()
    batched_elapsed = time.perf_counter() - t0

    identical = batched_verdicts_equal_sequential(batches, seq_verdicts)
    n_windows = len(arrivals)
    return FleetResult(
        n_devices=n_devices,
        n_windows=n_windows,
        batch_size=batch_size,
        sequential_wps=n_windows / max(sequential_elapsed, 1e-9),
        batched_wps=n_windows / max(batched_elapsed, 1e-9),
        verdicts_identical=identical,
        n_flagged=fleet.stats.n_flagged,
        n_malware_alerts=fleet.stats.n_malware_alerts,
        n_shed=fleet.queue.total_shed,
        report_text=fleet.report().as_text(max_rows=10),
    )
