"""Experiment runners regenerating every table and figure (S13).

One module per paper artifact; see the per-experiment index in
DESIGN.md.  All runners accept a shared :class:`ExperimentContext` so
datasets and fitted ensembles are built once per session.
"""

from .ablations import (
    CounterBudgetResult,
    DecompositionAblationResult,
    DiversityAblationResult,
    EvasionAblationResult,
    GovernorAblationResult,
    PlattAblationResult,
    run_counter_budget_ablation,
    run_decomposition_ablation,
    run_diversity_ablation,
    run_evasion_ablation,
    run_governor_ablation,
    run_platt_ablation,
)
from .claims import Claim, ClaimsResult, demonstrate_hpc_svm_failure, run_claims
from .extension_em import EmExtensionResult, run_em_extension
from .common import (
    ENSEMBLE_KINDS,
    ExperimentConfig,
    ExperimentContext,
    boxplot_stats,
    format_table,
    make_ensemble,
)
from .dashboard import DashboardResult, run_dashboard
from .fleet import FleetResult, run_fleet
from .ingest import IngestResult, run_ingest
from .shard import ShardResult, run_shard
from .fig4 import Fig4Result, run_fig4
from .fig5 import Fig5Result, run_fig5
from .fig7 import Fig7aResult, Fig7bResult, run_fig7a, run_fig7b
from .fig8 import Fig8Result, run_fig8
from .fig9 import Fig9aResult, Fig9bResult, run_fig9a, run_fig9b
from .table1 import Table1Result, run_table1

__all__ = [
    "Claim",
    "ClaimsResult",
    "CounterBudgetResult",
    "DashboardResult",
    "DecompositionAblationResult",
    "DiversityAblationResult",
    "ENSEMBLE_KINDS",
    "EmExtensionResult",
    "EvasionAblationResult",
    "ExperimentConfig",
    "ExperimentContext",
    "Fig4Result",
    "Fig5Result",
    "Fig7aResult",
    "Fig7bResult",
    "Fig8Result",
    "Fig9aResult",
    "Fig9bResult",
    "FleetResult",
    "GovernorAblationResult",
    "IngestResult",
    "ShardResult",
    "PlattAblationResult",
    "Table1Result",
    "boxplot_stats",
    "demonstrate_hpc_svm_failure",
    "format_table",
    "make_ensemble",
    "run_claims",
    "run_counter_budget_ablation",
    "run_dashboard",
    "run_decomposition_ablation",
    "run_diversity_ablation",
    "run_em_extension",
    "run_evasion_ablation",
    "run_fig4",
    "run_fig5",
    "run_fig7a",
    "run_fig7b",
    "run_fig8",
    "run_fig9a",
    "run_fig9b",
    "run_fleet",
    "run_governor_ablation",
    "run_ingest",
    "run_shard",
    "run_platt_ablation",
    "run_table1",
]
