"""Fig. 4 — entropy boxplots for the DVFS dataset.

For each ensemble (RF, LR, SVM) the paper shows the distribution of
predictive entropies on known (test) vs. unknown workloads.  Expected
shape: known entropies concentrate near zero (disjoint training
classes) while unknown entropies sit high (out-of-distribution data),
with the SVM ensemble showing the *least* separation because bagging a
convex learner yields too little diversity.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import (
    ENSEMBLE_KINDS,
    ExperimentConfig,
    ExperimentContext,
    boxplot_stats,
    format_table,
)

__all__ = ["Fig4Result", "run_fig4"]


@dataclass(frozen=True)
class Fig4Result:
    """Boxplot statistics per (ensemble, split)."""

    stats: dict  # {(kind, split): boxplot_stats dict}

    def rows(self) -> list[list]:
        """Table rows: kind, split, five-number summary."""
        out = []
        for (kind, split), s in self.stats.items():
            out.append(
                [kind, split, s["whisker_low"], s["q1"], s["median"], s["q3"],
                 s["whisker_high"], s["mean"]]
            )
        return out

    def separation(self, kind: str) -> float:
        """Median entropy gap (unknown − known) for one ensemble kind."""
        return (
            self.stats[(kind, "unknown")]["median"]
            - self.stats[(kind, "known")]["median"]
        )

    def as_text(self) -> str:
        """Render the boxplot summary table."""
        table = format_table(
            ["ensemble", "split", "wlow", "q1", "median", "q3", "whigh", "mean"],
            self.rows(),
        )
        return f"Fig. 4 — DVFS predictive-entropy boxplots\n{table}"


def run_fig4(config: ExperimentConfig | None = None,
             context: ExperimentContext | None = None) -> Fig4Result:
    """Compute entropy boxplot statistics on the DVFS dataset."""
    ctx = context if context is not None else ExperimentContext(config)
    stats = {}
    for kind in ENSEMBLE_KINDS["dvfs"]:
        fitted = ctx.fitted("dvfs", kind)
        stats[(kind, "known")] = boxplot_stats(fitted.entropy_test)
        stats[(kind, "unknown")] = boxplot_stats(fitted.entropy_unknown)
    return Fig4Result(stats=stats)
