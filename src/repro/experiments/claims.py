"""Programmatic checks of the paper's headline claims (C1-C4).

Each claim is evaluated against the reproduced pipeline with explicit
tolerances.  The tolerances are deliberately looser than the paper's
point estimates — the substrate is a simulator, so the *shape* of each
result (who wins, which side of a threshold) is what must hold, not the
third decimal.

C1  DVFS/RF: some threshold rejects ≥85% of unknown workloads while
    rejecting ≤10% of known ones (paper: 95% / <5% at 0.40).
C2  DVFS/SVM: the SVM ensemble's uncertainty is much worse than RF's —
    at any threshold with ≤10% known rejection it rejects far fewer
    unknowns than RF (paper: only ~40% at threshold 0.04).
C3  HPC: known-data entropy is comparable to unknown-data entropy
    (median gap below 0.15 bits; paper: "as high as").
C4  HPC/RF: rejecting uncertain predictions raises the pooled F1 by
    ≥0.05, driven by precision (paper: 0.84 → ~0.95, precision up,
    recall down).
Plus the Section V.B observation that kernel-SVM training fails to
converge on the (bootstrapped) HPC dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.exceptions import ConvergenceError
from ..ml.metrics import precision_score, recall_score
from ..ml.svm import SVC
from .common import ExperimentConfig, ExperimentContext
from .fig7 import run_fig7a, run_fig7b
from .fig9 import run_fig9b

__all__ = ["Claim", "ClaimsResult", "run_claims", "demonstrate_hpc_svm_failure"]


@dataclass(frozen=True)
class Claim:
    """Outcome of one claim check."""

    claim_id: str
    statement: str
    measured: str
    passed: bool


@dataclass(frozen=True)
class ClaimsResult:
    """All claim outcomes."""

    claims: tuple[Claim, ...]

    def all_passed(self) -> bool:
        """True when every claim check passed."""
        return all(c.passed for c in self.claims)

    def as_text(self) -> str:
        """Render a pass/fail report."""
        lines = ["Paper-claim checks"]
        for c in self.claims:
            status = "PASS" if c.passed else "FAIL"
            lines.append(f"[{status}] {c.claim_id}: {c.statement}")
            lines.append(f"        measured: {c.measured}")
        return "\n".join(lines)


def _best_unknown_rejection(
    fig7a, kind: str, *, max_known: float
) -> tuple[float, float, float]:
    """(threshold, known%, unknown%) maximising unknown rejection subject
    to the known-rejection budget."""
    best = (None, None, -1.0)
    for i, t in enumerate(fig7a.thresholds):
        known = float(fig7a.curves[(kind, "known")][i])
        unknown = float(fig7a.curves[(kind, "unknown")][i])
        if known <= max_known and unknown > best[2]:
            best = (float(t), known, unknown)
    if best[0] is None:
        return (float("nan"), float("nan"), 0.0)
    return best


def run_claims(config: ExperimentConfig | None = None,
               context: ExperimentContext | None = None) -> ClaimsResult:
    """Evaluate claims C1-C4 on the reproduced pipeline."""
    ctx = context if context is not None else ExperimentContext(config)
    claims: list[Claim] = []

    fig7a = run_fig7a(context=ctx)
    fig7b = run_fig7b(context=ctx)
    fig9b = run_fig9b(context=ctx)

    # ---- C1: DVFS RF detects the bulk of unknown workloads ------------
    t_rf, known_rf, unknown_rf = _best_unknown_rejection(fig7a, "rf", max_known=10.0)
    claims.append(
        Claim(
            claim_id="C1",
            statement="DVFS/RF rejects >=85% unknown at <=10% known rejection",
            measured=(
                f"threshold={t_rf:.2f}: known={known_rf:.1f}%, "
                f"unknown={unknown_rf:.1f}%"
            ),
            passed=unknown_rf >= 85.0,
        )
    )

    # ---- C2: SVM ensemble uncertainty is poor --------------------------
    _, known_svm, unknown_svm = _best_unknown_rejection(fig7a, "svm", max_known=10.0)
    claims.append(
        Claim(
            claim_id="C2",
            statement="DVFS/SVM detects far fewer unknowns than RF at the same known budget",
            measured=(
                f"svm unknown={unknown_svm:.1f}% vs rf unknown={unknown_rf:.1f}% "
                f"(both at <=10% known)"
            ),
            passed=unknown_svm <= unknown_rf - 20.0,
        )
    )

    # ---- C3: HPC known entropy comparable to unknown -------------------
    hpc_rf = ctx.fitted("hpc", "rf")
    med_known = float(np.median(hpc_rf.entropy_test))
    med_unknown = float(np.median(hpc_rf.entropy_unknown))
    gap = abs(med_unknown - med_known)
    tracking = fig9b.known_unknown_tracking_error("rf")
    claims.append(
        Claim(
            claim_id="C3",
            statement="HPC known-data entropy is as high as unknown-data entropy",
            measured=(
                f"median known={med_known:.3f}, unknown={med_unknown:.3f}, "
                f"|gap|={gap:.3f}; rejection curves track within "
                f"{tracking:.1f} %pts"
            ),
            passed=gap <= 0.15 and med_known >= 0.25,
        )
    )

    # ---- C4: rejection raises HPC F1 via precision ----------------------
    ds_hpc = ctx.dataset("hpc")
    y_pool = np.concatenate([ds_hpc.test.y, ds_hpc.unknown.y])
    pred_pool = np.concatenate(
        [hpc_rf.predictions_test, hpc_rf.predictions_unknown]
    )
    ent_pool = np.concatenate([hpc_rf.entropy_test, hpc_rf.entropy_unknown])
    baseline_f1 = fig7b.final_f1("hpc")
    best_f1 = fig7b.best_f1("hpc")

    baseline_precision = precision_score(y_pool, pred_pool)
    baseline_recall = recall_score(y_pool, pred_pool)
    # Operating point: the threshold achieving the best accepted-subset
    # F1 (with at least 2% of the pool accepted, to avoid tiny-sample
    # artifacts).
    candidates = [
        r for r in fig7b.hpc_rows
        if r["f1"] is not None and r["accepted_frac"] >= 0.02
    ]
    strict = max(candidates, key=lambda r: r["f1"])
    accepted = ent_pool <= strict["threshold"]
    strict_precision = precision_score(y_pool[accepted], pred_pool[accepted])
    strict_recall_pool = float(
        np.sum((pred_pool == 1) & (y_pool == 1) & accepted)
        / max(np.sum(y_pool == 1), 1)
    )
    claims.append(
        Claim(
            claim_id="C4",
            statement="HPC/RF: rejection raises F1 by >=0.05 via precision, recall (on full pool) drops",
            measured=(
                f"f1 {baseline_f1:.3f} -> {best_f1:.3f}; precision "
                f"{baseline_precision:.3f} -> {strict_precision:.3f}; "
                f"pool recall {baseline_recall:.3f} -> {strict_recall_pool:.3f}"
            ),
            passed=(
                best_f1 >= baseline_f1 + 0.05
                and strict_precision > baseline_precision
                and strict_recall_pool < baseline_recall
            ),
        )
    )

    return ClaimsResult(claims=tuple(claims))


def demonstrate_hpc_svm_failure(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    n_samples: int = 1500,
    max_iter: int = 8,
) -> bool:
    """Reproduce "SVM failed to converge using the bootstrapped dataset".

    Fits a kernel SVM with a strict convergence budget on a bootstrap
    replicate of the HPC training data; returns True when the expected
    :class:`ConvergenceError` is raised.
    """
    ctx = context if context is not None else ExperimentContext(config)
    ds = ctx.dataset("hpc")
    X_train, _, _ = ctx.scaled_splits("hpc")
    rng = np.random.default_rng(ctx.config.seed)
    n = min(n_samples, len(ds.train.y))
    idx = rng.integers(0, len(ds.train.y), size=n)  # bootstrap replicate
    svc = SVC(max_iter=max_iter, on_no_convergence="raise", random_state=0)
    try:
        svc.fit(X_train[idx], ds.train.y[idx])
    except ConvergenceError:
        return True
    return False
