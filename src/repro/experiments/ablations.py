"""Ablation studies A1-A3 (reproduction-original analyses).

A1  **Platt scaling vs. ensemble entropy** — Section II.E argues that a
    Platt-calibrated probability is *not* model confidence: a single
    model can emit a confident sigmoid output on data it knows nothing
    about.  We score both signals as unknown-workload detectors
    (ROC-AUC of separating known-test from unknown inputs on the DVFS
    dataset) — ensemble entropy should win decisively.
A2  **Uncertainty decomposition** — the paper's future work: separate
    aleatoric from epistemic uncertainty.  Expected: unknown-DVFS
    uncertainty is epistemic-dominated; HPC uncertainty is aleatoric-
    dominated for both known and unknown data.
A3  **Ensemble diversity** — the mechanism behind C2: sweep the
    bootstrap replicate size and compare base-classifier families by
    the diversity of their members (mean pairwise disagreement) and the
    resulting unknown-detection AUC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.calibration import CalibratedClassifier
from ..ml.ensemble import BaggingClassifier
from ..ml.linear import LogisticRegression
from ..ml.metrics import roc_auc_score
from ..ml.svm import LinearSVC
from ..ml.tree import DecisionTreeClassifier
from ..uncertainty.decomposition import decompose_uncertainty
from ..uncertainty.estimator import EnsembleUncertaintyEstimator
from .common import ExperimentConfig, ExperimentContext, format_table

__all__ = [
    "PlattAblationResult",
    "DecompositionAblationResult",
    "DiversityAblationResult",
    "CounterBudgetResult",
    "EvasionAblationResult",
    "GovernorAblationResult",
    "run_platt_ablation",
    "run_decomposition_ablation",
    "run_diversity_ablation",
    "run_counter_budget_ablation",
    "run_evasion_ablation",
    "run_governor_ablation",
]


def _unknown_detection_auc(score_known: np.ndarray, score_unknown: np.ndarray) -> float:
    """AUC of separating unknown (positive) from known by a score."""
    y = np.concatenate([np.zeros(len(score_known)), np.ones(len(score_unknown))])
    s = np.concatenate([score_known, score_unknown])
    return roc_auc_score(y, s)


# ----------------------------------------------------------------------
# A1: Platt scaling vs ensemble entropy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PlattAblationResult:
    """Unknown-detection AUC of each uncertainty signal (DVFS)."""

    entropy_auc: float
    platt_auc: float
    platt_confidence_known: float
    platt_confidence_unknown: float

    def entropy_wins(self) -> bool:
        """True when ensemble entropy beats Platt confidence."""
        return self.entropy_auc > self.platt_auc

    def as_text(self) -> str:
        """Render the comparison."""
        rows = [
            ["ensemble entropy", self.entropy_auc],
            ["platt (1 - confidence)", self.platt_auc],
        ]
        return (
            "Ablation A1 — unknown-workload detection AUC (DVFS)\n"
            + format_table(["signal", "auc"], rows)
            + f"\nmean Platt confidence: known={self.platt_confidence_known:.3f}, "
            f"unknown={self.platt_confidence_unknown:.3f} "
            "(high confidence on unknowns = the paper's warning)"
        )


def run_platt_ablation(config: ExperimentConfig | None = None,
                       context: ExperimentContext | None = None) -> PlattAblationResult:
    """Compare ensemble entropy with Platt-scaled confidence on DVFS."""
    ctx = context if context is not None else ExperimentContext(config)
    ds = ctx.dataset("dvfs")
    X_train, X_test, X_unknown = ctx.scaled_splits("dvfs")

    fitted = ctx.fitted("dvfs", "rf")
    entropy_auc = _unknown_detection_auc(fitted.entropy_test, fitted.entropy_unknown)

    platt = CalibratedClassifier(
        LinearSVC(max_iter=200), random_state=ctx.config.seed
    )
    platt.fit(X_train, ds.train.y)
    conf_known = platt.confidence(X_test)
    conf_unknown = platt.confidence(X_unknown)
    # Uncertainty signal = 1 - confidence.
    platt_auc = _unknown_detection_auc(1.0 - conf_known, 1.0 - conf_unknown)

    return PlattAblationResult(
        entropy_auc=float(entropy_auc),
        platt_auc=float(platt_auc),
        platt_confidence_known=float(conf_known.mean()),
        platt_confidence_unknown=float(conf_unknown.mean()),
    )


# ----------------------------------------------------------------------
# A2: uncertainty decomposition
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DecompositionAblationResult:
    """Mean total/aleatoric/epistemic per (domain, split)."""

    rows_: tuple  # (domain, split, total, aleatoric, epistemic)

    def rows(self) -> list[list]:
        """Table rows."""
        return [list(r) for r in self.rows_]

    def mean_epistemic(self, domain: str, split: str) -> float:
        """Mean epistemic term for one (domain, split)."""
        for d, s, _, _, epi in self.rows_:
            if d == domain and s == split:
                return epi
        raise KeyError((domain, split))

    def mean_aleatoric(self, domain: str, split: str) -> float:
        """Mean aleatoric term for one (domain, split)."""
        for d, s, _, ale, _ in self.rows_:
            if d == domain and s == split:
                return ale
        raise KeyError((domain, split))

    def as_text(self) -> str:
        """Render the decomposition table."""
        return (
            "Ablation A2 — uncertainty decomposition (mean bits)\n"
            + format_table(
                ["dataset", "split", "total", "aleatoric", "epistemic"],
                self.rows(),
            )
        )


def run_decomposition_ablation(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    min_samples_leaf: int = 15,
) -> DecompositionAblationResult:
    """Decompose RF uncertainty into aleatoric/epistemic on both datasets.

    Uses a dedicated forest with smoothed leaves (``min_samples_leaf``):
    fully-grown trees have pure leaves whose one-hot probabilities carry
    no aleatoric signal, so the default figure-ensembles cannot be
    reused here.
    """
    from ..ml.ensemble import RandomForestClassifier

    ctx = context if context is not None else ExperimentContext(config)
    rows = []
    for domain in ("dvfs", "hpc"):
        ds = ctx.dataset(domain)
        X_train, X_test, X_unknown = ctx.scaled_splits(domain)
        ensemble = RandomForestClassifier(
            n_estimators=min(ctx.config.n_estimators, 50),
            min_samples_leaf=min_samples_leaf,
            random_state=ctx.config.seed,
        )
        ensemble.fit(X_train, ds.train.y)
        for split, X in (("known", X_test), ("unknown", X_unknown)):
            dec = decompose_uncertainty(ensemble, X)
            rows.append(
                (
                    domain,
                    split,
                    float(dec.total.mean()),
                    float(dec.aleatoric.mean()),
                    float(dec.epistemic.mean()),
                )
            )
    return DecompositionAblationResult(rows_=tuple(rows))


# ----------------------------------------------------------------------
# A3: ensemble diversity
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DiversityAblationResult:
    """Diversity and unknown-detection AUC per configuration."""

    rows_: tuple  # (base, max_samples, diversity, auc)

    def rows(self) -> list[list]:
        """Table rows."""
        return [list(r) for r in self.rows_]

    def diversity(self, base: str, max_samples: float) -> float:
        """Member disagreement for one configuration."""
        for b, ms, div, _ in self.rows_:
            if b == base and ms == max_samples:
                return div
        raise KeyError((base, max_samples))

    def auc(self, base: str, max_samples: float) -> float:
        """Unknown-detection AUC for one configuration."""
        for b, ms, _, auc in self.rows_:
            if b == base and ms == max_samples:
                return auc
        raise KeyError((base, max_samples))

    def as_text(self) -> str:
        """Render the diversity sweep."""
        return (
            "Ablation A3 — ensemble diversity vs unknown-detection quality (DVFS)\n"
            + format_table(
                ["base", "max_samples", "member_disagreement", "unknown_auc"],
                self.rows(),
            )
        )


def _member_disagreement(votes: np.ndarray) -> float:
    """Mean pairwise disagreement between ensemble members."""
    n, m = votes.shape
    if m < 2:
        return 0.0
    agree = 0.0
    pairs = 0
    for i in range(m):
        for j in range(i + 1, m):
            agree += float(np.mean(votes[:, i] == votes[:, j]))
            pairs += 1
    return 1.0 - agree / pairs


def run_diversity_ablation(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    n_estimators: int = 25,
    max_samples_grid: tuple[float, ...] = (0.3, 0.6, 1.0),
) -> DiversityAblationResult:
    """Sweep bootstrap size × base family; measure diversity and AUC."""
    ctx = context if context is not None else ExperimentContext(config)
    ds = ctx.dataset("dvfs")
    X_train, X_test, X_unknown = ctx.scaled_splits("dvfs")

    bases = {
        "tree": DecisionTreeClassifier(),
        "logreg": LogisticRegression(max_iter=100),
        "linsvm": LinearSVC(max_iter=200),
    }
    rows = []
    for base_name, prototype in bases.items():
        for max_samples in max_samples_grid:
            bag = BaggingClassifier(
                prototype,
                n_estimators=n_estimators,
                max_samples=max_samples,
                random_state=ctx.config.seed,
            )
            bag.fit(X_train, ds.train.y)
            estimator = EnsembleUncertaintyEstimator(bag)
            votes_unknown = estimator.member_votes(X_unknown)
            diversity = _member_disagreement(votes_unknown)
            auc = _unknown_detection_auc(
                estimator.predictive_entropy(X_test),
                estimator.predictive_entropy(X_unknown),
            )
            rows.append((base_name, float(max_samples), diversity, float(auc)))
    return DiversityAblationResult(rows_=tuple(rows))


# ----------------------------------------------------------------------
# A4: sensor / governor choice
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GovernorAblationResult:
    """Detector quality per DVFS governor policy."""

    rows_: tuple  # (governor, f1, unknown_auc)

    def rows(self) -> list[list]:
        """Table rows."""
        return [list(r) for r in self.rows_]

    def f1(self, governor: str) -> float:
        """Known-test F1 under one governor."""
        for g, f1, _ in self.rows_:
            if g == governor:
                return f1
        raise KeyError(governor)

    def unknown_auc(self, governor: str) -> float:
        """Unknown-detection AUC under one governor."""
        for g, _, auc in self.rows_:
            if g == governor:
                return auc
        raise KeyError(governor)

    def as_text(self) -> str:
        """Render the governor comparison."""
        return (
            "Ablation A4 — DVFS governor choice vs detector quality\n"
            + format_table(["governor", "known f1", "unknown_auc"], self.rows())
            + "\n(performance governor pins max states -> signature destroyed)"
        )


def run_governor_ablation(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    n_estimators: int = 40,
) -> GovernorAblationResult:
    """Compare HMD quality under ondemand / conservative / performance.

    The DVFS signal only exists because the governor reacts to workload
    dynamics; pinning the frequency (performance governor) removes the
    modulation and collapses detector quality — the sensor-selection
    point the paper makes in Section III.C.
    """
    from ..data import build_dvfs_dataset
    from ..ml.ensemble import RandomForestClassifier
    from ..ml.metrics import f1_score
    from ..ml.preprocessing import StandardScaler
    from ..sim.power import ConservativeGovernor, OndemandGovernor, PerformanceGovernor

    ctx = context if context is not None else ExperimentContext(config)
    scale = ctx.config.dvfs_scale
    governors = {
        "ondemand": OndemandGovernor(),
        "conservative": ConservativeGovernor(),
        "performance": PerformanceGovernor(),
    }
    rows = []
    for name, governor in governors.items():
        ds = build_dvfs_dataset(seed=ctx.config.seed, scale=scale, governor=governor)
        scaler = StandardScaler().fit(ds.train.X)
        X_train = scaler.transform(ds.train.X)
        X_test = scaler.transform(ds.test.X)
        X_unknown = scaler.transform(ds.unknown.X)
        ensemble = RandomForestClassifier(
            n_estimators=n_estimators, random_state=ctx.config.seed
        ).fit(X_train, ds.train.y)
        estimator = EnsembleUncertaintyEstimator(ensemble)
        f1 = f1_score(ds.test.y, estimator.predict(X_test))
        auc = _unknown_detection_auc(
            estimator.predictive_entropy(X_test),
            estimator.predictive_entropy(X_unknown),
        )
        rows.append((name, float(f1), float(auc)))
    return GovernorAblationResult(rows_=tuple(rows))


# ----------------------------------------------------------------------
# A5: adversarial mimicry (evasion) vs uncertainty
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EvasionAblationResult:
    """Detector behaviour on mimicry malware per stealth level."""

    rows_: tuple  # (stealth, detected_frac, mean_entropy, flagged_frac, caught_frac)
    threshold: float

    def rows(self) -> list[list]:
        """Table rows."""
        return [list(r) for r in self.rows_]

    def detected(self, stealth: float) -> float:
        """Fraction classified malware at a stealth level."""
        for s, det, _, _, _ in self.rows_:
            if abs(s - stealth) < 1e-9:
                return det
        raise KeyError(stealth)

    def caught(self, stealth: float) -> float:
        """Fraction either detected or flagged uncertain."""
        for s, _, _, _, c in self.rows_:
            if abs(s - stealth) < 1e-9:
                return c
        raise KeyError(stealth)

    def as_text(self) -> str:
        """Render the evasion sweep."""
        return (
            "Ablation A5 — mimicry evasion vs uncertainty (DVFS, RF)\n"
            + format_table(
                ["stealth", "detected", "mean_entropy", "flagged", "caught"],
                self.rows(),
            )
            + f"\n(threshold={self.threshold:.2f}; caught = detected as malware "
            "OR flagged uncertain)"
        )


def run_evasion_ablation(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    stealth_levels: tuple[float, ...] = (0.0, 0.3, 0.5, 0.7, 0.9),
    threshold: float = 0.40,
    n_windows: int = 60,
) -> EvasionAblationResult:
    """Mimicry attack on the DVFS HMD: ransomware imitating a browser.

    For each stealth level the attacker pads the ransomware schedule
    with browser-like phases (``blend_specs``).  Reported per level:
    the fraction still *detected* as malware, the mean predictive
    entropy, the fraction *flagged* uncertain, and the union (*caught*)
    — the security-relevant quantity for the trusted HMD.

    Expected shape: plain detection decays as stealth rises, but the
    blended behaviour is unlike any training app, so entropy rises and
    the flagged fraction compensates — the trusted HMD degrades to
    "suspicious, needs analyst" instead of silently passing the attack.
    """
    from ..hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE
    from ..hmd.features import DvfsFeatureExtractor
    from ..sim.power import SocSimulator
    from ..sim.workloads import WorkloadGenerator, blend_specs

    ctx = context if context is not None else ExperimentContext(config)
    ds = ctx.dataset("dvfs")
    fitted = ctx.fitted("dvfs", "rf")

    from ..ml.preprocessing import StandardScaler

    scaler = StandardScaler().fit(ds.train.X)
    window_steps = ds.metadata.get("window_steps", 240)
    extractor = DvfsFeatureExtractor()
    ransomware = next(s for s in DVFS_KNOWN_MALWARE if s.name == "ransomware")
    browser = next(s for s in DVFS_KNOWN_BENIGN if s.name == "browser")

    rows = []
    for stealth in stealth_levels:
        spec = (
            ransomware
            if stealth == 0.0
            else blend_specs(ransomware, browser, stealth)
        )
        generator = WorkloadGenerator(
            dt=0.05, random_state=ctx.config.seed + int(stealth * 100)
        )
        soc = SocSimulator(random_state=ctx.config.seed + 1)
        windows = []
        for _ in range(n_windows):
            activity = generator.generate(spec, window_steps)
            windows.append(extractor.extract(soc.run(activity)))
        X = scaler.transform(np.stack(windows))

        predictions, entropy = fitted.estimator.predict_with_uncertainty(X)
        detected = float(np.mean(predictions == 1))
        flagged = float(np.mean(entropy > threshold))
        caught = float(np.mean((predictions == 1) | (entropy > threshold)))
        rows.append(
            (float(stealth), detected, float(entropy.mean()), flagged, caught)
        )
    return EvasionAblationResult(rows_=tuple(rows), threshold=threshold)


# ----------------------------------------------------------------------
# A6: HPC counter budget (feature selection)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CounterBudgetResult:
    """Detector quality vs number of selected HPC features."""

    rows_: tuple  # (k, f1, known_entropy_median, ece)
    selected_features: tuple[str, ...]

    def rows(self) -> list[list]:
        """Table rows."""
        return [list(r) for r in self.rows_]

    def f1(self, k: int) -> float:
        """Known-test F1 with the top-k features."""
        for kk, f1, _, _ in self.rows_:
            if kk == k:
                return f1
        raise KeyError(k)

    def as_text(self) -> str:
        """Render the counter-budget sweep."""
        return (
            "Ablation A6 — HPC feature budget (top-k by mutual information)\n"
            + format_table(
                ["k", "known f1", "known entropy median", "ece"], self.rows()
            )
            + "\ntop features: " + ", ".join(self.selected_features[:8])
        )


def run_counter_budget_ablation(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    budgets: tuple[int, ...] = (4, 8, 16, 30),
    n_estimators: int = 40,
) -> CounterBudgetResult:
    """Sweep the number of HPC features available to the detector.

    Real HPC hardware multiplexes a handful of counters; the HMD
    literature asks how small the counter set can be.  We rank features
    by mutual information and retrain at several budgets, reporting
    accuracy, residual uncertainty and calibration.
    """
    from ..ml.ensemble import RandomForestClassifier
    from ..ml.feature_selection import SelectKBest, mutual_info_classif
    from ..ml.metrics import f1_score
    from ..uncertainty.entropy import shannon_entropy
    from ..uncertainty.reliability import expected_calibration_error

    ctx = context if context is not None else ExperimentContext(config)
    ds = ctx.dataset("hpc")
    X_train, X_test, _ = ctx.scaled_splits("hpc")
    n_features = X_train.shape[1]

    ranker = SelectKBest(mutual_info_classif, k="all").fit(X_train, ds.train.y)
    order = np.argsort(-ranker.scores_)
    names = tuple(ds.feature_names[i] for i in order)

    rows = []
    for k in budgets:
        k = min(k, n_features)
        keep = order[:k]
        ensemble = RandomForestClassifier(
            n_estimators=n_estimators, random_state=ctx.config.seed
        ).fit(X_train[:, keep], ds.train.y)
        estimator = EnsembleUncertaintyEstimator(ensemble)
        predictions, entropy = estimator.predict_with_uncertainty(X_test[:, keep])
        dist = ensemble.vote_distribution(X_test[:, keep])
        rows.append(
            (
                int(k),
                float(f1_score(ds.test.y, predictions)),
                float(np.median(entropy)),
                float(
                    expected_calibration_error(ds.test.y, dist, ensemble.classes_)
                ),
            )
        )
    return CounterBudgetResult(rows_=tuple(rows), selected_features=names)
