"""Extension E1 — applying the framework to an EM side-channel HMD.

The paper's introduction names three hardware signal families used for
HMDs (HPC, EM emissions, power management) but evaluates only two.
This extension closes the triangle: the same application catalogue is
observed through a simulated electromagnetic channel
(:mod:`repro.sim.em`) and pushed through the identical
ensemble-uncertainty pipeline.

Finding (recorded in EXPERIMENTS.md): the EM channel sits *between*
the two paper datasets — classes separate well enough for accurate
classification (F1 ≳ 0.95, like DVFS) but the spectral measurement
noise injects more data uncertainty than the governor signal, so known
workloads carry moderate entropy and the unknown-detection operating
points are weaker than DVFS yet far better than HPC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import build_em_dataset
from ..ml.ensemble import RandomForestClassifier
from ..ml.metrics import f1_score, roc_auc_score
from ..ml.preprocessing import StandardScaler
from ..uncertainty.estimator import EnsembleUncertaintyEstimator
from .common import ExperimentConfig, ExperimentContext, boxplot_stats, format_table

__all__ = ["EmExtensionResult", "run_em_extension"]


@dataclass(frozen=True)
class EmExtensionResult:
    """Entropy statistics and detection quality on the EM channel."""

    known_stats: dict
    unknown_stats: dict
    f1_known: float
    unknown_auc: float
    rejection_at: dict  # {threshold: (known %, unknown %)}

    def separation(self) -> float:
        """Median entropy gap, unknown − known."""
        return self.unknown_stats["median"] - self.known_stats["median"]

    def as_text(self) -> str:
        """Render the extension report."""
        rows = [
            ["known"] + [self.known_stats[k] for k in ("q1", "median", "q3", "mean")],
            ["unknown"] + [self.unknown_stats[k] for k in ("q1", "median", "q3", "mean")],
        ]
        table = format_table(["split", "q1", "median", "q3", "mean"], rows)
        rej = "\n".join(
            f"  thr={t:.2f}: known {k:.1f}%, unknown {u:.1f}%"
            for t, (k, u) in sorted(self.rejection_at.items())
        )
        return (
            "Extension E1 — EM side-channel HMD under the uncertainty framework\n"
            + table
            + f"\nknown-data F1 = {self.f1_known:.3f}, "
            f"unknown-detection AUC = {self.unknown_auc:.3f}\n"
            + rej
        )


def run_em_extension(
    config: ExperimentConfig | None = None,
    context: ExperimentContext | None = None,
    *,
    thresholds: tuple[float, ...] = (0.2, 0.3, 0.4, 0.5),
) -> EmExtensionResult:
    """Run the full uncertainty pipeline on the EM dataset."""
    ctx = context if context is not None else ExperimentContext(config)
    dataset = build_em_dataset(seed=ctx.config.seed, scale=ctx.config.dvfs_scale)

    scaler = StandardScaler().fit(dataset.train.X)
    X_train = scaler.transform(dataset.train.X)
    X_test = scaler.transform(dataset.test.X)
    X_unknown = scaler.transform(dataset.unknown.X)

    ensemble = RandomForestClassifier(
        n_estimators=ctx.config.n_estimators, random_state=ctx.config.seed
    ).fit(X_train, dataset.train.y)
    estimator = EnsembleUncertaintyEstimator(ensemble)

    entropy_known = estimator.predictive_entropy(X_test)
    entropy_unknown = estimator.predictive_entropy(X_unknown)

    y_sep = np.concatenate(
        [np.zeros(len(entropy_known)), np.ones(len(entropy_unknown))]
    )
    auc = roc_auc_score(y_sep, np.concatenate([entropy_known, entropy_unknown]))

    rejection_at = {
        float(t): (
            float(np.mean(entropy_known > t) * 100.0),
            float(np.mean(entropy_unknown > t) * 100.0),
        )
        for t in thresholds
    }

    return EmExtensionResult(
        known_stats=boxplot_stats(entropy_known),
        unknown_stats=boxplot_stats(entropy_unknown),
        f1_known=f1_score(dataset.test.y, estimator.predict(X_test)),
        unknown_auc=float(auc),
        rejection_at=rejection_at,
    )
