"""Shared infrastructure for the per-figure experiment runners.

An :class:`ExperimentContext` lazily builds the two datasets and the
fitted ensembles, memoising everything so that e.g. Fig. 4, Fig. 7a and
Fig. 9a all reuse the same fitted DVFS Random Forest (as in the paper's
single evaluation pipeline).

Ensemble kinds follow the paper:

* ``"rf"``  — Random Forest (bagged CART trees, feature subsampling);
* ``"lr"``  — bagging over Logistic Regression base classifiers;
* ``"svm"`` — bagging over linear SVMs.  Being a convex problem, the
  bootstrap replicas land on nearly identical hyperplanes, which is why
  the paper finds its uncertainty estimates poor (Section V.A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import build_dvfs_dataset, build_hpc_dataset
from ..formatting import format_table
from ..data.dataset import HmdDataset
from ..ml.base import BaseEstimator
from ..ml.ensemble import BaggingClassifier, RandomForestClassifier
from ..ml.linear import LogisticRegression
from ..ml.preprocessing import StandardScaler
from ..ml.svm import LinearSVC
from ..uncertainty.estimator import EnsembleUncertaintyEstimator

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "make_ensemble",
    "boxplot_stats",
    "format_table",
    "resolve_mode",
    "ENSEMBLE_KINDS",
]


def resolve_mode(dtype: str, quantized: bool) -> str:
    """Map the runners' ``--dtype``/``--quantized`` flags to a compile mode.

    ``--quantized`` wins (and requires the float64 front — combining it
    with ``--dtype float32`` is rejected rather than silently picking
    one); otherwise ``dtype`` names the mode directly.
    """
    if dtype not in ("float64", "float32"):
        raise ValueError(f"--dtype must be float64 or float32; got {dtype!r}.")
    if quantized:
        if dtype == "float32":
            raise ValueError(
                "--quantized runs the float64 front with uint8 traversal; "
                "it cannot be combined with --dtype float32."
            )
        return "quantized"
    return dtype

#: Ensemble kinds evaluated per dataset, as in the paper's figures.
ENSEMBLE_KINDS = {
    "dvfs": ("rf", "lr", "svm"),
    # SVM fails to converge on the (bootstrapped) HPC dataset (Sec. V.B).
    "hpc": ("rf", "lr"),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment runner.

    ``dvfs_scale`` / ``hpc_scale`` shrink the Table I sample counts for
    quick runs; 1.0 reproduces the full paper-sized datasets.
    """

    seed: int = 7
    dvfs_scale: float = 1.0
    hpc_scale: float = 0.25
    n_estimators: int = 100
    # Figure threshold axes (paper x-axis ranges).
    fig7a_thresholds: tuple[float, ...] = tuple(np.round(np.arange(0.0, 0.76, 0.05), 2))
    fig7b_thresholds: tuple[float, ...] = tuple(np.round(np.arange(0.0, 1.01, 0.05), 2))
    fig9b_thresholds: tuple[float, ...] = tuple(np.round(np.arange(0.0, 0.81, 0.05), 2))

    def smaller(self, factor: float) -> "ExperimentConfig":
        """A proportionally scaled-down copy (for tests/bench smoke runs)."""
        return ExperimentConfig(
            seed=self.seed,
            dvfs_scale=self.dvfs_scale * factor,
            hpc_scale=self.hpc_scale * factor,
            n_estimators=max(10, int(self.n_estimators * factor)),
        )


def make_ensemble(
    kind: str, *, n_estimators: int = 100, random_state: int = 0
) -> BaseEstimator:
    """Construct an unfitted ensemble of the given kind."""
    if kind == "rf":
        return RandomForestClassifier(
            n_estimators=n_estimators,
            random_state=random_state,
        )
    if kind == "lr":
        return BaggingClassifier(
            LogisticRegression(max_iter=100),
            n_estimators=n_estimators,
            random_state=random_state,
        )
    if kind == "svm":
        return BaggingClassifier(
            LinearSVC(max_iter=200),
            n_estimators=n_estimators,
            random_state=random_state,
        )
    raise ValueError(f"Unknown ensemble kind {kind!r}; use 'rf', 'lr' or 'svm'.")


@dataclass
class _FittedEnsemble:
    """A fitted ensemble plus its uncertainty estimator and data views."""

    ensemble: BaseEstimator
    estimator: EnsembleUncertaintyEstimator
    entropy_test: np.ndarray
    entropy_unknown: np.ndarray
    predictions_test: np.ndarray
    predictions_unknown: np.ndarray


class ExperimentContext:
    """Lazily-built, memoised datasets and fitted ensembles."""

    def __init__(self, config: ExperimentConfig | None = None):
        self.config = config if config is not None else ExperimentConfig()
        self._datasets: dict[str, HmdDataset] = {}
        self._scaled: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._fitted: dict[tuple[str, str], _FittedEnsemble] = {}

    # -- datasets ------------------------------------------------------

    def dataset(self, domain: str) -> HmdDataset:
        """The (cached) dataset for ``"dvfs"`` or ``"hpc"``."""
        if domain not in self._datasets:
            if domain == "dvfs":
                self._datasets[domain] = build_dvfs_dataset(
                    seed=self.config.seed, scale=self.config.dvfs_scale
                )
            elif domain == "hpc":
                self._datasets[domain] = build_hpc_dataset(
                    seed=self.config.seed, scale=self.config.hpc_scale
                )
            else:
                raise ValueError(f"Unknown domain {domain!r}.")
        return self._datasets[domain]

    def scaled_splits(self, domain: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Standardised (train, test, unknown) feature matrices."""
        if domain not in self._scaled:
            ds = self.dataset(domain)
            scaler = StandardScaler().fit(ds.train.X)
            self._scaled[domain] = (
                scaler.transform(ds.train.X),
                scaler.transform(ds.test.X),
                scaler.transform(ds.unknown.X),
            )
        return self._scaled[domain]

    # -- ensembles -----------------------------------------------------

    def fitted(self, domain: str, kind: str) -> _FittedEnsemble:
        """Fit (once) and return the ensemble of ``kind`` on ``domain``."""
        key = (domain, kind)
        if key not in self._fitted:
            ds = self.dataset(domain)
            X_train, X_test, X_unknown = self.scaled_splits(domain)
            ensemble = make_ensemble(
                kind,
                n_estimators=self.config.n_estimators,
                random_state=self.config.seed,
            )
            ensemble.fit(X_train, ds.train.y)
            estimator = EnsembleUncertaintyEstimator(ensemble)
            pred_test, ent_test = estimator.predict_with_uncertainty(X_test)
            pred_unknown, ent_unknown = estimator.predict_with_uncertainty(X_unknown)
            self._fitted[key] = _FittedEnsemble(
                ensemble=ensemble,
                estimator=estimator,
                entropy_test=ent_test,
                entropy_unknown=ent_unknown,
                predictions_test=pred_test,
                predictions_unknown=pred_unknown,
            )
        return self._fitted[key]


def boxplot_stats(values: np.ndarray) -> dict[str, float]:
    """Five-number summary used to report the paper's boxplot figures."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("values is empty.")
    q1, median, q3 = np.percentile(values, [25, 50, 75])
    iqr = q3 - q1
    lo_whisker = float(values[values >= q1 - 1.5 * iqr].min())
    hi_whisker = float(values[values <= q3 + 1.5 * iqr].max())
    return {
        "min": float(values.min()),
        "whisker_low": lo_whisker,
        "q1": float(q1),
        "median": float(median),
        "q3": float(q3),
        "whisker_high": hi_whisker,
        "max": float(values.max()),
        "mean": float(values.mean()),
    }


# format_table is re-exported from repro.formatting (see import above)
# so existing `from .common import format_table` call sites keep working.
