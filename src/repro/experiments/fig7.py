"""Fig. 7 — rejection curves and F1 vs. entropy threshold.

* **Fig. 7a**: % of known / unknown DVFS inputs rejected as the entropy
  threshold sweeps 0→0.75, for the RF, LR and SVM ensembles.  Expected
  shape: RF separates best (high unknown rejection at low known
  rejection); SVM's curves collapse onto each other at tiny thresholds.
* **Fig. 7b**: F1 score of the accepted predictions (pooled known-test
  ∪ unknown, true labels) vs. threshold for RF-DVFS and RF-HPC.
  Expected shape: both rise as uncertain inputs are rejected; DVFS
  approaches 1.0, HPC climbs from ~0.8 toward ~0.95.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..uncertainty.rejection import f1_vs_threshold, rejection_curve
from .common import ENSEMBLE_KINDS, ExperimentConfig, ExperimentContext, format_table

__all__ = ["Fig7aResult", "Fig7bResult", "run_fig7a", "run_fig7b"]


@dataclass(frozen=True)
class Fig7aResult:
    """Rejected-input percentage per (ensemble, split) per threshold."""

    thresholds: tuple[float, ...]
    curves: dict  # {(kind, split): np.ndarray of % rejected}

    def rows(self) -> list[list]:
        """One row per threshold with all curve values."""
        keys = sorted(self.curves)
        out = []
        for i, t in enumerate(self.thresholds):
            out.append([t] + [float(self.curves[k][i]) for k in keys])
        return out

    def operating_point(self, kind: str, threshold: float) -> tuple[float, float]:
        """(known %, unknown %) rejected at the given threshold."""
        idx = int(np.argmin(np.abs(np.asarray(self.thresholds) - threshold)))
        return (
            float(self.curves[(kind, "known")][idx]),
            float(self.curves[(kind, "unknown")][idx]),
        )

    def as_text(self) -> str:
        """Render all rejection curves."""
        keys = sorted(self.curves)
        headers = ["threshold"] + [f"{k}-{s}" for k, s in keys]
        return "Fig. 7a — DVFS rejected inputs (%) vs entropy threshold\n" + format_table(
            headers, self.rows()
        )


def run_fig7a(config: ExperimentConfig | None = None,
              context: ExperimentContext | None = None) -> Fig7aResult:
    """Sweep rejection thresholds over the DVFS ensembles."""
    ctx = context if context is not None else ExperimentContext(config)
    thresholds = ctx.config.fig7a_thresholds
    curves = {}
    for kind in ENSEMBLE_KINDS["dvfs"]:
        fitted = ctx.fitted("dvfs", kind)
        curves[(kind, "known")] = rejection_curve(fitted.entropy_test, thresholds)
        curves[(kind, "unknown")] = rejection_curve(fitted.entropy_unknown, thresholds)
    return Fig7aResult(thresholds=thresholds, curves=curves)


@dataclass(frozen=True)
class Fig7bResult:
    """F1 of accepted predictions vs threshold, RF on both datasets."""

    thresholds: tuple[float, ...]
    dvfs_rows: tuple[dict, ...]
    hpc_rows: tuple[dict, ...]

    def final_f1(self, domain: str) -> float | None:
        """F1 at the largest threshold (no rejection)."""
        rows = self.dvfs_rows if domain == "dvfs" else self.hpc_rows
        return rows[-1]["f1"]

    def best_f1(self, domain: str) -> float:
        """Best F1 over the sweep (ignoring None entries)."""
        rows = self.dvfs_rows if domain == "dvfs" else self.hpc_rows
        return max(r["f1"] for r in rows if r["f1"] is not None)

    def as_text(self) -> str:
        """Render both F1-vs-threshold series."""
        rows = []
        for r_dvfs, r_hpc in zip(self.dvfs_rows, self.hpc_rows):
            rows.append(
                [r_dvfs["threshold"], r_dvfs["f1"], r_dvfs["accepted_frac"],
                 r_hpc["f1"], r_hpc["accepted_frac"]]
            )
        return "Fig. 7b — F1 of accepted predictions vs entropy threshold\n" + format_table(
            ["threshold", "RF-DVFS f1", "dvfs acc-frac", "RF-HPC f1", "hpc acc-frac"],
            rows,
        )


def run_fig7b(config: ExperimentConfig | None = None,
              context: ExperimentContext | None = None) -> Fig7bResult:
    """F1 of accepted predictions on the pooled test ∪ unknown data."""
    ctx = context if context is not None else ExperimentContext(config)
    thresholds = ctx.config.fig7b_thresholds
    series = {}
    for domain in ("dvfs", "hpc"):
        ds = ctx.dataset(domain)
        fitted = ctx.fitted(domain, "rf")
        y_pool = np.concatenate([ds.test.y, ds.unknown.y])
        pred_pool = np.concatenate(
            [fitted.predictions_test, fitted.predictions_unknown]
        )
        ent_pool = np.concatenate([fitted.entropy_test, fitted.entropy_unknown])
        series[domain] = tuple(
            f1_vs_threshold(y_pool, pred_pool, ent_pool, thresholds)
        )
    return Fig7bResult(
        thresholds=thresholds,
        dvfs_rows=series["dvfs"],
        hpc_rows=series["hpc"],
    )
