"""Table I — dataset taxonomy (sample counts per split).

Regenerates the paper's Table I:

======  =====  ============  =======
Split   DVFS   Split         HPC
======  =====  ============  =======
Train   2100   Train         44605
Test    700    Test (Known)  6372
Unknown 284    Unknown       12727
======  =====  ============  =======

At ``scale=1.0`` the builders match these counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.builders import DVFS_TABLE1, HPC_TABLE1
from .common import ExperimentConfig, ExperimentContext, format_table

__all__ = ["Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Result:
    """Measured vs. paper sample counts for both datasets."""

    rows: tuple[tuple[str, str, int, int], ...]  # (dataset, split, measured, paper)
    dvfs_scale: float
    hpc_scale: float

    def matches_paper(self) -> bool:
        """True when every measured count equals the paper count."""
        return all(measured == paper for _, _, measured, paper in self.rows)

    def as_text(self) -> str:
        """Render the taxonomy table."""
        table = format_table(
            ["dataset", "split", "measured", "paper"],
            [list(row) for row in self.rows],
        )
        note = (
            f"(dvfs_scale={self.dvfs_scale}, hpc_scale={self.hpc_scale}; "
            "paper counts hold at scale=1.0)"
        )
        return f"Table I — dataset taxonomy\n{table}\n{note}"


def run_table1(config: ExperimentConfig | None = None,
               context: ExperimentContext | None = None) -> Table1Result:
    """Build both datasets and report their split sizes."""
    ctx = context if context is not None else ExperimentContext(config)
    rows = []
    for domain, paper_counts in (("dvfs", DVFS_TABLE1), ("hpc", HPC_TABLE1)):
        taxonomy = ctx.dataset(domain).taxonomy()
        for split in ("train", "test", "unknown"):
            rows.append((domain, split, taxonomy[split], paper_counts[split]))
    return Table1Result(
        rows=tuple(rows),
        dvfs_scale=ctx.config.dvfs_scale,
        hpc_scale=ctx.config.hpc_scale,
    )
