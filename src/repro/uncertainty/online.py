"""Online uncertainty-aware malware monitoring (S12).

The paper's title promises *online* uncertainty estimation, and its
introduction sketches the operational loop: uncertain predictions are
withheld, forensic data is collected, a security specialist labels the
flagged workloads, and the model is retrained on the new class of
malware.  This module implements that loop:

* :class:`ForensicQueue` — bounded queue of withheld signatures with
  analyst labelling hooks;
* :class:`OnlineMonitor` — streams signature windows through a
  :class:`TrustedHMD`, maintaining detection statistics and feeding the
  queue;
* :class:`RetrainingLoop` — drains analyst-labelled signatures into the
  training set and refits, demonstrating the uncertainty drop on
  previously-unknown workloads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .trust import TrustedHMD, TrustedVerdict

__all__ = ["ForensicQueue", "FlaggedSample", "OnlineMonitor", "MonitorStats", "RetrainingLoop", "TriageCluster", "triage_queue"]


@dataclass(frozen=True)
class FlaggedSample:
    """One signature withheld by the trusted HMD."""

    features: np.ndarray
    prediction: int
    entropy: float
    step: int


class ForensicQueue:
    """Bounded FIFO of flagged signatures awaiting analyst review."""

    def __init__(self, maxlen: int = 10_000):
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1.")
        self._queue: deque[FlaggedSample] = deque(maxlen=maxlen)
        self.total_flagged = 0

    def push(self, sample: FlaggedSample) -> None:
        """Add a flagged signature (oldest dropped when full)."""
        self._queue.append(sample)
        self.total_flagged += 1

    def push_many(self, samples) -> int:
        """Bulk-append flagged signatures in one call.

        Accepts any iterable of :class:`FlaggedSample`; the bounded
        deque sheds its oldest entries when full, exactly as repeated
        :meth:`push` calls would.  Returns how many were appended.
        """
        samples = list(samples)
        self._queue.extend(samples)
        self.total_flagged += len(samples)
        return len(samples)

    def __len__(self) -> int:
        return len(self._queue)

    def drain(self, n: int | None = None) -> list[FlaggedSample]:
        """Remove and return up to ``n`` samples (all by default)."""
        if n is None:
            n = len(self._queue)
        drained = []
        for _ in range(min(n, len(self._queue))):
            drained.append(self._queue.popleft())
        return drained

    def snapshot(self) -> tuple[FlaggedSample, ...]:
        """The currently queued samples, oldest first (no removal).

        The public read view for analyst tooling (triage clustering,
        dashboards) — callers never touch the underlying deque.  Also
        the checkpoint format: :meth:`restore` rebuilds a queue from
        this tuple.
        """
        return tuple(self._queue)

    @property
    def maxlen(self) -> int:
        """Capacity bound of the queue."""
        return self._queue.maxlen

    @classmethod
    def restore(
        cls,
        samples,
        *,
        maxlen: int = 10_000,
        total_flagged: int | None = None,
    ) -> "ForensicQueue":
        """Rebuild a queue from a :meth:`snapshot` tuple.

        ``total_flagged`` restores the lifetime counter; when omitted it
        is seeded from the backlog length (a fresh queue that happens to
        hold these samples).
        """
        queue = cls(maxlen=maxlen)
        samples = list(samples)
        queue._queue.extend(samples)
        queue.total_flagged = (
            len(samples) if total_flagged is None else int(total_flagged)
        )
        return queue

    def peek_entropies(self) -> np.ndarray:
        """Entropies of currently queued samples (no removal)."""
        return np.array([s.entropy for s in self._queue])


@dataclass
class MonitorStats:
    """Running counters of the online monitor."""

    n_seen: int = 0
    n_accepted: int = 0
    n_flagged: int = 0
    n_malware_alerts: int = 0
    entropy_sum: float = 0.0

    @property
    def rejection_rate(self) -> float:
        """Fraction of seen windows flagged as uncertain."""
        return self.n_flagged / self.n_seen if self.n_seen else 0.0

    @property
    def mean_entropy(self) -> float:
        """Mean predictive entropy over all seen windows."""
        return self.entropy_sum / self.n_seen if self.n_seen else 0.0

    def record_verdicts(
        self,
        predictions: np.ndarray,
        entropy: np.ndarray,
        accepted: np.ndarray,
    ) -> None:
        """Bulk-fold one batch of verdicts into the counters.

        The single definition of how verdicts become statistics, shared
        by :class:`OnlineMonitor` and :class:`repro.fleet.FleetMonitor`
        so the two can never drift apart.
        """
        n = len(predictions)
        n_accepted = int(np.count_nonzero(accepted))
        self.n_seen += n
        self.n_accepted += n_accepted
        self.n_flagged += n - n_accepted
        self.n_malware_alerts += int(
            np.count_nonzero(accepted & (predictions == 1))
        )
        self.entropy_sum += float(np.sum(entropy))

    def merge(self, other: "MonitorStats") -> None:
        """Fold another counter set into this one (shard aggregation)."""
        self.n_seen += other.n_seen
        self.n_accepted += other.n_accepted
        self.n_flagged += other.n_flagged
        self.n_malware_alerts += other.n_malware_alerts
        self.entropy_sum += other.entropy_sum

    def snapshot(self) -> dict:
        """Plain-data counter state for checkpointing."""
        return {
            "n_seen": self.n_seen,
            "n_accepted": self.n_accepted,
            "n_flagged": self.n_flagged,
            "n_malware_alerts": self.n_malware_alerts,
            "entropy_sum": self.entropy_sum,
        }

    @classmethod
    def restore(cls, state: dict) -> "MonitorStats":
        """Rebuild counters from :meth:`snapshot` output."""
        return cls(**state)


class OnlineMonitor:
    """Stream signatures through a trusted HMD with forensic capture.

    Parameters
    ----------
    hmd:
        A *fitted* :class:`TrustedHMD`.
    queue:
        Forensic queue receiving the withheld signatures.
    """

    def __init__(self, hmd: TrustedHMD, *, queue: ForensicQueue | None = None):
        if not hasattr(hmd, "estimator_"):
            raise ValueError("hmd must be fitted before monitoring.")
        self.hmd = hmd
        compile_hmd = getattr(hmd, "compile", None)
        if callable(compile_hmd):
            # Warm the flattened vote backend before live traffic.
            compile_hmd()
        self.queue = queue if queue is not None else ForensicQueue()
        self.stats = MonitorStats()
        self._step = 0

    def observe(self, X) -> TrustedVerdict:
        """Process a batch of signature windows.

        Accepted malware predictions raise alerts (counted in stats);
        uncertain windows go to the forensic queue.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        verdict = self.hmd.analyze(X)
        return self.ingest_verdict(X, verdict)

    def ingest_verdict(self, X, verdict: TrustedVerdict) -> TrustedVerdict:
        """Fold an already-computed verdict into stats and the queue.

        Counter updates are bulk numpy reductions; only the (typically
        few) flagged windows are materialised as Python objects.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n = len(verdict.predictions)
        if len(X) != n:
            raise ValueError(
                f"X has {len(X)} windows but the verdict covers {n}."
            )
        base_step = self._step
        self._step += n
        # dtype=bool: ~ on an int 0/1 mask would invert bitwise, not logically.
        accepted = np.asarray(verdict.accepted, dtype=bool)
        self.stats.record_verdicts(verdict.predictions, verdict.entropy, accepted)
        for i in np.flatnonzero(~accepted):
            self.queue.push(
                FlaggedSample(
                    features=X[i].copy(),
                    prediction=int(verdict.predictions[i]),
                    entropy=float(verdict.entropy[i]),
                    step=base_step + int(i) + 1,
                )
            )
        return verdict


class RetrainingLoop:
    """Close the loop: analyst labels flagged samples → model refits.

    Incorporated batches accumulate in a **list buffer** and are
    stacked once per refit — repeated small analyst batches stay
    ``O(batch)`` per call instead of the old quadratic
    re-``vstack``-everything-every-call behaviour.

    When the HMD supports warm partial refits
    (:meth:`TrustedHMD.supports_partial_refit` — ensembles fitted with
    the histogram grower), a retrain hands only the *pending* labelled
    rows to :meth:`TrustedHMD.partial_refit`: scaler, PCA and bin edges
    stay fixed, members regrow from the binned buffer, and the flat
    prediction backend is recompiled.  Otherwise the loop falls back to
    a full ``hmd.fit`` on the stacked training set.

    Parameters
    ----------
    hmd:
        Fitted :class:`TrustedHMD` to be refreshed.
    X_train / y_train:
        The current training set; retraining appends analyst-labelled
        forensic samples to it.
    min_batch:
        Minimum number of *accumulated* labelled samples required to
        trigger a refit.
    """

    def __init__(self, hmd: TrustedHMD, X_train, y_train, *, min_batch: int = 20):
        if min_batch < 1:
            raise ValueError("min_batch must be >= 1.")
        self.hmd = hmd
        self._X_blocks: list[np.ndarray] = [np.asarray(X_train, dtype=float)]
        self._y_blocks: list[np.ndarray] = [np.asarray(y_train)]
        self._pending_X: list[np.ndarray] = []
        self._pending_y: list[np.ndarray] = []
        self.min_batch = min_batch
        self.n_retrains = 0

    @property
    def X_train(self) -> np.ndarray:
        """The full training matrix (stacked lazily, at most once)."""
        if len(self._X_blocks) > 1:
            self._X_blocks = [np.vstack(self._X_blocks)]
        return self._X_blocks[0]

    @property
    def y_train(self) -> np.ndarray:
        """The full label vector (stacked lazily, at most once)."""
        if len(self._y_blocks) > 1:
            self._y_blocks = [np.concatenate(self._y_blocks)]
        return self._y_blocks[0]

    @property
    def n_pending(self) -> int:
        """Labelled samples accumulated since the last refit."""
        return sum(len(block) for block in self._pending_X)

    def incorporate(self, samples: list[FlaggedSample], labels) -> bool:
        """Add analyst-labelled samples; refit when enough accumulated.

        Parameters
        ----------
        samples:
            Flagged samples drained from the forensic queue.
        labels:
            Ground-truth labels supplied by the analyst (same order).

        Returns
        -------
        True when a retrain occurred.
        """
        labels = np.asarray(labels)
        if len(samples) != len(labels):
            raise ValueError("samples and labels lengths differ.")
        if len(samples) == 0:
            return False
        X_new = np.stack([s.features for s in samples])
        self._X_blocks.append(X_new)
        self._y_blocks.append(labels)
        self._pending_X.append(X_new)
        self._pending_y.append(labels)
        if self.n_pending < self.min_batch:
            return False
        self.retrain()
        return True

    def retrain(self) -> None:
        """Refit the HMD on everything incorporated so far.

        Warm path when available (only the pending rows travel),
        full-refit fallback otherwise.
        """
        supports = getattr(self.hmd, "supports_partial_refit", None)
        if self._pending_X and callable(supports) and supports():
            self.hmd.partial_refit(
                np.vstack(self._pending_X), np.concatenate(self._pending_y)
            )
        else:
            self.hmd.fit(self.X_train, self.y_train)
        self._pending_X = []
        self._pending_y = []
        self.n_retrains += 1


@dataclass(frozen=True)
class TriageCluster:
    """One group of flagged signatures proposed to the analyst."""

    samples: tuple[FlaggedSample, ...]
    centroid: np.ndarray
    mean_entropy: float
    majority_prediction: int

    @property
    def size(self) -> int:
        """Number of flagged signatures in the cluster."""
        return len(self.samples)


def triage_queue(
    queue: ForensicQueue,
    *,
    n_clusters: int | None = None,
    random_state: int | np.random.Generator | None = 0,
) -> list[TriageCluster]:
    """Group the forensic queue into candidate novel-workload clusters.

    Instead of presenting thousands of flagged windows one by one, the
    queue is k-means-clustered in feature space; each cluster is a
    candidate *new application or malware family* the analyst labels
    once.  The queue itself is not modified (drain it after labelling).

    Parameters
    ----------
    queue:
        The forensic queue to triage.
    n_clusters:
        Number of groups; default ``max(1, round(sqrt(n / 2)))``.
    random_state:
        Seed for the clustering.
    """
    from ..ml.cluster import KMeans

    samples = list(queue.snapshot())
    if not samples:
        return []
    X = np.stack([s.features for s in samples])
    n = len(samples)
    if n_clusters is None:
        n_clusters = max(1, int(round(np.sqrt(n / 2.0))))
    n_clusters = min(n_clusters, n)

    model = KMeans(n_clusters=n_clusters, random_state=random_state).fit(X)
    clusters: list[TriageCluster] = []
    for k in range(n_clusters):
        members = [s for s, label in zip(samples, model.labels_) if label == k]
        if not members:
            continue
        entropies = np.array([s.entropy for s in members])
        predictions = np.array([s.prediction for s in members])
        counts = np.bincount(predictions, minlength=2)
        clusters.append(
            TriageCluster(
                samples=tuple(members),
                centroid=model.cluster_centers_[k],
                mean_entropy=float(entropies.mean()),
                majority_prediction=int(np.argmax(counts)),
            )
        )
    clusters.sort(key=lambda c: -c.size)
    return clusters
