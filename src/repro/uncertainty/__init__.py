"""The paper's core contribution (S11-S12): ensemble-based predictive
uncertainty estimation, rejection, trusted-HMD pipeline and the online
monitoring loop."""

from .decomposition import (
    UncertaintyDecomposition,
    decompose_uncertainty,
    member_probabilities,
)
from .drift import DriftState, EntropyDriftMonitor, PageHinkleyDetector
from .entropy import (
    shannon_entropy,
    variation_ratio,
    vote_entropy,
    vote_margin,
    votes_to_distribution,
)
from .estimator import EnsembleUncertaintyEstimator, UncertaintyReport
from .online import (
    FlaggedSample,
    ForensicQueue,
    MonitorStats,
    OnlineMonitor,
    RetrainingLoop,
    TriageCluster,
    triage_queue,
)
from .rejection import RejectionPolicy, RejectionResult, f1_vs_threshold, rejection_curve
from .thresholds import (
    ThresholdReport,
    calibrate_threshold_by_budget,
    calibrate_threshold_by_f1,
)
from .reliability import (
    ReliabilityDiagram,
    expected_calibration_error,
    reliability_diagram,
)
from .trust import TrustedHMD, TrustedVerdict, UntrustedHMD

__all__ = [
    "DriftState",
    "EnsembleUncertaintyEstimator",
    "EntropyDriftMonitor",
    "FlaggedSample",
    "ForensicQueue",
    "MonitorStats",
    "OnlineMonitor",
    "PageHinkleyDetector",
    "RejectionPolicy",
    "RejectionResult",
    "ReliabilityDiagram",
    "RetrainingLoop",
    "ThresholdReport",
    "TriageCluster",
    "TrustedHMD",
    "TrustedVerdict",
    "UncertaintyDecomposition",
    "UncertaintyReport",
    "UntrustedHMD",
    "calibrate_threshold_by_budget",
    "calibrate_threshold_by_f1",
    "decompose_uncertainty",
    "expected_calibration_error",
    "f1_vs_threshold",
    "member_probabilities",
    "rejection_curve",
    "reliability_diagram",
    "shannon_entropy",
    "triage_queue",
    "variation_ratio",
    "vote_entropy",
    "vote_margin",
    "votes_to_distribution",
]
