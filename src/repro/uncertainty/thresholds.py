"""Operating-threshold calibration for the rejection policy.

The paper picks its DVFS threshold (0.40) by inspecting Fig. 7a.  In
deployment the threshold must come from data the operator actually
has: the entropy distribution of *held-out known* traffic.  Two
calibration rules are provided:

* :func:`calibrate_threshold_by_budget` — largest threshold whose
  known-rejection rate stays within a false-alarm budget (the paper's
  "<5% of known workloads" criterion);
* :func:`calibrate_threshold_by_f1` — threshold maximising F1 of the
  accepted predictions on a labelled validation set (the Fig. 7b
  criterion).

Both return a :class:`ThresholdReport` documenting the expected
operating characteristics, so the decision is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .rejection import f1_vs_threshold

__all__ = [
    "ThresholdReport",
    "calibrate_threshold_by_budget",
    "calibrate_threshold_by_f1",
]


@dataclass(frozen=True)
class ThresholdReport:
    """Chosen threshold plus its validation-set characteristics."""

    threshold: float
    known_rejection_rate: float
    criterion: str
    details: dict

    def as_text(self) -> str:
        """Render a one-paragraph audit record."""
        extras = ", ".join(f"{k}={v:.3f}" for k, v in sorted(self.details.items()))
        return (
            f"threshold={self.threshold:.3f} ({self.criterion}); expected "
            f"known-rejection={self.known_rejection_rate:.1%}"
            + (f"; {extras}" if extras else "")
        )


def calibrate_threshold_by_budget(
    entropy_known,
    *,
    budget: float = 0.05,
    grid: int = 200,
) -> ThresholdReport:
    """Largest threshold keeping known-rejection within ``budget``.

    Equivalently: the (1 − budget) quantile of the known entropies —
    but computed over an explicit grid so the report can state the
    achieved rate exactly.

    Parameters
    ----------
    entropy_known:
        Entropies of held-out known (in-distribution) traffic.
    budget:
        Maximum tolerated fraction of known traffic rejected.
    grid:
        Number of candidate thresholds between 0 and max entropy.
    """
    entropy_known = np.asarray(entropy_known, dtype=float)
    if entropy_known.size == 0:
        raise ValueError("entropy_known is empty.")
    if not 0.0 < budget < 1.0:
        raise ValueError(f"budget must be in (0, 1); got {budget}.")
    if grid < 2:
        raise ValueError("grid must be >= 2.")

    candidates = np.linspace(0.0, float(entropy_known.max()) + 1e-9, grid)
    best = None
    for t in candidates:
        rate = float(np.mean(entropy_known > t))
        if rate <= budget:
            best = (float(t), rate)
            break
    if best is None:  # even the max threshold rejects too much (degenerate)
        best = (float(candidates[-1]), float(np.mean(entropy_known > candidates[-1])))
    threshold, rate = best
    return ThresholdReport(
        threshold=threshold,
        known_rejection_rate=rate,
        criterion=f"budget<={budget:.2%}",
        details={"budget": budget},
    )


def calibrate_threshold_by_f1(
    y_true,
    predictions,
    entropy,
    *,
    thresholds=None,
    min_accepted_frac: float = 0.2,
) -> ThresholdReport:
    """Threshold maximising accepted-subset F1 on a validation set.

    Parameters
    ----------
    y_true / predictions / entropy:
        Labelled validation traffic with the model's predictions and
        uncertainties.
    thresholds:
        Candidate grid (default 0→1 step 0.05).
    min_accepted_frac:
        Candidates accepting less than this fraction are excluded (a
        detector that rejects everything is useless).
    """
    entropy = np.asarray(entropy, dtype=float)
    if thresholds is None:
        thresholds = np.round(np.arange(0.0, 1.01, 0.05), 2)
    rows = f1_vs_threshold(y_true, predictions, entropy, thresholds)
    candidates = [
        r for r in rows
        if r["f1"] is not None and r["accepted_frac"] >= min_accepted_frac
    ]
    if not candidates:
        raise ValueError(
            "No threshold satisfies the acceptance constraint; lower "
            "min_accepted_frac."
        )
    best = max(candidates, key=lambda r: r["f1"])
    return ThresholdReport(
        threshold=float(best["threshold"]),
        known_rejection_rate=float(1.0 - best["accepted_frac"]),
        criterion="max-f1",
        details={
            "f1": float(best["f1"]),
            "precision": float(best["precision"]),
            "recall": float(best["recall"]),
            "min_accepted_frac": min_accepted_frac,
        },
    )
