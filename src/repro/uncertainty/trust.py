"""Trusted vs. Untrusted HMD pipelines (Fig. 1 of the paper).

* :class:`UntrustedHMD` — the conventional black-box pipeline: feature
  scaling → (optional) dimensionality reduction → classifier → binary
  benign/malware decision, emitted unconditionally.
* :class:`TrustedHMD` — the proposed pipeline: the classifier is a
  bagging ensemble, an :class:`EnsembleUncertaintyEstimator` measures
  the dispersion of the member decisions, and a
  :class:`RejectionPolicy` withholds decisions whose entropy exceeds
  the operating threshold, flagging them for forensic analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.base import BaseEstimator, clone
from ..ml.decomposition import PCA
from ..ml.preprocessing import StandardScaler
from ..ml.validation import check_array, check_X_y
from .estimator import EnsembleUncertaintyEstimator
from .rejection import RejectionPolicy, RejectionResult

__all__ = ["UntrustedHMD", "TrustedHMD", "TrustedVerdict"]


class _FusedFrontMixin:
    """Cached scaler→PCA front collapsed into one affine map.

    Both HMD pipelines standardise and (optionally) project every batch
    before the classifier sees it.  Run naively that is two full passes
    over the batch (subtract/divide, then center/matmul).  Composing the
    two fitted affine maps once — ``Z = X @ weight + bias`` — turns the
    whole front into a single GEMM per batch.

    The fusion is rebuilt at ``fit`` time and after ``partial_refit``
    (which keeps scaler and PCA frozen but must never serve a stale
    front), and only engages when a PCA stage exists: without one the
    scaler is already a single elementwise pass, and keeping the
    original ``(X - mean) / scale`` op order preserves bitwise-identical
    transforms.  With PCA the fused result differs from the two-pass
    reference only by float associativity (≲1e-12 per feature; the
    ingest benchmark gates the drift at 1e-9).

    The front also carries a *dtype* (float64 by default): in float32
    mode the composed weights/biases are rounded once to float32 and
    every batch is cast on entry, halving the GEMM's memory traffic.
    Feature drift against the float64 front stays ≤1e-6 on standardized
    features (the quant benchmark gates it); the float64 modes are
    untouched bit for bit.
    """

    scaler_: StandardScaler
    pca_: PCA | None

    def _build_fused_front(self, dtype=None) -> None:
        """(Re)compose the cached affine front from the fitted stages.

        ``dtype=None`` keeps the front's current precision (so refits
        never silently reset a float32 pipeline to float64); pass
        ``np.float64``/``np.float32`` to switch.  The composition runs
        in float64 and is rounded once at the end — the float32 front
        is the correctly-rounded narrowing of the float64 map.
        """
        if dtype is None:
            dtype = getattr(self, "_front_dtype_", np.float64)
        dtype = np.dtype(dtype)
        self._front_dtype_ = dtype
        if self.pca_ is None:
            self._front_weight_ = None
            self._front_bias_ = None
            if dtype == np.float32:
                self._scaler32_ = (
                    self.scaler_.mean_.astype(np.float32),
                    self.scaler_.scale_.astype(np.float32),
                )
            else:
                self._scaler32_ = None
            return
        self._scaler32_ = None
        mult, bias = self.scaler_.as_affine()
        weight, offset = self.pca_.as_affine()
        self._front_weight_ = (mult[:, None] * weight).astype(dtype, copy=False)
        self._front_bias_ = (bias @ weight + offset).astype(dtype, copy=False)

    def _transform(self, X) -> np.ndarray:
        weight = getattr(self, "_front_weight_", None)
        if weight is None and self.pca_ is not None:
            # Fitted before the fused front existed (e.g. unpickled
            # legacy state): compose it now.
            self._build_fused_front()
            weight = self._front_weight_
        if weight is None:
            scaler32 = getattr(self, "_scaler32_", None)
            if scaler32 is not None:
                # Float32 scaler-only front: same (X - mean) / scale op
                # order as the float64 path, run narrow.  The sharded
                # fleet's PublishedHmd replays these exact ufuncs.
                mean32, scale32 = scaler32
                X = check_array(X, dtype=np.float32)
                if X.shape[1] != self.n_features_in_:
                    raise ValueError(
                        f"Expected {self.n_features_in_} features, got {X.shape[1]}."
                    )
                return np.true_divide(np.subtract(X, mean32), scale32)
            return self.scaler_.transform(np.asarray(X, dtype=float))
        X = check_array(np.asarray(X, dtype=float), dtype=weight.dtype)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X @ weight + self._front_bias_


class UntrustedHMD(_FusedFrontMixin, BaseEstimator):
    """Conventional HMD: always emits a binary decision.

    Parameters
    ----------
    model:
        Any classifier following the :mod:`repro.ml` estimator API.
    n_components:
        Optional PCA dimensionality (``None`` disables reduction).
    """

    def __init__(self, model: BaseEstimator, *, n_components: int | float | None = None):
        self.model = model
        self.n_components = n_components

    def fit(self, X, y) -> "UntrustedHMD":
        """Fit scaler → (PCA) → classifier."""
        X, y = check_X_y(X, y)
        self.scaler_ = StandardScaler().fit(X)
        Z = self.scaler_.transform(X)
        if self.n_components is not None:
            self.pca_ = PCA(n_components=self.n_components).fit(Z)
            Z = self.pca_.transform(Z)
        else:
            self.pca_ = None
        self.model_ = clone(self.model)
        self.model_.fit(Z, y)
        self.classes_ = self.model_.classes_
        self.n_features_in_ = X.shape[1]
        self._build_fused_front()
        return self

    def predict(self, X) -> np.ndarray:
        """Unconditional benign/malware decisions."""
        return self.model_.predict(self._transform(X))


@dataclass(frozen=True)
class TrustedVerdict:
    """Output of the trusted HMD for a batch of signatures."""

    predictions: np.ndarray     # benign/malware labels for ALL inputs
    entropy: np.ndarray         # predictive uncertainty per input
    accepted: np.ndarray        # False = withheld for forensic analysis
    threshold: float

    @property
    def rejection_rate(self) -> float:
        """Fraction of withheld decisions."""
        return float(1.0 - self.accepted.mean()) if len(self.accepted) else 0.0

    def flagged_indices(self) -> np.ndarray:
        """Indices of inputs routed to the security analyst."""
        return np.flatnonzero(~self.accepted)


class TrustedHMD(_FusedFrontMixin, BaseEstimator):
    """Uncertainty-aware HMD (the paper's proposed framework).

    Parameters
    ----------
    ensemble:
        *Unfitted* ensemble prototype exposing per-member ``decisions``
        after fit (e.g. ``BaggingClassifier``/``RandomForestClassifier``).
    threshold:
        Entropy rejection threshold (bits).  The paper's DVFS operating
        point is 0.40 for the RF ensemble.
    n_components:
        Optional PCA dimensionality applied after scaling.
    """

    def __init__(
        self,
        ensemble: BaseEstimator,
        *,
        threshold: float = 0.40,
        n_components: int | float | None = None,
    ):
        self.ensemble = ensemble
        self.threshold = threshold
        self.n_components = n_components

    def fit(self, X, y) -> "TrustedHMD":
        """Fit the pipeline and attach the uncertainty estimator."""
        X, y = check_X_y(X, y)
        self.scaler_ = StandardScaler().fit(X)
        Z = self.scaler_.transform(X)
        if self.n_components is not None:
            self.pca_ = PCA(n_components=self.n_components).fit(Z)
            Z = self.pca_.transform(Z)
        else:
            self.pca_ = None
        self.ensemble_ = clone(self.ensemble)
        self.ensemble_.fit(Z, y)
        self.estimator_ = EnsembleUncertaintyEstimator(self.ensemble_)
        self.policy_ = RejectionPolicy(self.threshold)
        self.classes_ = self.ensemble_.classes_
        self.n_features_in_ = X.shape[1]
        self._build_fused_front()
        return self

    #: Inference precision modes.  "float64" is the bitwise reference;
    #: "float32" narrows the fused front and forest comparisons (drift
    #: gated ≤1e-6 on features); "quantized" keeps the float64 front and
    #: traverses the forest in uint8 bin codes — votes exactly identical
    #: by construction, hist-grown ensembles only.
    COMPILE_MODES = ("float64", "float32", "quantized")

    _BACKEND_MODE = {
        "float64": "flat",
        "float32": "float32",
        "quantized": "quantized",
    }

    @property
    def compile_mode(self) -> str:
        """The current inference mode ("float64" until chosen otherwise)."""
        return getattr(self, "_compile_mode_", "float64")

    def compile(self, mode: str | None = None) -> "TrustedHMD":
        """Eagerly build the ensemble's flattened vote backend.

        The backend compiles lazily on the first analyze call anyway;
        monitors call this up front so the first window of live traffic
        does not pay the one-off flattening cost.  Also (re)composes the
        fused scaler→PCA front for the same reason.  No-op for
        ensembles without a compiled path.

        ``mode`` selects the precision (:attr:`COMPILE_MODES`) and is
        *sticky*: once ``compile(mode="quantized")`` has been called,
        subsequent no-argument compiles — including the one inside
        :meth:`partial_refit` — rebuild the same kind of kernel, and
        fleet monitors republish it (``PublishedHmd.is_current`` keys
        on the mode).  ``"quantized"`` requires a hist-grown ensemble;
        anything else raises ``ValueError``.
        """
        if not hasattr(self, "ensemble_"):
            raise ValueError("hmd must be fitted before compiling.")
        if mode is None:
            mode = self.compile_mode
        elif mode not in self.COMPILE_MODES:
            raise ValueError(
                f"unknown compile mode {mode!r}; expected one of "
                f"{self.COMPILE_MODES}."
            )
        self._compile_mode_ = mode
        compile_backend = getattr(self.ensemble_, "compile", None)
        if callable(compile_backend):
            from ..ml.backend import BackendCompileError

            try:
                compile_backend(mode=self._BACKEND_MODE[mode])
            except BackendCompileError as exc:
                raise ValueError(
                    f"this ensemble cannot serve mode {mode!r}: {exc} "
                    "(fit with grower='hist' for the quantized kernel)."
                ) from exc
            except TypeError:
                # Ensemble predates mode-aware compile; float64 only.
                if mode != "float64":
                    raise
                compile_backend()
        elif mode != "float64":
            raise ValueError(
                f"the fitted ensemble has no compiled vote path; mode "
                f"{mode!r} is unavailable."
            )
        self._build_fused_front(
            np.float32 if mode == "float32" else np.float64
        )
        return self

    def supports_partial_refit(self) -> bool:
        """Whether a fitted ensemble can warm-refit from binned codes.

        True for ensembles fitted with the histogram grower
        (``grower="hist"``), which keep their shared
        :class:`~repro.ml.training.BinnedDataset` around.
        """
        ensemble = getattr(self, "ensemble_", None)
        supports = getattr(ensemble, "supports_partial_refit", None)
        return callable(supports) and supports()

    def partial_refit(self, X_new, y_new) -> "TrustedHMD":
        """Fold analyst-labelled rows in without a cold restart.

        The front of the pipeline stays *warm*: the scaler, the
        optional PCA and the ensemble's quantile bin edges are all kept
        from the original fit — only the member trees regrow, from the
        appended binned buffer — and the flattened prediction backend
        is recompiled before returning, so a live monitor's next batch
        runs on the refreshed model at full speed.  New class labels
        (a previously-unknown malware family) are picked up.
        """
        if not hasattr(self, "ensemble_"):
            raise ValueError("hmd must be fitted before partial_refit.")
        if not self.supports_partial_refit():
            raise ValueError(
                "The fitted ensemble has no binned training buffer "
                "(grower='hist'); retrain with fit() instead."
            )
        X_new, y_new = check_X_y(X_new, y_new)
        self.ensemble_.partial_refit(self._transform(X_new), y_new)
        self.classes_ = self.ensemble_.classes_
        self.estimator_ = EnsembleUncertaintyEstimator(self.ensemble_)
        return self.compile()

    def predict(self, X) -> np.ndarray:
        """Majority-vote labels (ignoring the rejection policy)."""
        return self.estimator_.predict(self._transform(X))

    def predictive_entropy(self, X) -> np.ndarray:
        """Uncertainty score per input (Eq. 4)."""
        return self.estimator_.predictive_entropy(self._transform(X))

    def analyze(self, X) -> TrustedVerdict:
        """Predictions + uncertainty + accept/withhold decision."""
        labels, entropy = self.estimator_.predict_with_uncertainty(
            self._transform(X)
        )
        result: RejectionResult = self.policy_.apply(labels, entropy)
        return TrustedVerdict(
            predictions=labels,
            entropy=entropy,
            accepted=result.accepted,
            threshold=self.policy_.threshold,
        )

    def with_threshold(self, threshold: float) -> "TrustedHMD":
        """Return self with a new operating threshold (fitted state kept)."""
        self.threshold = float(threshold)
        self.policy_ = RejectionPolicy(self.threshold)
        return self

    def calibrate_threshold(self, X_validation, *, budget: float = 0.05) -> float:
        """Set the threshold from held-out known traffic (budget rule).

        Picks the largest threshold whose rejection rate on
        ``X_validation`` stays within ``budget`` (the paper's "<5% of
        known workloads" criterion) and installs it as the operating
        point.  Returns the chosen threshold.
        """
        from .thresholds import calibrate_threshold_by_budget

        entropy = self.predictive_entropy(X_validation)
        report = calibrate_threshold_by_budget(entropy, budget=budget)
        self.with_threshold(report.threshold)
        return report.threshold
