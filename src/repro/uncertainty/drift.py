"""Dataset-shift detection from the online entropy stream.

Section II.B of the paper motivates uncertainty with *dataset shift*:
"the underlying probability distribution of the data may change over
time, resulting in a mismatch between the distribution of the training
data and the test data."  In deployment that shift shows up as a drift
of the predictive-entropy stream — e.g. a new OS version changes every
app's governor behaviour, or a malware campaign floods the device with
an unseen family.

Two detectors are provided:

* :class:`PageHinkleyDetector` — classic sequential change-point test
  on the running mean of a scalar stream;
* :class:`EntropyDriftMonitor` — wraps a detector around a calibrated
  reference (the entropy distribution observed on held-out known data)
  and classifies the regime as ``stable`` / ``warning`` / ``drift``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PageHinkleyDetector", "EntropyDriftMonitor", "DriftState"]


class PageHinkleyDetector:
    """Page-Hinkley test for an upward shift of a stream's mean.

    Parameters
    ----------
    delta:
        Magnitude tolerance: deviations below ``delta`` are ignored.
    threshold:
        Alarm threshold ``lambda`` on the cumulative statistic.
    alpha:
        Forgetting factor for the running mean (1.0 = plain mean).
    """

    def __init__(self, *, delta: float = 0.02, threshold: float = 2.0, alpha: float = 1.0):
        if delta < 0 or threshold <= 0 or not 0 < alpha <= 1:
            raise ValueError("Require delta >= 0, threshold > 0, 0 < alpha <= 1.")
        self.delta = delta
        self.threshold = threshold
        self.alpha = alpha
        self.reset()

    def reset(self) -> None:
        """Clear all state (after handling an alarm)."""
        self._mean = 0.0
        self._n = 0
        self._cumulative = 0.0
        self._minimum = 0.0
        self.drift_detected = False

    def update(self, value: float) -> bool:
        """Feed one observation; returns True when drift is signalled."""
        self._n += 1
        if self._n == 1:
            self._mean = float(value)
        else:
            self._mean = self._mean + self.alpha * (value - self._mean) / self._n
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        self.drift_detected = (self._cumulative - self._minimum) > self.threshold
        return self.drift_detected

    @property
    def statistic(self) -> float:
        """Current PH statistic (distance above the running minimum)."""
        return self._cumulative - self._minimum


@dataclass(frozen=True)
class DriftState:
    """Assessment of the current entropy regime."""

    status: str          # "stable" | "warning" | "drift"
    recent_mean: float   # mean entropy over the sliding window
    reference_mean: float
    ph_statistic: float

    @property
    def is_drifting(self) -> bool:
        """True when a full drift alarm is active."""
        return self.status == "drift"


class EntropyDriftMonitor:
    """Monitor an entropy stream for departures from a reference regime.

    Parameters
    ----------
    reference_entropy:
        Entropies observed on held-out *known* data at deployment time;
        defines the expected regime.
    window:
        Sliding-window length for the recent-mean estimate.
    warning_quantile:
        Recent mean above this quantile of the reference distribution
        raises a ``warning``.
    detector:
        Optional pre-configured :class:`PageHinkleyDetector`.
    """

    def __init__(
        self,
        reference_entropy,
        *,
        window: int = 50,
        warning_quantile: float = 0.9,
        detector: PageHinkleyDetector | None = None,
    ):
        reference = np.asarray(reference_entropy, dtype=float)
        if reference.size < 5:
            raise ValueError("Need at least 5 reference entropies.")
        if window < 2:
            raise ValueError("window must be >= 2.")
        if not 0.5 < warning_quantile < 1.0:
            raise ValueError("warning_quantile must be in (0.5, 1).")
        self.reference_mean = float(reference.mean())
        self.warning_level = float(np.quantile(reference, warning_quantile))
        self.window = window
        self._buffer: list[float] = []
        if detector is None:
            # Default PH parameters scale with the reference spread so a
            # stream drawn from the reference regime itself does not trip
            # the alarm.
            spread = max(float(reference.std()), 1e-3)
            detector = PageHinkleyDetector(
                delta=0.5 * spread, threshold=max(1.0, 25.0 * spread)
            )
        self.detector = detector
        # Seed the PH test with the reference regime so its running
        # mean starts where deployment starts.
        for value in reference:
            self.detector.update(float(value))
        self.detector.drift_detected = False
        self.n_observed = 0

    def observe(self, entropy) -> DriftState:
        """Feed a batch (or scalar) of entropies; assess the regime."""
        values = np.atleast_1d(np.asarray(entropy, dtype=float))
        drift = False
        for value in values:
            self._buffer.append(float(value))
            if len(self._buffer) > self.window:
                self._buffer.pop(0)
            drift = self.detector.update(float(value)) or drift
            self.n_observed += 1

        recent_mean = float(np.mean(self._buffer)) if self._buffer else 0.0
        if drift or self.detector.drift_detected:
            status = "drift"
        elif recent_mean > self.warning_level and len(self._buffer) >= self.window // 2:
            status = "warning"
        else:
            status = "stable"
        return DriftState(
            status=status,
            recent_mean=recent_mean,
            reference_mean=self.reference_mean,
            ph_statistic=self.detector.statistic,
        )

    def reset(self) -> None:
        """Clear the sliding window and the PH statistic."""
        self._buffer.clear()
        self.detector.reset()
        self.n_observed = 0
