"""Uncertainty decomposition: total = aleatoric + epistemic.

The paper's stated limitation (Section V.B / VI) is that the vote-
entropy estimator "fails to identify whether the source of uncertainty
is aleatoric or epistemic", and separating them is named as future
work.  This module implements the standard information-theoretic
decomposition (Depeweg et al. 2018; Malinin & Gales 2018) for ensembles
whose members emit *probabilities*:

* **total**      H[ E_m p_m(y|x) ]          — entropy of the mean;
* **aleatoric**  E_m H[ p_m(y|x) ]          — mean of the entropies;
* **epistemic**  total − aleatoric           — the mutual information
  I(y; m), i.e. how much the members *disagree about the distribution
  itself*.

On the DVFS dataset epistemic uncertainty dominates for unknown apps;
on the HPC dataset aleatoric uncertainty dominates everywhere — the
quantitative version of the paper's Fig. 4 vs. Fig. 5 discussion
(ablation A2 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .entropy import shannon_entropy

__all__ = ["UncertaintyDecomposition", "decompose_uncertainty", "member_probabilities"]


@dataclass(frozen=True)
class UncertaintyDecomposition:
    """Per-sample total / aleatoric / epistemic uncertainty."""

    total: np.ndarray
    aleatoric: np.ndarray
    epistemic: np.ndarray

    def __len__(self) -> int:
        return len(self.total)

    def dominant_source(self, *, margin: float = 0.0) -> np.ndarray:
        """Per-sample label: ``"aleatoric"`` or ``"epistemic"``.

        A sample is epistemic-dominated when epistemic > aleatoric +
        ``margin``.
        """
        return np.where(
            self.epistemic > self.aleatoric + margin, "epistemic", "aleatoric"
        )


def member_probabilities(ensemble, X) -> np.ndarray:
    """Stack per-member ``predict_proba`` outputs, shape ``(M, n, k)``.

    Members lacking ``predict_proba`` (e.g. SVMs) contribute one-hot
    distributions from their hard decisions.
    """
    if not hasattr(ensemble, "estimators_"):
        raise ValueError("ensemble must be fitted.")
    classes = ensemble.classes_
    n_classes = len(classes)
    member_feats = getattr(ensemble, "estimators_features_", None)
    stacks = []
    X = np.asarray(X)
    for m, member in enumerate(ensemble.estimators_):
        X_m = X[:, member_feats[m]] if member_feats is not None else X
        if hasattr(member, "predict_proba"):
            proba = member.predict_proba(X_m)
            # Align member class columns with the ensemble's class order.
            aligned = np.zeros((X.shape[0], n_classes))
            for j, cls in enumerate(member.classes_):
                k = int(np.flatnonzero(classes == cls)[0])
                aligned[:, k] = proba[:, j]
            stacks.append(aligned)
        else:
            votes = member.predict(X_m)
            onehot = np.zeros((X.shape[0], n_classes))
            for k, cls in enumerate(classes):
                onehot[votes == cls, k] = 1.0
            stacks.append(onehot)
    return np.stack(stacks)


def decompose_uncertainty(
    ensemble, X, *, base: float = 2.0
) -> UncertaintyDecomposition:
    """Total/aleatoric/epistemic decomposition over a batch.

    Parameters
    ----------
    ensemble:
        Fitted ensemble with ``estimators_`` (probability-capable
        members give a faithful aleatoric term).
    X:
        Input batch.
    base:
        Entropy logarithm base.
    """
    probs = member_probabilities(ensemble, X)        # (M, n, k)
    mean_proba = probs.mean(axis=0)                   # (n, k)
    total = shannon_entropy(mean_proba, base=base)
    aleatoric = shannon_entropy(probs, base=base).mean(axis=0)
    epistemic = np.maximum(total - aleatoric, 0.0)
    return UncertaintyDecomposition(
        total=total, aleatoric=aleatoric, epistemic=epistemic
    )
