"""Uncertainty measures over ensemble decisions (Eq. 4 of the paper).

The paper quantifies predictive uncertainty as the Shannon entropy of
the frequency distribution of the base classifiers' decisions (the
approximated predictive posterior of Eq. 3).  This module implements
that measure plus the standard alternatives used in the ablations
(vote margin, variation ratio).

Entropies default to **base 2** so the binary-classification maximum is
exactly 1.0 bit, matching the 0–1 threshold axes of Figs. 4, 5, 7, 9.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "shannon_entropy",
    "votes_to_distribution",
    "vote_entropy",
    "vote_margin",
    "variation_ratio",
]


def shannon_entropy(distribution: np.ndarray, *, base: float = 2.0) -> np.ndarray:
    """Entropy of one or many categorical distributions.

    Parameters
    ----------
    distribution:
        Probability vector(s); the last axis must sum to 1.
    base:
        Logarithm base (2 → bits, e → nats).

    Returns
    -------
    Array of entropies with the last axis reduced (scalar array for a
    single distribution).
    """
    p = np.asarray(distribution, dtype=float)
    if p.ndim == 0:
        raise ValueError("distribution must have at least 1 dimension.")
    if np.any(p < -1e-9):
        raise ValueError("Probabilities must be non-negative.")
    sums = p.sum(axis=-1)
    if not np.allclose(sums, 1.0, atol=1e-6):
        raise ValueError("Distributions must sum to 1 along the last axis.")
    if base <= 1.0:
        raise ValueError(f"base must be > 1; got {base}.")
    p = np.clip(p, 1e-15, 1.0)
    return -(p * (np.log(p) / np.log(base))).sum(axis=-1)


def votes_to_distribution(votes: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Frequency distribution of member decisions over ``classes``.

    Parameters
    ----------
    votes:
        ``(n_samples, n_members)`` matrix of hard per-member decisions —
        the output of an ensemble's ``decisions``.
    classes:
        Class labels defining the column order of the result.

    Returns
    -------
    ``(n_samples, n_classes)`` row-stochastic matrix (Eq. 3).
    """
    votes = np.asarray(votes)
    if votes.ndim != 2:
        raise ValueError(f"votes must be 2-d; got shape {votes.shape}.")
    classes = np.asarray(classes)
    n_samples, n_members = votes.shape
    if n_members == 0:
        raise ValueError("votes must have at least one member column.")

    # Map each vote to its class column in one vectorised pass: sort the
    # class labels once, binary-search every vote against them, then
    # histogram the (row, class) pairs with a single bincount.  This
    # replaces the per-class equality scans, which dominated the fleet
    # batch hot path for large (n_samples, M) vote matrices.
    order = np.argsort(classes, kind="stable")
    sorted_classes = classes[order]
    pos = np.searchsorted(sorted_classes, votes.ravel())
    pos = np.clip(pos, 0, len(classes) - 1)
    if np.any(sorted_classes[pos] != votes.ravel()):
        raise ValueError("votes contain labels outside the provided classes.")
    cols = order[pos].reshape(n_samples, n_members)

    flat = np.arange(n_samples)[:, None] * len(classes) + cols
    counts = np.bincount(flat.ravel(), minlength=n_samples * len(classes))
    distribution = counts.reshape(n_samples, len(classes)) / float(n_members)
    return distribution


def vote_entropy(votes: np.ndarray, classes: np.ndarray, *, base: float = 2.0) -> np.ndarray:
    """Entropy of the member-vote distribution (the paper's estimator)."""
    return shannon_entropy(votes_to_distribution(votes, classes), base=base)


def vote_margin(votes: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Difference between the top-2 vote fractions (1 = unanimous).

    Low margin ⇔ high disagreement; used as an alternative uncertainty
    score in ablation A3.
    """
    distribution = votes_to_distribution(votes, classes)
    if distribution.shape[1] < 2:
        return np.ones(distribution.shape[0])
    part = np.partition(distribution, -2, axis=1)
    return part[:, -1] - part[:, -2]


def variation_ratio(votes: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """1 − (fraction of members voting for the modal class)."""
    distribution = votes_to_distribution(votes, classes)
    return 1.0 - distribution.max(axis=1)
