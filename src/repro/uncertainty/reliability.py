"""Reliability analysis of the ensemble's vote fractions.

A trustworthy detector's confidence should be *calibrated*: among
inputs where the ensemble votes 80/20, roughly 80% should actually
belong to the majority class.  This module quantifies that with the
standard reliability diagram and Expected Calibration Error (ECE) —
complementing the paper's entropy analysis with the calibration lens
the broader uncertainty literature (Guo et al. 2017) uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReliabilityDiagram", "reliability_diagram", "expected_calibration_error"]


@dataclass(frozen=True)
class ReliabilityDiagram:
    """Binned confidence-vs-accuracy summary."""

    bin_edges: np.ndarray       # (n_bins + 1,)
    bin_confidence: np.ndarray  # mean max-vote-fraction per bin (NaN if empty)
    bin_accuracy: np.ndarray    # empirical accuracy per bin (NaN if empty)
    bin_counts: np.ndarray      # samples per bin

    @property
    def n_bins(self) -> int:
        """Number of confidence bins."""
        return len(self.bin_counts)

    def ece(self) -> float:
        """Expected calibration error: count-weighted |conf − acc|."""
        total = self.bin_counts.sum()
        if total == 0:
            return 0.0
        mask = self.bin_counts > 0
        gaps = np.abs(self.bin_confidence[mask] - self.bin_accuracy[mask])
        return float(np.sum(gaps * self.bin_counts[mask]) / total)

    def max_gap(self) -> float:
        """Maximum calibration error over the populated bins."""
        mask = self.bin_counts > 0
        if not mask.any():
            return 0.0
        return float(
            np.max(np.abs(self.bin_confidence[mask] - self.bin_accuracy[mask]))
        )

    def as_text(self) -> str:
        """Render the diagram as a fixed-width table."""
        lines = ["confidence bin   mean conf  accuracy  count"]
        for b in range(self.n_bins):
            lo, hi = self.bin_edges[b], self.bin_edges[b + 1]
            if self.bin_counts[b] == 0:
                lines.append(f"[{lo:.2f}, {hi:.2f})        -         -      0")
            else:
                lines.append(
                    f"[{lo:.2f}, {hi:.2f})     {self.bin_confidence[b]:.3f}     "
                    f"{self.bin_accuracy[b]:.3f}  {int(self.bin_counts[b]):5d}"
                )
        lines.append(f"ECE = {self.ece():.4f}  (max gap {self.max_gap():.4f})")
        return "\n".join(lines)


def reliability_diagram(
    y_true,
    distribution,
    classes,
    *,
    n_bins: int = 10,
) -> ReliabilityDiagram:
    """Bin predictions by max vote fraction and compare to accuracy.

    Parameters
    ----------
    y_true:
        Ground-truth labels.
    distribution:
        ``(n, n_classes)`` vote-fraction rows (Eq. 3 output).
    classes:
        Class labels matching the distribution columns.
    n_bins:
        Equal-width confidence bins over [1/k, 1].
    """
    y_true = np.asarray(y_true)
    distribution = np.asarray(distribution, dtype=float)
    classes = np.asarray(classes)
    if distribution.ndim != 2 or distribution.shape[1] != len(classes):
        raise ValueError("distribution must be (n, n_classes).")
    if len(y_true) != len(distribution):
        raise ValueError("y_true and distribution lengths differ.")
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2.")

    confidence = distribution.max(axis=1)
    predictions = classes[np.argmax(distribution, axis=1)]
    correct = (predictions == y_true).astype(float)

    floor = 1.0 / len(classes)
    edges = np.linspace(floor, 1.0, n_bins + 1)
    bin_idx = np.clip(np.searchsorted(edges, confidence, side="right") - 1, 0, n_bins - 1)

    bin_confidence = np.full(n_bins, np.nan)
    bin_accuracy = np.full(n_bins, np.nan)
    bin_counts = np.zeros(n_bins, dtype=int)
    for b in range(n_bins):
        mask = bin_idx == b
        bin_counts[b] = int(mask.sum())
        if bin_counts[b]:
            bin_confidence[b] = float(confidence[mask].mean())
            bin_accuracy[b] = float(correct[mask].mean())
    return ReliabilityDiagram(
        bin_edges=edges,
        bin_confidence=bin_confidence,
        bin_accuracy=bin_accuracy,
        bin_counts=bin_counts,
    )


def expected_calibration_error(y_true, distribution, classes, *, n_bins: int = 10) -> float:
    """Convenience wrapper: the ECE of the reliability diagram."""
    return reliability_diagram(y_true, distribution, classes, n_bins=n_bins).ece()
