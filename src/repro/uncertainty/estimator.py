"""The Uncertainty Estimator module of the proposed framework (Fig. 2).

:class:`EnsembleUncertaintyEstimator` wraps any fitted ensemble that
exposes per-member decisions (``BaggingClassifier``,
``RandomForestClassifier``, ``VotingClassifier`` — anything with a
``decisions(X)`` method and a ``classes_`` attribute) and turns the
frequency distribution of those decisions into predictive-uncertainty
estimates:

* :meth:`predictive_distribution` — Eq. 3, the averaged ensemble
  posterior;
* :meth:`predictive_entropy` — Eq. 4, the paper's uncertainty score;
* :meth:`predict_with_uncertainty` — labels + entropies in one call,
  the online operating mode of the Trusted HMD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .entropy import shannon_entropy, variation_ratio, vote_margin, votes_to_distribution

__all__ = ["EnsembleUncertaintyEstimator", "UncertaintyReport"]


@dataclass(frozen=True)
class UncertaintyReport:
    """Joint prediction/uncertainty output for a batch of inputs."""

    predictions: np.ndarray
    entropy: np.ndarray
    distribution: np.ndarray
    margin: np.ndarray
    variation_ratio: np.ndarray

    def __len__(self) -> int:
        return len(self.predictions)


class EnsembleUncertaintyEstimator:
    """Estimate predictive uncertainty from ensemble vote dispersion.

    Parameters
    ----------
    ensemble:
        A *fitted* ensemble exposing ``decisions(X)`` (per-member hard
        votes) and ``classes_``.
    base:
        Entropy logarithm base (2 → bits; the paper's threshold axes).
    """

    def __init__(self, ensemble, *, base: float = 2.0):
        if not hasattr(ensemble, "decisions"):
            raise TypeError(
                f"{type(ensemble).__name__} does not expose per-member "
                "decisions; the uncertainty estimator requires an ensemble "
                "with a `decisions(X)` method."
            )
        if not hasattr(ensemble, "classes_"):
            raise ValueError(
                "ensemble must be fitted before constructing the estimator."
            )
        self.ensemble = ensemble
        self.base = base

    @property
    def classes_(self) -> np.ndarray:
        """Class labels of the wrapped ensemble."""
        return self.ensemble.classes_

    @property
    def n_members(self) -> int:
        """Ensemble size M."""
        return len(self.ensemble.estimators_)

    def member_votes(self, X) -> np.ndarray:
        """Raw per-member decisions, shape ``(n_samples, M)``.

        Routed through the ensemble's compiled flat-tensor backend
        (``decisions_fast``) when available — bitwise identical to the
        per-member loop, one vectorised pass instead of M.
        """
        fast = getattr(self.ensemble, "decisions_fast", None)
        if fast is not None:
            return fast(X)
        return self.ensemble.decisions(X)

    def predictive_distribution(self, X) -> np.ndarray:
        """Frequency distribution of member decisions (Eq. 3)."""
        return votes_to_distribution(self.member_votes(X), self.classes_)

    def predictive_entropy(self, X) -> np.ndarray:
        """Entropy of the predictive distribution (Eq. 4), in ``base`` units."""
        return shannon_entropy(self.predictive_distribution(X), base=self.base)

    def predict(self, X) -> np.ndarray:
        """Majority-vote predictions."""
        distribution = self.predictive_distribution(X)
        return self.classes_[np.argmax(distribution, axis=1)]

    def predict_with_uncertainty(self, X) -> tuple[np.ndarray, np.ndarray]:
        """Labels and entropies computed from a single vote pass."""
        votes = self.member_votes(X)
        distribution = votes_to_distribution(votes, self.classes_)
        labels = self.classes_[np.argmax(distribution, axis=1)]
        return labels, shannon_entropy(distribution, base=self.base)

    def report(self, X) -> UncertaintyReport:
        """Full uncertainty report (entropy, margin, variation ratio)."""
        votes = self.member_votes(X)
        distribution = votes_to_distribution(votes, self.classes_)
        return UncertaintyReport(
            predictions=self.classes_[np.argmax(distribution, axis=1)],
            entropy=shannon_entropy(distribution, base=self.base),
            distribution=distribution,
            margin=vote_margin(votes, self.classes_),
            variation_ratio=variation_ratio(votes, self.classes_),
        )

    def entropy_vs_ensemble_size(self, X, sizes) -> dict[int, float]:
        """Mean entropy using only the first ``m`` members, for each m.

        Reproduces the convergence study of Fig. 9a: entropy estimates
        stabilise once the ensemble exceeds ~20 members.
        """
        votes = self.member_votes(X)
        result: dict[int, float] = {}
        for m in sizes:
            if not 1 <= m <= votes.shape[1]:
                raise ValueError(
                    f"size {m} out of range [1, {votes.shape[1]}]."
                )
            distribution = votes_to_distribution(votes[:, :m], self.classes_)
            result[int(m)] = float(
                shannon_entropy(distribution, base=self.base).mean()
            )
        return result
