"""Entropy-threshold rejection (the decision layer of the Trusted HMD).

"If the entropy of a particular prediction goes beyond the threshold,
we reject that decision citing the uncertainty in the prediction."
(Section V.A.)  This module implements that policy and the two sweep
curves of Fig. 7 / Fig. 9b:

* :func:`rejection_curve` — % of inputs rejected vs. threshold;
* :func:`f1_vs_threshold` — F1 of the *accepted* predictions vs.
  threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.metrics import f1_score, precision_score, recall_score

__all__ = ["RejectionPolicy", "RejectionResult", "rejection_curve", "f1_vs_threshold"]


@dataclass(frozen=True)
class RejectionResult:
    """Outcome of applying a rejection policy to a batch."""

    accepted: np.ndarray          # boolean mask
    predictions: np.ndarray       # all predictions (accepted or not)
    entropy: np.ndarray
    threshold: float

    @property
    def rejection_rate(self) -> float:
        """Fraction of inputs rejected."""
        return float(1.0 - self.accepted.mean()) if len(self.accepted) else 0.0

    @property
    def n_rejected(self) -> int:
        """Number of rejected inputs."""
        return int((~self.accepted).sum())

    def accepted_predictions(self) -> np.ndarray:
        """Predictions of the accepted subset only."""
        return self.predictions[self.accepted]


class RejectionPolicy:
    """Reject predictions whose entropy exceeds ``threshold``."""

    def __init__(self, threshold: float):
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0; got {threshold}.")
        self.threshold = float(threshold)

    def apply(self, predictions: np.ndarray, entropy: np.ndarray) -> RejectionResult:
        """Partition a batch into accepted / rejected by entropy."""
        predictions = np.asarray(predictions)
        entropy = np.asarray(entropy, dtype=float)
        if len(predictions) != len(entropy):
            raise ValueError(
                f"predictions ({len(predictions)}) and entropy "
                f"({len(entropy)}) lengths differ."
            )
        accepted = entropy <= self.threshold
        return RejectionResult(
            accepted=accepted,
            predictions=predictions,
            entropy=entropy,
            threshold=self.threshold,
        )


def rejection_curve(entropy: np.ndarray, thresholds) -> np.ndarray:
    """Percentage of inputs rejected at each threshold (Fig. 7a / 9b)."""
    entropy = np.asarray(entropy, dtype=float)
    thresholds = np.asarray(thresholds, dtype=float)
    if entropy.size == 0:
        raise ValueError("entropy is empty.")
    return np.array([100.0 * np.mean(entropy > t) for t in thresholds])


def f1_vs_threshold(
    y_true: np.ndarray,
    predictions: np.ndarray,
    entropy: np.ndarray,
    thresholds,
    *,
    min_accepted: int = 5,
) -> list[dict]:
    """F1/precision/recall of accepted predictions per threshold (Fig. 7b).

    Thresholds accepting fewer than ``min_accepted`` samples (or only
    one class) yield ``None`` metrics rather than misleading scores.
    """
    y_true = np.asarray(y_true)
    predictions = np.asarray(predictions)
    entropy = np.asarray(entropy, dtype=float)
    if not (len(y_true) == len(predictions) == len(entropy)):
        raise ValueError("y_true, predictions and entropy lengths differ.")

    rows = []
    for t in np.asarray(thresholds, dtype=float):
        accepted = entropy <= t
        row: dict = {
            "threshold": float(t),
            "accepted_frac": float(accepted.mean()),
        }
        yt, yp = y_true[accepted], predictions[accepted]
        if accepted.sum() >= min_accepted and len(np.unique(yt)) == 2:
            row["f1"] = f1_score(yt, yp)
            row["precision"] = precision_score(yt, yp)
            row["recall"] = recall_score(yt, yp)
        else:
            row["f1"] = row["precision"] = row["recall"] = None
        rows.append(row)
    return rows
