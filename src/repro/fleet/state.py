"""Per-device monitoring state for the fleet engine.

Every monitored device keeps a constant-memory footprint regardless of
how long it has been streaming: an embedded
:class:`~repro.uncertainty.online.MonitorStats` (the same counter
definitions the single-device monitor uses, so the two can never
drift) plus a fixed-capacity ring buffer of its most recent predictive
entropies.  The ring buffer is what the fleet report reads to rank
devices by *current* uncertainty — a device whose entropy regime
shifted recently is a drift/zero-day candidate even if its lifetime
mean looks benign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..uncertainty.online import MonitorStats

__all__ = ["RingBuffer", "DeviceState"]


class RingBuffer:
    """Fixed-capacity float ring buffer with vectorised bulk appends."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}.")
        self._data = np.zeros(capacity, dtype=float)
        self._capacity = capacity
        self._head = 0      # next write position
        self._size = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained values."""
        return self._capacity

    def __len__(self) -> int:
        return self._size

    def push(self, value: float) -> None:
        """Append one value, evicting the oldest when full."""
        self._data[self._head] = float(value)
        self._head = (self._head + 1) % self._capacity
        self._size = min(self._size + 1, self._capacity)

    def extend(self, values) -> None:
        """Append a batch of values in one vectorised write."""
        values = np.asarray(values, dtype=float).ravel()
        n = len(values)
        if n == 0:
            return
        if n >= self._capacity:
            # Only the newest `capacity` values survive.
            self._data[:] = values[-self._capacity:]
            self._head = 0
            self._size = self._capacity
            return
        stop = self._head + n
        if stop <= self._capacity:
            # Contiguous write — the overwhelmingly common case, and
            # the sharded scatter's per-device hot path (plain slice
            # assignment, no index arithmetic).
            self._data[self._head : stop] = values
        else:
            idx = (self._head + np.arange(n)) % self._capacity
            self._data[idx] = values
        self._head = stop % self._capacity
        self._size = min(self._size + n, self._capacity)

    def values(self) -> np.ndarray:
        """Retained values, oldest first."""
        if self._size < self._capacity:
            return self._data[: self._size].copy()
        return np.roll(self._data, -self._head).copy()

    def mean(self) -> float:
        """Mean of the retained values (0.0 when empty)."""
        if self._size == 0:
            return 0.0
        if self._size < self._capacity:
            return float(self._data[: self._size].mean())
        return float(self._data.mean())

    def snapshot(self) -> dict:
        """Plain-data state for checkpointing (exact, including rotation).

        The raw storage/head/size triple is captured rather than the
        logical ``values()`` view so a restored buffer is *bit-exact*:
        re-pushing the values would normalise the rotation and perturb
        the last bit of :meth:`mean` (float summation order).
        """
        return {
            "capacity": self._capacity,
            "data": self._data.copy(),
            "head": self._head,
            "size": self._size,
        }

    @classmethod
    def restore(cls, state: dict) -> "RingBuffer":
        """Rebuild a buffer from :meth:`snapshot` output."""
        buffer = cls(state["capacity"])
        buffer._data[:] = state["data"]
        buffer._head = int(state["head"])
        buffer._size = int(state["size"])
        return buffer


@dataclass
class DeviceState:
    """Running verdict statistics for one monitored device."""

    device_id: str
    cohort: str = "unknown"
    stats: MonitorStats = field(default_factory=MonitorStats)
    last_step: int = -1
    entropy_recent: RingBuffer = field(default_factory=lambda: RingBuffer(128))

    @property
    def n_seen(self) -> int:
        """Windows screened for this device."""
        return self.stats.n_seen

    @property
    def n_accepted(self) -> int:
        """Windows whose verdict was emitted."""
        return self.stats.n_accepted

    @property
    def n_flagged(self) -> int:
        """Windows withheld as uncertain."""
        return self.stats.n_flagged

    @property
    def n_malware_alerts(self) -> int:
        """Accepted windows classified as malware."""
        return self.stats.n_malware_alerts

    @property
    def rejection_rate(self) -> float:
        """Fraction of this device's windows withheld as uncertain."""
        return self.stats.rejection_rate

    @property
    def alert_rate(self) -> float:
        """Fraction of *accepted* windows classified as malware."""
        return self.n_malware_alerts / self.n_accepted if self.n_accepted else 0.0

    @property
    def mean_entropy(self) -> float:
        """Lifetime mean predictive entropy."""
        return self.stats.mean_entropy

    @property
    def recent_entropy(self) -> float:
        """Mean entropy over the ring-buffered recent windows."""
        return self.entropy_recent.mean()

    def record(
        self,
        predictions: np.ndarray,
        entropy: np.ndarray,
        accepted: np.ndarray,
        last_step: int,
    ) -> None:
        """Fold one batch slice of verdicts into the counters (bulk)."""
        self.stats.record_verdicts(predictions, entropy, accepted)
        self.entropy_recent.extend(entropy)
        self.last_step = max(self.last_step, int(last_step))

    def snapshot(self) -> dict:
        """Plain-data state for checkpointing (counters + entropy ring)."""
        return {
            "device_id": self.device_id,
            "cohort": self.cohort,
            "stats": self.stats.snapshot(),
            "last_step": self.last_step,
            "entropy_recent": self.entropy_recent.snapshot(),
        }

    @classmethod
    def restore(cls, state: dict) -> "DeviceState":
        """Rebuild a device record from :meth:`snapshot` output."""
        return cls(
            device_id=state["device_id"],
            cohort=state["cohort"],
            stats=MonitorStats.restore(state["stats"]),
            last_step=int(state["last_step"]),
            entropy_recent=RingBuffer.restore(state["entropy_recent"]),
        )
