"""Process-per-shard execution backend for the sharded fleet.

:class:`WorkerShardedFleetMonitor` keeps the whole
:class:`~repro.fleet.sharding.ShardedFleetMonitor` API — register,
submit, ``process_batch``/``drain``, ``report``, ``snapshot``/
``restore`` — but runs every shard's verdict pass in its own worker
*process*, so K shards drain on K cores instead of time-slicing one
GIL.  The split of responsibilities:

Parent (this process)
    Owns ingress end to end: the per-shard arena-backed
    :class:`~repro.fleet.sharding.ShardQueue` (backpressure, shedding
    and sequence numbering are byte-for-byte the in-process
    semantics), the merged forensic stream, drift watching, and the
    mirrors that keep facade-level ``stats`` bitwise identical — the
    parent re-applies each round's verdict columns to its own
    per-shard :class:`~repro.uncertainty.online.MonitorStats` with the
    *same* ``record_verdicts`` call the worker makes.

Worker (one per shard)
    Owns the shard's :class:`~repro.fleet.sharding.FleetShard` — the
    device-state table, ring buffers and counters that
    :meth:`~repro.fleet.sharding.FleetShard.scatter` maintains — plus
    a read-only mapping of the published model
    (:mod:`repro.fleet.shm`).  It drains block messages, runs the
    fused verdict pass, scatters, and writes the verdict columns back
    into the same shared slot.  No window tensor is ever pickled.

Supervision state machine
-------------------------

Each worker link is ``RUNNING → (dead | hung | errored) → RESTARTING →
RUNNING``.  Liveness is observed three ways: the pipe hitting EOF, the
process reporting not-alive with the pipe drained, or a response
deadline expiring (``worker_timeout``; :meth:`heartbeat` probes
explicitly).  A restart rebuilds the worker from its last checkpoint —
the worker periodically ships ``{epoch, FleetMonitor.snapshot(),
dense-registry order, reg-log high-water}`` (every
``checkpoint_every`` blocks and on demand) — and then **replays** every
retained block newer than that checkpoint.  The parent retains each
shipped batch until a checkpoint covers it, so replay is always
possible; verdict determinism makes replayed results identical, and
results for epochs the parent already merged are recognised by their
epoch and dropped.  Kill a worker mid-stream and the merged verdict
stream is indistinguishable from an uninterrupted run (the crash-
recovery test asserts exactly this).

Degradation beyond restart (see :mod:`repro.fleet.resilience`): every
shard carries a health state machine (healthy → degraded → dead).
Restarts back off exponentially (``restart_backoff``); after
``max_restarts`` consecutive failures the circuit breaker opens and the
shard **fails over** — its device states, sequence counters, shed
history and queued backlog migrate to the surviving shards (the router
re-deals the dead hash bucket deterministically), the lost in-flight
verdicts are recomputed in-process from the same published kernel, and
survivors adopt the moved device states over a checkpoint-pinned
control message.  Nothing is shed by failure; with a single shard the
breaker still raises (there is nowhere to fail over to).  Block frames
carry integrity checksums both ways (:class:`~repro.fleet.shm
.ShmBlockRing`), and a block that faults its worker twice is bisected
with verdict-only probes: offending rows are quarantined into a
bounded forensic side-queue, the rest are replayed under the original
epoch — exactly-once either way.  A seeded
:class:`~repro.fleet.resilience.FaultPlan` (``chaos=``) exercises all
of this deterministically.

Republish-on-retrain reuses the same checkpoint barrier: after a warm
retrain the parent checkpoints every worker (so no replay can cross
model generations), publishes the recompiled
:class:`~repro.fleet.sharding.PublishedHmd` into a fresh read-only
segment, and broadcasts the new header; workers swap views and ack —
no restart, no pause longer than one control round trip.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from collections import deque
from dataclasses import asdict, replace

import numpy as np

from ..obs.metrics import merge_snapshots, resolve_registry
from ..uncertainty.online import ForensicQueue, MonitorStats
from .engine import FleetBatchResult, FleetMonitor
from .queueing import BackpressurePolicy
from .report import merge_reports, rebind_queue_counters
from .resilience import (
    FaultInjector,
    FaultPlan,
    QuarantineStore,
    QuarantinedWindow,
    ShardHealth,
    ShardHealthReport,
)
from .sharding import (
    SNAPSHOT_SCHEMA,
    FleetShard,
    IndexedWindowBatch,
    PublishedHmd,
    ShardQueue,
    ShardedFleetMonitor,
)
from .shm import (
    ShmBlockRing,
    ShmIntegrityError,
    _unlink,
    map_publication,
    publish_model,
)
from .state import DeviceState

__all__ = ["WorkerShardedFleetMonitor", "worker_main"]


class _SharedModelStub:
    """Stands in for the fitted HMD inside a worker's FleetMonitor.

    The worker's monitor never runs the model itself — verdicts come
    from the mapped shared publication — but :class:`FleetMonitor`
    insists on a fitted estimator at construction.  A class attribute
    satisfies the check; everything model-shaped the worker needs
    lives in the publication.
    """

    estimator_ = ()


class _WorkerDied(Exception):
    """A worker link failed (process death, pipe EOF, deadline, error)."""


# Ceiling on the exponential restart back-off, so a long fault storm
# degrades throughput smoothly instead of stalling the drain for minutes.
_BACKOFF_CAP = 2.0

# A block that is re-delivered this many times over integrity failures
# points at a parent-side arena problem, not transient corruption.
_MAX_RESHIPS = 3


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _apply_regs(monitor: FleetMonitor, applied: int, start: int, entries) -> int:
    """Apply a reg-log slice, deduplicating by absolute log index.

    Restart replay can deliver overlapping slices (the explicit
    post-checkpoint gap plus each replayed block's original span); the
    absolute start index makes re-application exact instead of
    inflating the applied count.
    """
    skip = max(0, applied - start)
    for name, cohort in entries[skip:]:
        monitor.register(name, cohort=cohort)
    return max(applied, start + len(entries))


def _apply_names(monitor: FleetMonitor, queue: ShardQueue, start: int, names) -> None:
    """Extend the worker's dense device registry in parent order.

    Dense indices are positional, so the worker must register exactly
    the parent's first-sight sequence; slices carry their absolute
    start offset so overlapping replays skip what is already applied.
    """
    skip = max(0, len(queue._names) - start)
    for name in names[skip:]:
        queue.register_device(name)
        monitor.register(name)


def _worker_checkpoint(
    monitor: FleetMonitor, queue: ShardQueue, epoch: int, regs_applied: int
) -> dict:
    """The supervision hand-off payload: everything a restart needs."""
    return {
        "epoch": int(epoch),
        "monitor": monitor.snapshot(),
        "names": list(queue._names),
        "regs_applied": int(regs_applied),
    }


def _run_block(ring: ShmBlockRing, publication, shard: FleetShard, msg) -> int:
    """Verdict one shipped block in place; returns its epoch.

    A helper rather than inline in the dispatch loop so the zero-copy
    slot views die with this frame — lingering views would pin the
    segment buffer and make the worker's final ``ring.close()`` noisy.
    """
    _, slot, epoch, n, names_start, names, regs_start, regs = msg
    views = ring.slot(slot)
    features = views["features"][:n]
    batch = IndexedWindowBatch(
        device_ids=None,
        seqs=views["seqs"][:n],
        features=features,
        device_index=views["dev"][:n],
    )
    predictions, entropy, accepted = publication.verdict(features)
    shard.scatter(batch, predictions, entropy, accepted)
    views["predictions"][:n] = predictions
    views["entropy"][:n] = entropy
    views["accepted"][:n] = accepted
    # Trace sidecar column 1: the worker's seal timestamp, read back by
    # the parent to reconstruct the shm crossing (one float store; the
    # sidecar sits outside both checksums, see ShmBlockRing).
    ring.stamp_trace(slot, 1, time.monotonic())
    ring.seal_results(slot, n)
    return epoch


def _run_probe(ring: ShmBlockRing, publication, msg) -> None:
    """Verdict probe rows in place — no scatter, no epoch, no state.

    Probes are how the parent bisects a block that keeps faulting its
    worker: the verdict pass runs (so content-triggered faults fire)
    but device state is untouched, so a probe is repeatable and its
    crash attributes the fault to the probed rows alone.
    """
    _, slot, n, _token = msg
    views = ring.slot(slot)
    predictions, entropy, accepted = publication.verdict(views["features"][:n])
    views["predictions"][:n] = predictions
    views["entropy"][:n] = entropy
    views["accepted"][:n] = accepted
    ring.seal_results(slot, n)


def worker_main(shard_id: int, conn, init: dict) -> None:
    """One shard worker: attach shared state, drain the control pipe.

    ``init`` carries the arena ring spec, the current model publication
    header, the monitor configuration, and — when this process replaces
    a dead predecessor — the checkpoint to restore from.  The loop is a
    plain message dispatcher; all heavy data rides in shared memory.

    Blocks are processed in strict epoch order: a block that arrives
    early (because a failed-integrity predecessor is being re-shipped,
    or a quarantine bisection is holding one epoch open) is stashed
    until its turn, so scatter order — and therefore device state —
    never depends on fault timing.
    """
    ring = ShmBlockRing.attach(init["ring"])
    publication = map_publication(init["model"])
    stub = _SharedModelStub()
    ckpt = init.get("ckpt")
    if ckpt is not None:
        monitor = FleetMonitor.restore(stub, ckpt["monitor"], queue_cls=ShardQueue)
        queue = monitor.queue
        for name in ckpt["names"]:
            # Rebuild the dense registry in the parent's first-sight
            # order (the queue snapshot holds rows, not the registry).
            queue.register_device(name)
        regs_applied = int(ckpt["regs_applied"])
        epoch_done = int(ckpt["epoch"])
    else:
        queue = ShardQueue()
        monitor = FleetMonitor(
            stub,
            batch_size=init["batch_size"],
            entropy_window=init["entropy_window"],
            queue=queue,
        )
        regs_applied = 0
        epoch_done = -1
    if init.get("telemetry"):
        # The worker keeps its own registry (restored monitors come up
        # with telemetry off, so rebind here either way); its snapshot
        # rides home inside every report message and the parent folds
        # it with merge_snapshots.
        monitor.metrics = resolve_registry(True)
    m_blocks = monitor.metrics.counter(
        "fleet_batches_total", "blocks verdicted by this worker"
    )
    m_drained = monitor.metrics.counter(
        "fleet_windows_drained_total", "windows given a verdict"
    )
    m_verdict = monitor.metrics.histogram(
        "fleet_verdict_seconds", "verdict+scatter latency per block"
    )
    obs_on = monitor.metrics.enabled
    # Staging off: the feature views below live in recycled shared
    # slots, so the parent stages flagged rows from its own copies.
    shard = FleetShard(shard_id, monitor, stage_flagged=False)
    checkpoint_every = int(init["checkpoint_every"])
    since_checkpoint = 0
    plan = init.get("chaos")
    injector = (
        FaultInjector(plan, shard_id, init.get("life", 0))
        if plan is not None
        else None
    )
    expected = epoch_done + 1
    stash: dict[int, tuple] = {}

    def process_block(msg) -> bool:
        """Handle one in-order block; False = integrity failure reported."""
        nonlocal regs_applied, epoch_done, since_checkpoint
        if injector is not None:
            injector.on_block()
        regs_applied = _apply_regs(monitor, regs_applied, msg[6], msg[7])
        _apply_names(monitor, queue, msg[4], msg[5])
        slot, n = msg[1], msg[3]
        if not ring.verify_block(slot, n):
            # A corrupted frame must never reach scatter: report it and
            # hold this epoch open — the parent re-ships into the same
            # slot and later epochs wait in the stash meanwhile.
            conn.send(("badblock", slot, msg[2]))
            return False
        if injector is not None:
            views = ring.slot(slot)
            injector.check_poison(
                queue._names, views["dev"][:n], views["seqs"][:n]
            )
            del views
        if obs_on:
            t0 = time.perf_counter()
            epoch_done = _run_block(ring, publication, shard, msg)
            m_verdict.observe(time.perf_counter() - t0)
            m_blocks.inc()
            m_drained.inc(n)
        else:
            epoch_done = _run_block(ring, publication, shard, msg)
        conn.send(("result", slot, epoch_done))
        since_checkpoint += 1
        if since_checkpoint >= checkpoint_every:
            conn.send(
                ("ckpt", _worker_checkpoint(monitor, queue, epoch_done, regs_applied))
            )
            since_checkpoint = 0
        return True

    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            kind = msg[0]
            if kind in ("block", "skipblock"):
                epoch = msg[2] if kind == "block" else msg[1]
                if epoch != expected:
                    if epoch > expected:
                        stash[epoch] = msg
                    continue
                while msg is not None:
                    if msg[0] == "skipblock":
                        # Every row of this epoch was quarantined; the
                        # parent holds its (empty) result locally.
                        epoch_done = expected
                        advanced = True
                    else:
                        advanced = process_block(msg)
                    if not advanced:
                        break
                    expected += 1
                    msg = stash.pop(expected, None)
            elif kind == "probe":
                if injector is not None:
                    views = ring.slot(msg[1])
                    injector.check_poison(
                        queue._names, views["dev"][: msg[2]], views["seqs"][: msg[2]]
                    )
                    del views
                _run_probe(ring, publication, msg)
                conn.send(("probed", msg[1], msg[3]))
            elif kind == "adopt":
                # Failover hand-off from a dead sibling shard.  Apply
                # only devices the restored checkpoint does not already
                # carry, so a replayed adopt never regresses state.
                for snap, seq in msg[1]:
                    device_id = snap["device_id"]
                    if device_id not in monitor.devices:
                        adopted = DeviceState.restore(snap)
                        monitor.devices[device_id] = adopted
                        monitor._seq[device_id] = int(seq)
                        monitor.stats.merge(adopted.stats)
            elif kind == "names":
                # Registry span of a block excluded from replay: dense
                # indices are positional, so the span still has to land.
                _apply_names(monitor, queue, msg[1], msg[2])
            elif kind == "regs":
                regs_applied = _apply_regs(monitor, regs_applied, msg[1], msg[2])
            elif kind == "checkpoint":
                conn.send(
                    ("ckpt", _worker_checkpoint(monitor, queue, epoch_done, regs_applied))
                )
                since_checkpoint = 0
            elif kind == "report":
                conn.send(("report", monitor.report()))
            elif kind == "republish":
                stale = publication
                publication = map_publication(msg[1])
                stale.close()
                conn.send(("republished", publication.generation))
            elif kind == "ping":
                conn.send(("pong", msg[1]))
            elif kind == "stop":
                break
            else:
                raise RuntimeError(f"unknown control message {kind!r}")
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
        raise
    finally:
        publication.close()
        ring.close()
        conn.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _Retained:
    """One shipped block held until a worker checkpoint covers it."""

    __slots__ = (
        "batch",
        "n",
        "slot",
        "names_span",
        "regs_span",
        "consumed",
        "poisoned",
        "skipped",
        "reships",
    )

    def __init__(self, *, batch, n, slot, names_span, regs_span):
        self.batch = batch
        self.n = n
        self.slot = slot
        self.names_span = names_span
        self.regs_span = regs_span
        self.consumed = False
        self.poisoned = False       # faulted twice; bisect before reshipping
        self.skipped = False        # fully quarantined; replay as a gap marker
        self.reships = 0            # integrity-failure re-deliveries


class _WorkerHandle:
    """Parent-side bookkeeping for one worker link."""

    __slots__ = (
        "shard_id",
        "proc",
        "conn",
        "ring",
        "epoch",
        "consumed",
        "retained",
        "inflight",
        "free_slots",
        "names_sent",
        "regs_sent",
        "last_ckpt",
        "restarts",
        "health",
        "total_restarts",
        "spawns",
        "last_seen",
        "fault_counts",
        "ready",
        "local_results",
        "adopts",
    )

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.proc = None
        self.conn = None
        self.ring = None
        self.epoch = 0              # next block number to ship
        self.consumed = -1          # highest epoch merged into parent state
        self.retained: dict[int, _Retained] = {}
        self.inflight: deque[int] = deque()
        self.free_slots: set[int] = set()
        self.names_sent = 0         # parent registry entries shipped
        self.regs_sent = 0          # reg-log entries shipped
        self.last_ckpt: dict | None = None
        self.restarts = 0           # consecutive failures (reset on progress)
        self.health = ShardHealth.HEALTHY
        self.total_restarts = 0     # lifetime restarts (observability)
        self.spawns = 0             # worker incarnations (fault-plan key)
        self.last_seen = time.monotonic()
        self.fault_counts: dict[int, int] = {}  # epoch -> worker faults
        self.ready: dict[int, int] = {}  # early results: epoch -> slot
        # Verdicts resolved parent-side (failover recompute, fully
        # quarantined blocks): epoch -> (batch, pred, entropy, accepted).
        self.local_results: dict[int, tuple] = {}
        self.adopts: list[tuple] = []  # failover adoptions not yet checkpointed


class WorkerShardedFleetMonitor(ShardedFleetMonitor):
    """The sharded fleet facade with process-per-shard workers.

    Drop-in for :class:`ShardedFleetMonitor` (same constructor shape,
    same API), with the verdict work fanned out over ``n_shards``
    supervised worker processes through shared-memory arenas.  Verdicts,
    merged stats, forensic stream and report device rows are bitwise
    identical to the in-process facade — the workers run the *same*
    :meth:`PublishedHmd.verdict` kernel on the same bytes and the same
    :meth:`FleetShard.scatter` state updates; the process boundary
    changes where the work runs, never what it computes.

    Additional parameters
    ---------------------
    mp_context:
        ``multiprocessing`` start method (default ``"spawn"`` — the
        safe choice next to threaded BLAS; tests use ``"fork"`` for
        startup speed).
    checkpoint_every:
        Worker auto-checkpoint cadence in blocks; bounds both restart
        replay length and retained-block memory.
    pipeline_depth:
        Rounds in flight during :meth:`drain` (take/copy of round
        ``r+1`` overlaps worker compute of round ``r``).
    worker_timeout:
        Seconds a worker may go silent before it is declared hung and
        restarted from checkpoint.
    max_restarts:
        Consecutive failed restarts of one shard before the circuit
        breaker opens.  With surviving shards the broken shard fails
        over (devices, backlog and pending verdicts move — nothing is
        shed); with a single shard it raises.
    restart_backoff:
        Base seconds of the bounded exponential back-off between
        consecutive restarts of one shard (0 disables; capped at 2s).
    chaos:
        Optional :class:`~repro.fleet.resilience.FaultPlan` injecting a
        deterministic fault campaign (tests/benchmarks only; ``None``
        costs nothing).
    quarantine_maxlen:
        Bound of the poison-window quarantine store.

    Call :meth:`close` (or use as a context manager) to stop workers
    and unlink the shared segments.
    """

    def __init__(
        self,
        hmd,
        *,
        n_shards: int = 4,
        batch_size: int = 256,
        policy: BackpressurePolicy | None = None,
        forensics: ForensicQueue | None = None,
        drift_reference=None,
        entropy_window: int = 128,
        router=None,
        mp_context: str = "spawn",
        checkpoint_every: int = 16,
        pipeline_depth: int = 2,
        worker_timeout: float = 30.0,
        max_restarts: int = 3,
        restart_backoff: float = 0.0,
        chaos: FaultPlan | None = None,
        quarantine_maxlen: int = 256,
        telemetry=None,
        tracer=None,
    ):
        super().__init__(
            hmd,
            n_shards=n_shards,
            batch_size=batch_size,
            policy=policy,
            forensics=forensics,
            drift_reference=drift_reference,
            entropy_window=entropy_window,
            router=router,
            telemetry=telemetry,
            tracer=tracer,
        )
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1; got {checkpoint_every}.")
        if pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1; got {pipeline_depth}.")
        self._ctx = mp.get_context(mp_context)
        self.checkpoint_every = int(checkpoint_every)
        self.pipeline_depth = int(pipeline_depth)
        self.worker_timeout = float(worker_timeout)
        self.max_restarts = int(max_restarts)
        self.restart_backoff = float(restart_backoff)
        self._chaos = chaos
        self._quarantine = QuarantineStore(maxlen=int(quarantine_maxlen))
        self._quarantine.bind_metrics(self.metrics)
        # Supervision instruments (no-ops when telemetry is off):
        # restart/failover/reship events plus the shm crossing latency
        # reconstructed from the per-slot trace sidecar.
        self._m_restarts = self.metrics.counter(
            "fleet_worker_restarts_total", "supervised worker restarts"
        )
        self._m_failovers = self.metrics.counter(
            "fleet_worker_failovers_total", "shards failed over to survivors"
        )
        self._m_reships = self.metrics.counter(
            "fleet_block_reships_total",
            "blocks re-shipped after an integrity failure",
        )
        self._m_roundtrip = self.metrics.histogram(
            "fleet_shm_roundtrip_seconds",
            "ship→seal shm crossing latency per block",
        )
        self._probe_token = 0
        # Slot budget: worst-case replay (a full checkpoint interval of
        # retained blocks plus in-flight rounds) must fit the ring with
        # margin, so a restart never waits on slot reclamation.
        self._n_slots = self.checkpoint_every + 2 * self.pipeline_depth + 2
        self._generation = 0
        self._ping = 0
        self._closed = False
        self._model_segment = None
        self._model_header, self._model_segment = publish_model(
            self.published, generation=self._generation
        )
        self._reg_logs: list[list[tuple[str, str]]] = [
            [] for _ in range(self.n_shards)
        ]
        # Feature-arena precision follows the published front: a
        # float32-mode hmd gets "<f4" slots (half the arena traffic);
        # write_block's f8→f4 cast rounds exactly like the in-process
        # front's own input cast, so verdicts stay identical.  A later
        # mode switch republishes the model but keeps the arena dtype —
        # the worker front casts whatever arrives, so a float64/
        # quantized republish over an f4 arena would *work* but lose
        # precision; the facade therefore only narrows the arena when
        # the hmd is already in float32 mode at construction.
        feat_dtype = (
            "<f4"
            if np.dtype(getattr(hmd, "_front_dtype_", np.float64)) == np.float32
            else "<f8"
        )
        self.handles: list[_WorkerHandle] = []
        try:
            for shard_id in range(self.n_shards):
                handle = _WorkerHandle(shard_id)
                handle.ring = ShmBlockRing(
                    n_slots=self._n_slots,
                    capacity=self.batch_size,
                    n_features=int(hmd.n_features_in_),
                    pred_dtype=self._model_header["pred_dtype"],
                    feat_dtype=feat_dtype,
                )
                handle.free_slots = set(range(self._n_slots))
                self._spawn_process(handle)
                self.handles.append(handle)
        except Exception:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------

    def _spawn_process(self, handle: _WorkerHandle) -> None:
        """Start (or replace) the worker process behind a handle."""
        parent_conn, child_conn = self._ctx.Pipe()
        init = {
            "ring": handle.ring.spec(),
            "model": self._model_header,
            "ckpt": handle.last_ckpt,
            "batch_size": self.batch_size,
            "entropy_window": self.entropy_window,
            "checkpoint_every": self.checkpoint_every,
            "chaos": self._chaos,
            "life": handle.spawns,
            "telemetry": self.metrics.enabled,
        }
        handle.spawns += 1
        proc = self._ctx.Process(
            target=worker_main,
            args=(handle.shard_id, child_conn, init),
            daemon=True,
            name=f"fleet-shard-{handle.shard_id}",
        )
        proc.start()
        # Close the parent's copy of the child end so a worker death
        # surfaces as pipe EOF instead of an eternal block.
        child_conn.close()
        handle.proc = proc
        handle.conn = parent_conn
        handle.last_seen = time.monotonic()

    def _kill_process(self, handle: _WorkerHandle) -> None:
        """Tear down a worker process and its pipe, escalating politely."""
        if handle.conn is not None:
            try:
                handle.conn.close()
            except Exception:
                pass
            handle.conn = None
        proc = handle.proc
        if proc is None:
            return
        handle.proc = None
        try:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
            else:
                proc.join(timeout=2.0)
        except Exception:
            pass
        try:
            proc.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop every worker and unlink the shared segments."""
        if self._closed:
            return
        self._closed = True
        for handle in getattr(self, "handles", []):
            if handle.conn is not None:
                try:
                    handle.conn.send(("stop",))
                except Exception:
                    pass
        for handle in getattr(self, "handles", []):
            self._kill_process(handle)
            if handle.ring is not None:
                handle.ring.close()
        if self._model_segment is not None:
            try:
                self._model_segment.close()
                _unlink(self._model_segment)
            except Exception:
                pass
            self._model_segment = None

    def __enter__(self) -> "WorkerShardedFleetMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- supervision ---------------------------------------------------

    def _restart(
        self, handle: _WorkerHandle, *, reason: str = "", count: bool = True
    ) -> None:
        """Replace a failed worker: restore from checkpoint, replay.

        Every retained block newer than the checkpoint is re-shipped in
        epoch order — the consumed ones rebuild the worker's device
        state (their duplicate results are dropped by epoch), the
        unconsumed ones are the lost in-flight work whose results the
        caller is still waiting for.  Blocks marked poisoned (two
        faults) or skipped (fully quarantined) are excluded from the
        replay; their registry spans still ship so dense indices stay
        aligned, and a skip marker keeps the worker's epoch cursor
        moving.

        ``count=False`` (bisection probes) skips the consecutive-failure
        breaker, the back-off and the fault attribution — probe crashes
        are *expected* while isolating a poison row.
        """
        handle.total_restarts += 1
        self._m_restarts.inc()
        if count:
            handle.restarts += 1
            if handle.restarts > self.max_restarts:
                self._failover(handle, reason=reason)
                return
            # Which block was the worker on?  Results arrive in epoch
            # order, so the oldest in-flight epoch without one is the
            # suspect; two strikes and it goes to bisection.
            suspect = next(
                (
                    e
                    for e in handle.inflight
                    if e not in handle.ready
                    and e in handle.retained
                    and not handle.retained[e].consumed
                    and not handle.retained[e].poisoned
                ),
                None,
            )
            if suspect is not None:
                faults = handle.fault_counts.get(suspect, 0) + 1
                handle.fault_counts[suspect] = faults
                if faults >= 2:
                    handle.retained[suspect].poisoned = True
            if self.restart_backoff > 0.0:
                time.sleep(
                    min(
                        self.restart_backoff * 2 ** (handle.restarts - 1),
                        _BACKOFF_CAP,
                    )
                )
        if handle.health is not ShardHealth.DEAD:
            handle.health = ShardHealth.DEGRADED
        self._kill_process(handle)
        handle.free_slots = set(range(self._n_slots))
        handle.ready.clear()
        for record in handle.retained.values():
            record.slot = None
        self._spawn_process(handle)
        queue = self.shards[handle.shard_id].queue
        log = self._reg_logs[handle.shard_id]
        try:
            # Adoptions not yet pinned by a checkpoint first (the
            # worker applies them only when the restored checkpoint
            # does not already carry the device), then registrations
            # since the checkpoint that are not attached to any
            # retained block (flushed standalone) — overlap with block
            # spans dedupes worker-side.
            if handle.adopts:
                handle.conn.send(("adopt", list(handle.adopts)))
            regs_from = int(handle.last_ckpt["regs_applied"]) if handle.last_ckpt else 0
            if regs_from < handle.regs_sent:
                handle.conn.send(("regs", regs_from, log[regs_from : handle.regs_sent]))
            for epoch in sorted(handle.retained):
                record = handle.retained[epoch]
                ns, ne = record.names_span
                rs, re_ = record.regs_span
                if record.poisoned or record.skipped:
                    if rs < re_:
                        handle.conn.send(("regs", rs, list(log[rs:re_])))
                    if ns < ne:
                        handle.conn.send(("names", ns, list(queue._names[ns:ne])))
                    if record.skipped:
                        handle.conn.send(("skipblock", epoch))
                    continue
                slot = handle.free_slots.pop()
                handle.ring.write_block(
                    slot,
                    record.batch.features,
                    record.batch.device_index,
                    record.batch.seqs,
                )
                handle.conn.send(
                    (
                        "block",
                        slot,
                        epoch,
                        record.n,
                        ns,
                        list(queue._names[ns:ne]),
                        rs,
                        list(log[rs:re_]),
                    )
                )
                record.slot = slot
        except (BrokenPipeError, OSError) as error:
            self._restart(handle, reason=f"replay failed: {error}", count=count)

    def _failover(self, handle: _WorkerHandle, *, reason: str) -> None:
        """Retire a shard whose circuit breaker opened; move everything.

        With no survivors this raises (single-shard fleets keep the old
        fail-fast behaviour).  Otherwise:

        1. The dead worker's device table is rebuilt *in-process* from
           its last checkpoint plus the retained-block replay — the
           same restore-and-replay a restart performs, run against the
           same published verdict kernel, so the rebuilt states are
           bitwise what the worker held.  Verdicts for epochs the
           parent had not consumed yet are kept as local results, so
           the in-flight rounds complete without the worker.
        2. The router permanently re-deals the dead hash bucket over
           the survivors, and every device migrates rebalance-style:
           state, sequence counter, shed history and queued backlog
           move — nothing is shed, nothing is lost.
        3. Each survivor adopts its share over a control message that
           is replay-safe (re-sent on restart until a checkpoint pins
           it; the worker applies only devices its checkpoint does not
           already carry).

        The dead shard's parent mirror is zeroed — its contributions
        now live in the survivors' mirrors — and its arena segment is
        unlinked.
        """
        survivors = [
            h
            for h in self.handles
            if h is not handle and h.health is not ShardHealth.DEAD
        ]
        if not survivors:
            raise RuntimeError(
                f"shard {handle.shard_id} worker failed {handle.restarts} "
                f"consecutive times; giving up. Last failure: {reason}"
            )
        self._kill_process(handle)
        handle.health = ShardHealth.DEAD
        self._m_failovers.inc()
        shard = self.shards[handle.shard_id]
        mirror = shard.monitor
        queue = shard.queue
        log = self._reg_logs[handle.shard_id]

        # 1. Restore-and-replay in-process: exactly what a replacement
        # worker would compute, minus the process.
        stub = _SharedModelStub()
        ckpt = handle.last_ckpt
        if ckpt is not None:
            replay = FleetMonitor.restore(stub, ckpt["monitor"], queue_cls=ShardQueue)
            replay_queue = replay.queue
            for name in ckpt["names"]:
                replay_queue.register_device(name)
            regs_applied = int(ckpt["regs_applied"])
        else:
            replay_queue = ShardQueue()
            replay = FleetMonitor(
                stub,
                batch_size=self.batch_size,
                entropy_window=self.entropy_window,
                queue=replay_queue,
            )
            regs_applied = 0
        for snap, seq in handle.adopts:
            if snap["device_id"] not in replay.devices:
                replay.devices[snap["device_id"]] = DeviceState.restore(snap)
                replay._seq[snap["device_id"]] = int(seq)
        regs_applied = _apply_regs(
            replay, regs_applied, regs_applied, log[regs_applied : handle.regs_sent]
        )
        replay_shard = FleetShard(handle.shard_id, replay, stage_flagged=False)
        for epoch in sorted(handle.retained):
            record = handle.retained[epoch]
            ns, ne = record.names_span
            rs, re_ = record.regs_span
            regs_applied = _apply_regs(replay, regs_applied, rs, log[rs:re_])
            _apply_names(replay, replay_queue, ns, list(queue._names[ns:ne]))
            if record.skipped:
                continue
            batch = record.batch
            predictions, entropy, accepted = self.published.verdict(batch.features)
            replay_shard.scatter(
                IndexedWindowBatch(
                    device_ids=None,
                    seqs=batch.seqs,
                    features=batch.features,
                    device_index=batch.device_index,
                ),
                predictions,
                entropy,
                accepted,
            )
            if not record.consumed:
                # The in-flight verdicts the caller is still awaiting;
                # their stats ride inside the migrated device states,
                # so the consume-time merge skips the stats mirror.
                handle.local_results[epoch] = (
                    batch,
                    predictions,
                    entropy,
                    np.asarray(accepted, dtype=bool),
                )

        # 2. Re-route and migrate (rebalance semantics: moved, never
        # shed).  The mirror's registry is authoritative for *which*
        # devices exist; the replay monitor for their verdict state.
        self.router.disable(handle.shard_id)
        moves: dict[int, list[tuple]] = {}
        for device_id in list(mirror.devices):
            state = replay.devices.get(device_id, mirror.devices[device_id])
            seq = int(mirror._seq.get(device_id, 0))
            snap = state.snapshot()
            target_id = self.router.shard_of(device_id)
            target = self.shards[target_id].monitor
            adopted = DeviceState.restore(snap)
            target.devices[device_id] = adopted
            target._seq[device_id] = seq
            target.stats.merge(adopted.stats)
            shed = queue.shed_by_device.pop(device_id, 0)
            if shed:
                target.queue.shed_by_device[device_id] = (
                    target.queue.shed_by_device.get(device_id, 0) + shed
                )
            features, seqs = queue.extract_device(device_id)
            if len(seqs):
                index = target.queue.register_device(device_id)
                target.queue._admit_rows(
                    np.full(len(seqs), index, dtype=np.int64), features, seqs
                )
            moves.setdefault(target_id, []).append((snap, seq))

        # 3. Survivors adopt their share.  Recorded before sending so a
        # send failure replays the adoption on restart.
        for target_id, payload in moves.items():
            thandle = self.handles[target_id]
            thandle.adopts.extend(payload)
            try:
                thandle.conn.send(("adopt", payload))
            except (BrokenPipeError, OSError) as error:
                self._restart(thandle, reason=str(error))

        # Zero the dead mirror: every contribution now lives in the
        # survivors (the replayed step counter keeps advancing through
        # the pending local results, so leave it be).
        mirror.devices = {}
        mirror._seq = {}
        mirror.stats = MonitorStats()
        handle.retained.clear()
        handle.ready.clear()
        handle.fault_counts.clear()
        handle.last_ckpt = None
        handle.free_slots = set(range(self._n_slots))
        if handle.ring is not None:
            handle.ring.close()
            handle.ring = None
        # Pin the adoptions: once a survivor checkpoint carries the
        # moved devices, the adopt payloads can be dropped from replay.
        self._sync_checkpoints()

    def _handle_side(self, handle: _WorkerHandle, msg: tuple) -> None:
        """Absorb a message that is not the one currently awaited."""
        kind = msg[0]
        if kind == "result":
            _, slot, epoch = msg
            if epoch <= handle.consumed:
                # A replayed block's duplicate verdict: determinism
                # makes it identical to what was already merged.
                handle.free_slots.add(slot)
            else:
                # Early arrival: an integrity re-ship or a mid-drain
                # checkpoint barrier can legitimately complete epochs
                # ahead of the one being awaited.  Hold the slot until
                # its turn comes around.
                handle.ready[epoch] = slot
            return
        if kind == "badblock":
            self._reship(handle, msg[1], msg[2])
            return
        if kind == "ckpt":
            self._absorb_checkpoint(handle, msg[1])
            return
        if kind == "error":
            raise _WorkerDied(
                f"worker {handle.shard_id} raised:\n{msg[1]}"
            )
        # Late pong/report/republished from a superseded request: drop.

    def _reship(self, handle: _WorkerHandle, slot: int, epoch: int) -> None:
        """Re-deliver a block whose frame failed the worker's checksum.

        The worker holds the epoch open, so re-writing the same slot
        and re-sending the same message is exactly-once by
        construction.  Corruption that survives ``_MAX_RESHIPS`` clean
        re-writes is not transient — treat the link as dead so the
        supervisor takes over.
        """
        record = handle.retained.get(epoch)
        if record is None or record.consumed or record.skipped:
            handle.free_slots.add(slot)
            return
        record.reships += 1
        self._m_reships.inc()
        if record.reships > _MAX_RESHIPS:
            raise _WorkerDied(
                f"shard {handle.shard_id} block {epoch} failed integrity "
                f"checks {record.reships} times."
            )
        handle.ring.write_block(
            slot, record.batch.features, record.batch.device_index, record.batch.seqs
        )
        ns, ne = record.names_span
        rs, re_ = record.regs_span
        queue = self.shards[handle.shard_id].queue
        log = self._reg_logs[handle.shard_id]
        handle.conn.send(
            (
                "block",
                slot,
                epoch,
                record.n,
                ns,
                list(queue._names[ns:ne]),
                rs,
                list(log[rs:re_]),
            )
        )

    def _absorb_checkpoint(self, handle: _WorkerHandle, state: dict) -> None:
        """Install a newer checkpoint and release the blocks it covers."""
        if handle.last_ckpt is not None and state["epoch"] < handle.last_ckpt["epoch"]:
            return
        handle.last_ckpt = state
        covered = int(state["epoch"])
        for epoch in [
            e
            for e, record in handle.retained.items()
            if e <= covered and record.consumed
        ]:
            del handle.retained[epoch]
        if handle.adopts:
            # Adoptions the checkpoint now carries no longer need the
            # replay-time re-send.
            carried = {d["device_id"] for d in state["monitor"]["devices"]}
            handle.adopts = [
                (snap, seq)
                for snap, seq in handle.adopts
                if snap["device_id"] not in carried
            ]

    def _recv_until(self, handle: _WorkerHandle, kind: str, *, match=None, timeout=None):
        """Receive until a matching message arrives; raise on link death."""
        budget = self.worker_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerDied(
                    f"worker {handle.shard_id} unresponsive for {budget:.1f}s."
                )
            conn = handle.conn
            try:
                ready = conn.poll(min(0.05, remaining))
            except (OSError, ValueError):
                raise _WorkerDied(f"worker {handle.shard_id} pipe closed.")
            if not ready:
                if not handle.proc.is_alive() and not conn.poll(0):
                    raise _WorkerDied(
                        f"worker {handle.shard_id} died "
                        f"(exitcode {handle.proc.exitcode})."
                    )
                continue
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                raise _WorkerDied(f"worker {handle.shard_id} pipe hit EOF.")
            handle.last_seen = time.monotonic()
            if msg[0] == kind and (match is None or match(msg)):
                return msg
            self._handle_side(handle, msg)

    def heartbeat(self, *, timeout: float | None = None) -> list[int]:
        """Ping every worker; restart the silent ones from checkpoint.

        Returns the shard ids that had to be restarted.  Call this from
        an operational loop between drains to catch workers that died
        or hung while no round was in flight.
        """
        restarted = []
        for handle in self.handles:
            if handle.health is ShardHealth.DEAD:
                continue
            self._ping += 1
            token = self._ping
            try:
                handle.conn.send(("ping", token))
                self._recv_until(
                    handle, "pong", match=lambda m: m[1] == token, timeout=timeout
                )
                handle.restarts = 0
                if handle.health is ShardHealth.DEGRADED:
                    handle.health = ShardHealth.HEALTHY
            except (_WorkerDied, BrokenPipeError, OSError) as error:
                self._restart(handle, reason=str(error))
                restarted.append(handle.shard_id)
        return restarted

    def _sync_checkpoints(self) -> None:
        """Barrier: a fresh checkpoint from every worker, retained drained."""
        for handle in self.handles:
            if handle.health is ShardHealth.DEAD:
                continue
            while True:
                try:
                    handle.conn.send(("checkpoint",))
                    msg = self._recv_until(
                        handle,
                        "ckpt",
                        match=lambda m: int(m[1]["epoch"]) >= handle.consumed,
                    )
                except (_WorkerDied, BrokenPipeError, OSError) as error:
                    self._restart(handle, reason=str(error))
                    continue
                self._absorb_checkpoint(handle, msg[1])
                break

    # -- ingress (reg-log hooks) ---------------------------------------

    def register(self, device_id: str, *, cohort: str = "unknown"):
        """Register on the home shard and log for worker propagation."""
        shard_index = self.router.shard_of(device_id)
        monitor = self.shards[shard_index].monitor
        known = monitor.devices.get(device_id)
        if known is None or (cohort != "unknown" and known.cohort == "unknown"):
            self._reg_logs[shard_index].append((device_id, cohort))
        return monitor.register(device_id, cohort=cohort)

    def submit(self, device_id: str, window) -> bool:
        """Route one window to its shard (device logged for the worker)."""
        self.register(device_id)
        return super().submit(device_id, window)

    def submit_many(self, device_id: str, windows) -> int:
        """Route a block of windows (device logged for the worker)."""
        self.register(device_id)
        return super().submit_many(device_id, windows)

    def _flush_regs(self) -> None:
        """Ship registrations that no block has carried yet."""
        for handle in self.handles:
            if handle.health is ShardHealth.DEAD:
                continue
            log = self._reg_logs[handle.shard_id]
            if handle.regs_sent >= len(log):
                continue
            start = handle.regs_sent
            entries = log[start:]
            handle.regs_sent = len(log)
            try:
                handle.conn.send(("regs", start, entries))
            except (BrokenPipeError, OSError) as error:
                self._restart(handle, reason=str(error))

    # -- model publication ---------------------------------------------

    def _ensure_published(self) -> PublishedHmd:
        """Republish to every worker after a retrain/threshold change."""
        if self.published.is_current():
            return self.published
        # Checkpoint barrier first: restart replay must never cross a
        # model generation, or replayed verdicts would diverge from the
        # originals already merged.
        self._sync_checkpoints()
        self.published = PublishedHmd(self.hmd)
        self._generation += 1
        stale_segment = self._model_segment
        self._model_header, self._model_segment = publish_model(
            self.published, generation=self._generation
        )
        generation = self._generation
        for handle in self.handles:
            if handle.health is ShardHealth.DEAD:
                continue
            try:
                handle.conn.send(("republish", self._model_header))
                self._recv_until(
                    handle, "republished", match=lambda m: m[1] == generation
                )
            except (_WorkerDied, BrokenPipeError, OSError) as error:
                # The replacement spawns with the new header — already
                # on the fresh generation, no ack needed.
                self._restart(handle, reason=str(error))
        if stale_segment is not None:
            try:
                stale_segment.close()
                _unlink(stale_segment)
            except Exception:
                pass
        return self.published

    # -- fused rounds across processes ---------------------------------

    def _ship(self, handle: _WorkerHandle, batch: IndexedWindowBatch) -> None:
        """Copy a dequeued batch into a free slot and hand it over."""
        if not handle.free_slots:
            raise RuntimeError(
                f"shard {handle.shard_id} arena ring exhausted "
                f"({self._n_slots} slots) — checkpoint cadence and "
                "pipeline depth are inconsistent."
            )
        queue = self.shards[handle.shard_id].queue
        slot = handle.free_slots.pop()
        n = handle.ring.write_block(
            slot, batch.features, batch.device_index, batch.seqs
        )
        if self._obs_on:
            # Trace sidecar column 0: the parent's ship timestamp.  The
            # worker seals its own into column 1; _await_result reads
            # the pair back as the shm crossing.
            ship_ts = time.monotonic()
            handle.ring.stamp_trace(slot, 0, ship_ts)
            if self.tracer is not None:
                self.tracer.stamp_rows(batch.device_ids, batch.seqs, "ship", ship_ts)
        names_start, regs_start = handle.names_sent, handle.regs_sent
        names = list(queue._names[names_start:])
        regs = list(self._reg_logs[handle.shard_id][regs_start:])
        handle.names_sent = names_start + len(names)
        handle.regs_sent = regs_start + len(regs)
        epoch = handle.epoch
        handle.epoch = epoch + 1
        handle.retained[epoch] = _Retained(
            batch=batch,
            n=n,
            slot=slot,
            names_span=(names_start, handle.names_sent),
            regs_span=(regs_start, handle.regs_sent),
        )
        handle.inflight.append(epoch)
        if self._chaos is not None and self._chaos.should_corrupt(
            handle.shard_id, epoch
        ):
            # Scheduled arena corruption: flip stored bytes *after* the
            # checksum stamp, exactly like a bit-flip in flight.  Only
            # the first delivery is corrupted — the integrity re-ship
            # rewrites the slot cleanly, so recovery converges.
            handle.ring.corrupt_slot(slot)
        try:
            handle.conn.send(
                ("block", slot, epoch, n, names_start, names, regs_start, regs)
            )
        except (BrokenPipeError, OSError) as error:
            # Retained already — the restart replay re-ships it.
            self._restart(handle, reason=str(error))

    def _await_result(self, handle: _WorkerHandle):
        """Resolve the oldest in-flight epoch's verdicts.

        Returns ``(batch, predictions, entropy, accepted, mirrored)``.
        ``batch`` is the authoritative batch for the epoch — it may be
        a quarantine-filtered subset of what was shipped.  ``mirrored``
        is True when the verdicts' stats contributions already live in
        the parent's mirrors (failover recompute: the migrated device
        states carry them), so the caller must skip the stats half of
        the merge.
        """
        while True:
            expected = handle.inflight[0]
            local = handle.local_results.pop(expected, None)
            if local is not None:
                # Resolved parent-side: a failover recompute or a fully
                # quarantined (empty) block.
                handle.inflight.popleft()
                handle.consumed = max(handle.consumed, expected)
                batch, predictions, entropy, accepted = local
                return batch, predictions, entropy, accepted, True
            record = handle.retained[expected]
            if record.poisoned:
                self._quarantine_and_reship(handle, expected)
                continue
            if expected in handle.ready:
                slot = handle.ready.pop(expected)
            else:
                try:
                    msg = self._recv_until(
                        handle, "result", match=lambda m: m[2] == expected
                    )
                except _WorkerDied as error:
                    self._restart(handle, reason=str(error))
                    continue
                slot = msg[1]
            try:
                predictions, entropy, accepted = handle.ring.read_results(
                    slot, record.n
                )
            except ShmIntegrityError as error:
                # The result frame itself is damaged — indistinguishable
                # from a worker that scribbled and died; replay
                # recomputes it from the pre-block checkpoint.
                self._restart(handle, reason=str(error))
                continue
            if self._obs_on:
                ship_ts, seal_ts = handle.ring.read_trace(slot)
                if seal_ts > ship_ts > 0.0:
                    self._m_roundtrip.observe(seal_ts - ship_ts)
                if self.tracer is not None and seal_ts > 0.0:
                    self.tracer.stamp_rows(
                        record.batch.device_ids,
                        record.batch.seqs,
                        "verdict",
                        seal_ts,
                    )
            handle.free_slots.add(slot)
            record.slot = None
            record.consumed = True
            handle.consumed = expected
            handle.inflight.popleft()
            handle.restarts = 0
            handle.fault_counts.pop(expected, None)
            if handle.health is ShardHealth.DEGRADED:
                handle.health = ShardHealth.HEALTHY
            return record.batch, predictions, entropy, accepted, False

    def _quarantine_and_reship(self, handle: _WorkerHandle, epoch: int) -> None:
        """Bisect a twice-faulting block; quarantine rows, replay the rest.

        Verdict-only probes narrow the fault down to individual rows
        (a probe re-runs the verdict pass without touching device
        state, so probing is repeatable and free of side effects).
        Offending rows move to the bounded quarantine store — still
        accounted, never silently shed — and the surviving rows are
        re-shipped *under the original epoch*, so ordering, sequence
        numbers and exactly-once semantics are untouched.  A block
        whose probes all pass was a coincidence of two unrelated
        faults: it replays whole.
        """
        record = handle.retained[epoch]
        batch = record.batch
        keep = self._isolate_rows(handle, batch)
        bad = np.flatnonzero(~keep)
        for i in bad:
            self._quarantine.push(
                QuarantinedWindow(
                    device_id=str(batch.device_ids[i]),
                    seq=int(batch.seqs[i]),
                    features=np.array(batch.features[i], copy=True),
                    shard_id=handle.shard_id,
                    epoch=int(epoch),
                    reason=(
                        "worker faulted twice on this block; "
                        "row isolated by bisection"
                    ),
                )
            )
        record.poisoned = False
        handle.fault_counts.pop(epoch, None)
        if len(bad):
            # Genuine poison found and removed — that is progress, so
            # the consecutive-failure breaker resets.  A clean bisection
            # (two unrelated crashes) keeps the count: a crash storm
            # must still be able to open the breaker.
            handle.restarts = 0
        if not keep.any():
            # Nothing left to verdict: the epoch resolves to an empty
            # local result and the worker is told to skip it so its
            # strict epoch cursor keeps moving.
            record.skipped = True
            record.consumed = True
            empty = IndexedWindowBatch(
                device_ids=batch.device_ids[:0],
                seqs=batch.seqs[:0],
                features=batch.features[:0],
                device_index=batch.device_index[:0],
            )
            record.batch = empty
            record.n = 0
            handle.local_results[epoch] = (
                empty,
                np.empty(0, dtype=np.dtype(self._model_header["pred_dtype"])),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=bool),
            )
            try:
                handle.conn.send(("skipblock", epoch))
            except (BrokenPipeError, OSError) as error:
                self._restart(handle, reason=str(error))
            return
        if len(bad):
            record.batch = IndexedWindowBatch(
                device_ids=batch.device_ids[keep],
                seqs=batch.seqs[keep],
                features=batch.features[keep],
                device_index=batch.device_index[keep],
            )
            record.n = len(record.batch.seqs)
        try:
            slot = handle.free_slots.pop()
            handle.ring.write_block(
                slot,
                record.batch.features,
                record.batch.device_index,
                record.batch.seqs,
            )
            ns, ne = record.names_span
            rs, re_ = record.regs_span
            queue = self.shards[handle.shard_id].queue
            log = self._reg_logs[handle.shard_id]
            handle.conn.send(
                (
                    "block",
                    slot,
                    epoch,
                    record.n,
                    ns,
                    list(queue._names[ns:ne]),
                    rs,
                    list(log[rs:re_]),
                )
            )
            record.slot = slot
        except (BrokenPipeError, OSError) as error:
            # The restart replay ships the (now filtered) record.
            self._restart(handle, reason=str(error))

    def _isolate_rows(self, handle: _WorkerHandle, batch) -> np.ndarray:
        """Delta-debug a faulting block down to its poison rows.

        Returns a keep-mask.  Probes the full row set first — if that
        passes, the double fault was two unrelated crashes and every
        row is kept.  Otherwise subsets split until failing singletons
        fall out: O(k log n) probes for k poison rows.
        """
        n = len(batch.seqs)
        keep = np.ones(n, dtype=bool)
        stack = [np.arange(n)]
        while stack:
            rows = stack.pop()
            if self._probe(handle, batch, rows):
                continue
            if len(rows) == 1:
                keep[rows[0]] = False
                continue
            mid = len(rows) // 2
            stack.append(rows[mid:])
            stack.append(rows[:mid])
        return keep

    def _probe(self, handle: _WorkerHandle, batch, rows: np.ndarray) -> bool:
        """Verdict-only probe of a row subset; False = the worker died.

        Probe deaths are the *expected* bisection signal, so the
        restart they trigger is uncounted — no breaker progress, no
        back-off, no fault attribution.
        """
        self._probe_token += 1
        token = self._probe_token
        slot = handle.free_slots.pop()
        try:
            handle.ring.write_block(
                slot,
                batch.features[rows],
                batch.device_index[rows],
                batch.seqs[rows],
            )
            handle.conn.send(("probe", slot, len(rows), token))
            self._recv_until(handle, "probed", match=lambda m: m[2] == token)
        except (_WorkerDied, BrokenPipeError, OSError) as error:
            # The restart reclaims every slot, including this probe's.
            self._restart(handle, reason=str(error), count=False)
            return False
        handle.free_slots.add(slot)
        return True

    def _merge_part(
        self,
        shard: FleetShard,
        batch: IndexedWindowBatch,
        predictions: np.ndarray,
        entropy: np.ndarray,
        accepted: np.ndarray,
        *,
        record_stats: bool = True,
    ) -> None:
        """Mirror one shard slice into the parent-side facade state.

        The worker already updated the device table; the parent applies
        the *same* ``record_verdicts`` call to its per-shard stats
        mirror (bitwise-identical merged counters), advances the same
        step counter, and stages flagged rows from its own retained
        feature arrays — exactly the columnar tuples
        :meth:`FleetShard.scatter` would stage in-process.

        ``record_stats=False`` is the failover-recompute path: those
        verdicts' stats already travelled inside the migrated device
        states, so only the step counter and flagged staging apply.
        """
        monitor = shard.monitor
        n = len(batch)
        base_step = monitor._step
        monitor._step += n
        accepted = np.asarray(accepted, dtype=bool)
        if record_stats:
            monitor.stats.record_verdicts(predictions, entropy, accepted)
        flagged = np.flatnonzero(~accepted)
        if len(flagged):
            shard._staged_flagged.append(
                (
                    batch.features[flagged],
                    predictions[flagged],
                    entropy[flagged],
                    base_step + flagged + 1,
                    batch.device_ids[flagged],
                    batch.seqs[flagged],
                )
            )
        if self._obs_on:
            self._m_scatter_rows.inc(n)
            self._m_flagged.inc(len(flagged))
            if self.tracer is not None:
                self.tracer.complete_rows(batch.device_ids, batch.seqs, "scatter")

    def _ship_round(self):
        """Take one round's blocks off the queues and ship them."""
        parts = []
        for shard, handle in zip(self.shards, self.handles):
            if handle.health is ShardHealth.DEAD:
                continue
            if len(shard.queue):
                batch = shard.queue.take(self.batch_size)
                if len(batch):
                    if self.tracer is not None:
                        self.tracer.stamp_rows(batch.device_ids, batch.seqs, "queue")
                    self._ship(handle, batch)
                    parts.append((handle, batch))
        return parts or None

    def _finish_round(self, parts) -> FleetBatchResult:
        """Await one round's results and merge them facade-side."""
        merged = []
        for handle, _shipped in parts:
            # The resolved batch may differ from the shipped one (rows
            # quarantined mid-flight), so merge what came back.
            batch, predictions, entropy, accepted, mirrored = self._await_result(
                handle
            )
            self._merge_part(
                self.shards[handle.shard_id],
                batch,
                predictions,
                entropy,
                accepted,
                record_stats=not mirrored,
            )
            merged.append((batch, predictions, entropy, accepted))
        self._collect_flagged()
        if len(merged) == 1:
            batch, predictions, entropy, accepted = merged[0]
            device_ids, seqs = batch.device_ids, batch.seqs
        else:
            device_ids = np.concatenate([m[0].device_ids for m in merged])
            seqs = np.concatenate([m[0].seqs for m in merged])
            predictions = np.concatenate([m[1] for m in merged])
            entropy = np.concatenate([m[2] for m in merged])
            accepted = np.concatenate([m[3] for m in merged])
        if self.drift is not None:
            self.drift.observe(entropy)
        self.n_batches += 1
        return FleetBatchResult(
            device_ids=device_ids,
            seqs=seqs,
            predictions=predictions,
            entropy=entropy,
            accepted=accepted,
            threshold=self.published.threshold,
        )

    def process_batch(self) -> FleetBatchResult | None:
        """One fused round, fanned across the workers."""
        self._ensure_published()
        parts = self._ship_round()
        if parts is None:
            return None
        return self._finish_round(parts)

    def drain(self, max_batches: int | None = None) -> list[FleetBatchResult]:
        """Drain every queue with round-level pipelining.

        Up to ``pipeline_depth`` rounds ride the arenas at once: the
        parent's take-and-copy of round ``r+1`` overlaps the workers'
        verdict compute of round ``r``, so the parent is never the
        bubble between worker batches.
        """
        self._ensure_published()
        results: list[FleetBatchResult] = []
        rounds: deque = deque()
        while True:
            while len(rounds) < self.pipeline_depth and (
                max_batches is None or len(results) + len(rounds) < max_batches
            ):
                parts = self._ship_round()
                if parts is None:
                    break
                rounds.append(parts)
            if not rounds:
                break
            results.append(self._finish_round(rounds.popleft()))
        return results

    # -- egress --------------------------------------------------------

    def shard_health(self) -> tuple[ShardHealthReport, ...]:
        """Per-shard supervision snapshot (health, restarts, liveness)."""
        now = time.monotonic()
        return tuple(
            ShardHealthReport(
                shard_id=handle.shard_id,
                health=handle.health,
                restarts=handle.restarts,
                total_restarts=handle.total_restarts,
                heartbeat_age=(
                    0.0
                    if handle.health is ShardHealth.DEAD
                    else max(0.0, now - handle.last_seen)
                ),
            )
            for handle in self.handles
        )

    @property
    def quarantine(self) -> QuarantineStore:
        """The poison-window quarantine store (bounded, accounted)."""
        return self._quarantine

    def report(self):
        """Merged fleet view: worker device tables + parent queues.

        Failed-over shards are skipped — their devices (and counters)
        already live in the survivors' tables.  The merged report also
        carries the per-shard health rows and the lifetime quarantine
        count.
        """
        self._flush_regs()
        reports = []
        for handle in self.handles:
            if handle.health is ShardHealth.DEAD:
                continue
            while True:
                try:
                    handle.conn.send(("report",))
                    msg = self._recv_until(handle, "report")
                except (_WorkerDied, BrokenPipeError, OSError) as error:
                    self._restart(handle, reason=str(error))
                    continue
                break
            reports.append(
                rebind_queue_counters(msg[1], self.shards[handle.shard_id].queue)
            )
        merged = merge_reports(
            reports,
            n_batches=self.n_batches,
            drift_status=self.drift.observe([]).status if self.drift else None,
        )
        if self.metrics.enabled:
            # Three telemetry planes fold here: the facade's supervision
            # instruments, the parent mirrors' queue instruments (the
            # parent owns ingress), and whatever worker snapshots rode
            # home inside the reports (already merged above).
            snapshots = [self.metrics.snapshot()]
            snapshots.extend(
                shard.monitor.metrics.snapshot()
                for shard in self.shards
                if shard.monitor.metrics.enabled
            )
            if merged.telemetry:
                snapshots.append(merged.telemetry)
            merged = replace(merged, telemetry=merge_snapshots(snapshots))
        return replace(
            merged,
            shard_health=self.shard_health(),
            n_quarantined=self._quarantine.total_quarantined,
        )

    # -- rebalancing ---------------------------------------------------

    def rebalance(self, n_shards: int):
        """Not supported live across processes (by design, for now).

        The migration path is: :meth:`snapshot` → restore in-process
        (:meth:`ShardedFleetMonitor.restore`) → ``rebalance(K)`` →
        ``snapshot()`` → :meth:`WorkerShardedFleetMonitor.restore` —
        checkpoints are cross-backend by construction, so the round
        trip is exact.
        """
        raise NotImplementedError(
            "live rebalance is not supported by the multi-process backend; "
            "snapshot(), restore in-process, rebalance, snapshot and "
            "restore with WorkerShardedFleetMonitor.restore instead."
        )

    # -- persistence ---------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpoint the fleet — same schema as the in-process facade.

        Worker monitor checkpoints are fetched at a barrier, then each
        shard's payload is rebound to the parent's authoritative queue
        backlog and sequence counters, yielding a payload
        :meth:`ShardedFleetMonitor.restore` (in-process) and
        :meth:`WorkerShardedFleetMonitor.restore` both accept.
        """
        self._sync_checkpoints()
        shard_states = []
        for handle in self.handles:
            shard = self.shards[handle.shard_id]
            if handle.health is ShardHealth.DEAD:
                # Failed-over shard: everything migrated, so its slot in
                # the snapshot is the (empty) parent mirror.  Restoring
                # such a snapshot needs a router with the same shard
                # disabled for identical routing — or a rebalance.
                worker_state = shard.monitor.snapshot()
            else:
                worker_state = dict(handle.last_ckpt["monitor"])
            worker_state["queue"] = shard.queue.snapshot()
            worker_state["seq"] = dict(shard.monitor._seq)
            shard_states.append(worker_state)
        return {
            "schema": SNAPSHOT_SCHEMA,
            "n_shards": self.n_shards,
            "batch_size": self.batch_size,
            "entropy_window": self.entropy_window,
            "n_batches": self.n_batches,
            "policy": asdict(self.policy),
            "shards": shard_states,
            "forensics": {
                "samples": self.forensics.snapshot(),
                "maxlen": self.forensics.maxlen,
                "total_flagged": self.forensics.total_flagged,
            },
        }

    @classmethod
    def restore(
        cls,
        hmd,
        state: dict,
        *,
        drift_reference=None,
        router=None,
        **worker_options,
    ) -> "WorkerShardedFleetMonitor":
        """Rebuild a worker-backed fleet from a facade snapshot.

        Accepts checkpoints from either backend (the schema is shared):
        parent queues, sequence counters and stat mirrors restore
        in-process; each worker is reseeded from its shard's monitor
        payload with an emptied queue (the parent owns the backlog) and
        rebuilds its dense registry from the first blocks it receives.
        ``worker_options`` forwards ``mp_context``/``checkpoint_every``/
        ``pipeline_depth``/``worker_timeout``/``max_restarts``/
        ``restart_backoff``/``chaos``/``quarantine_maxlen``.
        """
        cls._validate_snapshot(state)
        forensic_state = state["forensics"]
        fleet = cls(
            hmd,
            n_shards=state["n_shards"],
            batch_size=state["batch_size"],
            entropy_window=state["entropy_window"],
            policy=BackpressurePolicy(**state["policy"]),
            forensics=ForensicQueue.restore(
                forensic_state["samples"],
                maxlen=forensic_state["maxlen"],
                total_flagged=forensic_state["total_flagged"],
            ),
            drift_reference=drift_reference,
            router=router,
            **worker_options,
        )
        if fleet.router.n_shards != state["n_shards"]:
            raise ValueError(
                f"router has {fleet.router.n_shards} shards but the "
                f"snapshot holds {state['n_shards']}."
            )
        fleet.n_batches = int(state["n_batches"])
        empty_queue_state = ShardQueue().snapshot()
        for handle, shard_state in zip(fleet.handles, state["shards"]):
            shard = fleet.shards[handle.shard_id]
            monitor = shard.monitor
            monitor.queue = ShardQueue.restore(shard_state["queue"])
            monitor._seq = dict(shard_state["seq"])
            monitor._step = int(shard_state["step"])
            monitor.stats = MonitorStats.restore(shard_state["stats"])
            monitor.devices = {
                device["device_id"]: DeviceState.restore(device)
                for device in shard_state["devices"]
            }
            worker_state = dict(shard_state)
            worker_state["queue"] = empty_queue_state
            handle.last_ckpt = {
                "epoch": -1,
                "monitor": worker_state,
                "names": [],
                "regs_applied": 0,
            }
            # Reseed: replace the fresh worker with one restored from
            # the crafted checkpoint (nothing retained, nothing to
            # replay — the parent queue rebuilds the registry as blocks
            # ship).
            fleet._kill_process(handle)
            fleet._spawn_process(handle)
        return fleet
