"""Live fleet retraining: forensic queue → triage → label → warm refit.

The paper's operational story (intro, S12) is monitor → flag → label →
**retrain**.  PR 1–2 made the monitor/flag half fleet-scale;
:class:`FleetRetrainer` closes the other half *inside* the fleet
engine: between batches it triages the shared forensic queue into
candidate novel-workload clusters
(:func:`~repro.uncertainty.online.triage_queue`), asks an analyst
labeler for **one label per cluster**, drains the queue and hands the
labelled rows to a :class:`~repro.uncertainty.online.RetrainingLoop`.
With a histogram-grown ensemble the refit is warm
(:meth:`TrustedHMD.partial_refit` — fixed scaler/PCA/bin edges, member
regrowth from the binned buffer, flat backend recompiled), cheap enough
to run live between inference batches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..uncertainty.online import RetrainingLoop, TriageCluster, triage_queue
from .engine import FleetMonitor

__all__ = ["FleetRetrainer", "RetrainOutcome"]


@dataclass(frozen=True)
class RetrainOutcome:
    """What one :meth:`FleetRetrainer.step` did."""

    n_labelled: int        # flagged windows labelled and incorporated
    n_clusters: int        # triage clusters presented to the analyst
    retrained: bool        # did the HMD refit in this step
    n_retrains: int        # lifetime refit count of the loop

    def __bool__(self) -> bool:
        return self.retrained


class FleetRetrainer:
    """Drain the fleet's forensic queue into live model refits.

    Parameters
    ----------
    monitor:
        The running :class:`FleetMonitor` — or a
        :class:`~repro.fleet.sharding.ShardedFleetMonitor`, whose
        ``forensics`` queue is the merged per-shard triage stream and
        whose fused rounds republish the warm-refitted HMD to every
        shard (the facade recompiles the shared view once, at the next
        ``process_batch``).  Its ``forensics`` queue and its ``hmd``
        are the retrainer's inputs and outputs.
    labeler:
        Analyst oracle: ``labeler(cluster) -> label`` called once per
        :class:`~repro.uncertainty.online.TriageCluster` — the paper's
        "specialist labels the flagged workload group" step.
    X_train / y_train:
        The training set the fleet HMD was originally fitted on.
    min_batch:
        Labelled samples that must accumulate before a refit triggers
        (forwarded to the :class:`RetrainingLoop`).
    n_clusters / random_state:
        Triage clustering controls (see :func:`triage_queue`).
    """

    def __init__(
        self,
        monitor: FleetMonitor,
        labeler: Callable[[TriageCluster], object],
        X_train,
        y_train,
        *,
        min_batch: int = 32,
        n_clusters: int | None = None,
        random_state: int | np.random.Generator | None = 0,
    ):
        self.monitor = monitor
        self.labeler = labeler
        self.loop = RetrainingLoop(
            monitor.hmd, X_train, y_train, min_batch=min_batch
        )
        self.n_clusters = n_clusters
        self.random_state = random_state
        self.n_steps = 0
        # Instruments land in the monitor's registry (no-op when its
        # telemetry is off), so retrain activity shows up in the same
        # snapshot as the inference path it interleaves with.
        metrics = monitor.metrics
        self._m_steps = metrics.counter(
            "fleet_retrain_steps_total", "analyst triage cycles"
        )
        self._m_labelled = metrics.counter(
            "fleet_retrain_windows_labelled_total",
            "flagged windows labelled and incorporated",
        )
        self._m_refits = metrics.counter(
            "fleet_retrain_refits_total", "warm HMD refits triggered"
        )
        self._m_step_seconds = metrics.histogram(
            "fleet_retrain_step_seconds", "triage→label→refit cycle latency"
        )

    def triage(self) -> list[TriageCluster]:
        """Cluster the queued flagged windows for analyst review."""
        return triage_queue(
            self.monitor.forensics,
            n_clusters=self.n_clusters,
            random_state=self.random_state,
        )

    def step(self) -> RetrainOutcome:
        """One analyst cycle: triage → label per cluster → incorporate.

        Empties the forensic queue.  When the accumulated labelled rows
        reach ``min_batch`` the HMD refits (warm partial refit for
        histogram-grown ensembles) and the recompiled model serves the
        monitor's next batch — no restart, no handoff.
        """
        self.n_steps += 1
        self._m_steps.inc()
        queue = self.monitor.forensics
        if len(queue) == 0:
            return RetrainOutcome(0, 0, False, self.loop.n_retrains)
        t0 = time.perf_counter()
        clusters = self.triage()
        label_of: dict[int, object] = {}
        for cluster in clusters:
            label = self.labeler(cluster)
            for sample in cluster.samples:
                label_of[id(sample)] = label
        samples = queue.drain()
        labels = [label_of[id(sample)] for sample in samples]
        retrained = self.loop.incorporate(samples, labels)
        self._m_step_seconds.observe(time.perf_counter() - t0)
        self._m_labelled.inc(len(samples))
        if retrained:
            self._m_refits.inc()
        return RetrainOutcome(
            n_labelled=len(samples),
            n_clusters=len(clusters),
            retrained=retrained,
            n_retrains=self.loop.n_retrains,
        )

    def drain(self, max_batches: int | None = None) -> list[RetrainOutcome]:
        """Interleave inference and retraining until the queue empties.

        The full in-process cycle: ``process_batch`` (monitor → flag)
        then :meth:`step` (triage → label → retrain → recompile) after
        every batch, so verdicts later in the drain come from a model
        that already learned from earlier flags.
        """
        outcomes: list[RetrainOutcome] = []
        n_batches = 0
        while max_batches is None or n_batches < max_batches:
            result = self.monitor.process_batch()
            if result is None:
                break
            n_batches += 1
            outcomes.append(self.step())
        return outcomes
