"""Multiplexing queue with explicit backpressure for the fleet engine.

Production DAQ systems facing many sensor streams (the KM3NeT Control
Unit, the CMS HGCAL DAQ prototype) converge on the same ingress shape:
a bounded central queue in front of the batched processing core, with a
*shedding* policy that decides what happens when producers outrun the
core.  This module is that ingress: window submissions from all devices
land in one :class:`FleetQueue`, bounded globally and per device, and
overload is resolved by policy rather than by unbounded memory growth.

Two shedding modes are provided:

* ``"drop_oldest"`` — evict the stalest queued window to admit the new
  one (freshness wins; the natural choice for monitoring, where a new
  signature supersedes an old one from the same device);
* ``"drop_newest"`` — refuse the incoming window (arrival order wins;
  the classic bounded-mailbox behaviour).

Every shed window is attributed to its device so the fleet report can
show *who* is being rate-limited.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["WindowRequest", "BackpressurePolicy", "FleetQueue"]

_SHED_MODES = ("drop_oldest", "drop_newest")


@dataclass(frozen=True)
class WindowRequest:
    """One signature window awaiting batched inference."""

    device_id: str
    features: np.ndarray    # 1-D feature vector
    seq: int                # per-device submission sequence number


@dataclass(frozen=True)
class BackpressurePolicy:
    """Bounds and shedding behaviour of the ingress queue.

    Parameters
    ----------
    max_pending:
        Global cap on queued windows across all devices.
    max_pending_per_device:
        Per-device cap (``None`` disables the per-device bound).  Keeps
        one chatty or replaying device from starving the rest of the
        fleet even when the global queue has headroom.
    shed:
        ``"drop_oldest"`` or ``"drop_newest"`` (see module docstring).
    """

    max_pending: int = 4096
    max_pending_per_device: int | None = None
    shed: str = "drop_oldest"

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1; got {self.max_pending}.")
        if self.max_pending_per_device is not None and self.max_pending_per_device < 1:
            raise ValueError(
                "max_pending_per_device must be >= 1 or None; "
                f"got {self.max_pending_per_device}."
            )
        if self.shed not in _SHED_MODES:
            raise ValueError(f"shed must be one of {_SHED_MODES}; got {self.shed!r}.")


class FleetQueue:
    """Bounded FIFO of window requests with per-device accounting.

    Eviction from the middle of a FIFO is made O(1) amortised by
    tombstoning: requests live in a dict keyed by admission ticket, the
    global and per-device deques hold tickets only, and stale tickets
    are skipped lazily during :meth:`take`.
    """

    def __init__(self, policy: BackpressurePolicy | None = None):
        self.policy = policy if policy is not None else BackpressurePolicy()
        self._items: dict[int, WindowRequest] = {}
        self._order: deque[int] = deque()
        self._by_device: dict[str, deque[int]] = {}
        self._pending_by_device: dict[str, int] = {}
        self._next_ticket = 0
        self.shed_by_device: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    @property
    def total_shed(self) -> int:
        """Windows dropped by backpressure since construction."""
        return sum(self.shed_by_device.values())

    def pending(self, device_id: str | None = None) -> int:
        """Queued windows, fleet-wide or for one device."""
        if device_id is None:
            return len(self._items)
        return self._pending_by_device.get(device_id, 0)

    def _shed(self, device_id: str) -> None:
        self.shed_by_device[device_id] = self.shed_by_device.get(device_id, 0) + 1

    def _evict_ticket(self, ticket: int) -> None:
        request = self._items.pop(ticket)
        self._pending_by_device[request.device_id] -= 1
        self._shed(request.device_id)

    def _evict_oldest(self, device_id: str | None = None) -> None:
        """Tombstone the stalest live request (optionally of one device)."""
        queue = self._order if device_id is None else self._by_device[device_id]
        while queue:
            ticket = queue[0]
            if ticket in self._items:
                queue.popleft()
                self._evict_ticket(ticket)
                return
            queue.popleft()

    def _trim_device_queue(self, device_id: str) -> None:
        """Drop leading stale tickets from one device's deque.

        Evictions and takes only ever remove a device's *oldest* live
        ticket, so stale tickets accumulate at the head; trimming heads
        on every submit/take keeps the deques from growing without
        bound over a long-running monitor's lifetime.
        """
        queue = self._by_device.get(device_id)
        if queue is None:
            return
        while queue and queue[0] not in self._items:
            queue.popleft()

    def _compact(self) -> None:
        """Rebuild the ticket deques once tombstones outnumber live.

        Per-device-cap evictions tombstone tickets in the *middle* of
        the global order, where head trimming cannot reach them; if the
        consumer stalls while a capped device keeps submitting, those
        tombstones would otherwise grow linearly with shed volume.
        Rebuilding only when the deques are mostly stale keeps the cost
        O(1) amortised per shed.
        """
        if len(self._order) <= 2 * max(len(self._items), 16):
            return
        self._order = deque(t for t in self._order if t in self._items)
        for device_id, queue in list(self._by_device.items()):
            self._by_device[device_id] = deque(
                t for t in queue if t in self._items
            )

    def submit(self, request: WindowRequest) -> bool:
        """Enqueue one window; returns False when *it* was shed.

        Note a True return may still have shed an older window (in
        ``"drop_oldest"`` mode); check :attr:`shed_by_device`.
        """
        device_queue = self._by_device.setdefault(request.device_id, deque())

        per_device_cap = self.policy.max_pending_per_device
        if per_device_cap is not None:
            while self.pending(request.device_id) >= per_device_cap:
                if self.policy.shed == "drop_newest":
                    self._shed(request.device_id)
                    return False
                self._evict_oldest(request.device_id)

        while len(self._items) >= self.policy.max_pending:
            if self.policy.shed == "drop_newest":
                self._shed(request.device_id)
                return False
            self._evict_oldest()

        ticket = self._next_ticket
        self._next_ticket += 1
        self._items[ticket] = request
        self._order.append(ticket)
        device_queue.append(ticket)
        self._trim_device_queue(request.device_id)
        self._pending_by_device[request.device_id] = (
            self._pending_by_device.get(request.device_id, 0) + 1
        )
        self._compact()
        return True

    def take(self, n: int) -> list[WindowRequest]:
        """Dequeue up to ``n`` live requests in admission order."""
        if n < 1:
            raise ValueError(f"n must be >= 1; got {n}.")
        batch: list[WindowRequest] = []
        while self._order and len(batch) < n:
            ticket = self._order.popleft()
            request = self._items.pop(ticket, None)
            if request is not None:
                self._pending_by_device[request.device_id] -= 1
                self._trim_device_queue(request.device_id)
                batch.append(request)
        return batch
