"""Multiplexing queue with explicit backpressure for the fleet engine.

Production DAQ systems facing many sensor streams (the KM3NeT Control
Unit, the CMS HGCAL DAQ prototype) converge on the same ingress shape:
a bounded central queue in front of the batched processing core, with a
*shedding* policy that decides what happens when producers outrun the
core.  This module is that ingress: window submissions from all devices
land in one :class:`FleetQueue`, bounded globally and per device, and
overload is resolved by policy rather than by unbounded memory growth.

Two shedding modes are provided:

* ``"drop_oldest"`` — evict the stalest queued window to admit the new
  one (freshness wins; the natural choice for monitoring, where a new
  signature supersedes an old one from the same device);
* ``"drop_newest"`` — refuse the incoming window (arrival order wins;
  the classic bounded-mailbox behaviour).

Every shed window is attributed to its device so the fleet report can
show *who* is being rate-limited.

Storage is **block-oriented**: each submission — a single window or a
whole :meth:`FleetQueue.submit_block` matrix — becomes one
single-device :class:`_Segment` holding its feature rows as a
contiguous matrix.  Both shedding modes and :meth:`FleetQueue.take`
only ever consume a segment's *oldest* live row, so liveness per
segment is just a head pointer, and a take materialises its batch as a
handful of matrix slices (:class:`WindowBatch`) instead of thousands of
per-row ``WindowRequest`` objects.  The per-row :class:`WindowRequest`
path is kept for single submits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field

import numpy as np

from ..obs.metrics import NULL_REGISTRY

__all__ = ["WindowRequest", "WindowBatch", "BackpressurePolicy", "FleetQueue"]

_SHED_MODES = ("drop_oldest", "drop_newest")


@dataclass(frozen=True)
class WindowRequest:
    """One signature window awaiting batched inference."""

    device_id: str
    features: np.ndarray    # 1-D feature vector
    seq: int                # per-device submission sequence number


@dataclass(frozen=True)
class WindowBatch:
    """One dequeued batch, pre-stacked for the vectorised vote path.

    ``features`` rows, ``device_ids`` and ``seqs`` are aligned and in
    admission order — what :meth:`FleetQueue.take` hands the inference
    core instead of a list of per-row objects.
    """

    device_ids: np.ndarray  # (n,) unicode device ids
    seqs: np.ndarray        # (n,) per-device submission sequence numbers
    features: np.ndarray    # (n, n_features) stacked windows

    def __len__(self) -> int:
        return len(self.seqs)

    def requests(self) -> list[WindowRequest]:
        """Per-row view of the batch (diagnostics / compatibility)."""
        return [
            WindowRequest(
                device_id=str(self.device_ids[i]),
                features=self.features[i],
                seq=int(self.seqs[i]),
            )
            for i in range(len(self.seqs))
        ]


_EMPTY_BATCH = WindowBatch(
    device_ids=np.empty(0, dtype="<U1"),
    seqs=np.empty(0, dtype=np.int64),
    features=np.empty((0, 0)),
)


@dataclass
class _Segment:
    """One single-device submission block; rows before ``head`` are dead.

    Every consumer (take, global eviction, per-device eviction) removes
    a segment's oldest live row, so a single head pointer tracks
    liveness — no per-row tombstone bookkeeping.
    """

    device_id: str
    seqs: np.ndarray        # (m,)
    features: np.ndarray    # (m, n_features)
    head: int = 0

    @property
    def n_alive(self) -> int:
        return len(self.seqs) - self.head

    def compact_storage(self) -> None:
        """Copy the live tail so the dead prefix's memory is released.

        A large block that was mostly evicted (per-device shedding eats
        rows front-to-back) would otherwise pin its whole feature matrix
        — and, for zero-copy admitted blocks, the submitter's original
        array — for as long as one row stays queued.
        """
        if self.head == 0:
            return
        self.seqs = self.seqs[self.head :].copy()
        self.features = self.features[self.head :].copy()
        self.head = 0


@dataclass(frozen=True)
class BackpressurePolicy:
    """Bounds and shedding behaviour of the ingress queue.

    Parameters
    ----------
    max_pending:
        Global cap on queued windows across all devices.
    max_pending_per_device:
        Per-device cap (``None`` disables the per-device bound).  Keeps
        one chatty or replaying device from starving the rest of the
        fleet even when the global queue has headroom.
    shed:
        ``"drop_oldest"`` or ``"drop_newest"`` (see module docstring).
    """

    max_pending: int = 4096
    max_pending_per_device: int | None = None
    shed: str = "drop_oldest"

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1; got {self.max_pending}.")
        if self.max_pending_per_device is not None and self.max_pending_per_device < 1:
            raise ValueError(
                "max_pending_per_device must be >= 1 or None; "
                f"got {self.max_pending_per_device}."
            )
        if self.shed not in _SHED_MODES:
            raise ValueError(f"shed must be one of {_SHED_MODES}; got {self.shed!r}.")


class FleetQueue:
    """Bounded FIFO of window blocks with per-device accounting.

    Submissions are stored as single-device segments; the global and
    per-device deques hold segment references in admission order.
    Fully-consumed segments are popped lazily from deque heads, and the
    deques are rebuilt once dead segments outnumber live ones (a capped
    chatty device under a stalled consumer would otherwise grow them
    linearly with shed volume).
    """

    def __init__(self, policy: BackpressurePolicy | None = None):
        self.policy = policy if policy is not None else BackpressurePolicy()
        self._segments: deque[_Segment] = deque()
        self._by_device: dict[str, deque[_Segment]] = {}
        self._pending_by_device: dict[str, int] = {}
        self._n_pending = 0
        self._n_live_segments = 0
        self.shed_by_device: dict[str, int] = {}
        self.bind_metrics(NULL_REGISTRY)

    def bind_metrics(self, registry) -> None:
        """Bind ingress instruments to a registry (no-op registry default).

        The three choke points every admission, shed and drain already
        flows through (:meth:`_admit`, :meth:`_shed`, :meth:`take`)
        observe at segment/batch granularity, so instrumentation adds
        one counter bump per *block*, never per window.
        """
        self._m_admitted = registry.counter(
            "fleet_windows_admitted_total", "windows accepted by the ingress"
        )
        self._m_shed = registry.counter(
            "fleet_windows_shed_total", "windows dropped by backpressure"
        )
        self._m_depth = registry.gauge(
            "fleet_queue_depth", "windows currently queued"
        )

    def __len__(self) -> int:
        return self._n_pending

    @property
    def total_shed(self) -> int:
        """Windows dropped by backpressure since construction."""
        return sum(self.shed_by_device.values())

    def pending(self, device_id: str | None = None) -> int:
        """Queued windows, fleet-wide or for one device."""
        if device_id is None:
            return self._n_pending
        return self._pending_by_device.get(device_id, 0)

    # -- shedding ------------------------------------------------------

    def _shed(self, device_id: str, n: int = 1) -> None:
        self.shed_by_device[device_id] = self.shed_by_device.get(device_id, 0) + n
        self._m_shed.inc(n)

    def _consume_head(self, segment: _Segment) -> None:
        """Kill a segment's oldest live row (eviction bookkeeping)."""
        segment.head += 1
        self._pending_by_device[segment.device_id] -= 1
        self._n_pending -= 1
        self._shed(segment.device_id)
        if segment.n_alive == 0:
            self._n_live_segments -= 1
            # Reclaim the device deque eagerly: a fleet of briefly-seen
            # devices evicted under the global bound would otherwise pin
            # one dead segment (and its feature block) per device
            # forever — the deques are only lazily trimmed elsewhere.
            device_queue = self._by_device.get(segment.device_id)
            while device_queue and device_queue[0].n_alive == 0:
                device_queue.popleft()
            if device_queue is not None and not device_queue:
                del self._by_device[segment.device_id]
        elif segment.head > 32 and segment.head * 2 > len(segment.seqs):
            # Mostly-dead block: release the dead prefix's storage so a
            # long-running capped device cannot pin its shed history.
            segment.compact_storage()

    @staticmethod
    def _front_alive(queue: deque[_Segment]) -> _Segment | None:
        """Oldest segment with live rows, popping dead heads."""
        while queue:
            if queue[0].n_alive > 0:
                return queue[0]
            queue.popleft()
        return None

    def _evict_oldest(self, device_id: str | None = None) -> None:
        """Shed the stalest live window (optionally of one device)."""
        queue = self._segments if device_id is None else self._by_device[device_id]
        segment = self._front_alive(queue)
        if segment is not None:
            self._consume_head(segment)

    def _compact(self) -> None:
        """Rebuild the segment deques once dead ones outnumber live.

        Runs from both ingress (:meth:`_admit`) and egress
        (:meth:`take`) so dead segments are reclaimed even when the
        producer goes quiet and only the consumer keeps running.
        """
        if len(self._segments) <= 2 * max(self._n_live_segments, 16):
            return
        self._segments = deque(s for s in self._segments if s.n_alive > 0)
        for device_id, queue in list(self._by_device.items()):
            alive = deque(s for s in queue if s.n_alive > 0)
            if alive:
                self._by_device[device_id] = alive
            else:
                # A device with nothing queued needs no deque at all.
                del self._by_device[device_id]

    # -- ingress -------------------------------------------------------

    def _admit(self, segment: _Segment) -> None:
        self._segments.append(segment)
        device_queue = self._by_device.setdefault(segment.device_id, deque())
        # Trim consumed heads so long-running submit/take cycles never
        # grow the device deque without bound.
        while device_queue and device_queue[0].n_alive == 0:
            device_queue.popleft()
        device_queue.append(segment)
        self._pending_by_device[segment.device_id] = (
            self._pending_by_device.get(segment.device_id, 0) + segment.n_alive
        )
        self._n_pending += segment.n_alive
        self._n_live_segments += 1
        self._m_admitted.inc(segment.n_alive)
        self._m_depth.set(self._n_pending)
        self._compact()

    def submit(self, request: WindowRequest) -> bool:
        """Enqueue one window; returns False when *it* was shed.

        Note a True return may still have shed an older window (in
        ``"drop_oldest"`` mode); check :attr:`shed_by_device`.
        """
        per_device_cap = self.policy.max_pending_per_device
        if per_device_cap is not None:
            while self.pending(request.device_id) >= per_device_cap:
                if self.policy.shed == "drop_newest":
                    self._shed(request.device_id)
                    return False
                self._evict_oldest(request.device_id)

        while self._n_pending >= self.policy.max_pending:
            if self.policy.shed == "drop_newest":
                self._shed(request.device_id)
                return False
            self._evict_oldest()

        self._admit(
            _Segment(
                device_id=request.device_id,
                seqs=np.asarray([request.seq], dtype=np.int64),
                features=np.atleast_2d(request.features),
            )
        )
        return True

    def submit_block(
        self, device_id: str, features: np.ndarray, seqs: np.ndarray
    ) -> int:
        """Enqueue a whole stack of windows from one device at once.

        The common un-congested case admits the block **zero-copy**:
        the feature matrix is stored as-is as one segment and no per-row
        Python work happens.  When the block would trip a bound, the
        rows are replayed through the per-row :meth:`submit` policy
        machinery instead, so shedding semantics are exactly those of
        ``m`` sequential submits.  Returns the number of admitted rows.
        """
        features = np.atleast_2d(features)
        seqs = np.asarray(seqs, dtype=np.int64)
        m = len(seqs)
        if features.shape[0] != m:
            raise ValueError(
                f"features has {features.shape[0]} rows but {m} seqs were given."
            )
        if m == 0:
            return 0

        cap = self.policy.max_pending_per_device
        fits_device = cap is None or self.pending(device_id) + m <= cap
        fits_global = self._n_pending + m <= self.policy.max_pending
        if fits_device and fits_global:
            self._admit(
                _Segment(device_id=device_id, seqs=seqs, features=features)
            )
            return m

        # Congested: fall back to row-wise admission for exact policy
        # semantics (the slow path is already paying for shedding).
        admitted = 0
        for i in range(m):
            admitted += self.submit(
                WindowRequest(
                    device_id=device_id, features=features[i], seq=int(seqs[i])
                )
            )
        return admitted

    # -- egress --------------------------------------------------------

    def take(self, n: int) -> WindowBatch:
        """Dequeue up to ``n`` live windows in admission order.

        Returns a :class:`WindowBatch` of pre-stacked matrices; a batch
        served from a single segment is a zero-copy slice of the
        submitted block.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1; got {n}.")
        parts: list[tuple[_Segment, int, int]] = []  # (segment, start, stop)
        need = n
        while need > 0:
            segment = self._front_alive(self._segments)
            if segment is None:
                break
            k = min(need, segment.n_alive)
            parts.append((segment, segment.head, segment.head + k))
            segment.head += k
            self._pending_by_device[segment.device_id] -= k
            self._n_pending -= k
            need -= k
            if segment.n_alive == 0:
                self._segments.popleft()
                self._n_live_segments -= 1
                # Drop consumed segments from the device deque too, or a
                # device that uploads once and goes quiet would pin its
                # feature blocks for the queue's lifetime.
                device_queue = self._by_device.get(segment.device_id)
                while device_queue and device_queue[0].n_alive == 0:
                    device_queue.popleft()
        self._m_depth.set(self._n_pending)
        self._compact()

        if not parts:
            return _EMPTY_BATCH
        if len(parts) == 1:
            segment, start, stop = parts[0]
            return WindowBatch(
                device_ids=np.repeat(
                    np.asarray([segment.device_id]), stop - start
                ),
                seqs=segment.seqs[start:stop],
                features=segment.features[start:stop],
            )
        counts = [stop - start for _, start, stop in parts]
        return WindowBatch(
            device_ids=np.repeat(
                np.asarray([segment.device_id for segment, _, _ in parts]),
                counts,
            ),
            seqs=np.concatenate(
                [segment.seqs[start:stop] for segment, start, stop in parts]
            ),
            features=np.vstack(
                [segment.features[start:stop] for segment, start, stop in parts]
            ),
        )

    # -- rebalancing / persistence hooks -------------------------------

    def extract_device(self, device_id: str) -> tuple[np.ndarray, np.ndarray]:
        """Remove one device's queued windows (migration, not shedding).

        Returns ``(features, seqs)`` in admission order; the rows are
        *moved*, not shed, so shed counters are untouched.  The base
        half of the queue-migration API: the sharded fleet's rebalance
        drives the :class:`~repro.fleet.sharding.ShardQueue` twin of
        this method, and this one serves the same purpose for plain
        ``FleetMonitor`` deployments (draining one device out of a
        shared queue).
        """
        device_queue = self._by_device.pop(device_id, None)
        if not device_queue:
            self._pending_by_device.pop(device_id, None)
            return np.empty((0, 0)), np.empty(0, dtype=np.int64)
        features, seqs = [], []
        for segment in device_queue:
            if segment.n_alive == 0:
                continue
            features.append(segment.features[segment.head :])
            seqs.append(segment.seqs[segment.head :])
            segment.head = len(segment.seqs)
            self._n_live_segments -= 1
        moved = sum(len(s) for s in seqs)
        self._n_pending -= moved
        self._pending_by_device.pop(device_id, None)
        self._compact()
        if not seqs:
            return np.empty((0, 0)), np.empty(0, dtype=np.int64)
        return np.vstack(features), np.concatenate(seqs)

    def snapshot(self) -> dict:
        """Plain-data state for checkpointing: live rows + counters.

        The ``kind`` tag makes the snapshot self-describing, so
        :meth:`FleetMonitor.restore` can pick the right queue class
        without the caller knowing which ingress the monitor ran on.
        """
        segments = [
            {
                "device_id": segment.device_id,
                "seqs": segment.seqs[segment.head :].copy(),
                "features": segment.features[segment.head :].copy(),
            }
            for segment in self._segments
            if segment.n_alive > 0
        ]
        return {
            "kind": "fleet",
            "policy": asdict(self.policy),
            "segments": segments,
            "shed_by_device": dict(self.shed_by_device),
        }

    @classmethod
    def restore(cls, state: dict) -> "FleetQueue":
        """Rebuild a queue from :meth:`snapshot` output.

        Segments are re-admitted directly (no policy replay): the
        snapshot only ever holds rows that were already admitted, so
        restoring must not re-shed them.
        """
        queue = cls(BackpressurePolicy(**state["policy"]))
        for segment in state["segments"]:
            queue._admit(
                _Segment(
                    device_id=segment["device_id"],
                    seqs=np.asarray(segment["seqs"], dtype=np.int64),
                    features=np.atleast_2d(
                        np.asarray(segment["features"], dtype=float)
                    ),
                )
            )
        queue.shed_by_device = dict(state["shed_by_device"])
        return queue
