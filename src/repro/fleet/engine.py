"""The fleet-scale batched streaming inference engine.

:class:`FleetMonitor` is the central processing core the ROADMAP's
"millions of monitored devices" deployment needs.  Where
:class:`~repro.uncertainty.online.OnlineMonitor` screens one device's
windows, the fleet monitor multiplexes windows from *many* devices
through one bounded ingress queue and amortises the expensive part —
the ensemble vote pass — across fixed-size batches:

1. devices :meth:`submit` signature windows — or whole feature-matrix
   blocks via :meth:`submit_many`, which validates once and enqueues
   one zero-copy segment; the
   :class:`~repro.fleet.queueing.FleetQueue` applies the backpressure
   policy (bounded global and per-device depth, shed-oldest/newest);
2. :meth:`process_batch` takes up to ``batch_size`` windows as a
   pre-stacked :class:`~repro.fleet.queueing.WindowBatch` and runs a
   **single** vectorised :meth:`TrustedHMD.analyze` pass — one fused
   front transform, one tree-routing sweep per ensemble member, one
   bulk vote-entropy/rejection computation for the whole batch;
3. verdicts are routed back out: per-device ring-buffered state,
   fleet-wide counters, flagged windows into the forensic queue
   (tagged with their device), and the entropy stream into an optional
   fleet drift monitor;
4. the forensic queue feeds back into the model: a
   :class:`~repro.fleet.retrain.FleetRetrainer` triages it between
   batches, collects analyst labels and warm-refits the shared HMD
   (histogram-grown ensembles refit from their binned buffer and
   recompile the flat vote backend in-place), closing the paper's
   monitor → flag → label → retrain loop in-process.

Because every per-window computation in the pipeline is row-independent
(element-wise scaling, per-row tree routing, per-row vote histograms),
batched verdicts are *bitwise identical* to sequential per-window ones
— batching changes throughput, never results.  The benchmark
``benchmarks/test_bench_fleet.py`` asserts both properties.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import resolve_registry
from ..uncertainty.drift import EntropyDriftMonitor
from ..uncertainty.online import FlaggedSample, ForensicQueue, MonitorStats
from ..uncertainty.trust import TrustedHMD, TrustedVerdict
from .queueing import BackpressurePolicy, FleetQueue, WindowBatch, WindowRequest
from .report import DeviceReport, FleetReport
from .state import DeviceState, RingBuffer

__all__ = [
    "FleetFlaggedSample",
    "FleetBatchResult",
    "FleetMonitor",
    "batch_verdict_key",
    "batch_window_keys",
    "batched_verdicts_equal_sequential",
]


@dataclass(frozen=True)
class FleetFlaggedSample(FlaggedSample):
    """A withheld signature window, attributed to its device."""

    device_id: str = ""
    seq: int = -1


@dataclass(frozen=True)
class FleetBatchResult:
    """Verdicts of one batched inference pass, still device-addressed."""

    device_ids: np.ndarray      # (n,) unicode device ids
    seqs: np.ndarray            # per-device submission sequence numbers
    predictions: np.ndarray
    entropy: np.ndarray
    accepted: np.ndarray
    threshold: float

    def __len__(self) -> int:
        return len(self.predictions)

    def for_device(self, device_id: str) -> dict[str, np.ndarray]:
        """This batch's verdict arrays restricted to one device."""
        mask = np.asarray(self.device_ids) == device_id
        return {
            "seqs": self.seqs[mask],
            "predictions": self.predictions[mask],
            "entropy": self.entropy[mask],
            "accepted": self.accepted[mask],
        }


def batch_verdict_key(batches) -> dict:
    """Index batch results as ``(device_id, seq) -> verdict tuple``.

    The single definition of how device-addressed verdicts are keyed
    for equivalence checks, shared by
    :func:`batched_verdicts_equal_sequential` and the ``ingest``
    experiment runner.
    """
    keyed = {}
    for batch in batches:
        for j, device_id in enumerate(batch.device_ids):
            keyed[(str(device_id), int(batch.seqs[j]))] = (
                batch.predictions[j],
                batch.entropy[j],
                bool(batch.accepted[j]),
            )
    return keyed


def batch_window_keys(batches) -> set:
    """The ``(device_id, seq)`` keys a drain produced verdicts for.

    The accounting half of :func:`batch_verdict_key`: chaos and
    failover tests audit that every admitted window's key shows up
    here, in the quarantine store, or in the shed counters — never
    silently lost.
    """
    return {
        (str(device_id), int(batch.seqs[j]))
        for batch in batches
        for j, device_id in enumerate(batch.device_ids)
    }


def batched_verdicts_equal_sequential(
    batches: list[FleetBatchResult],
    sequential_verdicts: list[tuple[str, TrustedVerdict]],
) -> bool:
    """Bitwise equivalence of batched vs. per-window sequential results.

    ``sequential_verdicts`` holds ``(device_id, verdict)`` pairs from
    screening the same windows one at a time, in submission order per
    device.  This is the single definition of the engine's equivalence
    guarantee, shared by the ``fleet`` experiment runner and the
    benchmark acceptance gate.
    """
    keyed = batch_verdict_key(batches)
    if len(keyed) != len(sequential_verdicts):
        return False
    counters: dict[str, int] = {}
    for device_id, verdict in sequential_verdicts:
        seq = counters.get(device_id, 0)
        counters[device_id] = seq + 1
        entry = keyed.get((device_id, seq))
        if entry is None:
            return False
        pred, entropy, accepted = entry
        if (
            pred != verdict.predictions[0]
            or entropy != verdict.entropy[0]     # bitwise float equality
            or accepted != bool(verdict.accepted[0])
        ):
            return False
    return True


class FleetMonitor:
    """Multiplex many device streams through one batched trusted HMD.

    Parameters
    ----------
    hmd:
        A *fitted* :class:`TrustedHMD` shared by the whole fleet.
    batch_size:
        Windows per vectorised ensemble pass.
    policy:
        Ingress backpressure policy (defaults to a 4096-deep
        shed-oldest queue).
    forensics:
        Forensic queue receiving flagged windows (shared with analyst
        tooling); created when omitted.
    drift_reference:
        Optional entropy sample from held-out known traffic; when
        given, the fleet-wide entropy stream is watched by an
        :class:`EntropyDriftMonitor` (campaign-level shift detection).
    entropy_window:
        Ring-buffer capacity of each device's recent-entropy view.
    queue:
        Pre-built ingress queue (``policy`` is then ignored).  The hook
        the sharded fleet uses to give each shard's monitor an
        arena-backed :class:`~repro.fleet.sharding.ShardQueue` while
        everything downstream stays unchanged.
    telemetry:
        ``True`` for a fresh per-monitor
        :class:`~repro.obs.metrics.MetricsRegistry`, an explicit
        registry to share one, or ``None``/``False`` (default) for the
        zero-cost no-op registry.  Purely observational: verdicts are
        bitwise identical either way.
    tracer:
        Optional :class:`~repro.obs.tracing.TraceContext` recording
        sampled window-lifecycle spans (ingest→queue→verdict→scatter on
        this in-process path).
    """

    def __init__(
        self,
        hmd: TrustedHMD,
        *,
        batch_size: int = 256,
        policy: BackpressurePolicy | None = None,
        forensics: ForensicQueue | None = None,
        drift_reference=None,
        entropy_window: int = 128,
        queue: FleetQueue | None = None,
        telemetry=None,
        tracer=None,
    ):
        if not hasattr(hmd, "estimator_"):
            raise ValueError("hmd must be fitted before fleet monitoring.")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1; got {batch_size}.")
        if entropy_window < 1:
            raise ValueError(f"entropy_window must be >= 1; got {entropy_window}.")
        self.hmd = hmd
        compile_hmd = getattr(hmd, "compile", None)
        if callable(compile_hmd):
            # Warm the flattened vote backend so the first batch of
            # live traffic does not pay the one-off flattening cost.
            compile_hmd()
        self.batch_size = batch_size
        self.queue = queue if queue is not None else FleetQueue(policy)
        self.forensics = forensics if forensics is not None else ForensicQueue()
        self.stats = MonitorStats()
        self.drift = (
            EntropyDriftMonitor(drift_reference)
            if drift_reference is not None
            else None
        )
        self.entropy_window = entropy_window
        self.devices: dict[str, DeviceState] = {}
        self._seq: dict[str, int] = {}
        self._step = 0
        self.n_batches = 0
        self.metrics = resolve_registry(telemetry)
        self.tracer = tracer
        # One flag guards every per-batch observation so the
        # uninstrumented hot path pays a single attribute test.
        self._obs_on = self.metrics.enabled or tracer is not None
        self._m_batches = self.metrics.counter(
            "fleet_batches_total", "vectorised verdict passes"
        )
        self._m_drained = self.metrics.counter(
            "fleet_windows_drained_total", "windows verdicted"
        )
        self._m_flagged = self.metrics.counter(
            "fleet_windows_flagged_total", "windows withheld as uncertain"
        )
        self._m_verdict = self.metrics.histogram(
            "fleet_verdict_seconds", "per-batch verdict-pass latency"
        )
        self.queue.bind_metrics(self.metrics)

    # -- ingress -------------------------------------------------------

    def register(self, device_id: str, *, cohort: str = "unknown") -> DeviceState:
        """Idempotently create the state record for a device."""
        state = self.devices.get(device_id)
        if state is None:
            state = DeviceState(
                device_id=device_id,
                cohort=cohort,
                entropy_recent=RingBuffer(self.entropy_window),
            )
            self.devices[device_id] = state
            self._seq[device_id] = 0
        elif cohort != "unknown" and state.cohort == "unknown":
            state.cohort = cohort
        return state

    def register_fleet(self, devices) -> None:
        """Register a whole :class:`FleetDevice` population at once."""
        for device in devices:
            self.register(device.device_id, cohort=device.cohort)

    def submit(self, device_id: str, window) -> bool:
        """Enqueue one signature window; False when shed by backpressure."""
        self.register(device_id)
        window = np.asarray(window, dtype=float).ravel()
        n_features = getattr(self.hmd, "n_features_in_", None)
        if n_features is not None and window.shape != (n_features,):
            # Reject at ingress: a ragged window admitted here would
            # poison the whole batch at stack time.
            raise ValueError(
                f"window from {device_id!r} has {window.shape[0]} features; "
                f"the fleet HMD expects {n_features}."
            )
        seq = self._seq[device_id]
        self._seq[device_id] = seq + 1
        if self.tracer is not None:
            self.tracer.begin(device_id, seq)
        return self.queue.submit(
            WindowRequest(device_id=device_id, features=window, seq=seq)
        )

    def submit_many(self, device_id: str, windows) -> int:
        """Enqueue a stack of windows as one contiguous block.

        Registration, dtype coercion and the feature-count check happen
        once for the whole block, sequence numbers are assigned in bulk,
        and the block lands in the ingress queue as a single zero-copy
        segment (:meth:`FleetQueue.submit_block`).  Returns how many
        windows were admitted.
        """
        windows = np.ascontiguousarray(
            np.atleast_2d(np.asarray(windows, dtype=float))
        )
        if windows.size == 0:
            return 0
        self.register(device_id)
        n_features = getattr(self.hmd, "n_features_in_", None)
        if n_features is not None and windows.shape[1] != n_features:
            raise ValueError(
                f"windows from {device_id!r} have {windows.shape[1]} features; "
                f"the fleet HMD expects {n_features}."
            )
        start = self._seq[device_id]
        self._seq[device_id] = start + len(windows)
        seqs = np.arange(start, start + len(windows), dtype=np.int64)
        if self.tracer is not None:
            self.tracer.begin_block(device_id, seqs)
        return self.queue.submit_block(device_id, windows, seqs)

    @property
    def pending(self) -> int:
        """Windows currently queued for inference."""
        return len(self.queue)

    # -- batched inference core ----------------------------------------

    def process_batch(self) -> FleetBatchResult | None:
        """Run one vectorised ensemble pass over the next batch.

        Returns ``None`` when the queue is empty.
        """
        batch: WindowBatch = self.queue.take(self.batch_size)
        if len(batch) == 0:
            return None
        if self._obs_on:
            if self.tracer is not None:
                self.tracer.stamp_rows(batch.device_ids, batch.seqs, "queue")
            t0 = time.perf_counter()
        verdict: TrustedVerdict = self.hmd.analyze(batch.features)
        if self._obs_on:
            self._m_verdict.observe(time.perf_counter() - t0)
            self._m_batches.inc()
            self._m_drained.inc(len(batch))
            if self.tracer is not None:
                self.tracer.stamp_rows(batch.device_ids, batch.seqs, "verdict")
        self._route(batch, verdict)
        if self._obs_on and self.tracer is not None:
            self.tracer.complete_rows(batch.device_ids, batch.seqs, "scatter")
        self.n_batches += 1
        return FleetBatchResult(
            device_ids=batch.device_ids,
            seqs=batch.seqs,
            predictions=verdict.predictions,
            entropy=verdict.entropy,
            accepted=verdict.accepted,
            threshold=verdict.threshold,
        )

    def drain(self, max_batches: int | None = None) -> list[FleetBatchResult]:
        """Process batches until the queue is empty (or the cap hits)."""
        results: list[FleetBatchResult] = []
        while max_batches is None or len(results) < max_batches:
            result = self.process_batch()
            if result is None:
                break
            results.append(result)
        return results

    def _route(self, batch: WindowBatch, verdict: TrustedVerdict) -> None:
        """Fan the batched verdicts back out to per-device state."""
        n = len(batch)
        base_step = self._step
        self._step += n
        # dtype=bool: ~ on an int 0/1 mask would invert bitwise, not logically.
        accepted = np.asarray(verdict.accepted, dtype=bool)

        # Fleet-wide counters: bulk reductions, no per-window Python.
        self.stats.record_verdicts(verdict.predictions, verdict.entropy, accepted)
        if self.drift is not None:
            self.drift.observe(verdict.entropy)

        # Group batch rows by device (one vectorised pass), then
        # bulk-update each device's ring-buffered state.
        unique_devices, inverse = np.unique(batch.device_ids, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        boundaries = np.searchsorted(inverse[order], np.arange(len(unique_devices)))
        for g, device_id in enumerate(unique_devices):
            stop = boundaries[g + 1] if g + 1 < len(unique_devices) else n
            idx = order[boundaries[g] : stop]
            self.devices[str(device_id)].record(
                verdict.predictions[idx],
                verdict.entropy[idx],
                accepted[idx],
                last_step=base_step + int(idx[-1]) + 1,
            )

        flagged = np.flatnonzero(~accepted)
        self._m_flagged.inc(len(flagged))
        if len(flagged):
            # One bulk hand-off; samples materialise as Python objects
            # only for the (typically few) flagged rows.
            self.forensics.push_many(
                FleetFlaggedSample(
                    features=batch.features[i].copy(),
                    prediction=int(verdict.predictions[i]),
                    entropy=float(verdict.entropy[i]),
                    step=base_step + int(i) + 1,
                    device_id=str(batch.device_ids[i]),
                    seq=int(batch.seqs[i]),
                )
                for i in flagged
            )

    # -- egress --------------------------------------------------------

    def report(self) -> FleetReport:
        """Aggregate the fleet's current state into a report view."""
        shed = self.queue.shed_by_device
        device_reports = tuple(
            DeviceReport(
                device_id=state.device_id,
                cohort=state.cohort,
                n_seen=state.n_seen,
                n_flagged=state.n_flagged,
                n_malware_alerts=state.n_malware_alerts,
                n_shed=shed.get(state.device_id, 0),
                n_pending=self.queue.pending(state.device_id),
                rejection_rate=state.rejection_rate,
                alert_rate=state.alert_rate,
                recent_entropy=state.recent_entropy,
            )
            for state in self.devices.values()
        )
        return FleetReport(
            devices=device_reports,
            n_seen=self.stats.n_seen,
            n_accepted=self.stats.n_accepted,
            n_flagged=self.stats.n_flagged,
            n_malware_alerts=self.stats.n_malware_alerts,
            n_shed=self.queue.total_shed,
            n_pending=len(self.queue),
            n_batches=self.n_batches,
            mean_entropy=self.stats.mean_entropy,
            drift_status=self.drift.observe([]).status if self.drift else None,
            telemetry=self.metrics.snapshot() if self.metrics.enabled else None,
        )

    # -- persistence ---------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpoint the full monitor state (model excluded).

        Captures the engine state live traffic built up — queued
        windows, per-device states, sequence counters, fleet counters
        and the forensic backlog — as plain picklable data.  Two things
        are deliberately *not* included: the fitted HMD (models are
        trained artifacts with their own pickle lifecycle, and one
        snapshot must be restorable against a warm-retrained model
        without duplicating it) and the optional drift monitor's
        accumulated detector statistics (the drift reference is
        configuration — pass it to :meth:`restore` and the detector
        restarts from a clean window).
        """
        return {
            "batch_size": self.batch_size,
            "entropy_window": self.entropy_window,
            "devices": [state.snapshot() for state in self.devices.values()],
            "seq": dict(self._seq),
            "step": self._step,
            "n_batches": self.n_batches,
            "stats": self.stats.snapshot(),
            "queue": self.queue.snapshot(),
            "forensics": {
                "samples": self.forensics.snapshot(),
                "maxlen": self.forensics.maxlen,
                "total_flagged": self.forensics.total_flagged,
            },
        }

    @staticmethod
    def _queue_cls_for(queue_state: dict) -> type[FleetQueue]:
        """Queue class matching a snapshot's self-describing ``kind``."""
        if queue_state.get("kind") == "shard":
            from .sharding import ShardQueue

            return ShardQueue
        return FleetQueue

    @classmethod
    def restore(
        cls,
        hmd: TrustedHMD,
        state: dict,
        *,
        drift_reference=None,
        queue_cls: type[FleetQueue] | None = None,
    ) -> "FleetMonitor":
        """Rebuild a monitor from :meth:`snapshot` output.

        ``hmd`` is the (separately persisted) fitted model; restoring
        against a newer warm-retrained HMD is supported — subsequent
        verdicts then come from the refreshed model, exactly as they
        would for a monitor that had stayed up through the retrain.
        A ``drift_reference`` starts a fresh drift detector (its
        accumulated statistics are not part of the snapshot).  The
        queue class is picked from the snapshot itself (``kind`` tag);
        ``queue_cls`` overrides it.
        """
        forensic_state = state["forensics"]
        if queue_cls is None:
            queue_cls = cls._queue_cls_for(state["queue"])
        monitor = cls(
            hmd,
            batch_size=state["batch_size"],
            entropy_window=state["entropy_window"],
            drift_reference=drift_reference,
            forensics=ForensicQueue.restore(
                forensic_state["samples"],
                maxlen=forensic_state["maxlen"],
                total_flagged=forensic_state["total_flagged"],
            ),
            queue=queue_cls.restore(state["queue"]),
        )
        monitor.devices = {
            device["device_id"]: DeviceState.restore(device)
            for device in state["devices"]
        }
        monitor._seq = dict(state["seq"])
        monitor._step = int(state["step"])
        monitor.n_batches = int(state["n_batches"])
        monitor.stats = MonitorStats.restore(state["stats"])
        return monitor
