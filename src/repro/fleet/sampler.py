"""Feature-level fleet traffic source for tests and benchmarks.

The full physical path for fleet traffic is
:class:`repro.sim.workloads.FleetTraceGenerator` → substrate simulator →
feature extractor, which is faithful but expensive.  For benchmarks and
tests that exercise the *engine* (batching, backpressure, routing) the
:class:`FleetWindowSampler` shortcuts that chain: it pairs each device
with the already-extracted signature windows of its assigned
application inside an :class:`~repro.data.dataset.HmdDataset`, and
replays them as the device's stream.  Benign and malware devices draw
from the known (test) split; zero-day devices draw from the unknown
split — exactly the traffic mix the trusted HMD is supposed to face.
"""

from __future__ import annotations

import numpy as np

from ..ml.validation import check_random_state
from ..sim.workloads import FleetDevice

__all__ = ["FleetWindowSampler"]


class FleetWindowSampler:
    """Replay dataset signature windows as per-device streams.

    Parameters
    ----------
    dataset:
        An :class:`~repro.data.dataset.HmdDataset` (its ``test`` split
        feeds benign/malware devices, ``unknown`` feeds zero-day ones).
    devices:
        The fleet, e.g. from :meth:`FleetPopulation.sample`.  Each
        device's pool is restricted to its app's windows when the app
        exists in the corresponding split, else to its cohort's label.
    random_state:
        Seed / generator for reproducible streams.
    """

    def __init__(
        self,
        dataset,
        devices,
        *,
        random_state: int | np.random.Generator | None = None,
    ):
        self.devices = tuple(devices)
        if not self.devices:
            raise ValueError("At least one device is required.")
        self.rng = check_random_state(random_state)
        self._pools: dict[str, np.ndarray] = {}
        for device in self.devices:
            self._pools[device.device_id] = self._pool_for(dataset, device)

    @staticmethod
    def _pool_for(dataset, device: FleetDevice) -> np.ndarray:
        split = dataset.unknown if device.cohort == "zero_day" else dataset.test
        mask = split.apps == device.spec.name
        if not mask.any():
            # App not in this split — fall back to the cohort's label.
            label = device.spec.label
            mask = split.y == label
        if not mask.any():
            raise ValueError(
                f"No windows available for device {device.device_id!r} "
                f"(app {device.spec.name!r}, cohort {device.cohort!r})."
            )
        return split.X[mask]

    def windows(self, device_id: str, n_windows: int) -> np.ndarray:
        """Draw ``n_windows`` signature windows for one device."""
        if n_windows < 1:
            raise ValueError(f"n_windows must be >= 1; got {n_windows}.")
        pool = self._pools[device_id]
        idx = self.rng.integers(len(pool), size=n_windows)
        return pool[idx]

    def rounds(self, n_rounds: int):
        """Yield per-round ``(device_id, window)`` arrival events.

        Every round visits each device once — the round-robin arrival
        pattern the fleet monitor multiplexes into batches.
        """
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1; got {n_rounds}.")
        for _ in range(n_rounds):
            for device in self.devices:
                pool = self._pools[device.device_id]
                window = pool[int(self.rng.integers(len(pool)))]
                yield device.device_id, window
