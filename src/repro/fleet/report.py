"""Aggregation views over fleet monitoring state.

The fleet engine answers two different questions for two different
consumers: the SOC dashboard wants *which devices need attention right
now* (infected, drifting, rate-limited), operations wants *is the core
keeping up* (throughput, queue depth, shed volume).  Both read the same
:class:`FleetReport` snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..formatting import format_table

__all__ = ["DeviceReport", "FleetReport"]


@dataclass(frozen=True)
class DeviceReport:
    """Snapshot of one device's monitoring state."""

    device_id: str
    cohort: str
    n_seen: int
    n_flagged: int
    n_malware_alerts: int
    n_shed: int
    n_pending: int
    rejection_rate: float
    alert_rate: float
    recent_entropy: float


@dataclass(frozen=True)
class FleetReport:
    """Fleet-wide snapshot: per-device rows plus global counters."""

    devices: tuple[DeviceReport, ...]
    n_seen: int
    n_accepted: int
    n_flagged: int
    n_malware_alerts: int
    n_shed: int
    n_pending: int
    n_batches: int
    mean_entropy: float
    drift_status: str | None

    @property
    def n_devices(self) -> int:
        """Number of registered devices."""
        return len(self.devices)

    @property
    def rejection_rate(self) -> float:
        """Fleet-wide fraction of windows withheld as uncertain."""
        return self.n_flagged / self.n_seen if self.n_seen else 0.0

    def infected_devices(self, *, min_alert_rate: float = 0.5, min_seen: int = 5):
        """Devices whose accepted windows are mostly malware verdicts."""
        return tuple(
            d
            for d in self.devices
            if d.n_seen >= min_seen and d.alert_rate >= min_alert_rate
        )

    def most_uncertain_devices(self, k: int = 5):
        """Top-``k`` devices by recent mean entropy (drift candidates)."""
        ranked = sorted(self.devices, key=lambda d: -d.recent_entropy)
        return tuple(ranked[: max(0, k)])

    def shed_devices(self):
        """Devices that lost windows to backpressure, most-shed first."""
        shed = [d for d in self.devices if d.n_shed > 0]
        return tuple(sorted(shed, key=lambda d: -d.n_shed))

    def as_text(self, *, max_rows: int = 20) -> str:
        """Fixed-width dashboard rendering of the snapshot."""
        header = (
            f"Fleet report — {self.n_devices} devices, {self.n_seen} windows "
            f"({self.n_batches} batches)\n"
            f"  accepted={self.n_accepted}  flagged={self.n_flagged} "
            f"({self.rejection_rate:.1%})  alerts={self.n_malware_alerts}  "
            f"shed={self.n_shed}  pending={self.n_pending}  "
            f"mean_entropy={self.mean_entropy:.3f}"
        )
        if self.drift_status is not None:
            header += f"  drift={self.drift_status}"

        ranked = sorted(
            self.devices, key=lambda d: (-d.alert_rate, -d.recent_entropy)
        )[:max_rows]
        table = format_table(
            ["device", "cohort", "seen", "flagged", "alerts", "shed",
             "rej_rate", "alert_rate", "recent_H"],
            [
                [d.device_id, d.cohort, d.n_seen, d.n_flagged,
                 d.n_malware_alerts, d.n_shed, d.rejection_rate,
                 d.alert_rate, d.recent_entropy]
                for d in ranked
            ],
        )
        suffix = (
            f"\n({self.n_devices - len(ranked)} more devices not shown)"
            if self.n_devices > len(ranked)
            else ""
        )
        return f"{header}\n{table}{suffix}"
