"""Aggregation views over fleet monitoring state.

The fleet engine answers two different questions for two different
consumers: the SOC dashboard wants *which devices need attention right
now* (infected, drifting, rate-limited), operations wants *is the core
keeping up* (throughput, queue depth, shed volume).  Both read the same
:class:`FleetReport` snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..formatting import format_table
from ..obs.metrics import histogram_percentile, merge_snapshots

__all__ = [
    "DeviceReport",
    "FleetReport",
    "device_report_key",
    "merge_reports",
    "rebind_queue_counters",
]


@dataclass(frozen=True)
class DeviceReport:
    """Snapshot of one device's monitoring state."""

    device_id: str
    cohort: str
    n_seen: int
    n_flagged: int
    n_malware_alerts: int
    n_shed: int
    n_pending: int
    rejection_rate: float
    alert_rate: float
    recent_entropy: float


@dataclass(frozen=True)
class FleetReport:
    """Fleet-wide snapshot: per-device rows plus global counters."""

    devices: tuple[DeviceReport, ...]
    n_seen: int
    n_accepted: int
    n_flagged: int
    n_malware_alerts: int
    n_shed: int
    n_pending: int
    n_batches: int
    mean_entropy: float
    drift_status: str | None
    # Degradation observability (multi-process backend): per-shard
    # supervision rows (:class:`~repro.fleet.resilience.ShardHealthReport`)
    # and the lifetime count of poison windows pulled into quarantine.
    # Defaulted so single-monitor and in-process reports are unchanged.
    shard_health: tuple = ()
    n_quarantined: int = 0
    # Telemetry section: the monitor's merged
    # :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, ``None`` when
    # telemetry is off (the common case; reports stay cheap).
    telemetry: dict | None = field(default=None, compare=False)

    @property
    def n_devices(self) -> int:
        """Number of registered devices."""
        return len(self.devices)

    @property
    def rejection_rate(self) -> float:
        """Fleet-wide fraction of windows withheld as uncertain."""
        return self.n_flagged / self.n_seen if self.n_seen else 0.0

    def infected_devices(self, *, min_alert_rate: float = 0.5, min_seen: int = 5):
        """Devices whose accepted windows are mostly malware verdicts."""
        return tuple(
            d
            for d in self.devices
            if d.n_seen >= min_seen and d.alert_rate >= min_alert_rate
        )

    def most_uncertain_devices(self, k: int = 5):
        """Top-``k`` devices by recent mean entropy (drift candidates)."""
        ranked = sorted(self.devices, key=lambda d: -d.recent_entropy)
        return tuple(ranked[: max(0, k)])

    def shed_devices(self):
        """Devices that lost windows to backpressure, most-shed first."""
        shed = [d for d in self.devices if d.n_shed > 0]
        return tuple(sorted(shed, key=lambda d: -d.n_shed))

    def as_text(self, *, max_rows: int = 20) -> str:
        """Fixed-width dashboard rendering of the snapshot."""
        header = (
            f"Fleet report — {self.n_devices} devices, {self.n_seen} windows "
            f"({self.n_batches} batches)\n"
            f"  accepted={self.n_accepted}  flagged={self.n_flagged} "
            f"({self.rejection_rate:.1%})  alerts={self.n_malware_alerts}  "
            f"shed={self.n_shed}  pending={self.n_pending}  "
            f"mean_entropy={self.mean_entropy:.3f}"
        )
        if self.drift_status is not None:
            header += f"  drift={self.drift_status}"
        if self.n_quarantined:
            header += f"  quarantined={self.n_quarantined}"
        if self.telemetry:
            header += "\n" + _telemetry_line(self.telemetry)
        if self.shard_health:
            # Shard-health rows get their own aligned table: the old
            # free-joined one-liner drifted out of alignment next to
            # device tables whose id column outgrew its header.
            health_table = format_table(
                ["shard", "health", "restarts", "heartbeat_age"],
                [
                    [
                        row.shard_id,
                        row.health.value,
                        row.total_restarts,
                        f"{row.heartbeat_age:.1f}s",
                    ]
                    for row in self.shard_health
                ],
            )
            header += "\n" + health_table

        ranked = sorted(
            self.devices, key=lambda d: (-d.alert_rate, -d.recent_entropy)
        )[:max_rows]
        table = format_table(
            ["device", "cohort", "seen", "flagged", "alerts", "shed",
             "rej_rate", "alert_rate", "recent_H"],
            [
                [d.device_id, d.cohort, d.n_seen, d.n_flagged,
                 d.n_malware_alerts, d.n_shed, d.rejection_rate,
                 d.alert_rate, d.recent_entropy]
                for d in ranked
            ],
        )
        suffix = (
            f"\n({self.n_devices - len(ranked)} more devices not shown)"
            if self.n_devices > len(ranked)
            else ""
        )
        return f"{header}\n{table}{suffix}"


def _telemetry_line(telemetry: dict) -> str:
    """One-line telemetry digest for :meth:`FleetReport.as_text`."""
    counters = telemetry.get("counters", {})
    parts = [
        f"{label}={counters[name]}"
        for label, name in (
            ("admitted", "fleet_windows_admitted_total"),
            ("drained", "fleet_windows_drained_total"),
            ("shed", "fleet_windows_shed_total"),
            ("restarts", "fleet_worker_restarts_total"),
        )
        if name in counters
    ]
    verdict = telemetry.get("histograms", {}).get("fleet_verdict_seconds")
    if verdict and verdict.get("count"):
        parts.append(
            "verdict_ms p50/p95="
            f"{histogram_percentile(verdict, 50) * 1e3:.2f}/"
            f"{histogram_percentile(verdict, 95) * 1e3:.2f}"
        )
    return "  telemetry: " + (
        "  ".join(parts) if parts else "(no instruments)"
    )


def device_report_key(report: FleetReport) -> dict[str, tuple]:
    """Index a report's device rows as ``device_id -> stats tuple``.

    The single definition of what "identical device rows" means for
    sharded-vs-single equivalence checks, shared by the ``shard``
    experiment runner, the benchmark acceptance gate and the test
    suite (the same role :func:`~repro.fleet.engine.batch_verdict_key`
    plays for verdicts).
    """
    return {
        d.device_id: (
            d.cohort,
            d.n_seen,
            d.n_flagged,
            d.n_malware_alerts,
            d.n_shed,
            d.rejection_rate,
            d.alert_rate,
            d.recent_entropy,
        )
        for d in report.devices
    }


def rebind_queue_counters(report: FleetReport, queue) -> FleetReport:
    """Re-read a shard report's queue-derived counters from ``queue``.

    In the multi-process backend the ingress queue lives in the parent
    while the device tables live in the worker, so a worker-built
    report carries zero shed/pending counts.  This rebinds every
    device row's ``n_shed``/``n_pending`` — and the report-level totals
    — to the parent-side queue (anything exposing ``shed_by_device``,
    ``pending(device_id)``, ``total_shed`` and ``__len__``), leaving
    all verdict-derived fields untouched.
    """
    devices = tuple(
        replace(
            device,
            n_shed=queue.shed_by_device.get(device.device_id, 0),
            n_pending=queue.pending(device.device_id),
        )
        for device in report.devices
    )
    return replace(
        report, devices=devices, n_shed=queue.total_shed, n_pending=len(queue)
    )


def merge_reports(
    reports,
    *,
    n_batches: int | None = None,
    drift_status: str | None = None,
) -> FleetReport:
    """Fold per-shard :class:`FleetReport` snapshots into one fleet view.

    Device rows concatenate (each device lives on exactly one shard, so
    there are no collisions to reconcile), counters sum, and the fleet
    mean entropy is re-derived as a seen-weighted average — the same
    quantity one unsharded monitor over the same traffic reports,
    mathematically, but only to float precision (per-shard partial sums
    re-associate; the bitwise-pinned equivalence surface is the device
    rows, see :func:`device_report_key`).

    ``n_batches`` defaults to the summed per-shard count; the sharded
    facade passes its fused-round count instead (one round covers all
    shards).  ``drift_status`` likewise belongs to the facade-level
    drift monitor, not to any single shard.

    The observability sections merge too, and tolerate heterogeneity —
    shards that never report them simply contribute nothing: health
    rows concatenate in shard order, quarantine counts sum, and
    telemetry snapshots fold through the associative
    :func:`~repro.obs.metrics.merge_snapshots` (``None`` when no shard
    reported telemetry).
    """
    reports = list(reports)
    if not reports:
        raise ValueError("At least one report is required.")
    n_seen = sum(r.n_seen for r in reports)
    weighted_entropy = sum(r.mean_entropy * r.n_seen for r in reports)
    telemetries = [r.telemetry for r in reports if r.telemetry]
    return FleetReport(
        devices=tuple(device for r in reports for device in r.devices),
        n_seen=n_seen,
        n_accepted=sum(r.n_accepted for r in reports),
        n_flagged=sum(r.n_flagged for r in reports),
        n_malware_alerts=sum(r.n_malware_alerts for r in reports),
        n_shed=sum(r.n_shed for r in reports),
        n_pending=sum(r.n_pending for r in reports),
        n_batches=(
            sum(r.n_batches for r in reports) if n_batches is None else n_batches
        ),
        mean_entropy=weighted_entropy / n_seen if n_seen else 0.0,
        drift_status=drift_status,
        shard_health=tuple(
            row for r in reports for row in r.shard_health
        ),
        n_quarantined=sum(r.n_quarantined for r in reports),
        telemetry=merge_snapshots(telemetries) if telemetries else None,
    )
