"""Fleet-scale batched streaming inference (the scaling layer).

The paper's online loop screens one device.  This subpackage is the
central-monitor deployment of the same trusted HMD: many device
streams multiplexed through a bounded ingress queue
(:mod:`~repro.fleet.queueing`), one vectorised ensemble pass per batch
(:mod:`~repro.fleet.engine`), verdicts routed back to ring-buffered
per-device state (:mod:`~repro.fleet.state`) and aggregated into
dashboard snapshots (:mod:`~repro.fleet.report`).  The flagged windows
feed back into the model: :mod:`~repro.fleet.retrain` triages the
forensic queue, collects analyst labels and warm-refits the shared HMD
live between batches.  :mod:`~repro.fleet.sharding` scales the whole
engine horizontally — K monitor cores behind a device-hash router,
sharing one read-only compiled HMD, with merged reporting, a merged
forensic stream, live rebalancing and full checkpoint/restore.  See
``docs/architecture.md`` for the dataflow and the backpressure policy.
"""

from .engine import (
    FleetBatchResult,
    FleetFlaggedSample,
    FleetMonitor,
    batched_verdicts_equal_sequential,
)
from .queueing import BackpressurePolicy, FleetQueue, WindowBatch, WindowRequest
from .report import DeviceReport, FleetReport, device_report_key, merge_reports
from .resilience import (
    FaultPlan,
    QuarantineStore,
    QuarantinedWindow,
    ShardHealth,
    ShardHealthReport,
    account_windows,
)
from .retrain import FleetRetrainer, RetrainOutcome
from .sampler import FleetWindowSampler
from .sharding import (
    FleetShard,
    IndexedWindowBatch,
    PublishedHmd,
    ShardQueue,
    ShardRouter,
    ShardedFleetMonitor,
)
from .state import DeviceState, RingBuffer
from .workers import WorkerShardedFleetMonitor

__all__ = [
    "BackpressurePolicy",
    "DeviceReport",
    "DeviceState",
    "FaultPlan",
    "FleetBatchResult",
    "FleetFlaggedSample",
    "FleetMonitor",
    "FleetQueue",
    "FleetReport",
    "FleetRetrainer",
    "FleetShard",
    "FleetWindowSampler",
    "IndexedWindowBatch",
    "PublishedHmd",
    "QuarantineStore",
    "QuarantinedWindow",
    "RetrainOutcome",
    "RingBuffer",
    "ShardHealth",
    "ShardHealthReport",
    "ShardQueue",
    "ShardRouter",
    "ShardedFleetMonitor",
    "WindowBatch",
    "WindowRequest",
    "WorkerShardedFleetMonitor",
    "account_windows",
    "batched_verdicts_equal_sequential",
    "device_report_key",
    "merge_reports",
]
