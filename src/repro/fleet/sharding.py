"""Sharded fleet: device-hash routed monitor cores behind one facade.

Large DAQ systems scale ingest horizontally — the KM3NeT Control Unit
coordinates many acquisition nodes behind one control plane, the CMS
HGCAL prototype fans thousands of channels across parallel readout
units into one merged event stream.  This module is that deployment
shape for the fleet engine:

* :class:`ShardRouter` — a stable device-id hash assigns every device
  to exactly one shard (and yields a deterministic rebalance map when
  the shard count changes);
* :class:`ShardQueue` — each shard's ingress: an arena-backed queue
  holding rows in contiguous blocks (a take is a zero-copy slice in
  the common case) with *exactly* the
  :class:`~repro.fleet.queueing.FleetQueue` backpressure semantics;
* :class:`FleetShard` — one :class:`~repro.fleet.engine.FleetMonitor`
  (its own queue, device table, forensic queue) plus the fast verdict
  scatter the fused drain uses;
* :class:`PublishedHmd` — the single *read-only* compiled model view
  all shards share: the flat forest node tensor (one tensor, zero
  per-shard copies), plus count-indexed verdict tables that collapse
  prediction/entropy/accept of a binary ensemble into three array
  lookups per window;
* :class:`ShardedFleetMonitor` — the facade.  Same API as a single
  ``FleetMonitor`` (``submit``/``submit_many``/``process_batch``/
  ``drain``/``report``), so runners and examples swap in without
  call-site changes.

Why sharding is faster *and* identical
--------------------------------------

Every per-window computation is row-independent, so partitioning the
stream by device and fusing each round's shard batches into one
inference pass cannot change any verdict — the benchmark gate asserts
bitwise identity against the unsharded monitor.  Throughput comes from
three structural effects, not from cutting corners:

1. the fused pass routes windows through the shared node tensor in
   cache-sized row chunks (the single monitor walks far larger slot
   blocks per batch);
2. binary-ensemble verdicts reduce to the per-row malware-vote count,
   so the distribution/entropy/argmax/threshold stage becomes three
   ``take`` lookups against tables precomputed **with the original
   functions** (bitwise identity by construction);
3. routing fans out over each shard's dense integer device index
   (bincount + one stable argsort) instead of fleet-wide string ids,
   and each shard's batches concentrate on ``1/K`` of the devices.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import asdict, dataclass, replace

import numpy as np

from ..ml.backend import (
    FlatForest,
    QuantizedForest,
    q_code_view,
    q_feat_view,
    q_goto_view,
)
from ..obs.metrics import NULL_REGISTRY, merge_snapshots, resolve_registry
from ..uncertainty.drift import EntropyDriftMonitor
from ..uncertainty.entropy import shannon_entropy, votes_to_distribution
from ..uncertainty.online import ForensicQueue, MonitorStats
from ..uncertainty.trust import TrustedHMD
from .engine import FleetBatchResult, FleetFlaggedSample, FleetMonitor
from .queueing import BackpressurePolicy, WindowBatch, WindowRequest
from .report import FleetReport, merge_reports

__all__ = [
    "ShardRouter",
    "ShardQueue",
    "IndexedWindowBatch",
    "PublishedHmd",
    "FleetShard",
    "ShardedFleetMonitor",
    "SNAPSHOT_SCHEMA",
]

# Version tag stamped into every ShardedFleetMonitor.snapshot() payload.
# restore() refuses anything else: a checkpoint from a different schema
# generation (or a payload that was never a fleet snapshot at all) fails
# loudly up front instead of corrupting worker state halfway through a
# supervised restart.  Bump the suffix when the payload shape changes.
SNAPSHOT_SCHEMA = "repro.fleet.sharded/1"


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


def _fnv1a_32(text: str) -> int:
    """FNV-1a 32-bit hash — stable across runs, platforms and pythons.

    ``hash(str)`` is salted per process, so it would re-deal the whole
    fleet on every restart; a fixed algebraic hash keeps a device on
    the same shard for the lifetime of the deployment.
    """
    h = 0x811C9DC5
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h


class ShardRouter:
    """Stable device-id → shard-id assignment."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1; got {n_shards}.")
        self.n_shards = n_shards
        self._cache: dict[str, int] = {}
        # Failover state: shards whose hash bucket is remapped onto the
        # surviving shards.  Empty for the lifetime of a healthy fleet,
        # so the hot path pays one falsy check.
        self._disabled: set[int] = set()
        self._alive: list[int] = []

    def shard_of(self, device_id: str) -> int:
        """The shard owning this device (deterministic, memoised)."""
        shard = self._cache.get(device_id)
        if shard is None:
            shard = _fnv1a_32(device_id) % self.n_shards
            if self._disabled and shard in self._disabled:
                # Deterministic second hop: the dead shard's bucket is
                # re-dealt over the survivors by the same device hash,
                # so any process that knows the disabled set computes
                # the same assignment (including unseen devices).
                shard = self._alive[_fnv1a_32(device_id) % len(self._alive)]
            self._cache[device_id] = shard
        return shard

    @property
    def disabled(self) -> frozenset:
        """Shards currently excluded from routing (failed over)."""
        return frozenset(self._disabled)

    def disable(self, shard_id: int) -> list[int]:
        """Exclude a dead shard from routing; returns the survivors.

        Every cached assignment is dropped so devices previously routed
        to the dead shard (and to survivors that may re-deal if another
        shard dies later) resolve against the new alive set.
        """
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"shard_id {shard_id} out of range.")
        self._disabled.add(int(shard_id))
        self._alive = [
            s for s in range(self.n_shards) if s not in self._disabled
        ]
        if not self._alive:
            raise ValueError("cannot disable the last live shard.")
        self._cache.clear()
        return list(self._alive)

    def spread(self, device_ids) -> dict[int, list[str]]:
        """Group device ids by their assigned shard."""
        assignment: dict[int, list[str]] = {}
        for device_id in device_ids:
            assignment.setdefault(self.shard_of(device_id), []).append(device_id)
        return assignment

    def plan_rebalance(
        self, device_ids, new_n_shards: int
    ) -> dict[str, tuple[int, int]]:
        """Deterministic move map for a shard-count change.

        Returns ``{device_id: (old_shard, new_shard)}`` for exactly the
        devices whose assignment changes; unaffected devices are
        omitted.  The map depends only on the device ids and the two
        shard counts, never on submission history.
        """
        new_router = type(self)(new_n_shards)
        plan: dict[str, tuple[int, int]] = {}
        for device_id in device_ids:
            old, new = self.shard_of(device_id), new_router.shard_of(device_id)
            if old != new:
                plan[device_id] = (old, new)
        return plan


# ---------------------------------------------------------------------------
# Arena-backed shard ingress queue
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexedWindowBatch(WindowBatch):
    """A :class:`WindowBatch` carrying dense per-queue device indices.

    ``device_index[i]`` is the queue-local integer id of the device of
    row ``i`` — what the shard's verdict scatter groups on (bincount on
    small ints) instead of re-deriving groups from the string ids.
    """

    device_index: np.ndarray = None  # (n,) int64


_BLOCK_ROWS = 1024


class _ArenaBlock:
    """One contiguous slab of queued rows (feature matrix + metadata)."""

    __slots__ = ("x", "dev", "seqs", "filled", "head", "dead", "n_dead")

    def __init__(self, n_features: int):
        self.x = np.empty((_BLOCK_ROWS, n_features), dtype=np.float64)
        self.dev = np.empty(_BLOCK_ROWS, dtype=np.int64)
        self.seqs = np.empty(_BLOCK_ROWS, dtype=np.int64)
        self.filled = 0     # rows written
        self.head = 0       # rows consumed (from the front)
        self.dead = None    # lazily allocated tombstone mask
        self.n_dead = 0     # tombstones in [head, filled)


class ShardQueue:
    """Bounded ingress queue storing rows in contiguous arena blocks.

    Drop-in compatible with :class:`~repro.fleet.queueing.FleetQueue`
    (same submit/take/pending/shed API, same policy semantics — the
    equivalence is fuzz-tested operation for operation), but organised
    for the sharded drain's hot path:

    * rows live in fixed-size contiguous blocks, so an uncongested
      ``take`` returns zero-copy slices instead of re-stacking
      per-submission segments;
    * each row carries a dense integer device index, so downstream
      routing is integer bincount arithmetic, not string grouping;
    * per-device eviction tombstones rows in place (a lazily allocated
      mask per block) rather than splitting storage.
    """

    def __init__(self, policy: BackpressurePolicy | None = None):
        self.policy = policy if policy is not None else BackpressurePolicy()
        self._blocks: deque[_ArenaBlock] = deque()
        self._n_features: int | None = None
        self._index: dict[str, int] = {}
        self._names: list[str] = []
        self._names_arr: np.ndarray | None = None
        self._pending_dev = np.zeros(8, dtype=np.int64)
        self._n_pending = 0
        # (block, pos) lookup per device, for per-device eviction; only
        # maintained when the policy actually has a per-device cap.
        self._dev_rows: dict[int, deque] | None = (
            {} if self.policy.max_pending_per_device is not None else None
        )
        self.shed_by_device: dict[str, int] = {}
        self.bind_metrics(NULL_REGISTRY)

    def bind_metrics(self, registry) -> None:
        """Bind admission/shed/occupancy instruments to a registry.

        Same instrument set as :meth:`FleetQueue.bind_metrics` plus the
        arena-occupancy gauge (contiguous blocks currently allocated) —
        the shard queue's own capacity signal.
        """
        self._m_admitted = registry.counter(
            "fleet_windows_admitted_total", "windows accepted into the queue"
        )
        self._m_shed = registry.counter(
            "fleet_windows_shed_total", "windows dropped by backpressure"
        )
        self._m_depth = registry.gauge(
            "fleet_queue_depth", "windows currently queued"
        )
        self._m_arena = registry.gauge(
            "fleet_arena_blocks", "arena blocks currently allocated"
        )

    # -- registry ------------------------------------------------------

    def register_device(self, device_id: str) -> int:
        """Dense integer index for a device (created on first sight)."""
        index = self._index.get(device_id)
        if index is None:
            index = len(self._names)
            self._index[device_id] = index
            self._names.append(device_id)
            self._names_arr = None
            if index >= len(self._pending_dev):
                grown = np.zeros(2 * len(self._pending_dev), dtype=np.int64)
                grown[: len(self._pending_dev)] = self._pending_dev
                self._pending_dev = grown
        return index

    def device_name(self, index: int) -> str:
        """Device id for a dense index."""
        return self._names[index]

    def names_array(self) -> np.ndarray:
        """The registry as a numpy unicode array (cached)."""
        if self._names_arr is None or len(self._names_arr) != len(self._names):
            self._names_arr = np.asarray(self._names)
        return self._names_arr

    # -- accounting ----------------------------------------------------

    def __len__(self) -> int:
        return self._n_pending

    @property
    def total_shed(self) -> int:
        """Windows dropped by backpressure since construction."""
        return sum(self.shed_by_device.values())

    def pending(self, device_id: str | None = None) -> int:
        """Queued windows, shard-wide or for one device."""
        if device_id is None:
            return self._n_pending
        index = self._index.get(device_id)
        return int(self._pending_dev[index]) if index is not None else 0

    def _shed(self, device_id: str, n: int = 1) -> None:
        self.shed_by_device[device_id] = self.shed_by_device.get(device_id, 0) + n
        self._m_shed.inc(n)

    # -- shedding ------------------------------------------------------

    def _evict_oldest(self) -> None:
        """Shed the stalest live row in the whole arena."""
        while self._blocks:
            block = self._blocks[0]
            while block.head < block.filled:
                position = block.head
                block.head += 1
                if block.dead is not None and block.dead[position]:
                    block.n_dead -= 1
                    continue
                index = int(block.dev[position])
                self._pending_dev[index] -= 1
                self._n_pending -= 1
                self._shed(self._names[index])
                if self._dev_rows is not None:
                    self._trim_dev_rows(index)
                return
            if block.filled == _BLOCK_ROWS:
                self._blocks.popleft()
            else:
                return  # open block, nothing live behind it

    def _evict_device_oldest(self, index: int, device_id: str) -> None:
        """Tombstone the stalest live row of one device."""
        rows = self._dev_rows.get(index)
        while rows:
            block, position = rows.popleft()
            if position < block.head:
                continue  # already consumed by a take — stale entry
            if block.dead is None:
                block.dead = np.zeros(_BLOCK_ROWS, dtype=bool)
            block.dead[position] = True
            block.n_dead += 1
            self._pending_dev[index] -= 1
            self._n_pending -= 1
            self._shed(device_id)
            return
        raise RuntimeError(
            f"eviction bookkeeping lost rows for device {device_id!r}."
        )

    # -- ingress -------------------------------------------------------

    def _open_block(self) -> _ArenaBlock:
        if not self._blocks or self._blocks[-1].filled == _BLOCK_ROWS:
            self._blocks.append(_ArenaBlock(self._n_features))
        return self._blocks[-1]

    def _admit_rows(
        self, dev: np.ndarray, features: np.ndarray, seqs: np.ndarray
    ) -> None:
        """Append rows verbatim (no policy) and update the counters."""
        m = len(seqs)
        if m == 0:
            return
        if self._n_features is None:
            self._n_features = features.shape[1]
        elif features.shape[1] != self._n_features:
            raise ValueError(
                f"rows have {features.shape[1]} features; this queue "
                f"holds {self._n_features}-feature windows."
            )
        # Account the incoming rows first: the stale-entry sweep below
        # compares lookup sizes against *post-admit* backlogs (reading
        # the pre-admit count would re-trigger a full-deque rebuild on
        # nearly every append of a large block — quadratic bulk ingress).
        counts = np.bincount(dev, minlength=len(self._pending_dev))
        self._pending_dev[: len(counts)] += counts
        self._n_pending += m
        written = 0
        while written < m:
            block = self._open_block()
            k = min(m - written, _BLOCK_ROWS - block.filled)
            stop = block.filled + k
            block.x[block.filled : stop] = features[written : written + k]
            block.dev[block.filled : stop] = dev[written : written + k]
            block.seqs[block.filled : stop] = seqs[written : written + k]
            if self._dev_rows is not None:
                for position in range(block.filled, stop):
                    self._dev_rows.setdefault(
                        int(block.dev[position]), deque()
                    ).append((block, position))
            block.filled = stop
            written += k
        if self._dev_rows is not None:
            # One sweep check per device per admission: entries consumed
            # by takes must not pin dead blocks for a busy device.
            for index in np.flatnonzero(counts):
                rows = self._dev_rows.get(int(index))
                if rows is not None and len(rows) > 2 * self._pending_dev[index] + 64:
                    self._dev_rows[int(index)] = deque(
                        (b, p) for b, p in rows if p >= b.head
                    )
        self._m_admitted.inc(m)
        self._m_depth.set(self._n_pending)
        self._m_arena.set(len(self._blocks))

    def submit(self, request: WindowRequest) -> bool:
        """Enqueue one window; returns False when *it* was shed.

        Exactly :meth:`FleetQueue.submit` semantics, including the
        possibility of a True return that shed an older window.
        """
        index = self.register_device(request.device_id)
        per_device_cap = self.policy.max_pending_per_device
        if per_device_cap is not None:
            while self._pending_dev[index] >= per_device_cap:
                if self.policy.shed == "drop_newest":
                    self._shed(request.device_id)
                    return False
                self._evict_device_oldest(index, request.device_id)

        while self._n_pending >= self.policy.max_pending:
            if self.policy.shed == "drop_newest":
                self._shed(request.device_id)
                return False
            self._evict_oldest()

        features = np.atleast_2d(np.asarray(request.features, dtype=float))
        self._admit_rows(
            np.asarray([index], dtype=np.int64),
            features,
            np.asarray([request.seq], dtype=np.int64),
        )
        return True

    def submit_block(
        self, device_id: str, features: np.ndarray, seqs: np.ndarray
    ) -> int:
        """Enqueue a stack of windows from one device at once.

        Uncongested blocks are bulk-copied into the arena with no
        per-row Python; a block that would trip a bound is replayed
        row-wise for exact :meth:`submit` shedding semantics.
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        seqs = np.asarray(seqs, dtype=np.int64)
        m = len(seqs)
        if features.shape[0] != m:
            raise ValueError(
                f"features has {features.shape[0]} rows but {m} seqs were given."
            )
        if m == 0:
            return 0
        index = self.register_device(device_id)

        cap = self.policy.max_pending_per_device
        fits_device = cap is None or self._pending_dev[index] + m <= cap
        fits_global = self._n_pending + m <= self.policy.max_pending
        if fits_device and fits_global:
            self._admit_rows(np.full(m, index, dtype=np.int64), features, seqs)
            return m

        admitted = 0
        for i in range(m):
            admitted += self.submit(
                WindowRequest(
                    device_id=device_id, features=features[i], seq=int(seqs[i])
                )
            )
        return admitted

    # -- egress --------------------------------------------------------

    def take(self, n: int) -> IndexedWindowBatch:
        """Dequeue up to ``n`` live rows in admission order.

        The common case (front rows without tombstones, one block)
        returns pure array views of the arena — no copies, no per-row
        objects.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1; got {n}.")
        parts: list[tuple[_ArenaBlock, int, int]] = []
        need = n
        while need > 0 and self._blocks:
            block = self._blocks[0]
            while (
                block.head < block.filled
                and block.dead is not None
                and block.dead[block.head]
            ):
                block.dead[block.head] = False
                block.n_dead -= 1
                block.head += 1
            if block.head == block.filled:
                if block.filled == _BLOCK_ROWS:
                    self._blocks.popleft()
                    continue
                break  # drained open block — nothing queued behind it
            start = block.head
            limit = min(start + need, block.filled)
            if block.n_dead:
                tombstones = np.flatnonzero(block.dead[start:limit])
                stop = start + int(tombstones[0]) if len(tombstones) else limit
            else:
                stop = limit
            parts.append((block, start, stop))
            block.head = stop
            need -= stop - start

        if not parts:
            return _EMPTY_INDEXED_BATCH

        if len(parts) == 1:
            block, start, stop = parts[0]
            dev = block.dev[start:stop]
            seqs = block.seqs[start:stop]
            features = block.x[start:stop]
        else:
            dev = np.concatenate([b.dev[i:j] for b, i, j in parts])
            seqs = np.concatenate([b.seqs[i:j] for b, i, j in parts])
            features = np.vstack([b.x[i:j] for b, i, j in parts])

        counts = np.bincount(dev, minlength=len(self._pending_dev))
        self._pending_dev[: len(counts)] -= counts
        self._n_pending -= len(seqs)
        self._m_depth.set(self._n_pending)
        self._m_arena.set(len(self._blocks))
        if self._dev_rows is not None:
            # Trim the consumed entries off the eviction lookups now:
            # take consumes in FIFO order, so they sit at the deque
            # fronts, and a quiet device's last take would otherwise
            # leave stale entries pinning dead arena blocks forever.
            for index in np.flatnonzero(counts):
                self._trim_dev_rows(int(index))
        return IndexedWindowBatch(
            device_ids=self.names_array().take(dev),
            seqs=seqs,
            features=features,
            device_index=dev,
        )

    def _trim_dev_rows(self, index: int) -> None:
        """Drop consumed entries from the front of a device's lookup."""
        rows = self._dev_rows.get(index)
        if rows is None:
            return
        while rows and rows[0][1] < rows[0][0].head:
            rows.popleft()
        if not rows:
            del self._dev_rows[index]

    # -- rebalancing / persistence -------------------------------------

    def extract_device(self, device_id: str) -> tuple[np.ndarray, np.ndarray]:
        """Remove one device's queued rows (moved, not shed)."""
        index = self._index.get(device_id)
        if index is None or self._pending_dev[index] == 0:
            return np.empty((0, 0)), np.empty(0, dtype=np.int64)
        features, seqs = [], []
        for block in self._blocks:
            live = block.dev[block.head : block.filled] == index
            if block.dead is not None:
                live &= ~block.dead[block.head : block.filled]
            rows = np.flatnonzero(live) + block.head
            if not len(rows):
                continue
            features.append(block.x[rows])
            seqs.append(block.seqs[rows])
            if block.dead is None:
                block.dead = np.zeros(_BLOCK_ROWS, dtype=bool)
            block.dead[rows] = True
            block.n_dead += len(rows)
        moved = sum(len(s) for s in seqs)
        self._n_pending -= moved
        self._pending_dev[index] = 0
        if self._dev_rows is not None:
            self._dev_rows.pop(index, None)
        if not seqs:
            return np.empty((0, 0)), np.empty(0, dtype=np.int64)
        return np.vstack(features), np.concatenate(seqs)

    def snapshot(self) -> dict:
        """Plain-data state: live rows in admission order + counters."""
        device_ids, seqs, features = [], [], []
        for block in self._blocks:
            live = np.ones(block.filled - block.head, dtype=bool)
            if block.dead is not None:
                live &= ~block.dead[block.head : block.filled]
            rows = np.flatnonzero(live) + block.head
            if not len(rows):
                continue
            device_ids.append(self.names_array().take(block.dev[rows]))
            seqs.append(block.seqs[rows])
            features.append(block.x[rows])
        return {
            "kind": "shard",
            "policy": asdict(self.policy),
            "device_ids": (
                np.concatenate(device_ids) if device_ids else np.empty(0, "<U1")
            ),
            "seqs": (
                np.concatenate(seqs) if seqs else np.empty(0, dtype=np.int64)
            ),
            "features": np.vstack(features) if features else np.empty((0, 0)),
            "shed_by_device": dict(self.shed_by_device),
        }

    @classmethod
    def restore(cls, state: dict) -> "ShardQueue":
        """Rebuild a queue from :meth:`snapshot` output (no re-shedding)."""
        queue = cls(BackpressurePolicy(**state["policy"]))
        device_ids = np.asarray(state["device_ids"])
        if len(device_ids):
            dev = np.asarray(
                [queue.register_device(str(d)) for d in device_ids],
                dtype=np.int64,
            )
            queue._admit_rows(
                dev,
                np.atleast_2d(np.asarray(state["features"], dtype=float)),
                np.asarray(state["seqs"], dtype=np.int64),
            )
        queue.shed_by_device = dict(state["shed_by_device"])
        return queue


_EMPTY_INDEXED_BATCH = IndexedWindowBatch(
    device_ids=np.empty(0, dtype="<U1"),
    seqs=np.empty(0, dtype=np.int64),
    features=np.empty((0, 0)),
    device_index=np.empty(0, dtype=np.int64),
)


# ---------------------------------------------------------------------------
# The shared read-only compiled model view
# ---------------------------------------------------------------------------

# Row-chunk sizing for the fused vote pass: slots = rows x members per
# traversal chunk.  16k slots keep every per-level working array inside
# L2, which measures ~1.7x faster per row than the predict backend's
# throughput-oriented 51k-slot chunks at fused batch sizes.
_SHARD_SLOT_TARGET = 16_384
_MIN_COMPACT = 1024
_COMPACT_RATIO = 0.75


class PublishedHmd:
    """One read-only compiled view of the shared HMD, used by all shards.

    Holds a reference to the ensemble's flat forest (one node tensor —
    shards share it with zero copies) plus, for binary ensembles,
    count-indexed verdict tables: a window's prediction, entropy and
    accept/withhold decision depend *only* on how many members voted
    for the second class, so all three are precomputed for every
    possible count ``0..M`` **using the original pipeline functions**
    (:func:`votes_to_distribution`, :func:`shannon_entropy`, argmax,
    threshold compare).  Equality with :meth:`TrustedHMD.analyze` is
    therefore bitwise by construction, and the fuzz suite asserts it.

    A published view is keyed to the ensemble's fitted member list and
    the operating threshold; :meth:`is_current` turns stale after a
    (warm) retrain or a threshold change, and the facade republishes —
    one recompile, visible to every shard at the next fused round.
    """

    def __init__(self, hmd: TrustedHMD):
        if not hasattr(hmd, "estimator_"):
            raise ValueError("hmd must be fitted before publishing.")
        self.hmd = hmd
        self.members = hmd.ensemble_.estimators_
        self.threshold = float(hmd.policy_.threshold)
        self.classes = np.asarray(hmd.classes_)
        compile_backend = getattr(hmd, "compile", None)
        if callable(compile_backend):
            compile_backend()
        # The compile mode the kernel was built for — part of the
        # published view's identity: switching modes on a live hmd must
        # republish even when the fitted members are unchanged
        # (:meth:`is_current` compares it).
        self.compile_mode = getattr(hmd, "_compile_mode_", "float64")
        backend_compile = getattr(hmd.ensemble_, "compile", None)
        self.backend = backend_compile() if callable(backend_compile) else None
        self._flat = isinstance(self.backend, FlatForest)
        self._quantized = isinstance(self.backend, QuantizedForest)

        # The preprocessing front, captured for the fused pass.  Without
        # a PCA stage ``hmd._transform`` is ``(X - mean) / scale``;
        # replaying the same two ufuncs in the same order (and, in
        # float32 mode, the same narrowed operands) is bitwise identical
        # while skipping the per-call validation layer.  With PCA the
        # cached fused-GEMM front is the fast path — holding the
        # weight/bias pair here (rather than calling back into the hmd)
        # lets a detached view (:meth:`from_parts`) run the identical
        # GEMM with no model object at all.
        scaler32 = getattr(hmd, "_scaler32_", None)
        if hmd.pca_ is None:
            if scaler32 is not None:
                self._scaler_front = scaler32
            else:
                self._scaler_front = (hmd.scaler_.mean_, hmd.scaler_.scale_)
            self._affine_front = None
        else:
            self._scaler_front = None
            self._affine_front = (hmd._front_weight_, hmd._front_bias_)

        if len(self.classes) == 2 and self.backend is not None:
            n_members = self.backend.n_members
            base = hmd.estimator_.base
            ks = np.arange(n_members + 1)
            # Synthetic vote rows with k second-class votes each, fed
            # through the *original* distribution/entropy functions:
            # both reduce row-wise, so table entry k is bitwise what
            # analyze computes for any real row with count k.
            votes = np.where(
                np.arange(n_members)[None, :] < ks[:, None],
                self.classes[1],
                self.classes[0],
            )
            distribution = votes_to_distribution(votes, self.classes)
            self.entropy_table = shannon_entropy(distribution, base=base)
            self.prediction_table = self.classes[
                np.argmax(distribution, axis=1)
            ]
            self.accept_table = self.entropy_table <= self.threshold
        else:
            self.entropy_table = None
        if self._flat or self._quantized:
            self._leaf_is_second = np.ascontiguousarray(
                (self.backend.leaf_label == self.classes[-1]).astype(np.int64)
            )

    @classmethod
    def from_parts(
        cls,
        *,
        backend,
        classes,
        threshold: float,
        prediction_table,
        entropy_table,
        accept_table,
        leaf_is_second,
        scaler_front=None,
        affine_front=None,
    ) -> "PublishedHmd":
        """Assemble a *detached* view from already-compiled parts.

        This is how a shard worker rebuilds the parent's published view
        around shared-memory mappings (see :mod:`repro.fleet.shm`): the
        node tensor, tables and fronts are the parent's exact arrays,
        so :meth:`verdict` is bitwise identical by construction — but
        there is no ``hmd`` behind it (``self.hmd is None``), so the
        detached view can neither fall back to ``analyze`` nor detect
        retrains itself; currency is managed externally by publication
        generation.
        """
        view = cls.__new__(cls)
        view.hmd = None
        view.members = None
        view.backend = backend
        view._quantized = isinstance(backend, QuantizedForest)
        view._flat = not view._quantized
        view.compile_mode = "detached"
        view.classes = np.asarray(classes)
        view.threshold = float(threshold)
        view.prediction_table = np.asarray(prediction_table)
        view.entropy_table = np.asarray(entropy_table)
        view.accept_table = np.asarray(accept_table)
        view._leaf_is_second = leaf_is_second
        view._scaler_front = scaler_front
        view._affine_front = affine_front
        return view

    def is_current(self) -> bool:
        """False once the HMD refit, changed threshold, or switched mode.

        The compile-mode comparison matters even with unchanged fitted
        members: ``hmd.compile(mode=...)`` swaps the kernel (and the
        front dtype) without touching ``estimators_``, and a view that
        only keyed on the member list would keep serving the stale
        kernel forever.  A detached view (:meth:`from_parts`) has no
        model to compare against; its currency is the publication
        generation, managed by whoever shipped it — it never
        self-reports stale.
        """
        if self.hmd is None:
            return True
        return (
            self.members is self.hmd.ensemble_.estimators_
            and self.threshold == float(self.hmd.policy_.threshold)
            and self.compile_mode == getattr(self.hmd, "_compile_mode_", "float64")
        )

    # -- fused verdict pass --------------------------------------------

    def verdict(self, X) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(predictions, entropy, accepted)`` for a stacked batch.

        Bitwise identical to ``hmd.analyze(X)`` on every tier: the
        count-table fast path for compiled binary ensembles, a
        votes-then-original-functions path for compiled multi-class
        ensembles, and a plain ``analyze`` fallback otherwise.
        """
        if self.entropy_table is None:
            verdict = self.hmd.analyze(X)
            return verdict.predictions, verdict.entropy, verdict.accepted
        if self._scaler_front is not None:
            mean, scale = self._scaler_front
            # In float32 mode the captured mean/scale are the narrowed
            # pair; casting X first keeps the whole front narrow (a
            # float64 X against float32 operands would silently upcast).
            X = np.asarray(X, dtype=mean.dtype)
            Z = np.true_divide(np.subtract(X, mean), scale)
        elif self._affine_front is not None:
            # The captured fused front — the same GEMM, operand order
            # and dtypes as ``hmd._transform`` minus its validation
            # layer, so bitwise identical (the fuzz suite asserts it).
            weight, bias = self._affine_front
            Z = np.asarray(X, dtype=weight.dtype) @ weight + bias
        else:
            Z = self.hmd._transform(X)
        if self._quantized:
            counts = self._count_votes_quantized(Z)
        elif self._flat:
            counts = self._count_votes(Z)
        else:
            votes = self.backend.decisions(np.ascontiguousarray(Z, dtype=float))
            counts = np.count_nonzero(votes == self.classes[-1], axis=1)
        return (
            self.prediction_table.take(counts),
            self.entropy_table.take(counts),
            self.accept_table.take(counts),
        )

    def _count_votes(self, Z: np.ndarray) -> np.ndarray:
        """Second-class vote count per row via the shared node tensor.

        The same level-synchronous routing as ``FlatForest.apply`` —
        identical node transitions, so identical leaves and counts —
        but chunked to L2-sized row groups and compacted eagerly, and
        reduced straight to counts instead of materialising the
        ``(n, M)`` leaf/vote matrices.
        """
        forest = self.backend
        fg, threshold = forest.fg, forest.threshold
        m, max_depth = forest.n_members, forest.max_depth
        # encode() is the forest's own input cast (float64, or float32
        # for a narrowed forest) — one definition for both kernels.
        Z = forest.encode(Z)
        n, n_features = Z.shape
        chunk = max(16, _SHARD_SLOT_TARGET // m)
        counts = np.empty(n, dtype=np.intp)
        for start in range(0, n, chunk):
            nc = min(chunk, n - start)
            x = Z[start : start + nc].ravel()
            # The forest's own cached level-0 gather program — one
            # definition of the root setup for both kernels.
            rows_f, xi0, thr0, goto0 = forest._setup(nc, n_features)
            out = np.empty(nc * m, dtype=np.intp)
            node = np.add(goto0, np.greater(x.take(xi0, mode="clip"), thr0))
            rows = rows_f
            idx = None
            for level in range(1, max_depth):
                rec = fg.take(node, axis=0, mode="clip")
                f = rec[:, 0]
                if level >= 2 and node.size > _MIN_COMPACT:
                    alive = f >= 0
                    n_alive = int(np.count_nonzero(alive))
                    if n_alive == 0:
                        break
                    if n_alive < _COMPACT_RATIO * node.size:
                        live = np.flatnonzero(alive)
                        if idx is None:
                            out[:] = node
                            idx = live
                        else:
                            dead = np.flatnonzero(~alive)
                            out[idx.take(dead)] = node.take(dead)
                            idx = idx.take(live)
                        rows = rows.take(live)
                        node = node.take(live)
                        rec = rec.take(live, axis=0)
                        f = rec[:, 0]
                xv = x.take(np.add(f, rows), mode="clip")
                node = np.add(rec[:, 1], np.greater(xv, threshold.take(node)))
            if idx is None:
                leaves = node
            else:
                out[idx] = node
                leaves = out
            counts[start : start + nc] = (
                self._leaf_is_second.take(leaves).reshape(nc, m).sum(axis=1)
            )
        return counts

    def _count_votes_quantized(self, Z: np.ndarray) -> np.ndarray:
        """Second-class vote counts via the uint8 bin-code kernel.

        The batch is quantized **once** (one batched searchsorted, see
        :meth:`QuantizedForest.encode`), then routed with the same
        node transitions as :meth:`QuantizedForest._apply_chunk` —
        identical leaves, identical counts — chunked and compacted with
        the shard tuning of :meth:`_count_votes`.  Each level gathers
        one packed int64 per live slot and one uint8 code; since the
        rewritten codes reproduce the float comparisons exactly
        (``code > b  <=>  v > edges[b]``), counts are bitwise equal to
        the float64 kernel's.
        """
        forest = self.backend
        packed = forest.packed
        m, max_depth = forest.n_members, forest.max_depth
        codes = forest.encode(Z)
        n, n_features = codes.shape
        chunk = max(16, _SHARD_SLOT_TARGET // m)
        counts = np.empty(n, dtype=np.intp)
        leaf_code = 255  # the packed layout's leaf sentinel
        for start in range(0, n, chunk):
            nc = min(chunk, n - start)
            x = codes[start : start + nc].ravel()
            rows_f, xi0, code0, goto0 = forest._setup(nc, n_features)
            out = np.empty(nc * m, dtype=np.intp)
            node = np.add(goto0, np.greater(x.take(xi0), code0))
            rows = rows_f
            idx = None
            for level in range(1, max_depth):
                rec = packed.take(node)
                code = q_code_view(rec)
                if level >= 2:
                    alive = code != leaf_code
                    n_alive = int(np.count_nonzero(alive))
                    if n_alive == 0:
                        break
                    if (
                        n_alive < _COMPACT_RATIO * node.size
                        and node.size > _MIN_COMPACT
                    ):
                        live = np.flatnonzero(alive)
                        if idx is None:
                            out[:] = node
                            idx = live
                        else:
                            dead = np.flatnonzero(~alive)
                            out[idx.take(dead)] = node.take(dead)
                            idx = idx.take(live)
                        rows = rows.take(live)
                        node = node.take(live)
                        rec = rec.take(live)
                        code = q_code_view(rec)
                f = q_feat_view(rec)
                xv = x.take(np.add(f, rows))
                node = np.add(q_goto_view(rec), np.greater(xv, code), dtype=np.intp)
            if idx is None:
                leaves = node
            else:
                out[idx] = node
                leaves = out
            counts[start : start + nc] = (
                self._leaf_is_second.take(leaves).reshape(nc, m).sum(axis=1)
            )
        return counts


# ---------------------------------------------------------------------------
# One shard
# ---------------------------------------------------------------------------


class FleetShard:
    """One monitor core of the sharded fleet.

    Wraps a full :class:`FleetMonitor` — its own :class:`ShardQueue`,
    device-state table, counters and forensic queue — so every
    single-monitor behaviour (reference batch path, reporting,
    snapshotting) is available per shard.  The facade's fused drain
    bypasses ``process_batch`` and instead feeds verdicts in through
    :meth:`scatter`, which reproduces the engine's routing semantics
    exactly (same ``DeviceState.record`` calls, same flagged-sample
    objects) from a dense integer grouping pass.
    """

    def __init__(
        self, shard_id: int, monitor: FleetMonitor, *, stage_flagged: bool = True
    ):
        self.shard_id = shard_id
        self.monitor = monitor
        # Columnar staging of flagged rows: the fused drain appends
        # plain arrays here; FlaggedSample objects materialise lazily
        # when the forensic stream is actually read (triage time).
        # A worker-process shard runs with staging off — its feature
        # views live in a recycled shared-memory slot, so the *parent*
        # stages flagged rows from its own retained copies instead.
        self.stage_flagged = stage_flagged
        self._staged_flagged: list[tuple] = []

    @property
    def queue(self) -> ShardQueue:
        """The shard's ingress queue."""
        return self.monitor.queue

    def take_staged_flagged(self) -> list[tuple]:
        """Hand the staged flagged-row blocks to the facade (cleared)."""
        staged = self._staged_flagged
        self._staged_flagged = []
        return staged

    def scatter(
        self,
        batch: IndexedWindowBatch,
        predictions: np.ndarray,
        entropy: np.ndarray,
        accepted: np.ndarray,
    ) -> None:
        """Fan one fused round's verdict slice back into shard state.

        Equivalent to :meth:`FleetMonitor._route` — the equivalence
        fuzz suite asserts identical device states, counters and
        forensic streams — but grouped on the batch's dense device
        indices (one bincount + one stable argsort over small ints).
        """
        monitor = self.monitor
        n = len(batch)
        base_step = monitor._step
        monitor._step += n
        accepted = np.asarray(accepted, dtype=bool)
        monitor.stats.record_verdicts(predictions, entropy, accepted)

        # Per-device grouping on dense integer indices: one bincount
        # per counter and a single stable argsort replace the string
        # unique + per-device numpy reductions of the generic route.
        # Counts are exact integers, and each device's entropy sum uses
        # the same np.sum over the same ordered slice as
        # MonitorStats.record_verdicts would — state stays bitwise
        # identical to the unsharded monitor's.
        dev = batch.device_index
        group_sizes = np.bincount(dev)
        accepted_per = np.bincount(
            dev, weights=accepted, minlength=len(group_sizes)
        )
        alerts_per = np.bincount(
            dev, weights=accepted & (predictions == 1), minlength=len(group_sizes)
        )
        order = np.argsort(dev, kind="stable")
        entropy_ordered = entropy[order]
        present = np.flatnonzero(group_sizes)
        stops = np.cumsum(group_sizes[present])
        start = 0
        for g, index in enumerate(present):
            stop = stops[g]
            state = monitor.devices[self.queue.device_name(int(index))]
            device_entropy = entropy_ordered[start:stop]
            stats = state.stats
            n_device = int(group_sizes[index])
            n_accepted = int(accepted_per[index])
            stats.n_seen += n_device
            stats.n_accepted += n_accepted
            stats.n_flagged += n_device - n_accepted
            stats.n_malware_alerts += int(alerts_per[index])
            stats.entropy_sum += float(np.sum(device_entropy))
            state.entropy_recent.extend(device_entropy)
            state.last_step = max(
                state.last_step, base_step + int(order[stop - 1]) + 1
            )
            start = stop

        if not self.stage_flagged:
            return
        flagged = np.flatnonzero(~accepted)
        if len(flagged):
            # Stage columnar: fancy-indexed rows are fresh copies, so
            # the arena blocks underneath are not pinned by the stage.
            self._staged_flagged.append(
                (
                    batch.features[flagged],
                    predictions[flagged],
                    entropy[flagged],
                    base_step + flagged + 1,
                    batch.device_ids[flagged],
                    batch.seqs[flagged],
                )
            )


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------


class ShardedFleetMonitor:
    """K monitor cores behind a device-hash router, one merged view.

    Drop-in for :class:`FleetMonitor`: the ingress API (``register``,
    ``submit``, ``submit_many``), the processing API (``process_batch``,
    ``drain``), and the egress API (``report``, ``stats``,
    ``forensics``) all keep their signatures, so experiment runners,
    examples and the :class:`~repro.fleet.retrain.FleetRetrainer` swap
    in without call-site changes.

    One :meth:`process_batch` is a *fused round*: up to ``batch_size``
    rows from every shard's queue are stacked and routed through the
    shared :class:`PublishedHmd` in a single pass, then each shard's
    slice is scattered back to its own device table, and each shard's
    flagged windows drain into the facade's merged forensic queue (per
    device still in submission-sequence order).  Verdicts are bitwise
    identical to an unsharded monitor over the same traffic.

    Backpressure bounds apply per shard: ``max_pending_per_device``
    semantics are *exactly* those of the single monitor (a device lives
    on one shard), while the global ``max_pending`` bounds each shard's
    queue individually — fleet-total capacity is ``K x max_pending``.

    Parameters mirror :class:`FleetMonitor`, plus ``n_shards`` /
    ``router``.  ``telemetry`` follows the same contract as the single
    monitor's; each shard core gets its *own* registry (per-shard queue
    gauges must not overwrite each other), and :meth:`report` folds all
    of them — plus the facade's fused-round instruments — through the
    associative :func:`~repro.obs.metrics.merge_snapshots`.
    """

    def __init__(
        self,
        hmd: TrustedHMD,
        *,
        n_shards: int = 4,
        batch_size: int = 256,
        policy: BackpressurePolicy | None = None,
        forensics: ForensicQueue | None = None,
        drift_reference=None,
        entropy_window: int = 128,
        router: ShardRouter | None = None,
        telemetry=None,
        tracer=None,
    ):
        if not hasattr(hmd, "estimator_"):
            raise ValueError("hmd must be fitted before fleet monitoring.")
        self.hmd = hmd
        self.router = router if router is not None else ShardRouter(n_shards)
        self.batch_size = batch_size
        self.policy = policy if policy is not None else BackpressurePolicy()
        self.entropy_window = entropy_window
        self.metrics = resolve_registry(telemetry)
        self.tracer = tracer
        self._obs_on = self.metrics.enabled or tracer is not None
        self._m_rounds = self.metrics.counter(
            "fleet_batches_total", "fused inference rounds run"
        )
        self._m_drained = self.metrics.counter(
            "fleet_windows_drained_total", "windows given a verdict"
        )
        self._m_verdict = self.metrics.histogram(
            "fleet_verdict_seconds", "fused verdict-pass latency per round"
        )
        self._m_scatter_rows = self.metrics.counter(
            "fleet_scatter_rows_total", "verdict rows fanned back to shards"
        )
        self._m_flagged = self.metrics.counter(
            "fleet_windows_flagged_total", "windows withheld as uncertain"
        )
        self._m_scatter = self.metrics.histogram(
            "fleet_scatter_seconds", "verdict scatter latency per round"
        )
        self.shards = [
            FleetShard(
                shard_id,
                FleetMonitor(
                    hmd,
                    batch_size=batch_size,
                    forensics=ForensicQueue(),
                    entropy_window=entropy_window,
                    queue=ShardQueue(self.policy),
                    telemetry=self.metrics.enabled or None,
                    tracer=tracer,
                ),
            )
            for shard_id in range(self.router.n_shards)
        ]
        self._forensics = forensics if forensics is not None else ForensicQueue()
        self._staged_flagged: list[tuple] = []
        self._staged_rows = 0
        # Flush the columnar stage into the bounded queue before it can
        # outgrow the queue's own memory cap: staging defers per-row
        # object creation, it must not defeat maxlen under a flag storm.
        self._stage_limit = min(self._forensics.maxlen, 8192)
        self.drift = (
            EntropyDriftMonitor(drift_reference)
            if drift_reference is not None
            else None
        )
        self.n_batches = 0
        self.published = PublishedHmd(hmd)

    @property
    def n_shards(self) -> int:
        """Number of monitor cores behind the router."""
        return len(self.shards)

    # -- ingress -------------------------------------------------------

    def shard_for(self, device_id: str) -> FleetShard:
        """The shard owning a device."""
        return self.shards[self.router.shard_of(device_id)]

    def register(self, device_id: str, *, cohort: str = "unknown"):
        """Idempotently create the device's state on its home shard."""
        return self.shard_for(device_id).monitor.register(
            device_id, cohort=cohort
        )

    def register_fleet(self, devices) -> None:
        """Register a whole device population across the shards."""
        for device in devices:
            self.register(device.device_id, cohort=device.cohort)

    def submit(self, device_id: str, window) -> bool:
        """Route one window to its device's shard."""
        return self.shard_for(device_id).monitor.submit(device_id, window)

    def submit_many(self, device_id: str, windows) -> int:
        """Route a block of windows to its device's shard."""
        return self.shard_for(device_id).monitor.submit_many(device_id, windows)

    @property
    def pending(self) -> int:
        """Windows currently queued across all shards."""
        return sum(len(shard.queue) for shard in self.shards)

    @property
    def stats(self) -> MonitorStats:
        """Merged fleet-wide counters (computed from the shards)."""
        merged = MonitorStats()
        for shard in self.shards:
            merged.merge(shard.monitor.stats)
        return merged

    # -- fused inference rounds ----------------------------------------

    def _ensure_published(self) -> PublishedHmd:
        if not self.published.is_current():
            # One recompile per retrain/threshold change; the new view
            # is shared by every shard from this round on.
            self.published = PublishedHmd(self.hmd)
        return self.published

    def _collect_flagged(self) -> None:
        """Pull each shard's flagged output into the facade's stage.

        Shards are visited in id order and each preserves flag order,
        so the merged stream is deterministic and per-device
        submission-sequence ordered.  Rows stay columnar here — the
        per-row :class:`FleetFlaggedSample` objects materialise only
        when the :attr:`forensics` stream is actually read (triage
        time), keeping analyst bookkeeping out of the drain hot loop.
        """
        for shard in self.shards:
            if shard._staged_flagged:
                for block in shard.take_staged_flagged():
                    self._staged_flagged.append(block)
                    self._staged_rows += len(block[-1])
            queue = shard.monitor.forensics
            if len(queue):
                # Reference-path pushes (someone drove the shard's own
                # process_batch) merge as ready-made samples.
                samples = queue.drain()
                self._staged_flagged.append(samples)
                self._staged_rows += len(samples)
        if self._staged_rows >= self._stage_limit:
            self._flush_staged()

    def _flush_staged(self) -> None:
        """Materialise staged flagged rows into the bounded queue."""
        if self._staged_flagged:
            staged, self._staged_flagged = self._staged_flagged, []
            self._staged_rows = 0
            for block in staged:
                if isinstance(block, list):  # reference-path samples
                    self._forensics.push_many(block)
                    continue
                features, predictions, entropy, steps, device_ids, seqs = block
                self._forensics.push_many(
                    FleetFlaggedSample(
                        features=features[i],
                        prediction=int(predictions[i]),
                        entropy=float(entropy[i]),
                        step=int(steps[i]),
                        device_id=str(device_ids[i]),
                        seq=int(seqs[i]),
                    )
                    for i in range(len(seqs))
                )

    @property
    def forensics(self) -> ForensicQueue:
        """The merged triage stream (flushes staged flagged rows)."""
        self._flush_staged()
        return self._forensics

    def process_batch(self) -> FleetBatchResult | None:
        """One fused round: up to ``batch_size`` rows *per shard*.

        Returns the merged verdict batch (rows grouped by shard id, per
        device in submission order), or ``None`` when every queue is
        empty.
        """
        published = self._ensure_published()
        parts: list[tuple[FleetShard, IndexedWindowBatch]] = []
        for shard in self.shards:
            if len(shard.queue):
                batch = shard.queue.take(self.batch_size)
                if len(batch):
                    parts.append((shard, batch))
        if not parts:
            return None

        if self._obs_on:
            if self.tracer is not None:
                for _, batch in parts:
                    self.tracer.stamp_rows(batch.device_ids, batch.seqs, "queue")
            t0 = time.perf_counter()
        if len(parts) == 1:
            features = parts[0][1].features
        else:
            features = np.vstack([batch.features for _, batch in parts])
        predictions, entropy, accepted = published.verdict(features)
        if self._obs_on:
            t1 = time.perf_counter()
            self._m_verdict.observe(t1 - t0)
            self._m_rounds.inc()
            self._m_drained.inc(len(predictions))
            self._m_flagged.inc(int(np.count_nonzero(~np.asarray(accepted, dtype=bool))))
            if self.tracer is not None:
                for _, batch in parts:
                    self.tracer.stamp_rows(batch.device_ids, batch.seqs, "verdict")

        offset = 0
        for shard, batch in parts:
            stop = offset + len(batch)
            shard.scatter(
                batch,
                predictions[offset:stop],
                entropy[offset:stop],
                accepted[offset:stop],
            )
            offset = stop
        if self._obs_on:
            self._m_scatter.observe(time.perf_counter() - t1)
            self._m_scatter_rows.inc(len(predictions))
            if self.tracer is not None:
                for _, batch in parts:
                    self.tracer.complete_rows(batch.device_ids, batch.seqs, "scatter")
        self._collect_flagged()
        if self.drift is not None:
            self.drift.observe(entropy)
        self.n_batches += 1

        if len(parts) == 1:
            device_ids = parts[0][1].device_ids
            seqs = parts[0][1].seqs
        else:
            device_ids = np.concatenate([b.device_ids for _, b in parts])
            seqs = np.concatenate([b.seqs for _, b in parts])
        return FleetBatchResult(
            device_ids=device_ids,
            seqs=seqs,
            predictions=predictions,
            entropy=entropy,
            accepted=accepted,
            threshold=published.threshold,
        )

    def drain(self, max_batches: int | None = None) -> list[FleetBatchResult]:
        """Run fused rounds until every shard queue is empty."""
        results: list[FleetBatchResult] = []
        while max_batches is None or len(results) < max_batches:
            result = self.process_batch()
            if result is None:
                break
            results.append(result)
        return results

    # -- egress --------------------------------------------------------

    def report(self) -> FleetReport:
        """Merged fleet view over all shards' device tables."""
        report = merge_reports(
            (shard.monitor.report() for shard in self.shards),
            n_batches=self.n_batches,
            drift_status=self.drift.observe([]).status if self.drift else None,
        )
        if self.metrics.enabled:
            # Fold the facade's fused-round instruments into the merged
            # per-shard telemetry (merge_snapshots is associative, so
            # order does not matter).
            snapshots = [self.metrics.snapshot()]
            if report.telemetry:
                snapshots.append(report.telemetry)
            report = replace(report, telemetry=merge_snapshots(snapshots))
        return report

    # -- rebalancing ---------------------------------------------------

    def rebalance(self, n_shards: int) -> dict[str, tuple[int, int]]:
        """Change the shard count, migrating device state and backlogs.

        Every moved device takes its :class:`DeviceState`, sequence
        counter, shed history and queued windows (in order) to its new
        shard, so subsequent verdicts are unchanged.  Returns the
        router's deterministic move map ``{device: (old, new)}``.
        """
        self._collect_flagged()
        device_ids = [
            device_id
            for shard in self.shards
            for device_id in shard.monitor.devices
        ]
        plan = self.router.plan_rebalance(device_ids, n_shards)
        new_router = type(self.router)(n_shards)
        # Seed every new core's step counter past all the old ones, so
        # post-rebalance flagged-sample steps and last_step keep
        # advancing monotonically (mirrors what snapshot/restore keep).
        step_seed = max(
            (shard.monitor._step for shard in self.shards), default=0
        )
        new_shards = [
            FleetShard(
                shard_id,
                FleetMonitor(
                    self.hmd,
                    batch_size=self.batch_size,
                    forensics=ForensicQueue(),
                    entropy_window=self.entropy_window,
                    queue=ShardQueue(self.policy),
                    telemetry=self.metrics.enabled or None,
                    tracer=self.tracer,
                ),
            )
            for shard_id in range(n_shards)
        ]
        for shard in new_shards:
            shard.monitor._step = step_seed
        for shard in self.shards:
            monitor = shard.monitor
            for device_id, state in monitor.devices.items():
                target = new_shards[new_router.shard_of(device_id)].monitor
                target.devices[device_id] = state
                target._seq[device_id] = monitor._seq[device_id]
                target.stats.merge(state.stats)
                shed = monitor.queue.shed_by_device.get(device_id, 0)
                if shed:
                    target.queue.shed_by_device[device_id] = shed
                features, seqs = monitor.queue.extract_device(device_id)
                if len(seqs):
                    # Direct admission: these rows already passed the
                    # backpressure policy once — a migration must move
                    # them, never re-shed them.
                    index = target.queue.register_device(device_id)
                    target.queue._admit_rows(
                        np.full(len(seqs), index, dtype=np.int64),
                        features,
                        seqs,
                    )
        self.router = new_router
        self.shards = new_shards
        return plan

    # -- persistence ---------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpoint the full sharded fleet (model excluded).

        Per-shard monitor snapshots (queue backlogs, device states,
        counters) plus the router/policy configuration and the merged
        forensic backlog — what :meth:`restore` needs to resume
        mid-stream with identical subsequent verdicts.  As with
        :meth:`FleetMonitor.snapshot`, the fitted HMD and the optional
        drift monitor's accumulated detector statistics travel
        separately (model pickle / fresh ``drift_reference``).
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "n_shards": self.n_shards,
            "batch_size": self.batch_size,
            "entropy_window": self.entropy_window,
            "n_batches": self.n_batches,
            "policy": asdict(self.policy),
            "shards": [shard.monitor.snapshot() for shard in self.shards],
            "forensics": {
                "samples": self.forensics.snapshot(),
                "maxlen": self.forensics.maxlen,
                "total_flagged": self.forensics.total_flagged,
            },
        }

    @staticmethod
    def _validate_snapshot(state: dict) -> None:
        """Reject stale, foreign or internally inconsistent checkpoints.

        A restore that starts applying a bad payload can leave a fleet
        (or a supervised worker restarting from it) half-built, so every
        structural check happens before any state is touched.
        """
        if not isinstance(state, dict):
            raise ValueError(
                f"fleet snapshot must be a dict; got {type(state).__name__}."
            )
        schema = state.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported fleet snapshot schema {schema!r}; this build "
                f"restores {SNAPSHOT_SCHEMA!r} checkpoints only. Re-snapshot "
                "with the current code (old unversioned payloads predate "
                "supervised worker restarts and cannot be trusted)."
            )
        missing = [
            key
            for key in (
                "n_shards",
                "batch_size",
                "entropy_window",
                "n_batches",
                "policy",
                "shards",
                "forensics",
            )
            if key not in state
        ]
        if missing:
            raise ValueError(
                f"fleet snapshot is missing required keys {missing}; "
                "the checkpoint is truncated or corrupt."
            )
        if len(state["shards"]) != state["n_shards"]:
            raise ValueError(
                f"fleet snapshot declares {state['n_shards']} shards but "
                f"carries {len(state['shards'])} shard payloads; refusing "
                "a mismatched checkpoint."
            )
        try:
            BackpressurePolicy(**state["policy"])
        except TypeError as error:
            raise ValueError(
                f"fleet snapshot policy {state['policy']!r} does not match "
                f"this build's BackpressurePolicy: {error}"
            ) from None

    @classmethod
    def restore(
        cls,
        hmd: TrustedHMD,
        state: dict,
        *,
        drift_reference=None,
        router: ShardRouter | None = None,
    ) -> "ShardedFleetMonitor":
        """Rebuild a sharded fleet from :meth:`snapshot` output.

        As with :meth:`FleetMonitor.restore`, the fitted HMD travels
        separately; restoring against a warm-retrained model is
        supported and simply publishes the refreshed view.  The facade
        policy is restored too, so a later :meth:`rebalance` builds its
        new queues with the original bounds; a fleet that was built
        with a custom ``router`` must pass an equivalent one here (the
        router is configuration, not serialisable state).
        """
        cls._validate_snapshot(state)
        forensic_state = state["forensics"]
        fleet = cls(
            hmd,
            n_shards=state["n_shards"],
            batch_size=state["batch_size"],
            entropy_window=state["entropy_window"],
            policy=BackpressurePolicy(**state["policy"]),
            forensics=ForensicQueue.restore(
                forensic_state["samples"],
                maxlen=forensic_state["maxlen"],
                total_flagged=forensic_state["total_flagged"],
            ),
            drift_reference=drift_reference,
            router=router,
        )
        if fleet.router.n_shards != state["n_shards"]:
            raise ValueError(
                f"router has {fleet.router.n_shards} shards but the "
                f"snapshot holds {state['n_shards']}."
            )
        fleet.n_batches = int(state["n_batches"])
        fleet.shards = [
            FleetShard(
                shard_id,
                FleetMonitor.restore(hmd, shard_state, queue_cls=ShardQueue),
            )
            for shard_id, shard_state in enumerate(state["shards"])
        ]
        return fleet
