"""Deterministic fault injection and degradation state for the fleet.

Chaos-hardening rests on one idea: every failure mode the supervisor
must survive is expressed as *data* — a :class:`FaultPlan`, a seeded,
step-indexed schedule of worker crashes, hangs, slow drains, shm-slot
corruptions and poison windows — so a "chaotic" run is exactly as
reproducible as a clean one.  The plan is consulted from two hooks:

* the **worker-side** :class:`FaultInjector`, which fires scheduled
  crash/hang/slow events as block messages arrive and hard-exits on
  poison rows (simulating a malformed window taking the process down
  mid-verdict), and
* the **parent-side** corruption check
  (:meth:`FaultPlan.should_corrupt`), which flips bits in a just-written
  arena slot so the worker's integrity checksum must catch it.

Both hooks are ``None``-guarded at the call sites — a fleet built
without a plan pays nothing.

The degradation side lives here too: the per-shard health state
machine (:class:`ShardHealth`, surfaced as :class:`ShardHealthReport`
rows on the fleet report) and the bounded forensic side-queue for
quarantined poison windows (:class:`QuarantineStore`).  The supervisor
in :mod:`repro.fleet.workers` drives the transitions; this module only
defines the vocabulary, so it imports nothing from the rest of the
fleet package.
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "QuarantineStore",
    "QuarantinedWindow",
    "ShardHealth",
    "ShardHealthReport",
    "account_windows",
]

# Distinctive exit codes so a chaos-test failure is attributable from
# the worker's exitcode alone.
CHAOS_EXIT = 57
POISON_EXIT = 58

_KINDS = ("crash", "hang", "slow")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled worker fault.

    ``life`` is the worker incarnation (0 = first spawn, +1 per
    restart) and ``block`` the index of the block message within that
    incarnation — keying on the *life-local* count instead of the
    global epoch means a crash does not re-fire forever on every
    restart replay of the same block.
    """

    shard_id: int
    life: int
    block: int
    kind: str
    delay: float = 0.0


class FaultPlan:
    """A seeded, fully deterministic schedule of fleet faults.

    Instances are immutable in spirit and picklable in practice (they
    ride to every worker in its spawn ``init`` dict).  Two plans built
    from the same arguments are equal in effect; :meth:`generate`
    derives everything from one integer seed.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        events: tuple = (),
        corrupt=(),
        poison=(),
        hang_seconds: float = 3600.0,
    ):
        self.seed = int(seed)
        self.events: dict[tuple[int, int, int], FaultEvent] = {}
        for event in events:
            if event.kind not in _KINDS:
                raise ValueError(
                    f"unknown fault kind {event.kind!r}; expected one of {_KINDS}."
                )
            self.events[(event.shard_id, event.life, event.block)] = event
        # (shard_id, epoch) pairs whose freshly shipped slot the parent
        # corrupts in place (replays and re-ships stay clean, so the
        # badblock retry path converges).
        self.corrupt = frozenset((int(s), int(e)) for s, e in corrupt)
        # (device_id, seq) pairs that kill any worker verdicting them.
        self.poison = frozenset((str(d), int(q)) for d, q in poison)
        self.hang_seconds = float(hang_seconds)

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        n_shards: int,
        crashes: int = 2,
        hangs: int = 1,
        slows: int = 2,
        corruptions: int = 1,
        horizon: int = 24,
        lives: int = 2,
        slow_seconds: float = 0.02,
        hang_seconds: float = 3600.0,
        poison=(),
    ) -> "FaultPlan":
        """Derive a reproducible campaign from one seed.

        ``horizon`` bounds the block indices events land on; keep it
        under the number of blocks each shard will actually see or the
        tail of the schedule never fires (which is fine — plans are
        schedules, not guarantees).
        """
        rng = np.random.default_rng(seed)
        events = []
        for kind, count in (("crash", crashes), ("hang", hangs), ("slow", slows)):
            for _ in range(int(count)):
                events.append(
                    FaultEvent(
                        shard_id=int(rng.integers(n_shards)),
                        life=int(rng.integers(lives)),
                        block=int(rng.integers(horizon)),
                        kind=kind,
                        delay=slow_seconds if kind == "slow" else 0.0,
                    )
                )
        corrupt = {
            (int(rng.integers(n_shards)), int(rng.integers(horizon)))
            for _ in range(int(corruptions))
        }
        return cls(
            seed=seed,
            events=tuple(events),
            corrupt=corrupt,
            poison=poison,
            hang_seconds=hang_seconds,
        )

    def worker_event(self, shard_id: int, life: int, block: int) -> FaultEvent | None:
        """The fault scheduled for this (shard, incarnation, block), if any."""
        return self.events.get((shard_id, life, block))

    def should_corrupt(self, shard_id: int, epoch: int) -> bool:
        """Whether the parent corrupts this epoch's freshly shipped slot."""
        return (shard_id, epoch) in self.corrupt

    def poison_rows(self, names, dev, seqs) -> list[int]:
        """Row indices of poison windows in one block (or probe).

        ``names`` is the dense device registry, ``dev``/``seqs`` the
        block's index and sequence columns.
        """
        if not self.poison:
            return []
        return [
            i
            for i in range(len(seqs))
            if (str(names[int(dev[i])]), int(seqs[i])) in self.poison
        ]

    def counts(self) -> dict[str, int]:
        """Campaign size summary (for reports and benchmark JSON)."""
        summary = {kind: 0 for kind in _KINDS}
        for event in self.events.values():
            summary[event.kind] += 1
        summary["corrupt"] = len(self.corrupt)
        summary["poison"] = len(self.poison)
        return summary

    def __reduce__(self):
        return (
            _rebuild_plan,
            (
                self.seed,
                tuple(self.events.values()),
                tuple(self.corrupt),
                tuple(self.poison),
                self.hang_seconds,
            ),
        )


def _rebuild_plan(seed, events, corrupt, poison, hang_seconds) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        events=events,
        corrupt=corrupt,
        poison=poison,
        hang_seconds=hang_seconds,
    )


class FaultInjector:
    """Worker-side hook firing a plan's scheduled faults.

    One instance per worker incarnation; the worker calls
    :meth:`on_block` as each block message arrives and
    :meth:`check_poison` before verdicting any rows (blocks *and*
    bisection probes — poison is content-triggered, which is exactly
    what makes the parent's bisection isolate it).
    """

    def __init__(self, plan: FaultPlan, shard_id: int, life: int):
        self.plan = plan
        self.shard_id = int(shard_id)
        self.life = int(life)
        self._blocks = 0

    def on_block(self) -> None:
        """Fire the fault scheduled for the next block message, if any."""
        index = self._blocks
        self._blocks += 1
        event = self.plan.worker_event(self.shard_id, self.life, index)
        if event is None:
            return
        if event.kind == "crash":
            os._exit(CHAOS_EXIT)
        elif event.kind == "hang":
            time.sleep(self.plan.hang_seconds)
        else:  # slow
            time.sleep(event.delay)

    def check_poison(self, names, dev, seqs) -> None:
        """Hard-exit if any row is a scheduled poison window."""
        if self.plan.poison_rows(names, dev, seqs):
            os._exit(POISON_EXIT)


# ---------------------------------------------------------------------------
# Degradation state: shard health and the quarantine side-queue
# ---------------------------------------------------------------------------


class ShardHealth(enum.Enum):
    """Per-shard supervision state: healthy → degraded → dead.

    ``DEGRADED`` means the shard restarted recently and has not yet
    proven itself by delivering a result; ``DEAD`` means the circuit
    breaker opened (``max_restarts`` consecutive failures) and the
    shard's devices were failed over to survivors.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DEAD = "dead"


@dataclass(frozen=True)
class ShardHealthReport:
    """Observability row for one shard's supervision state."""

    shard_id: int
    health: ShardHealth
    restarts: int
    total_restarts: int
    heartbeat_age: float

    def as_text(self) -> str:
        return (
            f"shard {self.shard_id}: {self.health.value}  "
            f"restarts={self.total_restarts}  "
            f"heartbeat_age={self.heartbeat_age:.1f}s"
        )


@dataclass(frozen=True)
class QuarantinedWindow:
    """One poison window pulled out of the stream for forensics."""

    device_id: str
    seq: int
    features: np.ndarray
    shard_id: int
    epoch: int
    reason: str


@dataclass
class QuarantineStore:
    """Bounded forensic side-queue of quarantined poison windows.

    Holds at most ``maxlen`` windows (oldest evicted first) but keeps
    the lifetime count, so accounting never loses a window even when
    forensics bounds memory.
    """

    maxlen: int = 256
    total_quarantined: int = 0
    _items: list = field(default_factory=list)
    _keys: set = field(default_factory=set)
    # Optional telemetry counter (kept as an injected object so this
    # module stays import-free of the rest of the fleet package).
    _metric: object = field(default=None, repr=False, compare=False)

    def bind_metrics(self, registry) -> None:
        """Count quarantine pushes in a telemetry registry."""
        self._metric = registry.counter(
            "fleet_windows_quarantined_total",
            "poison windows pulled into the quarantine store",
        )

    def push(self, window: QuarantinedWindow) -> None:
        self.total_quarantined += 1
        if self._metric is not None:
            self._metric.inc()
        self._keys.add((window.device_id, window.seq))
        self._items.append(window)
        if len(self._items) > self.maxlen:
            del self._items[: len(self._items) - self.maxlen]

    def __len__(self) -> int:
        return len(self._items)

    def snapshot(self) -> tuple:
        """The retained windows, oldest first."""
        return tuple(self._items)

    def keys(self) -> set:
        """Every ``(device_id, seq)`` ever quarantined (never evicted)."""
        return set(self._keys)


def account_windows(submitted, verdicts, quarantined, shed=0) -> list:
    """Exactly-once audit: every admitted window must be accounted for.

    ``submitted`` is the set of ``(device_id, seq)`` keys the ingress
    accepted, ``verdicts`` the keys that produced verdicts,
    ``quarantined`` the keys pulled into the quarantine store; ``shed``
    is the count the backpressure policy dropped *by design* (sheds are
    counted, not keyed — the policy drops before sequence assignment
    stabilises a key set).  Returns the keys silently lost (must be
    empty: ``len(submitted) == len(verdicts) + len(quarantined) +
    shed`` up to the shed count).
    """
    missing = sorted(set(submitted) - set(verdicts) - set(quarantined))
    if shed:
        # Shed windows never reach a verdict; they are accounted by
        # count.  Tolerate exactly `shed` unexplained keys.
        missing = missing[shed:] if len(missing) >= shed else []
    return missing
