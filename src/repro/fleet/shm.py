"""Shared-memory primitives for the multi-process sharded fleet.

Two kinds of state cross the process boundary between the fleet facade
and its shard workers, and neither is ever pickled row by row:

* **The data plane** — :class:`ShmBlockRing`, a small ring of
  fixed-size block slots inside one ``multiprocessing.shared_memory``
  segment.  The parent memcpys a dequeued
  :class:`~repro.fleet.sharding.IndexedWindowBatch` (feature rows,
  dense device indices, sequence numbers) into a free slot and sends a
  tiny control tuple naming the slot; the worker maps the same segment
  and reads the rows as zero-copy numpy views.  The verdict columns
  (predictions, entropies, accept flags) travel back through result
  fields of the *same* slot, so one round trip moves exactly one
  header tuple through the pipe regardless of batch size.  Ownership
  of a slot is explicit: the parent owns FREE slots, hands one to the
  worker with the ``block`` message, and takes it back when the
  worker's ``result`` message names it.

* **The model plane** — :func:`publish_model` /
  :func:`map_publication`, the one-shot publication of a compiled
  :class:`~repro.fleet.sharding.PublishedHmd`.  The flat forest node
  tensor, the second-class leaf indicator and the (optional) fused
  affine front land in one read-only segment; the count-indexed
  verdict tables and other small arrays travel in a plain header
  dict.  Every worker maps the segment and rebuilds a *detached*
  ``PublishedHmd`` (:meth:`PublishedHmd.from_parts`) around the mapped
  arrays — same node tensor bytes, same tables, same kernel, so
  worker verdicts are bitwise identical to the parent's by
  construction.  Ensembles outside the fast path (no flat backend, or
  more than two classes) fall back to shipping the pickled HMD in the
  header — correctness is never gated on the fast path.

A republish (after a warm retrain or threshold change) is a fresh
segment with a bumped ``generation``; workers swap views on the next
control message and the parent unlinks the stale segment once every
worker has acknowledged the new one.
"""

from __future__ import annotations

import atexit
import pickle
import secrets
import zlib
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "ShmBlockRing",
    "ShmIntegrityError",
    "active_owned_segments",
    "publish_model",
    "map_publication",
]


class ShmIntegrityError(RuntimeError):
    """A slot's stored checksum does not match its contents."""


# Names of segments this process created and has not yet unlinked.  A
# supervisor that dies before ``close()`` (crash, SIGTERM handler, test
# failure mid-fixture) would otherwise leak the segment into /dev/shm
# until reboot; the atexit sweep unlinks whatever is left.  Normal
# teardown empties the registry first, so the sweep is a no-op then.
_OWNED: set[str] = set()


def _register_owned(name: str) -> None:
    _OWNED.add(name)


def _discard_owned(name: str) -> None:
    _OWNED.discard(name)


def active_owned_segments() -> list[str]:
    """Names of parent-owned segments not yet unlinked (leak probe)."""
    return sorted(_OWNED)


@atexit.register
def _cleanup_owned_segments() -> None:
    for name in list(_OWNED):
        _OWNED.discard(name)
        try:
            leaked = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        except Exception:
            continue
        try:
            leaked.close()
            leaked.unlink()
        except Exception:
            pass


def _crc(*arrays) -> int:
    """crc32 over the raw bytes of one or more arrays (order matters)."""
    value = 0
    for array in arrays:
        value = zlib.crc32(np.ascontiguousarray(array).tobytes(), value)
    return value & 0xFFFFFFFF


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    The attaching process must never unlink a segment it does not own:
    Python's ``resource_tracker`` registers every mapped segment and
    would unlink it when the *worker* exits (or is killed), yanking the
    arena out from under the parent and any replacement worker.  On
    3.13+ ``track=False`` expresses this directly; older interpreters
    need the explicit unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        segment = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        return segment


def _unlink(segment: shared_memory.SharedMemory) -> None:
    """Unlink a parent-owned segment without tracker double-count noise.

    The resource tracker keeps a *set* of names, and workers attached
    via :func:`_attach` have already unregistered the shared entry; a
    bare ``unlink()`` would then send an unregister for a name the
    tracker no longer holds (a KeyError traceback in the tracker
    process).  Re-registering first makes the pair a clean add/remove
    whether or not any worker ever attached.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(segment._name, "shared_memory")
    except Exception:
        pass
    segment.unlink()
    _discard_owned(segment.name)


def _align(offset: int, itemsize: int) -> int:
    """Round ``offset`` up to a multiple of ``itemsize`` (numpy-safe)."""
    return -(-offset // itemsize) * itemsize


def _layout(fields: list[tuple[str, str, tuple]]) -> tuple[dict, int]:
    """Byte offsets for named arrays packed back to back in one segment."""
    specs: dict[str, tuple[int, str, tuple]] = {}
    offset = 0
    for name, dtype_str, shape in fields:
        dtype = np.dtype(dtype_str)
        offset = _align(offset, max(dtype.itemsize, 1))
        specs[name] = (offset, dtype_str, tuple(int(s) for s in shape))
        offset += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    return specs, max(offset, 1)


def _map_views(buf, specs: dict) -> dict[str, np.ndarray]:
    """Numpy views over a segment buffer described by ``_layout`` specs."""
    views = {}
    for name, (offset, dtype_str, shape) in specs.items():
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64))
        views[name] = np.frombuffer(
            buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
    return views


# ---------------------------------------------------------------------------
# Data plane: the per-worker block-slot ring
# ---------------------------------------------------------------------------


class ShmBlockRing:
    """A ring of fixed-size block slots in one shared-memory segment.

    Each slot carries one in-flight batch: the request columns the
    parent writes (``features``, ``dev``, ``seqs``) and the result
    columns the worker writes back (``predictions``, ``entropy``,
    ``accepted``).  Slot hand-off is driven entirely by control
    messages — the segment itself holds no locks or headers, so a
    SIGKILLed worker can never leave a slot in a half-locked state;
    the parent simply reclaims every slot it had handed out.
    """

    def __init__(
        self,
        *,
        n_slots: int,
        capacity: int,
        n_features: int,
        pred_dtype: str,
        feat_dtype: str = "<f8",
        name: str | None = None,
        create: bool = True,
    ):
        self.n_slots = int(n_slots)
        self.capacity = int(capacity)
        self.n_features = int(n_features)
        self.pred_dtype = str(pred_dtype)
        # Feature-arena precision: "<f4" when the published model runs
        # the float32 front (halves the dominant arena traffic).  The
        # parent's write_block cast f8→f4 rounds exactly like the
        # in-process front's own input cast, so worker verdicts stay
        # identical to the single-monitor reference.
        self.feat_dtype = str(feat_dtype)
        self._specs, nbytes = _layout(
            [
                ("features", self.feat_dtype, (n_slots, capacity, n_features)),
                ("dev", "<i8", (n_slots, capacity)),
                ("seqs", "<i8", (n_slots, capacity)),
                ("predictions", pred_dtype, (n_slots, capacity)),
                ("entropy", "<f8", (n_slots, capacity)),
                ("accepted", "|u1", (n_slots, capacity)),
                # Per-slot integrity checksums: the request columns'
                # crc (parent writes, worker verifies) and the result
                # columns' crc (worker writes, parent verifies).  A
                # corrupted frame is detected before it can poison
                # device state on either side of the boundary.
                ("req_crc", "<u4", (n_slots,)),
                ("res_crc", "<u4", (n_slots,)),
                # Trace sidecar: monotonic stamps for the sampled
                # window-lifecycle tracer — [0] ship (parent, at block
                # hand-off), [1] verdict (worker, before sealing).
                # Deliberately outside both checksums: stamps differ
                # across restart replays of the same block, and the
                # verdict payload they ride with must stay bitwise
                # reproducible.
                ("trace", "<f8", (n_slots, 2)),
            ]
        )
        self.owner = bool(create)
        if create:
            self._shm = shared_memory.SharedMemory(
                create=True, size=nbytes, name=name
            )
            _register_owned(self._shm.name)
        else:
            self._shm = _attach(name)
        self._views = _map_views(self._shm.buf, self._specs)

    @property
    def name(self) -> str:
        """Segment name — what the worker needs to attach."""
        return self._shm.name

    def spec(self) -> dict:
        """Constructor arguments for the worker-side attach."""
        return {
            "name": self.name,
            "n_slots": self.n_slots,
            "capacity": self.capacity,
            "n_features": self.n_features,
            "pred_dtype": self.pred_dtype,
            "feat_dtype": self.feat_dtype,
        }

    @classmethod
    def attach(cls, spec: dict) -> "ShmBlockRing":
        """Map an existing ring from its :meth:`spec` (worker side)."""
        return cls(create=False, **spec)

    def slot(self, index: int) -> dict[str, np.ndarray]:
        """Zero-copy views of one slot's request and result columns."""
        return {key: view[index] for key, view in self._views.items()}

    def write_block(self, index: int, features, dev, seqs) -> int:
        """Copy one batch into a slot (parent side); returns row count.

        The request checksum is computed over the slot's *stored* bytes
        (post any feature-dtype cast), so the worker's re-computation
        over the same bytes matches exactly.
        """
        n = len(seqs)
        slot = self.slot(index)
        slot["features"][:n] = features
        slot["dev"][:n] = dev
        slot["seqs"][:n] = seqs
        self._views["req_crc"][index] = _crc(
            slot["features"][:n], slot["dev"][:n], slot["seqs"][:n]
        )
        return n

    def verify_block(self, index: int, n: int) -> bool:
        """Recompute a slot's request checksum (worker side)."""
        slot = self.slot(index)
        return int(self._views["req_crc"][index]) == _crc(
            slot["features"][:n], slot["dev"][:n], slot["seqs"][:n]
        )

    def seal_results(self, index: int, n: int) -> None:
        """Stamp a slot's result checksum after writing verdicts."""
        slot = self.slot(index)
        self._views["res_crc"][index] = _crc(
            slot["predictions"][:n], slot["entropy"][:n], slot["accepted"][:n]
        )

    def read_results(self, index: int, n: int):
        """Copy one slot's verdict columns out (parent side).

        Copies, not views: the slot returns to the free pool as soon as
        the result is consumed, and the next block must not race the
        caller's arrays.  Raises :class:`ShmIntegrityError` when the
        stored result checksum does not match — the caller treats that
        exactly like a worker death (restart + replay recomputes).
        """
        slot = self.slot(index)
        if int(self._views["res_crc"][index]) != _crc(
            slot["predictions"][:n], slot["entropy"][:n], slot["accepted"][:n]
        ):
            raise ShmIntegrityError(
                f"slot {index} result columns failed their checksum."
            )
        return (
            slot["predictions"][:n].copy(),
            slot["entropy"][:n].copy(),
            slot["accepted"][:n].astype(bool),
        )

    def stamp_trace(self, index: int, column: int, ts: float) -> None:
        """Write one sidecar stamp (0 = ship, 1 = verdict)."""
        self._views["trace"][index, column] = ts

    def read_trace(self, index: int) -> tuple[float, float]:
        """Read a slot's ``(ship, verdict)`` sidecar stamps."""
        row = self._views["trace"][index]
        return float(row[0]), float(row[1])

    def corrupt_slot(self, index: int) -> None:
        """Flip bits in a slot's feature bytes (chaos/testing hook).

        Leaves the stored request checksum untouched, so the next
        :meth:`verify_block` on the slot must fail.
        """
        raw = self._views["features"][index].reshape(-1).view(np.uint8)
        raw[: min(8, len(raw))] ^= 0xFF

    def close(self) -> None:
        """Drop the mapping (and the segment itself when owner)."""
        self._views = {}
        try:
            self._shm.close()
        except Exception:
            pass
        if self.owner:
            try:
                _unlink(self._shm)
            except Exception:
                pass
            self.owner = False


# ---------------------------------------------------------------------------
# Model plane: one-shot publication of the compiled verdict state
# ---------------------------------------------------------------------------

# Arrays big enough to be worth the segment; everything else (vote
# tables are M+1 entries, the scaler front is n_features long) rides in
# the pickled header.  "kind" in the header says which set was shipped:
#   flat      — fg / threshold (float64 or float32) / leaf_is_second
#   quantized — packed node records + the bin-encoding tables
_SEGMENT_ARRAYS = {
    "flat": ("fg", "threshold", "leaf_is_second", "front_weight"),
    "quantized": (
        "packed",
        "leaf_is_second",
        "edges_sorted",
        "edge_prefix",
        "front_weight",
    ),
}


def publish_model(published, *, generation: int = 0) -> tuple[dict, object]:
    """Publish a compiled model view into shared memory.

    Returns ``(header, segment)``: the picklable header every worker
    receives (through spawn args or a ``republish`` control message)
    and the parent-owned segment handle (``None`` in pickle mode) to
    unlink once the publication is retired.

    Fast path — the deployment case (binary ensemble, flat or
    quantized backend): the node tensor (float thresholds or packed
    bin-code records plus encoding tables), leaf indicator and
    optional fused affine front go into one read-only segment; tables
    and scalars go into the header.  Anything else falls back to a
    pickled-HMD header (correct, just not zero-copy) so the worker
    backend never restricts which models the fleet can serve.
    """
    quantized = getattr(published, "_quantized", False)
    if published.entropy_table is None or not (published._flat or quantized):
        return (
            {
                "mode": "pickle",
                "generation": int(generation),
                "payload": pickle.dumps(published.hmd),
                "pred_dtype": np.asarray(published.classes).dtype.str,
            },
            None,
        )

    backend = published.backend
    if quantized:
        kind = "quantized"
        arrays = {
            "packed": np.ascontiguousarray(backend.packed),
            "leaf_is_second": np.ascontiguousarray(published._leaf_is_second),
            "edges_sorted": np.ascontiguousarray(backend.edges_sorted),
            "edge_prefix": np.ascontiguousarray(backend.edge_prefix),
        }
    else:
        kind = "flat"
        arrays = {
            "fg": np.ascontiguousarray(backend.fg),
            "threshold": np.ascontiguousarray(backend.threshold),
            "leaf_is_second": np.ascontiguousarray(published._leaf_is_second),
        }
    if published._affine_front is not None:
        arrays["front_weight"] = np.ascontiguousarray(
            published._affine_front[0]
        )
    fields = [(k, v.dtype.str, v.shape) for k, v in arrays.items()]
    specs, nbytes = _layout(fields)
    segment = shared_memory.SharedMemory(
        create=True, size=nbytes, name=f"repro-hmd-{secrets.token_hex(4)}"
    )
    _register_owned(segment.name)
    views = _map_views(segment.buf, specs)
    for key, value in arrays.items():
        views[key][...] = value

    header = {
        "mode": "tables",
        "kind": kind,
        "generation": int(generation),
        "segment": segment.name,
        "specs": specs,
        "pred_dtype": np.asarray(published.classes).dtype.str,
        "classes": np.asarray(published.classes),
        "roots": np.asarray(backend.roots),
        "n_features": int(backend.n_features),
        "max_depth": int(backend.max_depth),
        "threshold": float(published.threshold),
        "prediction_table": np.asarray(published.prediction_table),
        "entropy_table": np.asarray(published.entropy_table),
        "accept_table": np.asarray(published.accept_table),
        "scaler_front": (
            None
            if published._scaler_front is None
            else tuple(np.asarray(a) for a in published._scaler_front)
        ),
        "front_bias": (
            None
            if published._affine_front is None
            else np.asarray(published._affine_front[1])
        ),
    }
    return header, segment


class MappedPublication:
    """A worker's live view of one published model generation."""

    def __init__(self, header: dict):
        from ..ml.backend import FlatForest, QuantizedForest
        from .sharding import PublishedHmd

        self.generation = int(header["generation"])
        self.mode = header["mode"]
        if self.mode == "pickle":
            self._segment = None
            self.view = PublishedHmd(pickle.loads(header["payload"]))
            return

        self._segment = _attach(header["segment"])
        views = _map_views(self._segment.buf, header["specs"])
        leaf_is_second = views["leaf_is_second"]
        # The count kernel never reads leaf labels (the second-class
        # indicator is the whole reduction), so the indicator doubles
        # as the label column of the mapped forest.
        if header.get("kind", "flat") == "quantized":
            forest = QuantizedForest(
                packed=views["packed"],
                leaf_label=leaf_is_second,
                roots=header["roots"],
                n_features=header["n_features"],
                max_depth=header["max_depth"],
                edges_sorted=views["edges_sorted"],
                edge_prefix=views["edge_prefix"],
            )
        else:
            forest = FlatForest(
                fg=views["fg"],
                threshold=views["threshold"],
                leaf_label=leaf_is_second,
                roots=header["roots"],
                n_features=header["n_features"],
                max_depth=header["max_depth"],
                # A float32 publication ships float32 thresholds; the
                # mapped forest must cast inputs the same way.
                feature_dtype=views["threshold"].dtype,
            )
        front_weight = views.get("front_weight")
        self.view = PublishedHmd.from_parts(
            backend=forest,
            classes=header["classes"],
            threshold=header["threshold"],
            prediction_table=header["prediction_table"],
            entropy_table=header["entropy_table"],
            accept_table=header["accept_table"],
            leaf_is_second=leaf_is_second,
            scaler_front=header["scaler_front"],
            affine_front=(
                None
                if front_weight is None
                else (front_weight, header["front_bias"])
            ),
        )

    def verdict(self, X):
        """``(predictions, entropy, accepted)`` — the shared kernel."""
        return self.view.verdict(X)

    def close(self) -> None:
        """Drop the mapping (never unlinks — the parent owns the name)."""
        self.view = None
        if self._segment is not None:
            try:
                self._segment.close()
            except Exception:
                pass
            self._segment = None


def map_publication(header: dict) -> MappedPublication:
    """Worker-side constructor for a published model header."""
    return MappedPublication(header)
