"""t-SNE embedding (exact, O(n²)) for latent-space visualisation.

Fig. 8 of the paper uses t-SNE to show that the DVFS training classes
are disjoint while the HPC classes overlap.  This implementation follows
van der Maaten & Hinton (2008): per-point perplexity calibration by
bisection, early exaggeration, and momentum gradient descent on the KL
divergence between the high- and low-dimensional affinities.

Exact t-SNE is quadratic in n, so the Fig. 8 experiment subsamples to
≲1500 points — the geometric conclusion (disjoint vs. overlapping) is
unchanged, and :mod:`repro.ml.metrics` provides quantitative overlap
scores computed on the full data.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator
from .metrics.pairwise import squared_euclidean_distances
from .validation import check_array, check_random_state

__all__ = ["TSNE"]

_MACHINE_EPSILON = np.finfo(np.float64).eps


def _binary_search_perplexity(
    distances_sq: np.ndarray, perplexity: float, *, tol: float = 1e-5, max_iter: int = 50
) -> np.ndarray:
    """Per-row conditional Gaussian affinities with the target perplexity.

    For every point the precision ``beta`` is tuned by bisection until
    the Shannon entropy of the conditional distribution matches
    ``log(perplexity)``.
    """
    n = distances_sq.shape[0]
    target_entropy = np.log(perplexity)
    P = np.zeros_like(distances_sq)

    for i in range(n):
        beta, beta_min, beta_max = 1.0, -np.inf, np.inf
        d_i = np.delete(distances_sq[i], i)
        for _ in range(max_iter):
            p_i = np.exp(-d_i * beta)
            sum_p = max(p_i.sum(), _MACHINE_EPSILON)
            entropy = np.log(sum_p) + beta * float(d_i @ p_i) / sum_p
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> sharpen
                beta_min = beta
                beta = beta * 2.0 if not np.isfinite(beta_max) else (beta + beta_max) / 2.0
            else:
                beta_max = beta
                beta = beta / 2.0 if not np.isfinite(beta_min) else (beta + beta_min) / 2.0
        p_i = np.exp(-d_i * beta)
        p_i /= max(p_i.sum(), _MACHINE_EPSILON)
        P[i, np.arange(n) != i] = p_i
    return P


class TSNE(BaseEstimator):
    """Exact t-distributed stochastic neighbour embedding.

    Parameters
    ----------
    n_components:
        Embedding dimensionality (2 for the Fig. 8 reproduction).
    perplexity:
        Effective neighbour count; must be < (n_samples - 1) / 3.
    learning_rate:
        Gradient-descent step size.
    n_iter:
        Total optimisation iterations (early exaggeration occupies the
        first quarter, capped at 250).
    early_exaggeration:
        Multiplier applied to P during the exaggeration phase.
    """

    def __init__(
        self,
        *,
        n_components: int = 2,
        perplexity: float = 30.0,
        learning_rate: float = 200.0,
        n_iter: int = 500,
        early_exaggeration: float = 12.0,
        random_state: int | np.random.Generator | None = None,
    ):
        self.n_components = n_components
        self.perplexity = perplexity
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.early_exaggeration = early_exaggeration
        self.random_state = random_state

    def fit_transform(self, X, y=None) -> np.ndarray:
        """Embed ``X``; returns the ``(n_samples, n_components)`` layout."""
        X = check_array(X)
        n = X.shape[0]
        if n < 5:
            raise ValueError(f"t-SNE needs at least 5 samples; got {n}.")
        max_perplexity = (n - 1) / 3.0
        if self.perplexity >= max_perplexity:
            raise ValueError(
                f"perplexity={self.perplexity} too large for n={n}; "
                f"must be < {max_perplexity:.1f}."
            )
        rng = check_random_state(self.random_state)

        distances_sq = squared_euclidean_distances(X)
        P_conditional = _binary_search_perplexity(distances_sq, self.perplexity)
        P = (P_conditional + P_conditional.T) / (2.0 * n)
        np.maximum(P, _MACHINE_EPSILON, out=P)

        Y = rng.normal(scale=1e-4, size=(n, self.n_components))
        velocity = np.zeros_like(Y)
        gains = np.ones_like(Y)

        exaggeration_iters = min(250, self.n_iter // 4)
        P_run = P * self.early_exaggeration

        for iteration in range(self.n_iter):
            if iteration == exaggeration_iters:
                P_run = P

            d2 = squared_euclidean_distances(Y)
            student = 1.0 / (1.0 + d2)
            np.fill_diagonal(student, 0.0)
            Q = student / max(student.sum(), _MACHINE_EPSILON)
            np.maximum(Q, _MACHINE_EPSILON, out=Q)

            # Gradient of KL(P||Q): 4 * sum_j (p - q) * student * (y_i - y_j)
            PQd = (P_run - Q) * student
            grad = 4.0 * (
                np.diag(PQd.sum(axis=1)) @ Y - PQd @ Y
            )

            momentum = 0.5 if iteration < exaggeration_iters else 0.8
            same_sign = np.sign(grad) == np.sign(velocity)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2)
            np.maximum(gains, 0.01, out=gains)
            velocity = momentum * velocity - self.learning_rate * gains * grad
            Y = Y + velocity
            Y = Y - Y.mean(axis=0)

        d2 = squared_euclidean_distances(Y)
        student = 1.0 / (1.0 + d2)
        np.fill_diagonal(student, 0.0)
        Q = student / max(student.sum(), _MACHINE_EPSILON)
        np.maximum(Q, _MACHINE_EPSILON, out=Q)
        self.kl_divergence_ = float(np.sum(P * np.log(P / Q)))
        self.embedding_ = Y
        return Y
