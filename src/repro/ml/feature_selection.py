"""Feature selection for HMD feature vectors.

HPC-based HMDs can only sample a handful of counters concurrently, so
the literature (Demme et al., Zhou et al., Sayadi et al.) ranks and
selects counters before training.  This module provides the standard
filter methods:

* :func:`f_classif` — one-way ANOVA F-statistic per feature;
* :func:`mutual_info_classif` — histogram-estimated mutual information
  between each feature and the label;
* :class:`SelectKBest` — keep the top-k features under either score;
* :class:`VarianceThreshold` — drop (near-)constant features.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, TransformerMixin
from .validation import check_array, check_is_fitted, check_X_y

__all__ = ["f_classif", "mutual_info_classif", "SelectKBest", "VarianceThreshold"]


def f_classif(X, y) -> np.ndarray:
    """One-way ANOVA F-statistic of each feature against the labels."""
    X, y = check_X_y(X, y)
    classes = np.unique(y)
    if len(classes) < 2:
        raise ValueError("f_classif requires at least 2 classes.")
    n, _ = X.shape
    overall_mean = X.mean(axis=0)
    ss_between = np.zeros(X.shape[1])
    ss_within = np.zeros(X.shape[1])
    for cls in classes:
        members = X[y == cls]
        mean = members.mean(axis=0)
        ss_between += len(members) * (mean - overall_mean) ** 2
        ss_within += ((members - mean) ** 2).sum(axis=0)
    df_between = len(classes) - 1
    df_within = n - len(classes)
    if df_within <= 0:
        raise ValueError("Not enough samples for within-class variance.")
    ms_between = ss_between / df_between
    ms_within = ss_within / df_within
    with np.errstate(divide="ignore", invalid="ignore"):
        f = np.where(ms_within > 0, ms_between / np.maximum(ms_within, 1e-30), np.inf)
    f[(ms_within == 0) & (ms_between == 0)] = 0.0
    return f


def mutual_info_classif(X, y, *, n_bins: int = 16) -> np.ndarray:
    """Histogram-based mutual information I(feature; label) in nats.

    Each feature is quantile-binned into ``n_bins`` levels; MI is then
    computed from the joint discrete distribution.  Simple and robust
    for the feature counts used here.
    """
    X, y = check_X_y(X, y)
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2.")
    classes, y_idx = np.unique(y, return_inverse=True)
    n = len(y)
    p_y = np.bincount(y_idx) / n

    mi = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        column = X[:, j]
        edges = np.quantile(column, np.linspace(0, 1, n_bins + 1)[1:-1])
        bins = np.searchsorted(edges, column)
        joint = np.zeros((bins.max() + 1, len(classes)))
        np.add.at(joint, (bins, y_idx), 1.0)
        joint /= n
        p_x = joint.sum(axis=1)
        value = 0.0
        for b in range(joint.shape[0]):
            for k in range(joint.shape[1]):
                if joint[b, k] > 0 and p_x[b] > 0 and p_y[k] > 0:
                    value += joint[b, k] * np.log(joint[b, k] / (p_x[b] * p_y[k]))
        mi[j] = max(value, 0.0)
    return mi


class SelectKBest(BaseEstimator, TransformerMixin):
    """Keep the k features with the highest score.

    Parameters
    ----------
    score_func:
        ``(X, y) -> scores`` callable; defaults to :func:`f_classif`.
    k:
        Number of features to keep (or ``"all"``).
    """

    def __init__(self, score_func=None, *, k: int | str = 10):
        self.score_func = score_func
        self.k = k

    def fit(self, X, y) -> "SelectKBest":
        """Score all features and memorise the top-k support."""
        X, y = check_X_y(X, y)
        score_func = self.score_func if self.score_func is not None else f_classif
        self.scores_ = np.asarray(score_func(X, y), dtype=float)
        if len(self.scores_) != X.shape[1]:
            raise ValueError("score_func returned the wrong number of scores.")
        self.n_features_in_ = X.shape[1]
        if self.k == "all":
            k = X.shape[1]
        else:
            k = int(self.k)
            if not 1 <= k <= X.shape[1]:
                raise ValueError(f"k={self.k} out of range [1, {X.shape[1]}].")
        order = np.argsort(-np.nan_to_num(self.scores_, nan=-np.inf))
        self.support_ = np.zeros(X.shape[1], dtype=bool)
        self.support_[order[:k]] = True
        return self

    def transform(self, X) -> np.ndarray:
        """Project onto the selected features."""
        check_is_fitted(self, "support_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X[:, self.support_]

    def get_support(self, indices: bool = False) -> np.ndarray:
        """Boolean mask (or indices) of selected features."""
        check_is_fitted(self, "support_")
        return np.flatnonzero(self.support_) if indices else self.support_


class VarianceThreshold(BaseEstimator, TransformerMixin):
    """Remove features whose variance is at or below ``threshold``."""

    def __init__(self, threshold: float = 0.0):
        self.threshold = threshold

    def fit(self, X, y=None) -> "VarianceThreshold":
        """Compute feature variances and the retained support."""
        if self.threshold < 0:
            raise ValueError("threshold must be >= 0.")
        X = check_array(X)
        self.variances_ = X.var(axis=0)
        self.support_ = self.variances_ > self.threshold
        if not self.support_.any():
            raise ValueError(
                "No feature exceeds the variance threshold."
            )
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        """Drop the low-variance features."""
        check_is_fitted(self, "support_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X[:, self.support_]

    def get_support(self, indices: bool = False) -> np.ndarray:
        """Boolean mask (or indices) of retained features."""
        check_is_fitted(self, "support_")
        return np.flatnonzero(self.support_) if indices else self.support_
