"""Probability calibration — Platt scaling (Platt, 1999).

This is the related-work comparator (Section II.E of the paper): Chawla
et al. used Platt's scaling on the output of a single base classifier to
obtain prediction probabilities.  The paper argues such point-estimate
probabilities are *not* model confidence — a model can emit a confident
sigmoid output on an input it knows nothing about.  Ablation A1 in
DESIGN.md quantifies that claim by comparing Platt-confidence and
ensemble-entropy as unknown-workload detectors.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .base import BaseEstimator, ClassifierMixin, clone
from .validation import check_X_y, column_or_1d

__all__ = ["PlattScaler", "CalibratedClassifier"]


class PlattScaler(BaseEstimator):
    """Fit ``P(y=1 | s) = sigmoid(a * s + b)`` to decision scores.

    Uses the Platt target smoothing (t+ = (N+ + 1)/(N+ + 2),
    t- = 1/(N- + 2)) and L-BFGS on the cross-entropy.
    """

    def fit(self, scores, y) -> "PlattScaler":
        """Fit the sigmoid parameters from scores and binary labels."""
        scores = column_or_1d(np.asarray(scores, dtype=float), name="scores")
        y = column_or_1d(y)
        if len(scores) != len(y):
            raise ValueError("scores and y must have the same length.")
        labels = np.unique(y)
        if len(labels) != 2:
            raise ValueError("PlattScaler requires exactly 2 classes.")
        self.classes_ = labels
        positive = y == labels[1]
        n_pos = int(positive.sum())
        n_neg = len(y) - n_pos
        # Platt's smoothed targets guard against overconfident extremes.
        t = np.where(positive, (n_pos + 1.0) / (n_pos + 2.0), 1.0 / (n_neg + 2.0))

        def objective(params: np.ndarray):
            a, b = params
            z = a * scores + b
            # cross-entropy with logits, stable form
            loss = np.mean(np.logaddexp(0.0, z) - t * z)
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
            grad_common = p - t
            return loss, np.array(
                [np.mean(grad_common * scores), np.mean(grad_common)]
            )

        result = optimize.minimize(
            objective, np.array([1.0, 0.0]), jac=True, method="L-BFGS-B"
        )
        self.a_, self.b_ = float(result.x[0]), float(result.x[1])
        return self

    def predict_proba(self, scores) -> np.ndarray:
        """Two-column probability matrix for the fitted classes."""
        scores = column_or_1d(np.asarray(scores, dtype=float), name="scores")
        z = np.clip(self.a_ * scores + self.b_, -500, 500)
        p1 = 1.0 / (1.0 + np.exp(-z))
        return np.column_stack([1.0 - p1, p1])


class CalibratedClassifier(BaseEstimator, ClassifierMixin):
    """Wrap a classifier with held-out Platt scaling.

    The training data is split into a fit part and a calibration part;
    the base model trains on the former and the sigmoid is fitted on the
    latter's decision scores (avoiding the optimistic bias of
    calibrating on training scores).
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        *,
        calibration_fraction: float = 0.25,
        random_state: int | np.random.Generator | None = None,
    ):
        self.estimator = estimator
        self.calibration_fraction = calibration_fraction
        self.random_state = random_state

    def fit(self, X, y) -> "CalibratedClassifier":
        """Fit the base model and its Platt sigmoid."""
        from .model_selection import train_test_split

        X, y = check_X_y(X, y)
        if not 0.0 < self.calibration_fraction < 1.0:
            raise ValueError(
                f"calibration_fraction must be in (0, 1); got {self.calibration_fraction}."
            )
        X_fit, X_cal, y_fit, y_cal = train_test_split(
            X,
            y,
            test_size=self.calibration_fraction,
            random_state=self.random_state,
            stratify=y,
        )
        self.base_estimator_ = clone(self.estimator)
        self.base_estimator_.fit(X_fit, y_fit)
        self.classes_ = self.base_estimator_.classes_
        self.n_features_in_ = X.shape[1]
        scores = self._decision_scores(self.base_estimator_, X_cal)
        self.scaler_ = PlattScaler().fit(scores, y_cal)
        return self

    @staticmethod
    def _decision_scores(model: BaseEstimator, X) -> np.ndarray:
        if hasattr(model, "decision_function"):
            return model.decision_function(X)
        proba = model.predict_proba(X)
        # Convert the positive-class probability to a logit-like score.
        p1 = np.clip(proba[:, 1], 1e-7, 1.0 - 1e-7)
        return np.log(p1 / (1.0 - p1))

    def predict_proba(self, X) -> np.ndarray:
        """Calibrated class probabilities."""
        X = self._check_predict_input(X)
        scores = self._decision_scores(self.base_estimator_, X)
        return self.scaler_.predict_proba(scores)

    def predict(self, X) -> np.ndarray:
        """Labels of the higher calibrated probability."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def confidence(self, X) -> np.ndarray:
        """Max calibrated probability — the 'confidence' the paper warns
        about misconstruing as model uncertainty."""
        return self.predict_proba(X).max(axis=1)
