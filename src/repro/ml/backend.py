"""Flattened ensemble inference backend.

The paper's vote path (Eq. 3-4) asks every ensemble member for a hard
decision on every window.  The reference implementation walks that as a
Python loop — ``for member in estimators_: member.predict(X)`` — which
pays per-member input validation, per-member tree routing and
per-member label gathering, M times per batch.  This module compiles a
fitted tree ensemble into **one contiguous node tensor** and evaluates
all members on a whole batch as a single level-synchronous array
program:

* :func:`compile_flat_forest` packs every member's flat
  :class:`~repro.ml.tree.TreeStructure` arrays into stacked
  ``(feature, goto)`` / ``threshold`` / ``leaf_label`` tensors with
  per-tree root offsets.  Member feature subsets (bagging's
  ``estimators_features_``) are folded in by remapping each node's
  feature index into the *global* input space, so no per-member column
  slicing survives at predict time.
* :class:`FlatForest` routes all ``n_samples x n_members`` slots at
  once: one gather per node record per level, with active-set
  compaction once most slots have reached leaves.
* :class:`CompositeBackend` handles heterogeneous ensembles
  (``VotingClassifier``): tree members ride the flat tensor, other
  members fall back to their own ``predict`` — column by column, in
  member order, exactly like the legacy loop.
* :class:`CompiledVotePath` is the estimator-facing mixin: a cached
  ``compile()`` (auto-invalidated on refit) plus ``decisions_fast``,
  ``vote_distribution`` and ``predict`` routed through the backend.

Equivalence guarantee
---------------------
The compiled path performs the *same comparisons* (``x[f] <= t`` with
identical float64 operands) and the same leaf-label argmax as the
per-member loop, so votes are **bitwise identical** — and therefore so
are vote distributions, entropies, rejection decisions and fleet
verdicts.  ``tests/ml/test_backend.py`` asserts this across randomized
ensembles; ``benchmarks/test_bench_predict.py`` gates the speedup.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BackendCompileError",
    "FlatForest",
    "CompositeBackend",
    "CompiledVotePath",
    "compile_flat_forest",
]

_LEAF = -1
# Rows per traversal chunk are sized so a chunk's slot count
# (rows x members) stays cache-friendly.
_SLOT_TARGET = 51_200


class BackendCompileError(Exception):
    """An ensemble (or member) cannot be flattened; callers fall back."""


class FlatForest:
    """All trees of an ensemble packed into one node tensor.

    Storage (``n_nodes`` = total nodes across members; all index
    arrays are ``intp`` — narrower dtypes force numpy's ``take`` onto a
    casting slow path that is ~4x more expensive per gather):

    ``fg``
        ``(n_nodes, 2) intp`` — column 0 the *global* feature index
        tested at the node (``-1`` for leaves), column 1 the ``goto``
        target: the left-child node id.  Right children are always
        allocated at ``left + 1`` (verified at compile time), so the
        routing update is ``node = goto[node] + (x > threshold)``.
        Leaves point ``goto`` at themselves with ``threshold = +inf``,
        making finished slots self-loop instead of branching.
    ``threshold``
        ``(n_nodes,) float64`` split thresholds (``+inf`` at leaves).
    ``leaf_label``
        ``(n_nodes,)`` of the ensemble's class dtype — the label the
        member emits if routing ends at that node (argmax of the
        normalised leaf class counts, i.e. exactly
        ``member.predict``'s choice including tie-breaks).
    ``roots``
        ``(n_members,) intp`` root node id per member.

    Traversal is level-synchronous over all ``rows x members`` slots,
    the level-0 step fully precomputed per batch shape, and the active
    set compacted once enough slots have self-looped into leaves.
    """

    def __init__(
        self,
        fg: np.ndarray,
        threshold: np.ndarray,
        leaf_label: np.ndarray,
        roots: np.ndarray,
        n_features: int,
        max_depth: int,
    ):
        self.fg = fg
        self.threshold = threshold
        self.leaf_label = leaf_label
        self.roots = roots
        self.n_features = int(n_features)
        self.max_depth = int(max_depth)
        self.n_members = len(roots)
        self.n_nodes = len(threshold)
        self._setup_cache: dict[int, tuple] = {}

    def _setup(self, nc: int, n_features: int) -> tuple:
        """Per-batch-shape constants: slot layout and the level-0 step.

        Level 0 visits each member's root for every row — the node ids,
        features and thresholds are batch-independent, so the entire
        first gather/compare program is precomputed and cached.
        """
        cached = self._setup_cache.get(nc)
        if cached is not None:
            return cached
        if len(self._setup_cache) > 8:
            self._setup_cache.clear()
        rows_f = (np.arange(nc, dtype=np.intp) * n_features).repeat(
            self.n_members
        )
        root_f = self.fg[self.roots, 0]
        xi0 = rows_f + np.tile(root_f, nc)  # clip-mode handles stump roots
        thr0 = np.tile(self.threshold[self.roots], nc)
        goto0 = np.tile(self.fg[self.roots, 1], nc)
        cached = (rows_f, xi0, thr0, goto0)
        self._setup_cache[nc] = cached
        return cached

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node id per (sample, member), shape ``(n, n_members)``."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        n, n_features = X.shape
        if n_features != self.n_features:
            raise ValueError(
                f"X has {n_features} features; backend expects {self.n_features}."
            )
        m = self.n_members
        chunk = max(16, _SLOT_TARGET // m)
        leaves = np.empty(n * m, dtype=np.intp)
        for start in range(0, n, chunk):
            nc = min(chunk, n - start)
            self._apply_chunk(
                X[start : start + nc],
                leaves[start * m : (start + nc) * m],
            )
        return leaves.reshape(n, m)

    def _apply_chunk(self, X: np.ndarray, out: np.ndarray) -> None:
        """Route one chunk of rows; ``out`` receives flat leaf ids.

        The sharded fleet's vote-count kernel
        (:meth:`repro.fleet.sharding.PublishedHmd._count_votes`)
        replays this exact routing (level-0 gather program, clip-mode
        stump handling, live-slot compaction) with different chunk/
        compaction tuning — a change to the node-transition logic here
        must be mirrored there, and the sharding fuzz suite pins the
        bitwise equivalence of the two.
        """
        nc, n_features = X.shape
        x_flat = X.ravel()
        fg = self.fg
        threshold = self.threshold
        rows_f, xi0, thr0, goto0 = self._setup(nc, n_features)

        # Level 0: precomputed gather program (see _setup).
        xv = x_flat.take(xi0, mode="clip")
        node = np.add(goto0, np.greater(xv, thr0))

        idx = None  # None = all slots still tracked full-width
        for level in range(1, self.max_depth):
            rec = fg.take(node, axis=0, mode="clip")
            f = rec[:, 0]
            # Compaction: once most slots have self-looped into leaves,
            # bank their final node ids and keep only the live ones.
            # The check itself costs two passes, so it only runs while
            # the active set is big enough for halving to pay for it.
            if level >= 2 and node.size > 4096:
                alive = f >= 0
                n_alive = int(np.count_nonzero(alive))
                if n_alive == 0:
                    break
                if n_alive < 0.5 * node.size:
                    live = np.flatnonzero(alive)
                    if idx is None:
                        out[:] = node
                        idx = live
                    else:
                        dead = np.flatnonzero(~alive)
                        out[idx.take(dead)] = node.take(dead)
                        idx = idx.take(live)
                    rows_f = rows_f.take(live)
                    node = node.take(live)
                    rec = rec.take(live, axis=0)
                    f = rec[:, 0]
            xv = x_flat.take(np.add(f, rows_f), mode="clip")
            gb = np.greater(xv, threshold.take(node))
            node = np.add(rec[:, 1], gb)
        if idx is None:
            out[:] = node
        else:
            out[idx] = node

    def decisions(self, X: np.ndarray) -> np.ndarray:
        """Per-member hard votes, shape ``(n, n_members)``.

        Bitwise identical to the legacy per-member predict loop.
        """
        return self.leaf_label.take(self.apply(X).ravel()).reshape(
            X.shape[0], self.n_members
        )


class CompositeBackend:
    """Mixed ensemble backend: flat trees + per-member fallback columns.

    ``VotingClassifier`` can mix tree and non-tree members.  The tree
    subset is compiled into one :class:`FlatForest`; the remaining
    members keep their own ``predict``, called in member order so the
    assembled vote matrix matches the legacy loop column for column.
    """

    def __init__(
        self,
        forest: FlatForest,
        tree_columns: np.ndarray,
        others: list,
        other_columns: list[int],
        other_features: list | None,
        classes: np.ndarray,
        n_members: int,
    ):
        self.forest = forest
        self.tree_columns = tree_columns
        self.others = others
        self.other_columns = other_columns
        self.other_features = other_features
        self.classes = classes
        self.n_members = n_members

    def decisions(self, X: np.ndarray) -> np.ndarray:
        """Votes with tree columns from the flat tensor, rest legacy."""
        votes = np.empty((X.shape[0], self.n_members), dtype=self.classes.dtype)
        votes[:, self.tree_columns] = self.forest.decisions(X)
        for pos, member in zip(self.other_columns, self.others):
            Xm = (
                X
                if self.other_features is None
                else X[:, self.other_features[pos]]
            )
            votes[:, pos] = member.predict(Xm)
        return votes


def _flatten_member(
    member,
    classes: np.ndarray,
    n_features: int,
    feature_map: np.ndarray | None,
    offset: int,
):
    """One member's flat arrays, offset into the stacked tensor."""
    tree = getattr(member, "tree_", None)
    if tree is None:
        raise BackendCompileError(f"{type(member).__name__} has no flat tree.")
    feature = np.asarray(tree.feature)
    threshold = np.asarray(tree.threshold)
    left = np.asarray(tree.children_left)
    right = np.asarray(tree.children_right)
    value = np.asarray(tree.value)
    n_nodes = len(feature)
    leaf = feature < 0
    internal = ~leaf
    # The goto trick requires sibling pairs: fit() allocates children
    # back-to-back, so right == left + 1 for every internal node.
    if not np.array_equal(right[internal], left[internal] + 1):
        raise BackendCompileError("tree children are not paired consecutively.")

    member_classes = np.asarray(member.classes_)
    if member_classes.dtype != classes.dtype or not np.all(
        np.isin(member_classes, classes)
    ):
        raise BackendCompileError("member classes are not a subset of the ensemble's.")
    if feature_map is not None:
        feature_map = np.asarray(feature_map)
        if internal.any() and int(feature[internal].max()) >= len(feature_map):
            raise BackendCompileError("feature map shorter than tree features.")
        global_feature = np.where(
            leaf, _LEAF, feature_map[np.clip(feature, 0, None)]
        )
    else:
        global_feature = np.where(leaf, _LEAF, feature)
    if internal.any() and int(global_feature.max()) >= n_features:
        raise BackendCompileError("tree feature index exceeds input width.")

    self_ids = np.arange(n_nodes)
    goto = np.where(leaf, self_ids, left) + offset
    flat_threshold = np.where(leaf, np.inf, threshold)
    # Leaf label exactly as member.predict emits it: argmax over the
    # *normalised* counts, so float tie-breaks match bit for bit.
    proba = value / value.sum(axis=1, keepdims=True)
    leaf_label = member_classes[np.argmax(proba, axis=1)]
    try:
        depth = int(tree.max_depth())
    except AttributeError:
        raise BackendCompileError("tree storage lacks max_depth().")
    return global_feature, flat_threshold, goto, leaf_label, depth


def compile_flat_forest(
    members,
    classes: np.ndarray,
    n_features: int,
    features_list=None,
) -> FlatForest:
    """Stack fitted tree members into one :class:`FlatForest`.

    Parameters
    ----------
    members:
        Fitted estimators exposing ``tree_`` (a
        :class:`~repro.ml.tree.TreeStructure`) and ``classes_``.
    classes:
        The ensemble's class labels (vote dtype and argmax order).
    n_features:
        Width of the ensemble's input space.
    features_list:
        Optional per-member global feature-index maps
        (``estimators_features_``); folded into the node tensor.

    Raises
    ------
    BackendCompileError
        When any member cannot be flattened (no tree, incompatible
        classes, unpaired children).  Callers treat this as "use the
        legacy loop".
    """
    if not members:
        raise BackendCompileError("no members to compile.")
    classes = np.asarray(classes)
    features, thresholds, gotos, labels, roots = [], [], [], [], []
    offset = 0
    max_depth = 0
    for position, member in enumerate(members):
        feature_map = None if features_list is None else features_list[position]
        f, t, g, lab, depth = _flatten_member(
            member, classes, n_features, feature_map, offset
        )
        features.append(f)
        thresholds.append(t)
        gotos.append(g)
        labels.append(lab)
        roots.append(offset)
        offset += len(f)
        max_depth = max(max_depth, depth)
    fg = np.ascontiguousarray(
        np.stack(
            [np.concatenate(features), np.concatenate(gotos)], axis=1
        ).astype(np.intp)
    )
    return FlatForest(
        fg=fg,
        threshold=np.concatenate(thresholds),
        leaf_label=np.concatenate(labels).astype(classes.dtype),
        roots=np.asarray(roots, dtype=np.intp),
        n_features=n_features,
        max_depth=max_depth,
    )


class CompiledVotePath:
    """Mixin growing an ensemble a compiled, cached vote path.

    Hosts expose ``estimators_`` / ``classes_`` / ``n_features_in_``
    (and optionally ``estimators_features_``).  The mixin provides:

    * :meth:`decisions` — the legacy per-member Python loop, kept as
      the reference implementation and benchmark baseline;
    * :meth:`compile` — build and cache the flattened backend (a
      :class:`FlatForest`, a :class:`CompositeBackend` for mixed
      ensembles, or ``None`` when nothing is compilable);
    * :meth:`decisions_fast` — votes through the compiled backend,
      transparently falling back to :meth:`decisions`;
    * :meth:`vote_distribution` / :meth:`predict` — the shared Eq. 3
      vote-fraction path, routed through the fast votes.

    The compiled backend is keyed to the ``estimators_`` list object,
    so any refit (which rebuilds that list) invalidates it without the
    host having to remember to.
    """

    def _vote_members(self) -> tuple[list, list | None]:
        """Members and optional per-member global feature maps."""
        return self.estimators_, getattr(self, "estimators_features_", None)

    def _invalidate_backend(self) -> None:
        """Drop any compiled backend (called at the top of ``fit``)."""
        self.__dict__.pop("_backend_cache_", None)

    def compile(self):
        """Build (or fetch the cached) flattened prediction backend.

        Returns the backend object, or ``None`` when no member is
        compilable (the fast path then degrades to the legacy loop).
        Refitting invalidates the cache automatically.
        """
        members, features_list = self._vote_members()
        cache = getattr(self, "_backend_cache_", None)
        if cache is not None and cache[0] is members:
            return cache[1]

        backend = None
        try:
            backend = compile_flat_forest(
                members, self.classes_, self.n_features_in_, features_list
            )
        except BackendCompileError:
            tree_positions = [
                i for i, m in enumerate(members) if hasattr(m, "tree_")
            ]
            if tree_positions:
                try:
                    forest = compile_flat_forest(
                        [members[i] for i in tree_positions],
                        self.classes_,
                        self.n_features_in_,
                        None
                        if features_list is None
                        else [features_list[i] for i in tree_positions],
                    )
                    other_positions = [
                        i
                        for i in range(len(members))
                        if i not in set(tree_positions)
                    ]
                    backend = CompositeBackend(
                        forest=forest,
                        tree_columns=np.asarray(tree_positions, dtype=np.intp),
                        others=[members[i] for i in other_positions],
                        other_columns=other_positions,
                        other_features=features_list,
                        classes=np.asarray(self.classes_),
                        n_members=len(members),
                    )
                except BackendCompileError:
                    backend = None
        self._backend_cache_ = (members, backend)
        return backend

    def decisions(self, X) -> np.ndarray:
        """Per-member hard votes via the legacy Python loop.

        One ``member.predict`` call per member — kept verbatim as the
        reference implementation the compiled backend is verified
        against (and benchmarked over).
        """
        X = self._check_predict_input(X)
        members, features_list = self._vote_members()
        votes = np.empty((X.shape[0], len(members)), dtype=self.classes_.dtype)
        for position, member in enumerate(members):
            Xm = X if features_list is None else X[:, features_list[position]]
            votes[:, position] = member.predict(Xm)
        return votes

    def decisions_fast(self, X) -> np.ndarray:
        """Per-member hard votes via the compiled backend.

        Bitwise identical to :meth:`decisions`; falls back to it when
        the ensemble cannot be compiled.
        """
        backend = self.compile() if hasattr(self, "estimators_") else None
        if backend is None:
            return self.decisions(X)
        X = self._check_predict_input(X)
        return backend.decisions(X)

    def vote_distribution(self, X) -> np.ndarray:
        """Frequency distribution of member decisions over classes.

        Shape ``(n_samples, n_classes)``; rows sum to 1 (Eq. 3).
        """
        # Local import: repro.ml must stay importable without pulling
        # the uncertainty package in at module load.
        from ..uncertainty.entropy import votes_to_distribution

        return votes_to_distribution(self.decisions_fast(X), self.classes_)

    def predict(self, X) -> np.ndarray:
        """Majority vote of the members (through the compiled path)."""
        distribution = self.vote_distribution(X)
        return self.classes_[np.argmax(distribution, axis=1)]
