"""Flattened ensemble inference backend.

The paper's vote path (Eq. 3-4) asks every ensemble member for a hard
decision on every window.  The reference implementation walks that as a
Python loop — ``for member in estimators_: member.predict(X)`` — which
pays per-member input validation, per-member tree routing and
per-member label gathering, M times per batch.  This module compiles a
fitted tree ensemble into **one contiguous node tensor** and evaluates
all members on a whole batch as a single level-synchronous array
program:

* :func:`compile_flat_forest` packs every member's flat
  :class:`~repro.ml.tree.TreeStructure` arrays into stacked
  ``(feature, goto)`` / ``threshold`` / ``leaf_label`` tensors with
  per-tree root offsets.  Member feature subsets (bagging's
  ``estimators_features_``) are folded in by remapping each node's
  feature index into the *global* input space, so no per-member column
  slicing survives at predict time.
* :class:`FlatForest` routes all ``n_samples x n_members`` slots at
  once: one gather per node record per level, with active-set
  compaction once most slots have reached leaves.
* :class:`CompositeBackend` handles heterogeneous ensembles
  (``VotingClassifier``): tree members ride the flat tensor, other
  members fall back to their own ``predict`` — column by column, in
  member order, exactly like the legacy loop.
* :class:`CompiledVotePath` is the estimator-facing mixin: a cached
  ``compile()`` (auto-invalidated on refit) plus ``decisions_fast``,
  ``vote_distribution`` and ``predict`` routed through the backend.

Equivalence guarantee
---------------------
The compiled path performs the *same comparisons* (``x[f] <= t`` with
identical float64 operands) and the same leaf-label argmax as the
per-member loop, so votes are **bitwise identical** — and therefore so
are vote distributions, entropies, rejection decisions and fleet
verdicts.  ``tests/ml/test_backend.py`` asserts this across randomized
ensembles; ``benchmarks/test_bench_predict.py`` gates the speedup.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = [
    "BackendCompileError",
    "FlatForest",
    "QuantizedForest",
    "CompositeBackend",
    "CompiledVotePath",
    "compile_flat_forest",
    "compile_quantized_forest",
    "COMPILE_MODES",
]

_LEAF = -1
# Rows per traversal chunk are sized so a chunk's slot count
# (rows x members) stays cache-friendly.
_SLOT_TARGET = 51_200

# Backend compile modes: "flat" is the float64 reference kernel,
# "float32" the same kernel over float32 features/thresholds (front
# drift-gated, see repro.uncertainty.trust), "quantized" the uint8
# bin-code kernel (vote-identical by construction, hist-grown only).
COMPILE_MODES = ("flat", "float32", "quantized")

# QuantizedForest node record: one int64 per node,
#   rec = (goto << 32) | (feature << 16) | code
# so one 8-byte gather per live slot per level replaces the float
# kernel's fg-row (16 B) + threshold (8 B) gathers.  Every field sits
# on its natural byte boundary — code in byte 0, feature in bytes 2-3,
# goto in bytes 4-7 (little-endian) — so the traversal extracts fields
# from a gathered record array as zero-copy strided *views* instead of
# paying three shift/mask passes per level.  Leaves store the sentinel
# code 255 (internal cut bins never exceed 254: max_bins is capped at
# 256, and a valid cut keeps both children non-empty so the cut bin is
# <= n_bins - 2), goto = self (the float kernel's self-loop trick) and
# feature 0 (any in-bounds index: the gathered code is compared
# against 255, which no uint8 value exceeds, so the slot self-loops
# forever without clip-mode indexing).
_Q_GOTO_SHIFT = 32
_Q_FEAT_SHIFT = 16
_Q_FEAT_MASK = 0xFFFF
_Q_CODE_MASK = 0xFF
_Q_LEAF_CODE = 255

# Byte-view element offsets of (code: uint8, feature: uint16,
# goto: int32) inside each int64 record, by host endianness.
if sys.byteorder == "little":
    _Q_CODE_OFF, _Q_FEAT_OFF, _Q_GOTO_OFF = 0, 1, 1
else:  # pragma: no cover - big-endian hosts
    _Q_CODE_OFF, _Q_FEAT_OFF, _Q_GOTO_OFF = 7, 2, 0


def q_code_view(rec: np.ndarray) -> np.ndarray:
    """The uint8 cut-bin codes of a contiguous int64 record array."""
    return rec.view(np.uint8)[_Q_CODE_OFF::8]


def q_feat_view(rec: np.ndarray) -> np.ndarray:
    """The uint16 feature indices of a contiguous int64 record array."""
    return rec.view(np.uint16)[_Q_FEAT_OFF::4]


def q_goto_view(rec: np.ndarray) -> np.ndarray:
    """The int32 goto targets of a contiguous int64 record array."""
    return rec.view(np.int32)[_Q_GOTO_OFF::2]


class BackendCompileError(Exception):
    """An ensemble (or member) cannot be flattened; callers fall back."""


class FlatForest:
    """All trees of an ensemble packed into one node tensor.

    Storage (``n_nodes`` = total nodes across members; all index
    arrays are ``intp`` — narrower dtypes force numpy's ``take`` onto a
    casting slow path that is ~4x more expensive per gather):

    ``fg``
        ``(n_nodes, 2) intp`` — column 0 the *global* feature index
        tested at the node (``-1`` for leaves), column 1 the ``goto``
        target: the left-child node id.  Right children are always
        allocated at ``left + 1`` (verified at compile time), so the
        routing update is ``node = goto[node] + (x > threshold)``.
        Leaves point ``goto`` at themselves with ``threshold = +inf``,
        making finished slots self-loop instead of branching.
    ``threshold``
        ``(n_nodes,) float64`` split thresholds (``+inf`` at leaves).
    ``leaf_label``
        ``(n_nodes,)`` of the ensemble's class dtype — the label the
        member emits if routing ends at that node (argmax of the
        normalised leaf class counts, i.e. exactly
        ``member.predict``'s choice including tie-breaks).
    ``roots``
        ``(n_members,) intp`` root node id per member.

    Traversal is level-synchronous over all ``rows x members`` slots,
    the level-0 step fully precomputed per batch shape, and the active
    set compacted once enough slots have self-looped into leaves.
    """

    def __init__(
        self,
        fg: np.ndarray,
        threshold: np.ndarray,
        leaf_label: np.ndarray,
        roots: np.ndarray,
        n_features: int,
        max_depth: int,
        feature_dtype=np.float64,
    ):
        self.fg = fg
        self.threshold = threshold
        self.leaf_label = leaf_label
        self.roots = roots
        self.n_features = int(n_features)
        self.max_depth = int(max_depth)
        self.n_members = len(roots)
        self.n_nodes = len(threshold)
        self.feature_dtype = np.dtype(feature_dtype)
        self._setup_cache: dict[int, tuple] = {}

    def cast(self, dtype) -> "FlatForest":
        """A view of this forest comparing in another float precision.

        Thresholds are rounded once to ``dtype`` and incoming features
        are cast the same way at :meth:`encode` time, so every
        comparison runs narrow (half the bytes per gather at float32).
        Topology arrays are shared, not copied.  Votes can differ from
        the float64 forest only for values within one ``dtype`` ulp of
        a threshold — the float32 fast path gates that drift at the
        verdict level, not here.
        """
        dtype = np.dtype(dtype)
        if dtype == self.threshold.dtype:
            return self
        return FlatForest(
            fg=self.fg,
            threshold=self.threshold.astype(dtype),
            leaf_label=self.leaf_label,
            roots=self.roots,
            n_features=self.n_features,
            max_depth=self.max_depth,
            feature_dtype=dtype,
        )

    def encode(self, X: np.ndarray) -> np.ndarray:
        """The traversal-ready feature matrix for :meth:`apply`.

        A contiguous cast to :attr:`feature_dtype` — the one place an
        input batch is converted, so callers that replay the routing
        kernel themselves (the sharded fleet's count kernel) encode
        identically by construction.
        """
        X = np.ascontiguousarray(X, dtype=self.feature_dtype)
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"X has {X.shape[1]} features; backend expects {self.n_features}."
            )
        return X

    def _setup(self, nc: int, n_features: int) -> tuple:
        """Per-batch-shape constants: slot layout and the level-0 step.

        Level 0 visits each member's root for every row — the node ids,
        features and thresholds are batch-independent, so the entire
        first gather/compare program is precomputed and cached.
        """
        cached = self._setup_cache.get(nc)
        if cached is not None:
            return cached
        if len(self._setup_cache) > 8:
            self._setup_cache.clear()
        rows_f = (np.arange(nc, dtype=np.intp) * n_features).repeat(
            self.n_members
        )
        root_f = self.fg[self.roots, 0]
        xi0 = rows_f + np.tile(root_f, nc)  # clip-mode handles stump roots
        thr0 = np.tile(self.threshold[self.roots], nc)
        goto0 = np.tile(self.fg[self.roots, 1], nc)
        cached = (rows_f, xi0, thr0, goto0)
        self._setup_cache[nc] = cached
        return cached

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node id per (sample, member), shape ``(n, n_members)``."""
        X = self.encode(X)
        n, n_features = X.shape
        m = self.n_members
        chunk = max(16, _SLOT_TARGET // m)
        leaves = np.empty(n * m, dtype=np.intp)
        for start in range(0, n, chunk):
            nc = min(chunk, n - start)
            self._apply_chunk(
                X[start : start + nc],
                leaves[start * m : (start + nc) * m],
            )
        return leaves.reshape(n, m)

    def _apply_chunk(self, X: np.ndarray, out: np.ndarray) -> None:
        """Route one chunk of rows; ``out`` receives flat leaf ids.

        The sharded fleet's vote-count kernel
        (:meth:`repro.fleet.sharding.PublishedHmd._count_votes`)
        replays this exact routing (level-0 gather program, clip-mode
        stump handling, live-slot compaction) with different chunk/
        compaction tuning — a change to the node-transition logic here
        must be mirrored there, and the sharding fuzz suite pins the
        bitwise equivalence of the two.
        """
        nc, n_features = X.shape
        x_flat = X.ravel()
        fg = self.fg
        threshold = self.threshold
        rows_f, xi0, thr0, goto0 = self._setup(nc, n_features)

        # Level 0: precomputed gather program (see _setup).
        xv = x_flat.take(xi0, mode="clip")
        node = np.add(goto0, np.greater(xv, thr0))

        idx = None  # None = all slots still tracked full-width
        for level in range(1, self.max_depth):
            rec = fg.take(node, axis=0, mode="clip")
            f = rec[:, 0]
            # Compaction: once most slots have self-looped into leaves,
            # bank their final node ids and keep only the live ones.
            # The check itself costs two passes, so it only runs while
            # the active set is big enough for halving to pay for it.
            if level >= 2 and node.size > 4096:
                alive = f >= 0
                n_alive = int(np.count_nonzero(alive))
                if n_alive == 0:
                    break
                if n_alive < 0.5 * node.size:
                    live = np.flatnonzero(alive)
                    if idx is None:
                        out[:] = node
                        idx = live
                    else:
                        dead = np.flatnonzero(~alive)
                        out[idx.take(dead)] = node.take(dead)
                        idx = idx.take(live)
                    rows_f = rows_f.take(live)
                    node = node.take(live)
                    rec = rec.take(live, axis=0)
                    f = rec[:, 0]
            xv = x_flat.take(np.add(f, rows_f), mode="clip")
            gb = np.greater(xv, threshold.take(node))
            node = np.add(rec[:, 1], gb)
        if idx is None:
            out[:] = node
        else:
            out[idx] = node

    def decisions(self, X: np.ndarray) -> np.ndarray:
        """Per-member hard votes, shape ``(n, n_members)``.

        Bitwise identical to the legacy per-member predict loop.
        """
        return self.leaf_label.take(self.apply(X).ravel()).reshape(
            X.shape[0], self.n_members
        )


class QuantizedForest:
    """A hist-grown flat forest traversed entirely in uint8 bin codes.

    Histogram-grown trees (:mod:`repro.ml.training`) only ever split at
    real bin-edge values: every internal threshold is *exactly*
    ``bin_edges[f][b]`` for the cut bin ``b`` chosen by the grower.  And
    the bin code of a value ``v`` is ``searchsorted(edges, v,
    side="left")`` — the count of edges strictly below ``v`` — so for
    strictly increasing edges::

        code(v) > b   <=>   v > edges[f][b]        for every real v

    (``code <= b`` iff ``v <= edges[f][b]``: exactly ``b`` edges lie
    below ``edges[f][b]`` itself, and anything larger clears at least
    ``b + 1``).  Rewriting each node's float threshold as its cut-bin
    code therefore routes every window to the **same leaf** as the
    float64 kernel — votes are bitwise identical *by construction*, not
    by tolerance.

    The payoff is bandwidth: a batch is quantized **once** (one batched
    searchsorted, see :func:`~repro.ml.training.quantize_with_tables`),
    after which each traversal level gathers one packed ``int64`` per
    live slot (goto | feature | code, layout at the module header) and
    one ``uint8`` feature code — versus the float kernel's 16-byte
    ``fg`` row, 8-byte threshold and 8-byte feature value.  The code
    matrix for a 256-row chunk is a few KB and stays cache-resident
    across all M members.

    Two further layout choices keep the kernel ahead of the float path
    on fleet-sized forests (node tables far larger than cache):

    * **level-major numbering** — :func:`compile_quantized_forest`
      renumbers nodes breadth-first across *all* members, so every
      traversal level's gathers land in one contiguous block of the
      packed array (the early levels span a few KB total) instead of
      striding across the whole table in the growers' depth-first
      order;
    * **byte-aligned fields** — code/feature/goto are extracted from
      the gathered records as zero-copy strided views
      (:func:`q_code_view` et al.), eliminating the three shift/mask
      passes a bit-packed layout would pay per level.

    Carries the per-feature edge tables (``edges_sorted`` /
    ``edge_prefix``) so it can encode raw float windows itself —
    including when rebuilt around shared-memory views in a worker
    process, where no fitted :class:`~repro.ml.training.BinMapper`
    exists.
    """

    feature_dtype = np.dtype(np.uint8)

    def __init__(
        self,
        packed: np.ndarray,
        leaf_label: np.ndarray,
        roots: np.ndarray,
        n_features: int,
        max_depth: int,
        edges_sorted: np.ndarray,
        edge_prefix: np.ndarray,
    ):
        self.packed = packed
        self.leaf_label = leaf_label
        self.roots = roots
        self.n_features = int(n_features)
        self.max_depth = int(max_depth)
        self.n_members = len(roots)
        self.n_nodes = len(packed)
        self.edges_sorted = edges_sorted
        self.edge_prefix = edge_prefix
        self._setup_cache: dict[int, tuple] = {}

    def _setup(self, nc: int, n_features: int) -> tuple:
        """Per-batch-shape constants — the level-0 gather program.

        Mirrors :meth:`FlatForest._setup`: root node records are batch
        independent, so the first level's feature indices, codes and
        goto targets are precomputed per chunk shape and cached.
        """
        cached = self._setup_cache.get(nc)
        if cached is not None:
            return cached
        if len(self._setup_cache) > 8:
            self._setup_cache.clear()
        rows_f = (np.arange(nc, dtype=np.intp) * n_features).repeat(
            self.n_members
        )
        rec = self.packed[self.roots]
        root_f = (rec >> _Q_FEAT_SHIFT) & _Q_FEAT_MASK
        xi0 = rows_f + np.tile(root_f, nc)
        code0 = np.tile(rec & _Q_CODE_MASK, nc)
        goto0 = np.tile(rec >> _Q_GOTO_SHIFT, nc)
        cached = (rows_f, xi0, code0, goto0)
        self._setup_cache[nc] = cached
        return cached

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Quantize a raw float batch to the uint8 code matrix.

        One batched searchsorted over the globally sorted edges plus a
        prefix-matrix gather — bitwise identical to
        ``BinMapper.transform`` (which is itself pinned against the
        per-feature reference loop).  Already-encoded uint8 input
        passes through untouched, so fleet kernels can quantize once
        per batch and reuse the codes across chunks.
        """
        X = np.asarray(X)
        if X.dtype == np.uint8:
            codes = np.ascontiguousarray(X)
        else:
            from .training import quantize_with_tables

            codes = quantize_with_tables(self.edges_sorted, self.edge_prefix, X)
        if codes.shape[1] != self.n_features:
            raise ValueError(
                f"X has {codes.shape[1]} features; backend expects {self.n_features}."
            )
        return codes

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node id per (sample, member), shape ``(n, n_members)``."""
        codes = self.encode(X)
        n, n_features = codes.shape
        m = self.n_members
        chunk = max(16, _SLOT_TARGET // m)
        leaves = np.empty(n * m, dtype=np.intp)
        for start in range(0, n, chunk):
            nc = min(chunk, n - start)
            self._apply_chunk(
                codes[start : start + nc],
                leaves[start * m : (start + nc) * m],
            )
        return leaves.reshape(n, m)

    def _apply_chunk(self, codes: np.ndarray, out: np.ndarray) -> None:
        """Route one chunk of encoded rows; ``out`` receives leaf ids.

        The same level-synchronous program as
        :meth:`FlatForest._apply_chunk` — identical node transitions by
        the code/threshold equivalence above — with the per-level loads
        collapsed into one packed-record gather.  The sharded fleet's
        quantized count kernel
        (:meth:`repro.fleet.sharding.PublishedHmd._count_votes_quantized`)
        replays this routing with its own chunk/compaction tuning; the
        fuzz suite pins the bitwise equivalence.
        """
        nc, n_features = codes.shape
        x_flat = codes.ravel()
        packed = self.packed
        rows_f, xi0, code0, goto0 = self._setup(nc, n_features)

        # Level 0: precomputed gather program.  Root feature indices
        # are always in-bounds (leaf roots store feature 0), so no
        # clip-mode gather is needed anywhere in this kernel.
        xv = x_flat.take(xi0)
        node = np.add(goto0, np.greater(xv, code0))

        idx = None  # None = all slots still tracked full-width
        for level in range(1, self.max_depth):
            rec = packed.take(node)
            code = q_code_view(rec)
            # Leaves self-loop on the 255 sentinel.  The liveness scan
            # runs every level (it is one uint8 pass): ensembles carry
            # a long sparse depth tail — a handful of slots alive for
            # the last dozen levels — and breaking the moment the scan
            # hits zero beats looping to max_depth on shrunken arrays.
            if level >= 2:
                alive = code != _Q_LEAF_CODE
                n_alive = int(np.count_nonzero(alive))
                if n_alive == 0:
                    break
                if n_alive < 0.5 * node.size and node.size > 1024:
                    live = np.flatnonzero(alive)
                    if idx is None:
                        out[:] = node
                        idx = live
                    else:
                        dead = np.flatnonzero(~alive)
                        out[idx.take(dead)] = node.take(dead)
                        idx = idx.take(live)
                    rows_f = rows_f.take(live)
                    node = node.take(live)
                    rec = rec.take(live)
                    code = q_code_view(rec)
            f = q_feat_view(rec)
            xv = x_flat.take(np.add(f, rows_f))
            gb = np.greater(xv, code)
            node = np.add(q_goto_view(rec), gb, dtype=np.intp)
        if idx is None:
            out[:] = node
        else:
            out[idx] = node

    def decisions(self, X: np.ndarray) -> np.ndarray:
        """Per-member hard votes, shape ``(n, n_members)``.

        Bitwise identical to the float64 flat forest (and therefore to
        the legacy per-member predict loop).
        """
        return self.leaf_label.take(self.apply(X).ravel()).reshape(
            np.asarray(X).shape[0], self.n_members
        )


class CompositeBackend:
    """Mixed ensemble backend: flat trees + per-member fallback columns.

    ``VotingClassifier`` can mix tree and non-tree members.  The tree
    subset is compiled into one :class:`FlatForest`; the remaining
    members keep their own ``predict``, called in member order so the
    assembled vote matrix matches the legacy loop column for column.
    """

    def __init__(
        self,
        forest: FlatForest,
        tree_columns: np.ndarray,
        others: list,
        other_columns: list[int],
        other_features: list | None,
        classes: np.ndarray,
        n_members: int,
    ):
        self.forest = forest
        self.tree_columns = tree_columns
        self.others = others
        self.other_columns = other_columns
        self.other_features = other_features
        self.classes = classes
        self.n_members = n_members

    def decisions(self, X: np.ndarray) -> np.ndarray:
        """Votes with tree columns from the flat tensor, rest legacy."""
        votes = np.empty((X.shape[0], self.n_members), dtype=self.classes.dtype)
        votes[:, self.tree_columns] = self.forest.decisions(X)
        for pos, member in zip(self.other_columns, self.others):
            Xm = (
                X
                if self.other_features is None
                else X[:, self.other_features[pos]]
            )
            votes[:, pos] = member.predict(Xm)
        return votes


def _flatten_member(
    member,
    classes: np.ndarray,
    n_features: int,
    feature_map: np.ndarray | None,
    offset: int,
):
    """One member's flat arrays, offset into the stacked tensor."""
    tree = getattr(member, "tree_", None)
    if tree is None:
        raise BackendCompileError(f"{type(member).__name__} has no flat tree.")
    feature = np.asarray(tree.feature)
    threshold = np.asarray(tree.threshold)
    left = np.asarray(tree.children_left)
    right = np.asarray(tree.children_right)
    value = np.asarray(tree.value)
    n_nodes = len(feature)
    leaf = feature < 0
    internal = ~leaf
    # The goto trick requires sibling pairs: fit() allocates children
    # back-to-back, so right == left + 1 for every internal node.
    if not np.array_equal(right[internal], left[internal] + 1):
        raise BackendCompileError("tree children are not paired consecutively.")

    member_classes = np.asarray(member.classes_)
    if member_classes.dtype != classes.dtype or not np.all(
        np.isin(member_classes, classes)
    ):
        raise BackendCompileError("member classes are not a subset of the ensemble's.")
    if feature_map is not None:
        feature_map = np.asarray(feature_map)
        if internal.any() and int(feature[internal].max()) >= len(feature_map):
            raise BackendCompileError("feature map shorter than tree features.")
        global_feature = np.where(
            leaf, _LEAF, feature_map[np.clip(feature, 0, None)]
        )
    else:
        global_feature = np.where(leaf, _LEAF, feature)
    if internal.any() and int(global_feature.max()) >= n_features:
        raise BackendCompileError("tree feature index exceeds input width.")

    self_ids = np.arange(n_nodes)
    goto = np.where(leaf, self_ids, left) + offset
    flat_threshold = np.where(leaf, np.inf, threshold)
    # Leaf label exactly as member.predict emits it: argmax over the
    # *normalised* counts, so float tie-breaks match bit for bit.
    proba = value / value.sum(axis=1, keepdims=True)
    leaf_label = member_classes[np.argmax(proba, axis=1)]
    try:
        depth = int(tree.max_depth())
    except AttributeError:
        raise BackendCompileError("tree storage lacks max_depth().")
    return global_feature, flat_threshold, goto, leaf_label, depth


def compile_flat_forest(
    members,
    classes: np.ndarray,
    n_features: int,
    features_list=None,
) -> FlatForest:
    """Stack fitted tree members into one :class:`FlatForest`.

    Parameters
    ----------
    members:
        Fitted estimators exposing ``tree_`` (a
        :class:`~repro.ml.tree.TreeStructure`) and ``classes_``.
    classes:
        The ensemble's class labels (vote dtype and argmax order).
    n_features:
        Width of the ensemble's input space.
    features_list:
        Optional per-member global feature-index maps
        (``estimators_features_``); folded into the node tensor.

    Raises
    ------
    BackendCompileError
        When any member cannot be flattened (no tree, incompatible
        classes, unpaired children).  Callers treat this as "use the
        legacy loop".
    """
    if not members:
        raise BackendCompileError("no members to compile.")
    classes = np.asarray(classes)
    features, thresholds, gotos, labels, roots = [], [], [], [], []
    offset = 0
    max_depth = 0
    for position, member in enumerate(members):
        feature_map = None if features_list is None else features_list[position]
        f, t, g, lab, depth = _flatten_member(
            member, classes, n_features, feature_map, offset
        )
        features.append(f)
        thresholds.append(t)
        gotos.append(g)
        labels.append(lab)
        roots.append(offset)
        offset += len(f)
        max_depth = max(max_depth, depth)
    fg = np.ascontiguousarray(
        np.stack(
            [np.concatenate(features), np.concatenate(gotos)], axis=1
        ).astype(np.intp)
    )
    return FlatForest(
        fg=fg,
        threshold=np.concatenate(thresholds),
        leaf_label=np.concatenate(labels).astype(classes.dtype),
        roots=np.asarray(roots, dtype=np.intp),
        n_features=n_features,
        max_depth=max_depth,
    )


def compile_quantized_forest(forest: FlatForest, mapper) -> QuantizedForest:
    """Rewrite a float64 flat forest into uint8 bin-code space.

    ``mapper`` is the fitted :class:`~repro.ml.training.BinMapper` the
    ensemble was grown on.  Every internal threshold must be *exactly*
    one of the mapper's edge values (the hist grower guarantees this:
    it splits at ``edges[f][cut_bin]`` verbatim); each is rewritten to
    its cut-bin code and the node record packed into one int64.  Any
    threshold that is not an exact edge — an exact-grown tree, a
    mapper/ensemble mismatch — raises :class:`BackendCompileError`:
    the vote-identity guarantee cannot be established, so there is no
    approximate fallback.

    Nodes are renumbered **level-major** across the whole forest: all
    members' depth-0 nodes first, then every depth-1 node, and so on,
    with each sibling pair adjacent (preserving the ``right = left +
    1`` convention).  The level-synchronous kernel then gathers from
    one contiguous block per level — the first few levels of even a
    multi-million-node forest span a few KB — instead of striding
    across the member-by-member depth-first layout the growers emit.
    """
    if forest.threshold.dtype != np.float64:
        raise BackendCompileError("only float64 forests can be quantized.")
    bin_edges = getattr(mapper, "bin_edges_", None)
    if bin_edges is None:
        raise BackendCompileError("mapper has no fitted bin edges.")
    if len(bin_edges) != forest.n_features:
        raise BackendCompileError("mapper width does not match the forest.")
    n_nodes = forest.n_nodes
    if n_nodes >= (1 << 31) or forest.n_features > _Q_FEAT_MASK:
        raise BackendCompileError("forest too large for the packed layout.")

    f = forest.fg[:, 0]
    goto = forest.fg[:, 1]
    leaf = f < 0
    code = np.full(n_nodes, _Q_LEAF_CODE, dtype=np.int64)
    for feature in np.unique(f[~leaf]):
        edges = np.asarray(bin_edges[feature], dtype=np.float64)
        mask = f == feature
        t = forest.threshold[mask]
        b = np.searchsorted(edges, t, side="left")
        # A cut bin is a valid code iff the threshold is *exactly* the
        # edge value (side="left" lands on the first >= entry, so an
        # off-grid threshold either overruns the edges or gathers a
        # different value).  BinMapper caps edges at 255 per feature,
        # keeping every cut code <= 254, below the leaf sentinel.
        if b.size and (
            int(b.max()) >= min(len(edges), _Q_LEAF_CODE)
            or not np.array_equal(edges[b], t)
        ):
            raise BackendCompileError(
                f"feature {int(feature)} has thresholds off the bin-edge "
                "grid; only hist-grown ensembles quantize."
            )
        code[mask] = b
    feature_packed = np.where(leaf, 0, f).astype(np.int64)
    goto64 = goto.astype(np.int64)

    # Level-major BFS renumbering: sweep one frontier per depth across
    # every member at once; children are appended as adjacent
    # (left, right) pairs so the right = left + 1 convention survives.
    new_id = np.full(n_nodes, -1, dtype=np.int64)
    frontier = np.asarray(forest.roots, dtype=np.int64)
    next_free = 0
    while len(frontier):
        new_id[frontier] = np.arange(next_free, next_free + len(frontier))
        next_free += len(frontier)
        internal = frontier[~leaf[frontier]]
        lefts = goto64[internal]
        frontier = np.column_stack([lefts, lefts + 1]).ravel()
    if next_free != n_nodes:
        raise BackendCompileError("forest has nodes unreachable from roots.")
    new_goto = np.where(leaf, new_id, new_id[np.clip(goto64, 0, n_nodes - 1)])

    packed = np.empty(n_nodes, dtype=np.int64)
    packed[new_id] = (
        (new_goto << _Q_GOTO_SHIFT) | (feature_packed << _Q_FEAT_SHIFT) | code
    )
    leaf_label = np.empty_like(forest.leaf_label)
    leaf_label[new_id] = forest.leaf_label
    roots = new_id[np.asarray(forest.roots, dtype=np.int64)].astype(np.intp)

    edges_sorted = getattr(mapper, "_edges_sorted_", None)
    if edges_sorted is None:
        mapper._build_flat_quantizer()
        edges_sorted = mapper._edges_sorted_
    return QuantizedForest(
        packed=packed,
        leaf_label=leaf_label,
        roots=roots,
        n_features=forest.n_features,
        max_depth=forest.max_depth,
        edges_sorted=edges_sorted,
        edge_prefix=mapper._edge_prefix_,
    )


class CompiledVotePath:
    """Mixin growing an ensemble a compiled, cached vote path.

    Hosts expose ``estimators_`` / ``classes_`` / ``n_features_in_``
    (and optionally ``estimators_features_``).  The mixin provides:

    * :meth:`decisions` — the legacy per-member Python loop, kept as
      the reference implementation and benchmark baseline;
    * :meth:`compile` — build and cache the flattened backend (a
      :class:`FlatForest`, a :class:`CompositeBackend` for mixed
      ensembles, or ``None`` when nothing is compilable);
    * :meth:`decisions_fast` — votes through the compiled backend,
      transparently falling back to :meth:`decisions`;
    * :meth:`vote_distribution` / :meth:`predict` — the shared Eq. 3
      vote-fraction path, routed through the fast votes.

    The compiled backend is keyed to the ``estimators_`` list object,
    so any refit (which rebuilds that list) invalidates it without the
    host having to remember to.
    """

    def _vote_members(self) -> tuple[list, list | None]:
        """Members and optional per-member global feature maps."""
        return self.estimators_, getattr(self, "estimators_features_", None)

    def _invalidate_backend(self) -> None:
        """Drop any compiled backend (called at the top of ``fit``)."""
        self.__dict__.pop("_backend_cache_", None)

    def compile(self, mode: str | None = None):
        """Build (or fetch the cached) flattened prediction backend.

        ``mode`` selects the kernel (see :data:`COMPILE_MODES`):

        * ``"flat"`` — the float64 reference kernel (default);
        * ``"float32"`` — the same kernel over float32 thresholds and
          features (pure trees only; mixed/uncompilable ensembles keep
          their float64 behaviour);
        * ``"quantized"`` — the uint8 bin-code kernel, available only
          for hist-grown ensembles (raises
          :class:`BackendCompileError` otherwise — vote identity
          cannot be established off the bin grid).

        The mode is *sticky*: ``compile()`` with no argument reuses the
        last requested mode, so refit paths that recompile internally
        (``partial_refit``) keep serving the caller's chosen kernel.
        Returns the backend object, or ``None`` when no member is
        compilable (the fast path then degrades to the legacy loop).
        Refitting invalidates the cache automatically; backends are
        cached per (member list, mode).
        """
        if mode is None:
            mode = getattr(self, "_compile_mode_", "flat")
        elif mode not in COMPILE_MODES:
            raise ValueError(
                f"unknown compile mode {mode!r}; expected one of {COMPILE_MODES}."
            )
        self._compile_mode_ = mode
        members, features_list = self._vote_members()
        cache = getattr(self, "_backend_cache_", None)
        if cache is None or cache[0] is not members:
            cache = (members, {})
            self._backend_cache_ = cache
        by_mode = cache[1]
        if mode in by_mode:
            return by_mode[mode]

        if "flat" not in by_mode:
            by_mode["flat"] = self._compile_flat(members, features_list)
        base = by_mode["flat"]
        if mode == "float32":
            backend = (
                base.cast(np.float32) if isinstance(base, FlatForest) else base
            )
        elif mode == "quantized":
            binned = getattr(self, "_binned_", None)
            if binned is None or not isinstance(base, FlatForest):
                raise BackendCompileError(
                    "quantized compile requires a pure tree ensemble grown "
                    "with grower='hist' (no binned training buffer found)."
                )
            backend = compile_quantized_forest(base, binned.mapper)
        else:
            backend = base
        by_mode[mode] = backend
        return backend

    def _compile_flat(self, members, features_list):
        """The float64 backend build (flat, composite, or ``None``)."""
        backend = None
        try:
            backend = compile_flat_forest(
                members, self.classes_, self.n_features_in_, features_list
            )
        except BackendCompileError:
            tree_positions = [
                i for i, m in enumerate(members) if hasattr(m, "tree_")
            ]
            if tree_positions:
                try:
                    forest = compile_flat_forest(
                        [members[i] for i in tree_positions],
                        self.classes_,
                        self.n_features_in_,
                        None
                        if features_list is None
                        else [features_list[i] for i in tree_positions],
                    )
                    other_positions = [
                        i
                        for i in range(len(members))
                        if i not in set(tree_positions)
                    ]
                    backend = CompositeBackend(
                        forest=forest,
                        tree_columns=np.asarray(tree_positions, dtype=np.intp),
                        others=[members[i] for i in other_positions],
                        other_columns=other_positions,
                        other_features=features_list,
                        classes=np.asarray(self.classes_),
                        n_members=len(members),
                    )
                except BackendCompileError:
                    backend = None
        return backend

    def decisions(self, X) -> np.ndarray:
        """Per-member hard votes via the legacy Python loop.

        One ``member.predict`` call per member — kept verbatim as the
        reference implementation the compiled backend is verified
        against (and benchmarked over).
        """
        X = self._check_predict_input(X)
        members, features_list = self._vote_members()
        votes = np.empty((X.shape[0], len(members)), dtype=self.classes_.dtype)
        for position, member in enumerate(members):
            Xm = X if features_list is None else X[:, features_list[position]]
            votes[:, position] = member.predict(Xm)
        return votes

    def decisions_fast(self, X) -> np.ndarray:
        """Per-member hard votes via the compiled backend.

        Bitwise identical to :meth:`decisions`; falls back to it when
        the ensemble cannot be compiled.
        """
        backend = self.compile() if hasattr(self, "estimators_") else None
        if backend is None:
            return self.decisions(X)
        X = self._check_predict_input(X)
        return backend.decisions(X)

    def vote_distribution(self, X) -> np.ndarray:
        """Frequency distribution of member decisions over classes.

        Shape ``(n_samples, n_classes)``; rows sum to 1 (Eq. 3).
        """
        # Local import: repro.ml must stay importable without pulling
        # the uncertainty package in at module load.
        from ..uncertainty.entropy import votes_to_distribution

        return votes_to_distribution(self.decisions_fast(X), self.classes_)

    def predict(self, X) -> np.ndarray:
        """Majority vote of the members (through the compiled path)."""
        distribution = self.vote_distribution(X)
        return self.classes_[np.argmax(distribution, axis=1)]
