"""Ensemble classifiers: bagging, random forest, and voting.

The paper's uncertainty estimator is built directly on top of
:class:`BaggingClassifier`: bagging draws bootstrap replicates of the
training set (Breiman 1996), fits one base classifier per replicate, and
— crucially for the paper — exposes the fitted base classifiers via the
``estimators_`` attribute so the Uncertainty Estimator module can form
the *frequency distribution of their individual decisions* (Fig. 2,
Eq. 3-4 of the paper).

All three ensembles share the :class:`~repro.ml.backend.CompiledVotePath`
mixin: ``decisions`` is the legacy per-member reference loop, while
``decisions_fast`` / ``vote_distribution`` / ``predict`` route through
the flattened single-tensor backend (bitwise-identical votes, compiled
lazily and invalidated on refit).

Histogram-binned fitting: with tree members grown by the ``"hist"``
grower (:mod:`repro.ml.training`), the training set is quantile-binned
**once** and all M members grow from the same shared code matrix —
bootstrap replicates become per-member multiplicity weights instead of
row copies.  Those ensembles additionally support
:meth:`~repro.ml.training.BinnedPartialRefitMixin.partial_refit`:
analyst-labelled rows are appended to the binned growth buffer and all
members refit with warm bin edges, which is what makes live retraining
inside the fleet engine affordable.
"""

from __future__ import annotations

import numpy as np

from .backend import CompiledVotePath
from .base import BaseEstimator, ClassifierMixin, clone
from .exceptions import ConvergenceError
from .training import BinMapper, BinnedDataset, BinnedPartialRefitMixin
from .tree import DecisionTreeClassifier
from .validation import check_random_state, check_X_y

__all__ = ["BaggingClassifier", "RandomForestClassifier", "VotingClassifier"]


def _resolve_count(value: int | float, total: int, name: str) -> int:
    """Interpret an int (absolute) or float (fraction) sampling size."""
    if isinstance(value, float):
        if not 0.0 < value <= 1.0:
            raise ValueError(f"{name} fraction must be in (0, 1]; got {value}.")
        return max(1, int(round(value * total)))
    count = int(value)
    if not 1 <= count <= total:
        raise ValueError(f"{name}={value} out of range [1, {total}].")
    return count


class BaggingClassifier(
    CompiledVotePath, BinnedPartialRefitMixin, BaseEstimator, ClassifierMixin
):
    """Bootstrap-aggregating ensemble over an arbitrary base classifier.

    Parameters
    ----------
    estimator:
        Prototype base classifier; one unfitted clone is trained per
        bootstrap replicate.  Defaults to a decision tree.
    n_estimators:
        Ensemble size M.  The paper finds entropy estimates stabilise
        for M ≳ 20 (Fig. 9a) and uses M = 100 for headline results.
    max_samples:
        Bootstrap replicate size (int or fraction of n).
    max_features:
        Feature subsample per replicate (int or fraction).
    bootstrap:
        Sample with replacement (True = classic bagging).
    on_base_failure:
        What to do when a base classifier raises
        :class:`ConvergenceError` during fit: ``"raise"`` (default)
        propagates — this is how the HPC/SVM "failed to converge"
        observation from Section V.B surfaces — while ``"skip"`` drops
        the replicate (at least one must survive).
    """

    def __init__(
        self,
        estimator: BaseEstimator | None = None,
        *,
        n_estimators: int = 10,
        max_samples: int | float = 1.0,
        max_features: int | float = 1.0,
        bootstrap: bool = True,
        on_base_failure: str = "raise",
        random_state: int | np.random.Generator | None = None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.on_base_failure = on_base_failure
        self.random_state = random_state

    def _make_base(self) -> BaseEstimator:
        prototype = self.estimator
        if prototype is None:
            prototype = DecisionTreeClassifier()
        return clone(prototype)

    def fit(self, X, y) -> "BaggingClassifier":
        """Fit ``n_estimators`` clones on bootstrap replicates.

        Tree prototypes with ``grower="hist"`` take the shared-binned
        path: the training set is binned once, bootstrap replicates
        become multiplicity weights, and all members grow from the same
        code matrix (enabling :meth:`partial_refit`).
        """
        X, y = check_X_y(X, y)
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1.")
        if self.on_base_failure not in ("raise", "skip"):
            raise ValueError(
                f"on_base_failure must be 'raise' or 'skip'; got {self.on_base_failure!r}."
            )
        self._invalidate_backend()
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        prototype = (
            self.estimator if self.estimator is not None else DecisionTreeClassifier()
        )
        if (
            isinstance(prototype, DecisionTreeClassifier)
            and getattr(prototype, "grower", "exact") == "hist"
        ):
            self._binned_ = BinnedDataset(BinMapper(max_bins=prototype.max_bins), X)
            self._train_y_ = y
            self._refit_members(rng)
        else:
            self._binned_ = None
            self._fit_members_exact(rng, X, y)
        return self

    def _fit_members_exact(self, rng, X, y) -> None:
        """The legacy member loop: materialised bootstrap replicates."""
        n_samples, n_features = X.shape
        n_draw = _resolve_count(self.max_samples, n_samples, "max_samples")
        n_feats = _resolve_count(self.max_features, n_features, "max_features")

        self.estimators_: list[BaseEstimator] = []
        self.estimators_features_: list[np.ndarray] = []
        self.estimators_samples_: list[np.ndarray] = []

        attempts = 0
        max_attempts = self.n_estimators * 3
        while len(self.estimators_) < self.n_estimators:
            attempts += 1
            if attempts > max_attempts:
                raise ConvergenceError(
                    f"Unable to fit {self.n_estimators} base classifiers after "
                    f"{max_attempts} attempts (too many ConvergenceErrors)."
                )
            sample_idx, feature_idx = self._draw_replicate(
                rng, n_samples, n_draw, n_features, n_feats, y
            )
            if sample_idx is None:
                continue
            base = self._make_base()
            if "random_state" in base.get_params():
                base.set_params(random_state=int(rng.integers(2**32)))
            try:
                base.fit(X[np.ix_(sample_idx, feature_idx)], y[sample_idx])
            except ConvergenceError:
                if self.on_base_failure == "raise":
                    raise
                continue
            self.estimators_.append(base)
            self.estimators_features_.append(feature_idx)
            self.estimators_samples_.append(sample_idx)

    def _refit_members(self, rng) -> None:
        """The shared-binned member loop (fit and partial_refit)."""
        binned = self._binned_
        y = self._train_y_
        n_samples = binned.n_rows
        n_features = binned.n_features
        n_draw = _resolve_count(self.max_samples, n_samples, "max_samples")
        n_feats = _resolve_count(self.max_features, n_features, "max_features")

        self.estimators_ = []
        self.estimators_features_ = []
        self.estimators_samples_ = []
        full_view = binned.view()
        attempts = 0
        max_attempts = self.n_estimators * 3
        while len(self.estimators_) < self.n_estimators:
            attempts += 1
            if attempts > max_attempts:
                raise ConvergenceError(
                    f"Unable to draw {self.n_estimators} class-complete "
                    f"replicates in {max_attempts} attempts."
                )
            sample_idx, feature_idx = self._draw_replicate(
                rng, n_samples, n_draw, n_features, n_feats, y
            )
            if sample_idx is None:
                continue
            view = (
                full_view if len(feature_idx) == n_features
                else binned.view(feature_idx)
            )
            # Bootstrap multiplicities ride as native weights: no row
            # replication, no per-member copy of the training matrix.
            weights = np.bincount(sample_idx, minlength=n_samples).astype(
                np.float64
            )
            base = self._make_base()
            if "random_state" in base.get_params():
                base.set_params(random_state=int(rng.integers(2**32)))
            base._fit_binned(view, y, sample_weight=weights)
            self.estimators_.append(base)
            self.estimators_features_.append(feature_idx)
            self.estimators_samples_.append(sample_idx)

    def _draw_replicate(self, rng, n_samples, n_draw, n_features, n_feats, y):
        """One bootstrap (rows, columns) draw; rows ``None`` on class miss."""
        if self.bootstrap:
            sample_idx = rng.integers(0, n_samples, size=n_draw)
        else:
            sample_idx = rng.permutation(n_samples)[:n_draw]
        # Guarantee every class appears in the replicate so each base
        # classifier sees the full label set.
        if len(np.unique(y[sample_idx])) < len(self.classes_):
            return None, None
        if n_feats < n_features:
            feature_idx = np.sort(
                rng.choice(n_features, size=n_feats, replace=False)
            )
        else:
            feature_idx = np.arange(n_features)
        return sample_idx, feature_idx

    # decisions / decisions_fast / vote_distribution / predict come from
    # CompiledVotePath; member feature subsets are folded into the
    # compiled node tensor via estimators_features_.

    def predict_proba(self, X) -> np.ndarray:
        """Ensemble probability = member vote fractions."""
        return self.vote_distribution(X)


class RandomForestClassifier(
    CompiledVotePath, BinnedPartialRefitMixin, BaseEstimator, ClassifierMixin
):
    """Random forest = bagged CART trees with per-split feature subsampling.

    Exposes the same ``estimators_`` / ``decisions`` /
    ``decisions_fast`` interface as :class:`BaggingClassifier` so the
    uncertainty estimator treats both uniformly.  With
    ``grower="hist"`` the forest bins the training set once and grows
    every tree from the shared codes, and supports
    :meth:`partial_refit` for warm-bin online retraining.
    """

    def __init__(
        self,
        *,
        n_estimators: int = 100,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        max_samples: int | float = 1.0,
        grower: str = "exact",
        max_bins: int = 256,
        random_state: int | np.random.Generator | None = None,
    ):
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_samples = max_samples
        self.grower = grower
        self.max_bins = max_bins
        self.random_state = random_state

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            grower=self.grower,
            max_bins=self.max_bins,
            random_state=seed,
        )

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit ``n_estimators`` randomised trees on bootstrap replicates."""
        X, y = check_X_y(X, y)
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1.")
        self._invalidate_backend()
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        if self.grower == "hist":
            self._binned_ = BinnedDataset(BinMapper(max_bins=self.max_bins), X)
            self._train_y_ = y
            self._refit_members(rng)
            return self
        self._binned_ = None
        n_samples = X.shape[0]
        n_draw = _resolve_count(self.max_samples, n_samples, "max_samples")
        self.estimators_: list[DecisionTreeClassifier] = []
        self.estimators_samples_: list[np.ndarray] = []
        while len(self.estimators_) < self.n_estimators:
            if self.bootstrap:
                sample_idx = rng.integers(0, n_samples, size=n_draw)
            else:
                sample_idx = rng.permutation(n_samples)[:n_draw]
            if len(np.unique(y[sample_idx])) < len(self.classes_):
                continue
            tree = self._make_tree(int(rng.integers(2**32)))
            tree.fit(X[sample_idx], y[sample_idx])
            self.estimators_.append(tree)
            self.estimators_samples_.append(sample_idx)
        return self

    def _refit_members(self, rng) -> None:
        """Shared-binned tree loop: bin once, grow M trees on the codes."""
        binned = self._binned_
        y = self._train_y_
        n_samples = binned.n_rows
        n_draw = _resolve_count(self.max_samples, n_samples, "max_samples")
        view = binned.view()
        self.estimators_ = []
        self.estimators_samples_ = []
        while len(self.estimators_) < self.n_estimators:
            if self.bootstrap:
                sample_idx = rng.integers(0, n_samples, size=n_draw)
            else:
                sample_idx = rng.permutation(n_samples)[:n_draw]
            if len(np.unique(y[sample_idx])) < len(self.classes_):
                continue
            weights = np.bincount(sample_idx, minlength=n_samples).astype(
                np.float64
            )
            tree = self._make_tree(int(rng.integers(2**32)))
            tree._fit_binned(view, y, sample_weight=weights)
            self.estimators_.append(tree)
            self.estimators_samples_.append(sample_idx)

    # decisions / decisions_fast / vote_distribution / predict come from
    # CompiledVotePath.

    def predict_proba(self, X) -> np.ndarray:
        """Mean of per-tree leaf probability estimates."""
        X = self._check_predict_input(X)
        proba = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            proba += tree.predict_proba(X)
        return proba / len(self.estimators_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-decrease importances across trees."""
        importances = np.zeros(self.n_features_in_)
        for tree in self.estimators_:
            importances += tree.feature_importances_
        total = importances.sum()
        return importances / total if total > 0 else importances


class VotingClassifier(CompiledVotePath, BaseEstimator, ClassifierMixin):
    """Hard/soft voting over heterogeneous, named estimators.

    Used in the diversity ablation: a vote over *different model
    families* is an alternative ensemble construction to bagging one
    family.  Tree members ride the compiled flat tensor; other member
    families transparently fall back to their own ``predict`` (the
    backend assembles a mixed :class:`~repro.ml.backend.CompositeBackend`).
    """

    def __init__(
        self,
        estimators: list[tuple[str, BaseEstimator]],
        *,
        voting: str = "hard",
    ):
        self.estimators = estimators
        self.voting = voting

    def fit(self, X, y) -> "VotingClassifier":
        """Fit every named estimator on the full data."""
        X, y = check_X_y(X, y)
        if not self.estimators:
            raise ValueError("estimators list is empty.")
        if self.voting not in ("hard", "soft"):
            raise ValueError(f"voting must be 'hard' or 'soft'; got {self.voting!r}.")
        self._invalidate_backend()
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        self.named_estimators_ = {}
        self.estimators_ = []
        for name, prototype in self.estimators:
            model = clone(prototype)
            model.fit(X, y)
            self.named_estimators_[name] = model
            self.estimators_.append(model)
        return self

    # decisions / decisions_fast / vote_distribution come from
    # CompiledVotePath.

    def predict_proba(self, X) -> np.ndarray:
        """Soft voting: mean member probabilities (requires voting='soft')."""
        if self.voting != "soft":
            raise ValueError("predict_proba requires voting='soft'.")
        X = self._check_predict_input(X)
        proba = np.zeros((X.shape[0], len(self.classes_)))
        for model in self.estimators_:
            proba += model.predict_proba(X)
        return proba / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        """Majority (hard) or highest-mean-probability (soft) labels."""
        if self.voting == "soft":
            return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
        return CompiledVotePath.predict(self, X)
