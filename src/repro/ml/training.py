"""Histogram-binned training backend for tree ensembles.

The exact CART grower in :mod:`repro.ml.tree` re-sorts every node's
samples for every candidate feature — ``O(n log n)`` per feature per
node, repeated down the whole tree.  This module implements the
LightGBM / ``HistGradientBoosting`` design instead:

* :class:`BinMapper` — per-feature quantile bin edges computed **once**
  per dataset, mapping every value to a small integer code (``uint8``,
  at most 256 bins).  Split thresholds are real bin-edge values, so
  trees grown on codes predict on *raw* feature vectors and compile
  into the flattened inference backend (:mod:`repro.ml.backend`)
  unchanged.
* :class:`BinnedDataset` — the shared binned training matrix with an
  append-only growth buffer: ensembles bin once and fit all M members
  on the same codes; online retraining appends freshly binned rows
  without re-deriving edges (*warm bins*).
* :func:`grow_tree_binned` — the histogram grower.  Per node it
  accumulates **per-bin class counts** with one ``bincount`` pass
  (``O(n·d)``, no sorting), scans bins instead of sorted samples, and
  uses the classic *sibling-subtraction* trick: only the smaller child
  of a split pays a histogram pass, the other is derived as
  ``parent − sibling``.  Fractional ``sample_weight`` is native — the
  weights enter the histograms directly, with no integer-replication
  blowup.
* :class:`BinnedPartialRefitMixin` — the ensemble-facing ``partial_refit``
  contract: append analyst-labelled rows to the growth buffer, refit
  every member on the grown codes with warm bin edges, and recompile
  the flat prediction backend.

Weight semantics (shared with the exact grower): class counts,
impurities and split gains use *weighted* counts, while the structural
``min_samples_split`` / ``min_samples_leaf`` limits count raw samples
(zero-weight samples are dropped up front).  For integer weights under
the default ``min_samples_*`` limits this reproduces the old
replicate-rows behaviour; non-default limits count raw rows where
replication counted duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .validation import check_array, check_random_state

__all__ = [
    "BinMapper",
    "BinnedDataset",
    "BinnedView",
    "BinnedPartialRefitMixin",
    "grow_tree_binned",
    "quantize_with_tables",
]

_MAX_BINS_HARD_CAP = 256  # uint8 codes


def quantize_with_tables(
    edges_sorted: np.ndarray, edge_prefix: np.ndarray, X: np.ndarray
) -> np.ndarray:
    """Batched bin encoding from precomputed flat-quantizer tables.

    ``edges_sorted`` is the globally sorted concatenation of every
    feature's bin edges and ``edge_prefix`` its ``(n_edges + 1,
    n_features)`` per-feature prefix-count matrix (see
    :meth:`BinMapper._build_flat_quantizer` for the construction and the
    exactness argument).  One ``searchsorted`` over the whole batch and
    one aligned gather produce codes bitwise identical to the
    per-feature loop.  Stand-alone so that a detached inference kernel
    (:class:`~repro.ml.backend.QuantizedForest`, including one rebuilt
    from shared-memory views in a worker process) can quantize without
    carrying a fitted :class:`BinMapper`.
    """
    X = np.ascontiguousarray(X, dtype=np.float64)
    r = np.searchsorted(edges_sorted, X, side="left")
    return np.take_along_axis(edge_prefix, r, axis=0).astype(np.uint8)


class BinMapper:
    """Per-feature quantile binning into at most ``max_bins`` codes.

    Parameters
    ----------
    max_bins:
        Upper bound on bins per feature, in ``[2, 256]``.  Features with
        fewer distinct values get one bin per value (the binned grower
        is then *exact* for them).

    Attributes
    ----------
    bin_edges_:
        Per-feature sorted arrays of bin boundaries (length
        ``n_bins - 1``).  A value ``v`` belongs to bin ``b`` iff
        ``edges[b-1] < v <= edges[b]``, so a split "code <= b" is the
        real-valued split ``x <= edges[b]`` — the exact comparison the
        flattened prediction backend performs.
    n_bins_:
        Per-feature bin counts, ``len(edges) + 1``.
    """

    def __init__(self, max_bins: int = 256):
        self.max_bins = max_bins

    def fit(self, X) -> "BinMapper":
        """Compute bin edges from the (raw, unbinned) training matrix."""
        if not 2 <= self.max_bins <= _MAX_BINS_HARD_CAP:
            raise ValueError(
                f"max_bins must be in [2, {_MAX_BINS_HARD_CAP}]; got {self.max_bins}."
            )
        X = check_array(X)
        n_features = X.shape[1]
        self.bin_edges_: list[np.ndarray] = []
        for f in range(n_features):
            distinct = np.unique(X[:, f])
            if len(distinct) <= 1:
                edges = np.empty(0)
            elif len(distinct) <= self.max_bins:
                # One bin per distinct value: edges at midpoints, the
                # same cut values the exact grower would consider.
                edges = (distinct[:-1] + distinct[1:]) / 2.0
            else:
                quantiles = np.quantile(
                    distinct, np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
                )
                edges = np.unique(quantiles)
            self.bin_edges_.append(edges)
        self.n_bins_ = np.array(
            [len(edges) + 1 for edges in self.bin_edges_], dtype=np.intp
        )
        self.n_features_in_ = n_features
        self._build_flat_quantizer()
        return self

    def _build_flat_quantizer(self) -> None:
        """Precompute the single-searchsorted encoding tables.

        All per-feature edge arrays are merged into **one** globally
        sorted vector ``_edges_sorted_`` plus a ``(n_edges + 1,
        n_features) int32`` prefix matrix ``_edge_prefix_`` whose row
        ``r`` counts, per feature, how many of that feature's edges sit
        among the first ``r`` globally-sorted edges.  Then for any value
        ``v`` of feature ``f``::

            r = searchsorted(_edges_sorted_, v, side="left")   # edges < v
            code = _edge_prefix_[r, f]                          # f's edges < v

        is *exactly* ``searchsorted(bin_edges_[f], v, side="left")``:
        ``side="left"`` counts strictly-smaller entries, equal-valued
        edges are wholly inside or outside that prefix regardless of
        tie order, and the prefix row restricts the count to feature
        ``f``.  Codes are therefore bitwise identical to the per-feature
        loop (:meth:`transform_reference` pins this) while the whole
        batch quantizes with one searchsorted and one gather.
        """
        if self.bin_edges_:
            all_edges = np.concatenate(
                [np.asarray(e, dtype=np.float64) for e in self.bin_edges_]
            )
            feat_of = np.concatenate(
                [
                    np.full(len(e), f, dtype=np.intp)
                    for f, e in enumerate(self.bin_edges_)
                ]
            )
        else:
            all_edges = np.empty(0, dtype=np.float64)
            feat_of = np.empty(0, dtype=np.intp)
        order = np.argsort(all_edges, kind="stable")
        self._edges_sorted_ = np.ascontiguousarray(all_edges[order])
        n_edges = len(all_edges)
        prefix = np.zeros((n_edges + 1, self.n_features_in_), dtype=np.int32)
        if n_edges:
            hits = np.zeros((n_edges, self.n_features_in_), dtype=np.int32)
            hits[np.arange(n_edges), feat_of[order]] = 1
            np.cumsum(hits, axis=0, out=prefix[1:])
        self._edge_prefix_ = prefix

    def transform(self, X) -> np.ndarray:
        """Map raw values to ``uint8`` bin codes (one batched searchsorted)."""
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; mapper expects {self.n_features_in_}."
            )
        if not hasattr(self, "_edges_sorted_"):
            # Fitted before the flat quantizer existed (legacy pickle).
            self._build_flat_quantizer()
        return quantize_with_tables(self._edges_sorted_, self._edge_prefix_, X)

    def transform_reference(self, X) -> np.ndarray:
        """The original per-feature searchsorted loop.

        Kept as the reference implementation :meth:`transform` is
        verified against (bitwise, fuzzed in ``tests/ml``).
        """
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; mapper expects {self.n_features_in_}."
            )
        codes = np.empty(X.shape, dtype=np.uint8)
        for f, edges in enumerate(self.bin_edges_):
            # side="left": v <= edges[b]  <=>  code <= b, for every v.
            codes[:, f] = np.searchsorted(edges, X[:, f], side="left")
        return codes

    def fit_transform(self, X) -> np.ndarray:
        """Fit the edges and return the training codes."""
        return self.fit(X).transform(X)


@dataclass(frozen=True)
class BinnedView:
    """A (possibly column-subset) read view of a binned dataset."""

    codes: np.ndarray             # (n_rows, n_features) uint8
    bin_edges: list[np.ndarray]   # per-column real-valued boundaries
    n_bins: np.ndarray            # per-column bin counts

    @property
    def n_rows(self) -> int:
        """Rows in the view."""
        return self.codes.shape[0]

    @property
    def n_features(self) -> int:
        """Columns in the view."""
        return self.codes.shape[1]


class BinnedDataset:
    """Shared binned training matrix with an append-only growth buffer.

    Ensembles bin the training set once and fit every member on the
    same codes.  :meth:`append` bins new rows with the already-fitted
    (*warm*) edges and stacks lazily — repeated appends stay ``O(new)``
    per call, the full matrix is materialised once per refit.
    """

    def __init__(self, mapper: BinMapper, X):
        if not hasattr(mapper, "bin_edges_"):
            mapper.fit(X)
        self.mapper = mapper
        self._blocks: list[np.ndarray] = [mapper.transform(X)]
        self._codes: np.ndarray | None = None

    @property
    def n_rows(self) -> int:
        """Total rows across all appended blocks."""
        return sum(len(block) for block in self._blocks)

    @property
    def n_features(self) -> int:
        """Feature-space width of the mapper."""
        return self.mapper.n_features_in_

    def append(self, X_new) -> None:
        """Bin ``X_new`` with the warm edges and add it to the buffer."""
        self._blocks.append(self.mapper.transform(X_new))
        self._codes = None

    @property
    def codes(self) -> np.ndarray:
        """The full code matrix (stacked once, cached until the next append)."""
        if self._codes is None:
            if len(self._blocks) == 1:
                self._codes = self._blocks[0]
            else:
                self._codes = np.vstack(self._blocks)
                self._blocks = [self._codes]
        return self._codes

    def view(self, columns=None) -> BinnedView:
        """A :class:`BinnedView`, optionally restricted to ``columns``."""
        codes = self.codes
        edges = self.mapper.bin_edges_
        n_bins = self.mapper.n_bins_
        if columns is None:
            return BinnedView(codes=codes, bin_edges=edges, n_bins=n_bins)
        columns = np.asarray(columns, dtype=np.intp)
        return BinnedView(
            codes=np.ascontiguousarray(codes[:, columns]),
            bin_edges=[edges[c] for c in columns],
            n_bins=n_bins[columns],
        )


# ----------------------------------------------------------------------
# histogram grower
# ----------------------------------------------------------------------


class _NodeHistogrammer:
    """Per-node class-count histograms over one binned matrix.

    Precomputes the flattened ``feature * n_bins + code`` cell index of
    every (row, feature) slot once per tree, so each node's histogram
    is a single gather + ``bincount`` with no sorting.
    """

    def __init__(self, codes: np.ndarray, y_encoded: np.ndarray,
                 n_classes: int, n_bins_max: int, weights: np.ndarray | None):
        n, d = codes.shape
        self.d = d
        self.B = n_bins_max
        self.K = n_classes
        self.weights = weights
        self.y = y_encoded.astype(np.intp)
        # cell[i, f] = f * B + codes[i, f]; adding y gives the flat
        # (feature, bin, class) index of the histogram cell row i feeds.
        self.cell = codes.astype(np.intp) + (
            np.arange(d, dtype=np.intp) * n_bins_max
        )[None, :]

    def compute(self, rows: np.ndarray, columns: np.ndarray | None = None):
        """``(class_hist, count_hist)`` over ``rows`` (and ``columns``).

        ``class_hist`` has shape ``(F, B, K)`` with weighted class
        counts; ``count_hist`` ``(F, B)`` with raw sample counts (the
        ``min_samples_*`` currency).
        """
        if columns is None:
            cells = self.cell[rows]
            F = self.d
        else:
            cells = self.cell[np.ix_(rows, columns)]
            # Remap the column base so the bincount stays dense.
            cells = cells - (columns * self.B - np.arange(len(columns)) * self.B)[None, :]
            F = len(columns)
        flat = (cells * self.K + self.y[rows][:, None]).ravel()
        if self.weights is None:
            class_hist = np.bincount(flat, minlength=F * self.B * self.K)
            class_hist = class_hist.astype(np.float64).reshape(F, self.B, self.K)
            count_hist = class_hist.sum(axis=2)
        else:
            w = np.repeat(self.weights[rows], cells.shape[1])
            class_hist = np.bincount(
                flat, weights=w, minlength=F * self.B * self.K
            ).reshape(F, self.B, self.K)
            count_hist = np.bincount(
                cells.ravel(), minlength=F * self.B
            ).astype(np.float64).reshape(F, self.B)
        return class_hist, count_hist


def _children_cost(left_w, right_w, wl, wr, criterion):
    """``wl·H(left) + wr·H(right)`` for every candidate cut at once.

    Closed forms avoid the probability normalisation of
    :func:`~repro.ml.tree._impurity` (and its errstate contexts) — this
    runs once per node over ``(F, B, K)`` arrays, so constant factors
    dominate the grower's runtime.  Zero-mass sides produce NaN here;
    callers mask those cuts out as inadmissible.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        if criterion == "gini":
            # w·gini = w·(1 − Σp²) = w − Σc²/w
            return (
                wl - np.square(left_w).sum(axis=-1) / wl
                + wr - np.square(right_w).sum(axis=-1) / wr
            )
        if criterion == "entropy":
            # w·H = w·log2(w) − Σ c·log2(c), with 0·log2(0) = 0.
            def xlog2x(c):
                return np.where(c > 0, c, 1.0) * np.log2(np.where(c > 0, c, 1.0))

            return (
                xlog2x(wl) - xlog2x(left_w).sum(axis=-1)
                + xlog2x(wr) - xlog2x(right_w).sum(axis=-1)
            )
    raise ValueError(f"Unknown criterion {criterion!r}; use 'gini' or 'entropy'.")


def _scan_best_cut(class_hist, count_hist, cut_valid, node_counts,
                   n_node, min_samples_leaf, node_impurity, criterion):
    """Best (feature-pos, bin) cut by impurity gain over all bins at once."""
    left_w = np.cumsum(class_hist, axis=1)          # (F, B, K)
    left_c = np.cumsum(count_hist, axis=1)          # (F, B)
    right_w = node_counts[None, None, :] - left_w
    right_c = n_node - left_c
    wl = left_w.sum(axis=2)
    wr = right_w.sum(axis=2)
    w_node = float(node_counts.sum())
    cost = _children_cost(left_w, right_w, wl, wr, criterion)
    gain = node_impurity - cost / w_node
    admissible = (
        cut_valid
        & (left_c >= min_samples_leaf)
        & (right_c >= min_samples_leaf)
    )
    gain = np.where(admissible, gain, -np.inf)
    best_flat = int(np.argmax(gain))
    f_pos, b = np.unravel_index(best_flat, gain.shape)
    best_gain = gain[f_pos, b]
    if not np.isfinite(best_gain) or best_gain <= 1e-12:
        return None
    return int(f_pos), int(b), float(best_gain), left_w[f_pos, b]


def _sorted_best_cut(codes_sub, yw_sub, counts, min_samples_leaf,
                     node_impurity, criterion):
    """Small-node split search: sort the codes instead of scanning bins.

    For nodes with far fewer samples than bins, a stable argsort of the
    ``uint8`` codes plus a prefix-sum scan over the *samples* is much
    cheaper than a ``(F, B, K)`` bin sweep.  Candidate cuts, gains and
    the chosen cut bin are identical to the histogram scan's up to
    tie-break order (the scan breaks gain ties feature-major, this path
    cut-major — both deterministic).
    """
    m = codes_sub.shape[0]
    order = np.argsort(codes_sub, axis=0, kind="stable")
    Cs = np.take_along_axis(codes_sub, order, axis=0)   # (m, F)
    ys = yw_sub[order]                                  # (m, F, K)
    left = np.cumsum(ys, axis=0)
    cuts = slice(min_samples_leaf - 1, m - min_samples_leaf)
    lc = left[cuts]
    if lc.shape[0] == 0:
        return None
    value_changes = Cs[cuts.start + 1 : cuts.stop + 1] > Cs[cuts]
    rc = counts[None, None, :] - lc
    wl = lc.sum(axis=-1)
    wr = rc.sum(axis=-1)
    cost = _children_cost(lc, rc, wl, wr, criterion)
    gain = node_impurity - cost / float(counts.sum())
    gain = np.where(value_changes, gain, -np.inf)
    best_flat = int(np.argmax(gain))
    best_cut, f_pos = np.unravel_index(best_flat, gain.shape)
    best_gain = gain[best_cut, f_pos]
    if not np.isfinite(best_gain) or best_gain <= 1e-12:
        return None
    cut_bin = int(Cs[cuts.start + best_cut, f_pos])
    return int(f_pos), cut_bin, float(best_gain), lc[best_cut, f_pos]


def _random_cut(class_hist, count_hist, cut_valid, node_counts,
                n_node, min_samples_leaf, node_impurity, criterion, rng):
    """Extra-trees analog: one random cut bin per feature, best feature kept."""
    F, B = count_hist.shape
    occupied = count_hist > 0
    any_occ = occupied.any(axis=1)
    first = np.argmax(occupied, axis=1)
    last = B - 1 - np.argmax(occupied[:, ::-1], axis=1)
    usable = any_occ & (last > first)
    if not usable.any():
        return None
    # Draw every feature's cut in one vectorised call (degenerate
    # features get a dummy range and are masked out below).
    lows = np.where(usable, first, 0)
    highs = np.where(usable, last, 1)
    cuts = rng.integers(lows, highs)                 # cut bin in [first, last)
    rows_idx = np.arange(F)
    left_w = np.cumsum(class_hist, axis=1)[rows_idx, cuts]    # (F, K)
    left_c = np.cumsum(count_hist, axis=1)[rows_idx, cuts]    # (F,)
    right_w = node_counts[None, :] - left_w
    right_c = n_node - left_c
    wl = left_w.sum(axis=1)
    wr = right_w.sum(axis=1)
    w_node = float(node_counts.sum())
    gain = node_impurity - _children_cost(left_w, right_w, wl, wr, criterion) / w_node
    admissible = (
        usable
        & cut_valid[rows_idx, cuts]
        & (left_c >= min_samples_leaf)
        & (right_c >= min_samples_leaf)
    )
    gain = np.where(admissible, gain, -np.inf)
    f_pos = int(np.argmax(gain))
    best_gain = gain[f_pos]
    if not np.isfinite(best_gain) or best_gain <= 1e-12:
        return None
    return f_pos, int(cuts[f_pos]), float(best_gain), left_w[f_pos]


def grow_tree_binned(
    view: BinnedView,
    y_encoded: np.ndarray,
    n_classes: int,
    *,
    criterion: str = "gini",
    max_depth: int | None = None,
    min_samples_split: int = 2,
    min_samples_leaf: int = 1,
    min_impurity_decrease: float = 0.0,
    n_candidate_features: int | None = None,
    splitter: str = "best",
    sample_weight: np.ndarray | None = None,
    rows: np.ndarray | None = None,
    random_state=None,
):
    """Grow a :class:`~repro.ml.tree.TreeStructure` from binned codes.

    Two histogram strategies, chosen by the feature budget:

    * **all features** (``n_candidate_features == n_features``): each
      node carries its full ``(d, B, K)`` histogram; at a split only
      the smaller child is re-accumulated, the sibling is derived by
      subtraction (``child = parent − other``);
    * **per-node subsets** (random forests): histograms are built for
      the node's candidate columns only — subsets differ between parent
      and children, so subtraction does not apply, but the per-node
      work drops from ``d`` to ``max_features`` columns.

    Node ids allocate children back-to-back (``right == left + 1``),
    preserving the flattened prediction backend's goto invariant, and
    thresholds are real bin-edge values — the returned tree is
    prediction-compatible with exactly-grown trees.
    """
    from .tree import TreeStructure, _impurity

    codes = view.codes
    n_total, d = codes.shape
    if n_candidate_features is None:
        n_candidate_features = d
    rng = check_random_state(random_state)
    if rows is None:
        rows = np.arange(n_total, dtype=np.intp)
    max_depth_f = np.inf if max_depth is None else max_depth

    B = int(view.n_bins.max())
    hist = _NodeHistogrammer(codes, y_encoded, n_classes, B, sample_weight)
    # Cut at bin b needs a real boundary edges[b]: b <= n_bins_f - 2.
    cut_valid_all = np.arange(B)[None, :] < (np.asarray(view.n_bins) - 1)[:, None]
    subtract = n_candidate_features >= d
    # Nodes with far fewer samples than bins switch to the sort-based
    # scan (O(m·F) instead of O(B·F)); the weighted one-hot matrix it
    # prefix-sums is shared across all of them.
    small_node = B if splitter == "best" else 0
    onehot_w = None
    if small_node:
        onehot_w = np.eye(n_classes, dtype=np.float64)[y_encoded]
        if sample_weight is not None:
            onehot_w = onehot_w * sample_weight[:, None]

    if sample_weight is None:
        root_counts = np.bincount(
            y_encoded[rows], minlength=n_classes
        ).astype(np.float64)
        total_weight = float(len(rows))
    else:
        root_counts = np.bincount(
            y_encoded[rows], weights=sample_weight[rows], minlength=n_classes
        )
        total_weight = float(root_counts.sum())

    tree = TreeStructure()
    root = tree.add_node(
        root_counts, float(_impurity(root_counts, criterion)), len(rows)
    )
    # Stack entries: (rows, depth, node_id, full-feature histogram pair
    # or None).  Histograms ride the stack only in subtraction mode.
    stack = [(rows, 0, root, None)]

    while stack:
        node_rows, depth, node_id, node_hist = stack.pop()
        n_node = len(node_rows)
        counts = tree.value[node_id]
        node_impurity = tree.impurity[node_id]
        if (
            depth >= max_depth_f
            or n_node < min_samples_split
            or n_node < 2 * min_samples_leaf
            or node_impurity <= 1e-12
        ):
            continue  # stays a leaf

        if n_candidate_features < d:
            feats = np.sort(
                rng.choice(d, size=n_candidate_features, replace=False)
            )
        else:
            feats = None

        if splitter == "best" and n_node <= small_node:
            codes_sub = (
                codes[node_rows] if feats is None
                else codes[np.ix_(node_rows, feats)]
            )
            best = _sorted_best_cut(
                codes_sub, onehot_w[node_rows], counts,
                min_samples_leaf, node_impurity, criterion,
            )
        else:
            if feats is not None:
                class_hist, count_hist = hist.compute(node_rows, feats)
                cut_valid = cut_valid_all[feats]
            else:
                if node_hist is None:
                    node_hist = hist.compute(node_rows)
                class_hist, count_hist = node_hist
                cut_valid = cut_valid_all
            if splitter == "random":
                best = _random_cut(
                    class_hist, count_hist, cut_valid, counts, n_node,
                    min_samples_leaf, node_impurity, criterion, rng,
                )
            else:
                best = _scan_best_cut(
                    class_hist, count_hist, cut_valid, counts, n_node,
                    min_samples_leaf, node_impurity, criterion,
                )
        if best is None:
            continue
        f_pos, cut_bin, gain, left_counts = best
        if gain * counts.sum() / total_weight < min_impurity_decrease:
            continue
        feature_idx = int(f_pos if feats is None else feats[f_pos])
        threshold = float(view.bin_edges[feature_idx][cut_bin])

        go_left = codes[node_rows, feature_idx] <= cut_bin
        left_rows = node_rows[go_left]
        right_rows = node_rows[~go_left]
        if (
            len(left_rows) < min_samples_leaf
            or len(right_rows) < min_samples_leaf
        ):
            continue

        # Sibling subtraction can leave ~1e-16-scale negatives on
        # weighted histograms; clamp so impurities stay defined.
        right_counts = np.maximum(counts - left_counts, 0.0)
        left_id = tree.add_node(
            left_counts, float(_impurity(left_counts, criterion)), len(left_rows)
        )
        right_id = tree.add_node(
            right_counts, float(_impurity(right_counts, criterion)), len(right_rows)
        )
        tree.feature[node_id] = feature_idx
        tree.threshold[node_id] = threshold
        tree.children_left[node_id] = left_id
        tree.children_right[node_id] = right_id

        left_hist = right_hist = None
        if subtract:
            # A child needs a histogram only if it can split AND will
            # use the bin scan (small children take the sort path).
            left_needed = len(left_rows) > small_node and _may_split(
                len(left_rows), depth + 1, max_depth_f,
                min_samples_split, min_samples_leaf,
            )
            right_needed = len(right_rows) > small_node and _may_split(
                len(right_rows), depth + 1, max_depth_f,
                min_samples_split, min_samples_leaf,
            )
            if left_needed or right_needed:
                small_rows, small_is_left = (
                    (left_rows, True)
                    if len(left_rows) <= len(right_rows)
                    else (right_rows, False)
                )
                small = hist.compute(small_rows)
                big = None
                if right_needed if small_is_left else left_needed:
                    big = (
                        np.maximum(class_hist - small[0], 0.0),
                        np.maximum(count_hist - small[1], 0.0),
                    )
                left_hist, right_hist = (
                    (small, big) if small_is_left else (big, small)
                )
        stack.append((right_rows, depth + 1, right_id, right_hist))
        stack.append((left_rows, depth + 1, left_id, left_hist))

    tree.finalize()
    return tree


def _may_split(n_node, depth, max_depth, min_samples_split, min_samples_leaf):
    """Whether a child node can possibly be split (cheap pre-filter)."""
    return (
        depth < max_depth
        and n_node >= min_samples_split
        and n_node >= 2 * min_samples_leaf
    )


class BinnedPartialRefitMixin:
    """Warm-bin online retraining for ensembles fitted with ``grower="hist"``.

    Hosts set ``self._binned_`` (:class:`BinnedDataset`) and
    ``self._train_y_`` during :meth:`fit`, and implement
    ``_refit_members(rng)`` — the member-fitting loop over the shared
    binned dataset.  The mixin turns those into the public
    :meth:`partial_refit` used by the online retraining loop.
    """

    def supports_partial_refit(self) -> bool:
        """True once fitted with a shared binned dataset."""
        return getattr(self, "_binned_", None) is not None

    def partial_refit(self, X_new, y_new):
        """Append labelled rows and refit all members with warm bins.

        The bin edges computed at :meth:`fit` time are reused — the new
        rows are binned with them and appended to the growth buffer —
        so the refit skips the quantile pass entirely and every member
        regrows from histograms over the grown code matrix.  The
        flattened prediction backend is recompiled before returning.
        """
        from .validation import check_X_y

        if not self.supports_partial_refit():
            raise ValueError(
                "partial_refit requires a fit with grower='hist' "
                "(no shared binned dataset is attached)."
            )
        X_new, y_new = check_X_y(X_new, y_new)
        if X_new.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X_new has {X_new.shape[1]} features; "
                f"the ensemble expects {self.n_features_in_}."
            )
        self._binned_.append(X_new)
        self._train_y_ = np.concatenate([self._train_y_, y_new])
        self.classes_ = np.unique(self._train_y_)
        self._invalidate_backend()
        self._refit_members(check_random_state(self.random_state))
        self.compile()
        return self
