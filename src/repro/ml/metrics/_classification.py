"""Classification metrics: confusion matrix, precision/recall/F1, accuracy.

These power the paper's headline numbers — the F1-vs-threshold sweep in
Fig. 7b and the precision/recall trade-off discussed for the HPC dataset
in Section V.B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..validation import check_consistent_length, column_or_1d, unique_labels

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "fbeta_score",
    "precision_recall_fscore_support",
    "balanced_accuracy_score",
    "matthews_corrcoef",
    "classification_report",
    "ClassificationReport",
]


def _validate_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = column_or_1d(y_true, name="y_true")
    y_pred = column_or_1d(y_pred, name="y_pred")
    check_consistent_length(y_true, y_pred)
    if y_true.size == 0:
        raise ValueError("y_true is empty.")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching labels."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, *, labels=None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = samples of class ``labels[i]``
    predicted as ``labels[j]``.

    ``labels`` defaults to the sorted union of labels observed in either
    array, so a degenerate prediction vector still yields a square matrix.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if labels is None:
        labels = unique_labels(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    n = len(labels)
    matrix = np.zeros((n, n), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t in index and p in index:
            matrix[index[t], index[p]] += 1
    return matrix


def _binary_counts(y_true, y_pred, pos_label) -> tuple[int, int, int, int]:
    """(tp, fp, fn, tn) for a binary problem with the given positive label."""
    true_pos_mask = y_true == pos_label
    pred_pos_mask = y_pred == pos_label
    tp = int(np.sum(true_pos_mask & pred_pos_mask))
    fp = int(np.sum(~true_pos_mask & pred_pos_mask))
    fn = int(np.sum(true_pos_mask & ~pred_pos_mask))
    tn = int(np.sum(~true_pos_mask & ~pred_pos_mask))
    return tp, fp, fn, tn


def precision_recall_fscore_support(
    y_true,
    y_pred,
    *,
    beta: float = 1.0,
    labels=None,
    average: str | None = None,
    zero_division: float = 0.0,
):
    """Per-class (or averaged) precision, recall, F-beta and support.

    ``average`` may be ``None`` (per-class arrays), ``"binary"`` (the
    positive class is the larger label, matching the benign=0 / malware=1
    convention used throughout the reproduction), ``"macro"``,
    ``"micro"`` or ``"weighted"``.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if labels is None:
        labels = unique_labels(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)

    if average == "binary":
        if len(labels) > 2:
            raise ValueError(
                f"average='binary' requires at most 2 labels; got {len(labels)}."
            )
        pos_label = labels[-1]
        tp, fp, fn, _ = _binary_counts(y_true, y_pred, pos_label)
        precision = tp / (tp + fp) if (tp + fp) else zero_division
        recall = tp / (tp + fn) if (tp + fn) else zero_division
        beta2 = beta * beta
        denom = beta2 * precision + recall
        fscore = (1 + beta2) * precision * recall / denom if denom else zero_division
        support = int(np.sum(y_true == pos_label))
        return float(precision), float(recall), float(fscore), support

    precisions, recalls, fscores, supports = [], [], [], []
    for label in labels:
        tp, fp, fn, _ = _binary_counts(y_true, y_pred, label)
        p = tp / (tp + fp) if (tp + fp) else zero_division
        r = tp / (tp + fn) if (tp + fn) else zero_division
        beta2 = beta * beta
        denom = beta2 * p + r
        f = (1 + beta2) * p * r / denom if denom else zero_division
        precisions.append(p)
        recalls.append(r)
        fscores.append(f)
        supports.append(int(np.sum(y_true == label)))

    precisions = np.asarray(precisions)
    recalls = np.asarray(recalls)
    fscores = np.asarray(fscores)
    supports = np.asarray(supports)

    if average is None:
        return precisions, recalls, fscores, supports
    if average == "macro":
        return (
            float(precisions.mean()),
            float(recalls.mean()),
            float(fscores.mean()),
            int(supports.sum()),
        )
    if average == "weighted":
        total = supports.sum()
        weights = supports / total if total else np.zeros_like(supports, dtype=float)
        return (
            float(precisions @ weights),
            float(recalls @ weights),
            float(fscores @ weights),
            int(total),
        )
    if average == "micro":
        tp_total = fp_total = fn_total = 0
        for label in labels:
            tp, fp, fn, _ = _binary_counts(y_true, y_pred, label)
            tp_total += tp
            fp_total += fp
            fn_total += fn
        p = tp_total / (tp_total + fp_total) if (tp_total + fp_total) else zero_division
        r = tp_total / (tp_total + fn_total) if (tp_total + fn_total) else zero_division
        beta2 = beta * beta
        denom = beta2 * p + r
        f = (1 + beta2) * p * r / denom if denom else zero_division
        return float(p), float(r), float(f), int(supports.sum())
    raise ValueError(f"Unknown average: {average!r}.")


def precision_score(y_true, y_pred, *, average: str = "binary", zero_division: float = 0.0) -> float:
    """Precision = tp / (tp + fp)."""
    p, _, _, _ = precision_recall_fscore_support(
        y_true, y_pred, average=average, zero_division=zero_division
    )
    return p


def recall_score(y_true, y_pred, *, average: str = "binary", zero_division: float = 0.0) -> float:
    """Recall = tp / (tp + fn)."""
    _, r, _, _ = precision_recall_fscore_support(
        y_true, y_pred, average=average, zero_division=zero_division
    )
    return r


def f1_score(y_true, y_pred, *, average: str = "binary", zero_division: float = 0.0) -> float:
    """F1 = harmonic mean of precision and recall."""
    _, _, f, _ = precision_recall_fscore_support(
        y_true, y_pred, average=average, zero_division=zero_division
    )
    return f


def fbeta_score(
    y_true, y_pred, *, beta: float, average: str = "binary", zero_division: float = 0.0
) -> float:
    """F-beta score with recall weighted ``beta`` times precision."""
    _, _, f, _ = precision_recall_fscore_support(
        y_true, y_pred, beta=beta, average=average, zero_division=zero_division
    )
    return f


def balanced_accuracy_score(y_true, y_pred) -> float:
    """Mean of per-class recalls; robust to class imbalance."""
    _, recalls, _, _ = precision_recall_fscore_support(y_true, y_pred, average=None)
    return float(np.mean(recalls))


def matthews_corrcoef(y_true, y_pred) -> float:
    """Matthews correlation coefficient for binary problems."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    labels = unique_labels(np.concatenate([y_true, y_pred]))
    if len(labels) > 2:
        raise ValueError("matthews_corrcoef supports binary problems only.")
    pos = labels[-1]
    tp, fp, fn, tn = _binary_counts(y_true, y_pred, pos)
    denom = np.sqrt(
        float(tp + fp) * float(tp + fn) * float(tn + fp) * float(tn + fn)
    )
    if denom == 0:
        return 0.0
    return float((tp * tn - fp * fn) / denom)


@dataclass(frozen=True)
class ClassificationReport:
    """Structured per-class report plus macro/weighted averages."""

    labels: tuple
    precision: tuple[float, ...]
    recall: tuple[float, ...]
    f1: tuple[float, ...]
    support: tuple[int, ...]
    accuracy: float

    def as_text(self) -> str:
        """Render a fixed-width text table (mirrors sklearn's report)."""
        header = f"{'':>12} {'precision':>9} {'recall':>9} {'f1-score':>9} {'support':>9}"
        lines = [header, ""]
        for i, label in enumerate(self.labels):
            lines.append(
                f"{str(label):>12} {self.precision[i]:>9.3f} {self.recall[i]:>9.3f} "
                f"{self.f1[i]:>9.3f} {self.support[i]:>9d}"
            )
        lines.append("")
        lines.append(f"{'accuracy':>12} {'':>9} {'':>9} {self.accuracy:>9.3f} "
                     f"{sum(self.support):>9d}")
        return "\n".join(lines)


def classification_report(y_true, y_pred, *, labels=None) -> ClassificationReport:
    """Build a :class:`ClassificationReport` for ``(y_true, y_pred)``."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if labels is None:
        labels = unique_labels(np.concatenate([y_true, y_pred]))
    precisions, recalls, fscores, supports = precision_recall_fscore_support(
        y_true, y_pred, labels=labels, average=None
    )
    return ClassificationReport(
        labels=tuple(np.asarray(labels).tolist()),
        precision=tuple(float(v) for v in precisions),
        recall=tuple(float(v) for v in recalls),
        f1=tuple(float(v) for v in fscores),
        support=tuple(int(v) for v in supports),
        accuracy=accuracy_score(y_true, y_pred),
    )
