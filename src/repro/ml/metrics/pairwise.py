"""Pairwise distance and kernel computations.

Shared by the kernel SVM (RBF kernel), t-SNE (squared Euclidean
affinities), k-NN and the latent-space overlap metrics used to quantify
Fig. 8.
"""

from __future__ import annotations

import numpy as np

from ..validation import check_array

__all__ = [
    "euclidean_distances",
    "squared_euclidean_distances",
    "manhattan_distances",
    "rbf_kernel",
    "linear_kernel",
    "polynomial_kernel",
]


def _as_pair(X, Y):
    X = check_array(X)
    Y = X if Y is None else check_array(Y)
    if X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"X and Y have different feature counts: {X.shape[1]} vs {Y.shape[1]}."
        )
    return X, Y


def squared_euclidean_distances(X, Y=None) -> np.ndarray:
    """Matrix of squared Euclidean distances between rows of X and Y.

    Uses the expansion ``|x - y|^2 = |x|^2 - 2 x.y + |y|^2`` and clamps
    tiny negative values produced by floating-point cancellation.
    """
    X, Y = _as_pair(X, Y)
    x_sq = np.einsum("ij,ij->i", X, X)[:, None]
    y_sq = np.einsum("ij,ij->i", Y, Y)[None, :]
    d2 = x_sq + y_sq - 2.0 * (X @ Y.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def euclidean_distances(X, Y=None) -> np.ndarray:
    """Matrix of Euclidean distances between rows of X and Y."""
    return np.sqrt(squared_euclidean_distances(X, Y))


def manhattan_distances(X, Y=None) -> np.ndarray:
    """Matrix of L1 distances between rows of X and Y."""
    X, Y = _as_pair(X, Y)
    return np.abs(X[:, None, :] - Y[None, :, :]).sum(axis=2)


def linear_kernel(X, Y=None) -> np.ndarray:
    """Gram matrix ``X @ Y.T``."""
    X, Y = _as_pair(X, Y)
    return X @ Y.T


def rbf_kernel(X, Y=None, *, gamma: float | None = None) -> np.ndarray:
    """Gaussian kernel ``exp(-gamma * |x - y|^2)``.

    ``gamma`` defaults to ``1 / n_features`` (sklearn's ``gamma='scale'``
    without the variance factor is applied by the SVM itself).
    """
    X, Y = _as_pair(X, Y)
    if gamma is None:
        gamma = 1.0 / X.shape[1]
    if gamma <= 0:
        raise ValueError(f"gamma must be positive; got {gamma}.")
    return np.exp(-gamma * squared_euclidean_distances(X, Y))


def polynomial_kernel(
    X, Y=None, *, degree: int = 3, gamma: float | None = None, coef0: float = 1.0
) -> np.ndarray:
    """Polynomial kernel ``(gamma * x.y + coef0) ** degree``."""
    X, Y = _as_pair(X, Y)
    if gamma is None:
        gamma = 1.0 / X.shape[1]
    return (gamma * (X @ Y.T) + coef0) ** degree
