"""Metrics for the from-scratch ML substrate (S1 in DESIGN.md)."""

from ._classification import (
    ClassificationReport,
    accuracy_score,
    balanced_accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    fbeta_score,
    matthews_corrcoef,
    precision_recall_fscore_support,
    precision_score,
    recall_score,
)
from ._cluster import (
    centroid_separation_ratio,
    class_overlap_score,
    neighborhood_purity,
    silhouette_samples,
    silhouette_score,
)
from ._ranking import (
    average_precision_score,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
)
from .pairwise import (
    euclidean_distances,
    linear_kernel,
    manhattan_distances,
    polynomial_kernel,
    rbf_kernel,
    squared_euclidean_distances,
)

__all__ = [
    "ClassificationReport",
    "accuracy_score",
    "average_precision_score",
    "balanced_accuracy_score",
    "centroid_separation_ratio",
    "class_overlap_score",
    "classification_report",
    "confusion_matrix",
    "euclidean_distances",
    "f1_score",
    "fbeta_score",
    "linear_kernel",
    "manhattan_distances",
    "matthews_corrcoef",
    "neighborhood_purity",
    "polynomial_kernel",
    "precision_recall_curve",
    "precision_recall_fscore_support",
    "precision_score",
    "rbf_kernel",
    "recall_score",
    "roc_auc_score",
    "roc_curve",
    "silhouette_samples",
    "silhouette_score",
    "squared_euclidean_distances",
]
