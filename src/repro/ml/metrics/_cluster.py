"""Latent-space geometry metrics.

Fig. 8 of the paper is a *visual* t-SNE argument: DVFS classes look
disjoint, HPC classes overlap.  Offline we cannot render scatter plots,
so these metrics quantify the same geometry:

* :func:`silhouette_score` — classic cluster-separation score in [-1, 1];
* :func:`neighborhood_purity` — fraction of k nearest neighbours sharing
  the query's label (≈1 for disjoint classes, ≈max class prior for fully
  overlapping ones);
* :func:`class_overlap_score` — 1 − purity, the headline "overlap" number
  reported in EXPERIMENTS.md for Fig. 8.
"""

from __future__ import annotations

import numpy as np

from ..validation import check_X_y
from .pairwise import squared_euclidean_distances

__all__ = [
    "silhouette_score",
    "silhouette_samples",
    "neighborhood_purity",
    "class_overlap_score",
    "centroid_separation_ratio",
]


def silhouette_samples(X, labels) -> np.ndarray:
    """Per-sample silhouette coefficient ``(b - a) / max(a, b)``."""
    X, labels = check_X_y(X, labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette requires at least 2 labels.")
    distances = np.sqrt(squared_euclidean_distances(X))
    n = len(labels)
    scores = np.zeros(n)
    masks = {label: labels == label for label in unique}
    for i in range(n):
        own = masks[labels[i]].copy()
        own[i] = False
        n_own = own.sum()
        a = distances[i, own].mean() if n_own else 0.0
        b = np.inf
        for label in unique:
            if label == labels[i]:
                continue
            other = masks[label]
            if other.any():
                b = min(b, distances[i, other].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 or not np.isfinite(b) else (b - a) / denom
    return scores


def silhouette_score(X, labels) -> float:
    """Mean silhouette coefficient over all samples."""
    return float(silhouette_samples(X, labels).mean())


def neighborhood_purity(X, labels, *, n_neighbors: int = 10) -> float:
    """Mean fraction of each sample's k nearest neighbours sharing its label.

    Close to 1.0 for well-separated classes; approaches the majority
    class prior when classes fully overlap.
    """
    X, labels = check_X_y(X, labels)
    if n_neighbors < 1:
        raise ValueError("n_neighbors must be >= 1.")
    n = len(labels)
    if n_neighbors >= n:
        raise ValueError(
            f"n_neighbors={n_neighbors} must be < n_samples={n}."
        )
    d2 = squared_euclidean_distances(X)
    np.fill_diagonal(d2, np.inf)
    neighbor_idx = np.argpartition(d2, n_neighbors, axis=1)[:, :n_neighbors]
    same = labels[neighbor_idx] == labels[:, None]
    return float(same.mean())


def class_overlap_score(X, labels, *, n_neighbors: int = 10) -> float:
    """1 − neighborhood purity: ~0 for disjoint classes, large for overlap."""
    return 1.0 - neighborhood_purity(X, labels, n_neighbors=n_neighbors)


def centroid_separation_ratio(X, labels) -> float:
    """Inter-centroid distance divided by mean intra-class spread.

    Large values (≫1) indicate cleanly separated classes; values near or
    below 1 indicate overlap.  Defined for binary labels; multi-class
    input uses the minimum pairwise centroid distance.
    """
    X, labels = check_X_y(X, labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("centroid separation requires at least 2 labels.")
    centroids = np.stack([X[labels == label].mean(axis=0) for label in unique])
    spreads = [
        np.sqrt(((X[labels == label] - centroids[i]) ** 2).sum(axis=1)).mean()
        for i, label in enumerate(unique)
    ]
    d2 = squared_euclidean_distances(centroids)
    np.fill_diagonal(d2, np.inf)
    min_dist = float(np.sqrt(d2.min()))
    mean_spread = float(np.mean(spreads))
    if mean_spread == 0:
        return np.inf
    return min_dist / mean_spread
