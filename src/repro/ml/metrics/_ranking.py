"""Ranking metrics: ROC curves and AUC.

Used by the ablation benchmarks (A1 in DESIGN.md) to compare the
discriminative power of ensemble entropy vs. Platt-scaled probabilities
for separating known from unknown workloads.
"""

from __future__ import annotations

import numpy as np

from ..validation import check_consistent_length, column_or_1d

__all__ = ["roc_curve", "roc_auc_score", "precision_recall_curve", "average_precision_score"]


def _validate_scores(y_true, y_score) -> tuple[np.ndarray, np.ndarray]:
    y_true = column_or_1d(y_true, name="y_true")
    y_score = column_or_1d(np.asarray(y_score, dtype=float), name="y_score")
    check_consistent_length(y_true, y_score)
    labels = np.unique(y_true)
    if len(labels) != 2:
        raise ValueError(
            f"ROC analysis requires exactly 2 classes; got {len(labels)}."
        )
    # Positive class is the larger label (benign=0 / malware=1 convention).
    y_binary = (y_true == labels[-1]).astype(int)
    return y_binary, y_score


def roc_curve(y_true, y_score) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """False-positive rate, true-positive rate and thresholds.

    Thresholds are the distinct scores in decreasing order, prefixed by
    ``inf`` so the curve starts at (0, 0).
    """
    y_true, y_score = _validate_scores(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")
    y_sorted = y_true[order]
    scores_sorted = y_score[order]

    # Indices where the score changes — candidate thresholds.
    distinct = np.where(np.diff(scores_sorted))[0]
    threshold_idx = np.concatenate([distinct, [len(y_sorted) - 1]])

    tps = np.cumsum(y_sorted)[threshold_idx].astype(float)
    fps = (threshold_idx + 1) - tps

    total_pos = float(y_true.sum())
    total_neg = float(len(y_true) - total_pos)

    tpr = tps / total_pos if total_pos else np.zeros_like(tps)
    fpr = fps / total_neg if total_neg else np.zeros_like(fps)

    thresholds = scores_sorted[threshold_idx]
    fpr = np.concatenate([[0.0], fpr])
    tpr = np.concatenate([[0.0], tpr])
    thresholds = np.concatenate([[np.inf], thresholds])
    return fpr, tpr, thresholds


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve via trapezoidal integration."""
    fpr, tpr, _ = roc_curve(y_true, y_score)
    return float(np.trapezoid(tpr, fpr))


def precision_recall_curve(y_true, y_score) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision/recall pairs for decreasing score thresholds."""
    y_true, y_score = _validate_scores(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")
    y_sorted = y_true[order]
    scores_sorted = y_score[order]

    distinct = np.where(np.diff(scores_sorted))[0]
    threshold_idx = np.concatenate([distinct, [len(y_sorted) - 1]])

    tps = np.cumsum(y_sorted)[threshold_idx].astype(float)
    predicted_pos = (threshold_idx + 1).astype(float)
    total_pos = float(y_true.sum())

    precision = np.divide(
        tps, predicted_pos, out=np.zeros_like(tps), where=predicted_pos > 0
    )
    recall = tps / total_pos if total_pos else np.zeros_like(tps)

    # Append the (1, 0) endpoint, reversing to increasing-recall order.
    precision = np.concatenate([precision[::-1], [1.0]])
    recall = np.concatenate([recall[::-1], [0.0]])
    thresholds = scores_sorted[threshold_idx][::-1]
    return precision, recall, thresholds


def average_precision_score(y_true, y_score) -> float:
    """Average precision (step-wise area under the PR curve)."""
    precision, recall, _ = precision_recall_curve(y_true, y_score)
    # recall is decreasing after our concatenation order; integrate steps.
    return float(-np.sum(np.diff(recall) * precision[:-1]))
