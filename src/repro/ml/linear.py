"""Linear classifiers: logistic regression (and a perceptron baseline).

Logistic Regression is one of the three base classifiers the paper bags
into uncertainty-aware ensembles (Figs. 4, 5, 7, 9).  The solver
minimises the L2-regularised negative log-likelihood with scipy's
L-BFGS-B, which converges in a handful of iterations on the HMD feature
dimensionalities used here.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy import optimize

from .base import BaseEstimator, ClassifierMixin
from .exceptions import ConvergenceWarning
from .validation import check_random_state, check_X_y

__all__ = ["LogisticRegression", "Perceptron"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _log_sigmoid(z: np.ndarray) -> np.ndarray:
    """log(sigmoid(z)) computed without overflow."""
    return -np.logaddexp(0.0, -z)


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Binary / one-vs-rest logistic regression with L2 regularisation.

    Parameters
    ----------
    C:
        Inverse regularisation strength (like sklearn); larger = less
        regularisation.
    max_iter:
        L-BFGS iteration budget.
    tol:
        Gradient tolerance passed to the optimiser.
    fit_intercept:
        Whether to learn a bias term.
    """

    def __init__(
        self,
        *,
        C: float = 1.0,
        max_iter: int = 200,
        tol: float = 1e-6,
        fit_intercept: bool = True,
        random_state: int | np.random.Generator | None = None,
    ):
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.random_state = random_state

    def _fit_binary(self, X: np.ndarray, y01: np.ndarray) -> tuple[np.ndarray, float, bool]:
        """Fit one binary problem; returns (coef, intercept, converged)."""
        n_samples, n_features = X.shape
        y_signed = 2.0 * y01 - 1.0  # {-1, +1}
        alpha = 1.0 / (self.C * n_samples)

        def objective(w_full: np.ndarray):
            w = w_full[:n_features]
            b = w_full[n_features] if self.fit_intercept else 0.0
            margins = y_signed * (X @ w + b)
            loss = -np.mean(_log_sigmoid(margins)) + 0.5 * alpha * (w @ w)
            # gradient: -mean(y * sigmoid(-m) * x) + alpha * w
            s = _sigmoid(-margins)
            grad_w = -(X.T @ (y_signed * s)) / n_samples + alpha * w
            if self.fit_intercept:
                grad_b = -np.mean(y_signed * s)
                return loss, np.concatenate([grad_w, [grad_b]])
            return loss, grad_w

        rng = check_random_state(self.random_state)
        size = n_features + (1 if self.fit_intercept else 0)
        w0 = rng.normal(scale=1e-3, size=size)
        result = optimize.minimize(
            objective,
            w0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        coef = result.x[:n_features]
        intercept = float(result.x[n_features]) if self.fit_intercept else 0.0
        return coef, intercept, bool(result.success)

    def fit(self, X, y, sample_weight=None) -> "LogisticRegression":
        """Fit; multi-class problems are handled one-vs-rest."""
        X, y = check_X_y(X, y)
        if sample_weight is not None:
            weights = np.round(np.asarray(sample_weight)).astype(int)
            if np.any(weights < 0):
                raise ValueError("sample_weight must be non-negative.")
            X = np.repeat(X, weights, axis=0)
            y = np.repeat(y, weights, axis=0)
        if self.C <= 0:
            raise ValueError(f"C must be positive; got {self.C}.")
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        if len(self.classes_) < 2:
            raise ValueError("LogisticRegression needs at least 2 classes in y.")

        converged = True
        if len(self.classes_) == 2:
            y01 = (y == self.classes_[1]).astype(float)
            coef, intercept, ok = self._fit_binary(X, y01)
            self.coef_ = coef[None, :]
            self.intercept_ = np.array([intercept])
            converged &= ok
        else:
            coefs, intercepts = [], []
            for cls in self.classes_:
                coef, intercept, ok = self._fit_binary(X, (y == cls).astype(float))
                coefs.append(coef)
                intercepts.append(intercept)
                converged &= ok
            self.coef_ = np.stack(coefs)
            self.intercept_ = np.asarray(intercepts)

        if not converged:
            warnings.warn(
                "L-BFGS did not fully converge; consider increasing max_iter.",
                ConvergenceWarning,
                stacklevel=2,
            )
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed distances to the decision hyperplane(s)."""
        X = self._check_predict_input(X)
        scores = X @ self.coef_.T + self.intercept_
        return scores.ravel() if scores.shape[1] == 1 else scores

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities (sigmoid for binary, normalised OvR otherwise)."""
        scores = self.decision_function(X)
        if scores.ndim == 1:
            p1 = _sigmoid(scores)
            return np.column_stack([1.0 - p1, p1])
        p = _sigmoid(scores)
        totals = p.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return p / totals

    def predict(self, X) -> np.ndarray:
        """Most probable class per sample."""
        scores = self.decision_function(X)
        if scores.ndim == 1:
            return self.classes_[(scores > 0).astype(int)]
        return self.classes_[np.argmax(scores, axis=1)]


class Perceptron(BaseEstimator, ClassifierMixin):
    """Classic averaged perceptron (binary), used in ablation studies
    as a cheap, high-variance base classifier."""

    def __init__(
        self,
        *,
        max_iter: int = 50,
        shuffle: bool = True,
        random_state: int | np.random.Generator | None = None,
    ):
        self.max_iter = max_iter
        self.shuffle = shuffle
        self.random_state = random_state

    def fit(self, X, y, sample_weight=None) -> "Perceptron":
        """Fit with the averaged-perceptron update rule."""
        X, y = check_X_y(X, y)
        if sample_weight is not None:
            weights = np.round(np.asarray(sample_weight)).astype(int)
            X = np.repeat(X, weights, axis=0)
            y = np.repeat(y, weights, axis=0)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError("Perceptron supports binary problems only.")
        self.n_features_in_ = X.shape[1]
        y_signed = np.where(y == self.classes_[1], 1.0, -1.0)

        rng = check_random_state(self.random_state)
        n = len(y_signed)
        w = np.zeros(X.shape[1])
        b = 0.0
        w_sum = np.zeros_like(w)
        b_sum = 0.0
        updates = 0
        for _ in range(self.max_iter):
            order = rng.permutation(n) if self.shuffle else np.arange(n)
            mistakes = 0
            for i in order:
                if y_signed[i] * (X[i] @ w + b) <= 0:
                    w += y_signed[i] * X[i]
                    b += y_signed[i]
                    mistakes += 1
                w_sum += w
                b_sum += b
                updates += 1
            if mistakes == 0:
                break
        self.coef_ = (w_sum / max(updates, 1))[None, :]
        self.intercept_ = np.array([b_sum / max(updates, 1)])
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed distance to the averaged hyperplane."""
        X = self._check_predict_input(X)
        return (X @ self.coef_.T + self.intercept_).ravel()

    def predict(self, X) -> np.ndarray:
        """Predicted class labels."""
        return self.classes_[(self.decision_function(X) > 0).astype(int)]
