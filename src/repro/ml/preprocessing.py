"""Feature preprocessing: scalers and label encoding.

The HMD pipeline (Fig. 1/2 of the paper) standardises features before
dimensionality reduction and classification; these transformers provide
that stage.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, TransformerMixin
from .validation import check_array, check_is_fitted, column_or_1d

__all__ = ["StandardScaler", "MinMaxScaler", "RobustScaler", "LabelEncoder"]


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardise features to zero mean and unit variance.

    Constant features get scale 1.0 so they map to exactly zero instead
    of dividing by zero.
    """

    def __init__(self, *, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        """Estimate per-feature mean and scale."""
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            # Sub-normal spreads would overflow 1/scale; treat as constant.
            scale[scale < np.finfo(np.float64).tiny] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        """Standardise ``X`` with the fitted statistics."""
        check_is_fitted(self, "mean_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        """Map standardised values back to the original scale."""
        check_is_fitted(self, "mean_")
        X = check_array(X)
        return X * self.scale_ + self.mean_

    def as_affine(self, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
        """The fitted transform as ``X * mult + bias``.

        Lets downstream pipelines fuse the scaler into a single affine
        map (e.g. the scaler→PCA front of
        :class:`~repro.uncertainty.trust.TrustedHMD` collapses into one
        matmul).  Equal to :meth:`transform` up to floating-point
        associativity (multiplying by ``1/scale`` instead of dividing).

        ``dtype`` selects the storage precision of the returned pair:
        the composition is always computed in float64 and rounded once
        at the end, so ``dtype=np.float32`` is the correctly-rounded
        narrowing of the float64 map (the low-precision front's
        contract), not a float32 recomputation.
        """
        check_is_fitted(self, "mean_")
        mult = 1.0 / self.scale_
        bias = -self.mean_ * mult
        dtype = np.dtype(dtype)
        return mult.astype(dtype, copy=False), bias.astype(dtype, copy=False)


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Scale features into ``feature_range`` (default [0, 1])."""

    def __init__(self, *, feature_range: tuple[float, float] = (0.0, 1.0)):
        self.feature_range = feature_range

    def fit(self, X, y=None) -> "MinMaxScaler":
        """Record per-feature min/max and the scale into the range."""
        lo, hi = self.feature_range
        if lo >= hi:
            raise ValueError(
                f"feature_range minimum must be < maximum; got {self.feature_range}."
            )
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        data_range = self.data_max_ - self.data_min_
        # Sub-normal ranges would overflow the scale factor; treat such
        # features as constant.
        data_range[data_range < np.finfo(np.float64).tiny] = 1.0
        self.scale_ = (hi - lo) / data_range
        self.min_ = lo - self.data_min_ * self.scale_
        return self

    def transform(self, X) -> np.ndarray:
        """Scale ``X`` into the fitted feature range."""
        check_is_fitted(self, "scale_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return X * self.scale_ + self.min_

    def inverse_transform(self, X) -> np.ndarray:
        """Map scaled values back to the original range."""
        check_is_fitted(self, "scale_")
        X = check_array(X)
        return (X - self.min_) / self.scale_


class RobustScaler(BaseEstimator, TransformerMixin):
    """Scale using median and inter-quartile range (outlier-resistant).

    Useful for HPC counter features whose heavy-tailed distributions make
    the plain standard deviation a poor scale estimate.
    """

    def __init__(self, *, quantile_range: tuple[float, float] = (25.0, 75.0)):
        self.quantile_range = quantile_range

    def fit(self, X, y=None) -> "RobustScaler":
        """Estimate per-feature median and inter-quantile range."""
        lo, hi = self.quantile_range
        if not (0 <= lo < hi <= 100):
            raise ValueError(f"Invalid quantile_range {self.quantile_range}.")
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        self.center_ = np.median(X, axis=0)
        q_low, q_high = np.percentile(X, [lo, hi], axis=0)
        iqr = q_high - q_low
        iqr[iqr < np.finfo(np.float64).tiny] = 1.0
        self.scale_ = iqr
        return self

    def transform(self, X) -> np.ndarray:
        """Center by the median and scale by the IQR."""
        check_is_fitted(self, "center_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        return (X - self.center_) / self.scale_


class LabelEncoder(BaseEstimator):
    """Encode arbitrary labels as integers ``0..n_classes-1``."""

    def fit(self, y) -> "LabelEncoder":
        """Memorise the sorted unique labels."""
        y = column_or_1d(y)
        self.classes_ = np.unique(y)
        return self

    def transform(self, y) -> np.ndarray:
        """Encode labels as their index into ``classes_``."""
        check_is_fitted(self, "classes_")
        y = column_or_1d(y)
        encoded = np.searchsorted(self.classes_, y)
        valid = (encoded < len(self.classes_)) & (self.classes_[
            np.minimum(encoded, len(self.classes_) - 1)
        ] == y)
        if not np.all(valid):
            unknown = np.unique(np.asarray(y)[~valid])
            raise ValueError(f"y contains previously unseen labels: {unknown.tolist()}.")
        return encoded

    def fit_transform(self, y) -> np.ndarray:
        """Fit to ``y`` and return the encoded labels."""
        return self.fit(y).transform(y)

    def inverse_transform(self, encoded) -> np.ndarray:
        """Map integer codes back to the original labels."""
        check_is_fitted(self, "classes_")
        encoded = np.asarray(encoded, dtype=int)
        if encoded.size and (encoded.min() < 0 or encoded.max() >= len(self.classes_)):
            raise ValueError("Encoded labels out of range.")
        return self.classes_[encoded]
