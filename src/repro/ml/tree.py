"""CART decision-tree classifier (from scratch, NumPy-vectorised).

This is the base learner behind both the Random Forest and the bagging
ensembles used throughout the paper.  The implementation favours the
array-based layout used by mature tree libraries:

* the fitted tree lives in flat arrays (``feature``, ``threshold``,
  ``children_left``, ``children_right``, ``value``) rather than node
  objects, which makes prediction a vectorised level-by-level routing
  loop instead of a per-sample Python walk;
* split search at each node is vectorised across *all* candidate
  features and split positions simultaneously via cumulative class
  counts over per-feature argsorts.

Two growers share this storage format (``grower`` parameter):

* ``"exact"`` (default) — the per-node argsort CART above;
* ``"hist"`` — the histogram-binned grower from
  :mod:`repro.ml.training`: features are quantile-binned once into
  ``uint8`` codes and each node accumulates per-bin class counts
  instead of sorting, with sibling subtraction.  Thresholds are real
  bin-edge values, so hist-grown trees predict on raw inputs and
  compile into the flattened inference backend unchanged.

``sample_weight`` is native and fractional for both growers: weights
enter the class counts (values, impurities, gains) directly, while the
structural ``min_samples_*`` limits keep counting raw samples.  The
old contract — integer weights applied by row replication — is
subsumed: under the default ``min_samples_*`` limits integer weights
produce the same splits without the memory blowup (gains are identical
either way; non-default limits now count raw rows where replication
counted duplicated ones), and the old "integer weights only" rejection
is retired.

Supported criteria: ``"gini"`` (default) and ``"entropy"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .backend import BackendCompileError, compile_flat_forest
from .base import BaseEstimator, ClassifierMixin
from .validation import (
    check_random_state,
    check_sample_weight,
    check_X_y,
    column_or_1d,
)

__all__ = ["DecisionTreeClassifier", "TreeStructure"]

_NO_FEATURE = -1


@dataclass
class TreeStructure:
    """Flat-array storage for a fitted binary decision tree.

    ``feature[i] == -1`` marks node ``i`` as a leaf.  ``value[i]`` holds
    the class-count distribution of training samples that reached the
    node; prediction normalises it into probabilities.
    """

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    children_left: list[int] = field(default_factory=list)
    children_right: list[int] = field(default_factory=list)
    value: list[np.ndarray] = field(default_factory=list)
    impurity: list[float] = field(default_factory=list)
    n_node_samples: list[int] = field(default_factory=list)

    def add_node(self, value: np.ndarray, impurity: float, n_samples: int) -> int:
        """Append a (provisional leaf) node; returns its index."""
        self.feature.append(_NO_FEATURE)
        self.threshold.append(0.0)
        self.children_left.append(-1)
        self.children_right.append(-1)
        self.value.append(value)
        self.impurity.append(impurity)
        self.n_node_samples.append(n_samples)
        return len(self.feature) - 1

    def finalize(self) -> None:
        """Convert the per-node lists into contiguous arrays."""
        self.feature = np.asarray(self.feature, dtype=np.int64)
        self.threshold = np.asarray(self.threshold, dtype=np.float64)
        self.children_left = np.asarray(self.children_left, dtype=np.int64)
        self.children_right = np.asarray(self.children_right, dtype=np.int64)
        self.value = np.asarray(self.value, dtype=np.float64)
        self.impurity = np.asarray(self.impurity, dtype=np.float64)
        self.n_node_samples = np.asarray(self.n_node_samples, dtype=np.int64)

    @property
    def node_count(self) -> int:
        """Total number of nodes (internal + leaves)."""
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return int(np.sum(np.asarray(self.feature) == _NO_FEATURE))

    def max_depth(self) -> int:
        """Depth of the deepest leaf (root = depth 0).

        Vectorised frontier descent over the flat child arrays: each
        step gathers the whole next level at once, so the Python loop
        runs once per *level*, not once per node.
        """
        if not self.node_count:
            return 0
        left = np.asarray(self.children_left)
        right = np.asarray(self.children_right)
        depth = 0
        frontier = np.array([0], dtype=np.int64)
        while True:
            kids = np.concatenate([left[frontier], right[frontier]])
            kids = kids[kids >= 0]
            if kids.size == 0:
                return depth
            frontier = kids
            depth += 1

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Route each row of ``X`` to its leaf index (vectorised)."""
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        feature = self.feature
        while True:
            node_feature = feature[node]
            internal = node_feature >= 0
            if not internal.any():
                return node
            idx = np.flatnonzero(internal)
            f = node_feature[idx]
            thr = self.threshold[node[idx]]
            go_left = X[idx, f] <= thr
            next_node = np.where(
                go_left,
                self.children_left[node[idx]],
                self.children_right[node[idx]],
            )
            node[idx] = next_node

    def export_text(
        self,
        *,
        feature_names: list[str] | None = None,
        class_names: list[str] | None = None,
        decimals: int = 3,
        max_depth: int | None = None,
    ) -> str:
        """Pretty-print the tree directly from its flat arrays.

        Renders depth-first, sklearn-style::

            |--- feature_2 <= 0.450
            |   |--- class: malware  (n=12)
            |--- feature_2 >  0.450
            |   |--- class: benign  (n=30)

        All structure (children, thresholds, leaf values) is read from
        the flat storage — no per-node object graph is rebuilt.
        """
        if not self.node_count:
            return "(empty tree)"
        feature = np.asarray(self.feature)
        threshold = np.asarray(self.threshold)
        left = np.asarray(self.children_left)
        right = np.asarray(self.children_right)
        value = np.asarray(self.value)
        n_samples = np.asarray(self.n_node_samples)

        def name_of(f: int) -> str:
            if feature_names is not None:
                return str(feature_names[f])
            return f"feature_{f}"

        def label_of(node: int) -> str:
            k = int(np.argmax(value[node]))
            if class_names is not None:
                return str(class_names[k])
            return f"class_{k}"

        lines: list[str] = []
        # LIFO work list of lines to emit and subtrees to expand.
        stack: list[str | tuple[int, int]] = [(0, 0)]
        while stack:
            item = stack.pop()
            if isinstance(item, str):
                lines.append(item)
                continue
            node, depth = item
            prefix = "|   " * depth + "|--- "
            if feature[node] == _NO_FEATURE:
                lines.append(
                    f"{prefix}class: {label_of(node)}  (n={int(n_samples[node])})"
                )
                continue
            if max_depth is not None and depth >= max_depth:
                lines.append(f"{prefix}...")
                continue
            fname = name_of(int(feature[node]))
            thr = float(threshold[node])
            lines.append(f"{prefix}{fname} <= {thr:.{decimals}f}")
            stack.append((int(right[node]), depth + 1))
            stack.append(f"{prefix}{fname} >  {thr:.{decimals}f}")
            stack.append((int(left[node]), depth + 1))
        return "\n".join(lines)


def _impurity(counts: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity of class-count vectors along the last axis."""
    totals = counts.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(totals > 0, counts / totals, 0.0)
    if criterion == "gini":
        return 1.0 - np.sum(p * p, axis=-1)
    if criterion == "entropy":
        with np.errstate(divide="ignore", invalid="ignore"):
            logp = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
        return -np.sum(p * logp, axis=-1)
    raise ValueError(f"Unknown criterion {criterion!r}; use 'gini' or 'entropy'.")


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART classifier with axis-aligned binary splits.

    Parameters
    ----------
    criterion:
        ``"gini"`` or ``"entropy"`` split quality.
    max_depth:
        Maximum tree depth; ``None`` grows until purity/limits.
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples in each child of a split.
    max_features:
        Features examined per split: ``None`` (all), ``"sqrt"``,
        ``"log2"``, an int, or a float fraction.  Random Forest passes
        ``"sqrt"``.
    min_impurity_decrease:
        Minimum weighted impurity decrease required for a split.
    grower:
        ``"exact"`` (per-node argsort CART) or ``"hist"`` (histogram-
        binned growth over quantile bin codes; see
        :mod:`repro.ml.training`).
    max_bins:
        Bins per feature for the ``"hist"`` grower (2..256); ignored by
        the exact grower.
    random_state:
        Seed for the per-split feature subsampling.
    """

    # Ensembles probe this to pass real-valued weights instead of
    # resampling/replicating (see AdaBoostClassifier.fit).
    _native_sample_weight = True
    # Split strategy of the hist grower; the extra-trees subclass
    # overrides it with "random".
    _splitter = "best"

    def __init__(
        self,
        *,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        min_impurity_decrease: float = 0.0,
        grower: str = "exact",
        max_bins: int = 256,
        random_state: int | np.random.Generator | None = None,
    ):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.grower = grower
        self.max_bins = max_bins
        self.random_state = random_state

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError(f"max_features fraction must be in (0, 1]; got {mf}.")
            return max(1, int(mf * n_features))
        if isinstance(mf, (int, np.integer)):
            if not 1 <= mf <= n_features:
                raise ValueError(
                    f"max_features={mf} out of range [1, {n_features}]."
                )
            return int(mf)
        raise ValueError(f"Unsupported max_features: {mf!r}.")

    def _check_growth_params(self) -> None:
        if self.grower not in ("exact", "hist"):
            raise ValueError(
                f"grower must be 'exact' or 'hist'; got {self.grower!r}."
            )
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2.")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1.")
        if self.max_depth is not None and self.max_depth < 0:
            raise ValueError("max_depth must be >= 0 or None.")

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        """Grow the tree on ``(X, y)``.

        ``sample_weight`` accepts arbitrary non-negative (fractional)
        weights, applied natively: weighted class counts drive values,
        impurities and gains, while ``min_samples_*`` limits count raw
        samples.  Under the default ``min_samples_*`` limits, integer
        weights reproduce the retired replicate-rows behaviour without
        the blowup (with non-default limits the raw-sample currency
        differs from replication's duplicated-row counts).
        """
        X, y = check_X_y(X, y)
        self._check_growth_params()
        weights = None
        if sample_weight is not None:
            weights = check_sample_weight(sample_weight, len(y))
            nonzero = weights > 0
            if not nonzero.any():
                raise ValueError("All sample weights are zero.")
            if not nonzero.all():
                X, y, weights = X[nonzero], y[nonzero], weights[nonzero]

        if self.grower == "hist":
            from .training import BinMapper, BinnedDataset

            binned = BinnedDataset(BinMapper(max_bins=self.max_bins), X)
            return self._fit_binned(binned.view(), y, sample_weight=weights)

        self.classes_, y_encoded = np.unique(y, return_inverse=True)
        self.n_classes_ = len(self.classes_)
        self.n_features_in_ = X.shape[1]

        rng = check_random_state(self.random_state)
        n_candidate_features = self._resolve_max_features(self.n_features_in_)
        tree = TreeStructure()
        criterion = self.criterion
        max_depth = np.inf if self.max_depth is None else self.max_depth

        onehot = np.eye(self.n_classes_, dtype=np.float64)[y_encoded]
        if weights is not None:
            onehot = onehot * weights[:, None]

        # Depth-first growth; each stack entry is (sample_indices, depth,
        # parent_node, is_left_child).  Parent linkage patched after child
        # creation.
        root_counts = onehot.sum(axis=0)
        total_weight = float(root_counts.sum())
        root = tree.add_node(root_counts, float(_impurity(root_counts, criterion)), len(y))
        stack: list[tuple[np.ndarray, int, int]] = [(np.arange(len(y)), 0, root)]

        while stack:
            indices, depth, node_id = stack.pop()
            n_node = len(indices)
            counts = tree.value[node_id]
            node_impurity = tree.impurity[node_id]

            if (
                depth >= max_depth
                or n_node < self.min_samples_split
                or n_node < 2 * self.min_samples_leaf
                or node_impurity <= 1e-12
            ):
                continue  # stays a leaf

            split = self._best_split(
                X, onehot, indices, counts, node_impurity,
                n_candidate_features, rng, criterion,
            )
            if split is None:
                continue
            feature_idx, threshold, gain = split
            if gain * counts.sum() / total_weight < self.min_impurity_decrease:
                continue

            go_left = X[indices, feature_idx] <= threshold
            left_indices = indices[go_left]
            right_indices = indices[~go_left]
            if (
                len(left_indices) < self.min_samples_leaf
                or len(right_indices) < self.min_samples_leaf
            ):
                continue

            left_counts = onehot[left_indices].sum(axis=0)
            right_counts = counts - left_counts
            left_id = tree.add_node(
                left_counts, float(_impurity(left_counts, criterion)), len(left_indices)
            )
            right_id = tree.add_node(
                right_counts, float(_impurity(right_counts, criterion)), len(right_indices)
            )
            tree.feature[node_id] = feature_idx
            tree.threshold[node_id] = threshold
            tree.children_left[node_id] = left_id
            tree.children_right[node_id] = right_id
            stack.append((right_indices, depth + 1, right_id))
            stack.append((left_indices, depth + 1, left_id))

        tree.finalize()
        self.tree_ = tree
        # Any compiled flat backend refers to the previous tree.
        self.__dict__.pop("_backend_cache_", None)
        return self

    def _fit_binned(self, view, y, sample_weight=None) -> "DecisionTreeClassifier":
        """Grow from an already-binned dataset view (no re-binning).

        The ensemble fast path: Bagging/RF/ExtraTrees bin the training
        set once (:class:`~repro.ml.training.BinnedDataset`) and every
        member grows from the shared codes.  ``sample_weight`` carries
        bootstrap multiplicities (or boosting weights) natively;
        zero-weight rows are excluded from growth without copying the
        code matrix.
        """
        from .training import grow_tree_binned

        self._check_growth_params()
        y = column_or_1d(y)
        if len(y) != view.n_rows:
            raise ValueError(
                f"y has {len(y)} entries but the binned view has "
                f"{view.n_rows} rows."
            )
        rows = None
        weights = None
        if sample_weight is not None:
            weights = check_sample_weight(sample_weight, len(y))
            rows = np.flatnonzero(weights > 0).astype(np.intp)
            if rows.size == 0:
                raise ValueError("All sample weights are zero.")
        self.classes_ = np.unique(y if rows is None else y[rows])
        self.n_classes_ = len(self.classes_)
        self.n_features_in_ = view.n_features
        # Clip keeps excluded (zero-weight) rows' codes in range; their
        # labels never enter any histogram or prefix sum.
        y_encoded = np.clip(
            np.searchsorted(self.classes_, y), 0, self.n_classes_ - 1
        )
        self.tree_ = grow_tree_binned(
            view,
            y_encoded,
            self.n_classes_,
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            n_candidate_features=self._resolve_max_features(view.n_features),
            splitter=self._splitter,
            sample_weight=weights,
            rows=rows,
            random_state=self.random_state,
        )
        self.__dict__.pop("_backend_cache_", None)
        return self

    def _best_split(
        self,
        X: np.ndarray,
        onehot: np.ndarray,
        indices: np.ndarray,
        counts: np.ndarray,
        node_impurity: float,
        n_candidate_features: int,
        rng: np.random.Generator,
        criterion: str,
    ) -> tuple[int, float, float] | None:
        """Best (feature, threshold, impurity_gain) over a feature subset.

        Vectorised: for the chosen features, all node samples are sorted
        per feature, class counts are accumulated with prefix sums and
        the impurity of every admissible split position is evaluated at
        once.
        """
        n_node = len(indices)
        n_features = X.shape[1]
        if n_candidate_features < n_features:
            feats = rng.choice(n_features, size=n_candidate_features, replace=False)
        else:
            feats = np.arange(n_features)

        Xn = X[np.ix_(indices, feats)]              # (n_node, n_feats)
        order = np.argsort(Xn, axis=0, kind="stable")
        Xs = np.take_along_axis(Xn, order, axis=0)   # sorted values

        yn = onehot[indices]                         # (n_node, n_classes)
        # sorted class indicators per feature: (n_node, n_feats, n_classes)
        ys = yn[order]
        left_counts = np.cumsum(ys, axis=0)          # counts left of each cut
        total = counts[None, None, :]
        right_counts = total - left_counts

        # Split after position i uses threshold between Xs[i] and Xs[i+1].
        # Admissible cuts: value actually changes and both sides satisfy
        # min_samples_leaf.
        cuts = slice(self.min_samples_leaf - 1, n_node - self.min_samples_leaf)
        lc = left_counts[cuts]                       # (n_cuts, n_feats, k)
        rc = right_counts[cuts]
        if lc.shape[0] == 0:
            return None
        value_changes = Xs[cuts.start + 1 : cuts.stop + 1] > Xs[cuts]

        # Weighted child totals; equals the positional counts when the
        # fit is unweighted (onehot rows then sum to exactly 1).
        n_left = lc.sum(axis=-1)
        n_right = rc.sum(axis=-1)
        child_impurity = (
            n_left * _impurity(lc, criterion) + n_right * _impurity(rc, criterion)
        ) / counts.sum()
        gain = node_impurity - child_impurity
        gain = np.where(value_changes, gain, -np.inf)

        best_flat = int(np.argmax(gain))
        best_cut, best_feat_pos = np.unravel_index(best_flat, gain.shape)
        best_gain = gain[best_cut, best_feat_pos]
        if not np.isfinite(best_gain) or best_gain <= 1e-12:
            return None

        row = cuts.start + best_cut
        lo = Xs[row, best_feat_pos]
        hi = Xs[row + 1, best_feat_pos]
        threshold = float(lo + (hi - lo) / 2.0)
        if threshold == hi:  # guard midpoint rounding into the right side
            threshold = float(lo)
        return int(feats[best_feat_pos]), threshold, float(best_gain)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------

    def _flat(self):
        """Compiled single-member flat backend (cached per fitted tree).

        Node ids in the compiled tensor coincide with the tree's own
        flat-array indices (single member, zero offset), so the two
        storages are interchangeable.  ``None`` when compilation is
        unsupported (callers use ``tree_.apply`` directly).
        """
        cache = getattr(self, "_backend_cache_", None)
        if cache is not None and cache[0] is self.tree_:
            return cache[1]
        try:
            backend = compile_flat_forest(
                [self], self.classes_, self.n_features_in_
            )
        except BackendCompileError:
            backend = None
        self._backend_cache_ = (self.tree_, backend)
        return backend

    def _apply_validated(self, X: np.ndarray) -> np.ndarray:
        """Leaf ids for already-validated input, via the flat backend."""
        backend = self._flat()
        if backend is None:
            return self.tree_.apply(X)
        return backend.apply(X)[:, 0]

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities = normalised class counts at the leaf."""
        X = self._check_predict_input(X)
        counts = self.tree_.value[self._apply_validated(X)]
        totals = counts.sum(axis=1, keepdims=True)
        return counts / totals

    def predict(self, X) -> np.ndarray:
        """Most probable class per sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def apply(self, X) -> np.ndarray:
        """Leaf index for each sample."""
        X = self._check_predict_input(X)
        return self._apply_validated(X)

    def export_text(
        self,
        *,
        feature_names: list[str] | None = None,
        decimals: int = 3,
        max_depth: int | None = None,
    ) -> str:
        """Human-readable rendering of the fitted tree (flat-array walk)."""
        from .validation import check_is_fitted

        check_is_fitted(self)
        return self.tree_.export_text(
            feature_names=feature_names,
            class_names=[str(c) for c in self.classes_],
            decimals=decimals,
            max_depth=max_depth,
        )

    def get_depth(self) -> int:
        """Depth of the fitted tree."""
        return self.tree_.max_depth()

    def get_n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        return self.tree_.n_leaves

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-decrease importances, normalised to sum to 1.

        One vectorised pass over the flat arrays: the weighted impurity
        decrease of every internal node is computed at once and summed
        into its split feature with a weighted bincount.
        """
        tree = self.tree_
        feature = np.asarray(tree.feature)
        internal = np.flatnonzero(feature >= 0)
        if internal.size == 0:
            return np.zeros(self.n_features_in_)
        impurity = np.asarray(tree.impurity)
        # Weighted node totals (= sample counts for unweighted fits),
        # so weighted trees weigh decreases by the mass they act on.
        n_node = np.asarray(tree.value).sum(axis=1)
        left = np.asarray(tree.children_left)[internal]
        right = np.asarray(tree.children_right)[internal]
        decrease = n_node[internal] * impurity[internal] - (
            n_node[left] * impurity[left] + n_node[right] * impurity[right]
        )
        importances = np.bincount(
            feature[internal], weights=decrease, minlength=self.n_features_in_
        )
        total = importances.sum()
        return importances / total if total > 0 else importances
