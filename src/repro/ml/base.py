"""Estimator base classes for the from-scratch ML substrate.

The API deliberately mirrors the small core of scikit-learn's estimator
contract that the paper's pipeline relies on:

* constructor parameters are stored verbatim on ``self``;
* :meth:`get_params` / :meth:`set_params` expose them for cloning and
  grid search;
* :func:`clone` produces an unfitted copy with identical parameters —
  this is what bagging uses to stamp out base classifiers;
* fitted state lives in trailing-underscore attributes.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

from .validation import check_array, check_is_fitted

__all__ = ["BaseEstimator", "ClassifierMixin", "TransformerMixin", "clone"]


class BaseEstimator:
    """Base class providing parameter introspection and cloning support."""

    @classmethod
    def _get_param_names(cls) -> list[str]:
        """Constructor argument names, sorted, excluding ``self``/varargs."""
        init = cls.__init__
        if init is object.__init__:
            return []
        signature = inspect.signature(init)
        names = [
            p.name
            for p in signature.parameters.values()
            if p.name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]
        return sorted(names)

    def get_params(self, deep: bool = True) -> dict[str, Any]:
        """Return constructor parameters as a dict.

        With ``deep=True`` nested estimators contribute their own
        parameters under ``<name>__<param>`` keys.
        """
        params: dict[str, Any] = {}
        for name in self._get_param_names():
            value = getattr(self, name)
            params[name] = value
            if deep and isinstance(value, BaseEstimator):
                for sub_name, sub_value in value.get_params(deep=True).items():
                    params[f"{name}__{sub_name}"] = sub_value
        return params

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set constructor parameters; supports ``nested__param`` syntax."""
        if not params:
            return self
        valid = set(self._get_param_names())
        nested: dict[str, dict[str, Any]] = {}
        for key, value in params.items():
            name, _, sub_key = key.partition("__")
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for estimator "
                    f"{type(self).__name__}. Valid parameters: {sorted(valid)}."
                )
            if sub_key:
                nested.setdefault(name, {})[sub_key] = value
            else:
                setattr(self, name, value)
        for name, sub_params in nested.items():
            sub_estimator = getattr(self, name)
            if not isinstance(sub_estimator, BaseEstimator):
                raise ValueError(
                    f"Parameter {name!r} is not an estimator; cannot set "
                    f"nested parameters {sorted(sub_params)}."
                )
            sub_estimator.set_params(**sub_params)
        return self

    def __repr__(self) -> str:
        params = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._get_param_names()
        )
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an *unfitted* copy of ``estimator`` with identical parameters.

    Parameter values are deep-copied so that mutable defaults (lists,
    nested estimators) are not shared between the original and the clone.
    """
    if not isinstance(estimator, BaseEstimator):
        raise TypeError(
            f"clone expects a BaseEstimator, got {type(estimator).__name__}."
        )
    params = {
        name: copy.deepcopy(getattr(estimator, name))
        for name in estimator._get_param_names()
    }
    return type(estimator)(**params)


class ClassifierMixin:
    """Mixin adding :meth:`score` (accuracy) and prediction helpers."""

    _estimator_type = "classifier"

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy of :meth:`predict` on ``(X, y)``."""
        from .metrics import accuracy_score

        return accuracy_score(np.asarray(y).ravel(), self.predict(X))

    def _check_predict_input(self, X: Any) -> np.ndarray:
        """Validate ``X`` at predict time against the fitted feature count."""
        check_is_fitted(self)
        X = check_array(X)
        n_features = getattr(self, "n_features_in_", None)
        if n_features is not None and X.shape[1] != n_features:
            raise ValueError(
                f"{type(self).__name__} was fitted with {n_features} features "
                f"but predict received {X.shape[1]}."
            )
        return X


class TransformerMixin:
    """Mixin adding :meth:`fit_transform`."""

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        """Fit to ``X`` then transform it in one call."""
        return self.fit(X, y).transform(X)
