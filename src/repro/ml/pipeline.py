"""Transformer/estimator pipeline composition.

A minimal counterpart of sklearn's ``Pipeline``: a sequence of named
transformers followed by a final estimator, presented as a single
estimator (so it can be cloned, grid-searched and used as a bagging
base).  The HMD processing chain of Fig. 2 — scaling, dimensionality
reduction, classification — is exactly this shape.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import BaseEstimator, ClassifierMixin, clone
from .validation import check_is_fitted

__all__ = ["Pipeline", "make_pipeline"]


class Pipeline(BaseEstimator, ClassifierMixin):
    """Chain of ``(name, transformer)`` steps ending in an estimator.

    Every step except the last must expose ``fit``/``transform``; the
    last step may be any estimator (classifier or transformer).
    """

    def __init__(self, steps: list[tuple[str, BaseEstimator]]):
        self.steps = steps

    def _validate_steps(self) -> None:
        if not self.steps:
            raise ValueError("Pipeline needs at least one step.")
        names = [name for name, _ in self.steps]
        if len(set(names)) != len(names):
            raise ValueError(f"Step names must be unique; got {names}.")
        for name, step in self.steps[:-1]:
            if not hasattr(step, "transform"):
                raise ValueError(
                    f"Intermediate step {name!r} must implement transform."
                )

    @property
    def named_steps(self) -> dict[str, Any]:
        """Mapping of step name to the (fitted, if fit was called) step."""
        fitted = getattr(self, "steps_", None)
        source = fitted if fitted is not None else self.steps
        return dict(source)

    def fit(self, X, y=None) -> "Pipeline":
        """Fit each transformer on the running representation, then the
        final estimator."""
        self._validate_steps()
        self.steps_: list[tuple[str, BaseEstimator]] = []
        Z = np.asarray(X)
        for name, step in self.steps[:-1]:
            fitted = clone(step)
            Z = fitted.fit(Z, y).transform(Z) if _wants_y(fitted) else fitted.fit(Z).transform(Z)
            self.steps_.append((name, fitted))
        final_name, final_step = self.steps[-1]
        final = clone(final_step)
        if y is not None:
            final.fit(Z, y)
        else:
            final.fit(Z)
        self.steps_.append((final_name, final))
        if hasattr(final, "classes_"):
            self.classes_ = final.classes_
        self.n_features_in_ = np.asarray(X).shape[1]
        return self

    def _transform_through(self, X) -> np.ndarray:
        check_is_fitted(self, "steps_")
        Z = np.asarray(X)
        for _, step in self.steps_[:-1]:
            Z = step.transform(Z)
        return Z

    def transform(self, X) -> np.ndarray:
        """Apply every step's transform (final step must transform too)."""
        Z = self._transform_through(X)
        final = self.steps_[-1][1]
        if not hasattr(final, "transform"):
            raise AttributeError("Final step does not implement transform.")
        return final.transform(Z)

    def predict(self, X) -> np.ndarray:
        """Transform through the chain and predict with the final step."""
        return self.steps_[-1][1].predict(self._transform_through(X))

    def predict_proba(self, X) -> np.ndarray:
        """Transform through the chain and predict probabilities."""
        return self.steps_[-1][1].predict_proba(self._transform_through(X))

    def decisions(self, X) -> np.ndarray:
        """Expose ensemble member votes when the final step has them."""
        final = self.steps_[-1][1]
        if not hasattr(final, "decisions"):
            raise AttributeError("Final step does not expose decisions().")
        return final.decisions(self._transform_through(X))

    def decisions_fast(self, X) -> np.ndarray:
        """Member votes through the final step's compiled vote backend.

        Falls back to :meth:`decisions` when the final step has no
        compiled path.
        """
        final = self.steps_[-1][1]
        fast = getattr(final, "decisions_fast", None)
        if fast is None:
            return self.decisions(X)
        return fast(self._transform_through(X))


def _wants_y(step: BaseEstimator) -> bool:
    """Whether a transformer's fit accepts a label argument."""
    import inspect

    try:
        params = inspect.signature(step.fit).parameters
    except (TypeError, ValueError):
        return False
    return "y" in params


def make_pipeline(*steps: BaseEstimator) -> Pipeline:
    """Build a Pipeline with auto-generated step names."""
    named = [
        (f"{type(step).__name__.lower()}_{i}", step) for i, step in enumerate(steps)
    ]
    return Pipeline(named)
