"""Dataset splitting and cross-validation utilities.

The paper splits the *known* signatures into train/test (Fig. 6) and the
reproduction additionally uses stratified K-fold cross-validation when
tuning the base classifiers.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import BaseEstimator, clone
from .validation import check_random_state, column_or_1d

__all__ = [
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "GridSearchCV",
]


def _resolve_test_size(n_samples: int, test_size: float | int) -> int:
    if isinstance(test_size, float):
        if not 0.0 < test_size < 1.0:
            raise ValueError(f"test_size fraction must be in (0, 1); got {test_size}.")
        n_test = int(round(n_samples * test_size))
    else:
        n_test = int(test_size)
    if not 0 < n_test < n_samples:
        raise ValueError(
            f"test_size={test_size} leaves no samples for train or test "
            f"(n_samples={n_samples})."
        )
    return n_test


def train_test_split(
    *arrays,
    test_size: float | int = 0.25,
    random_state: int | np.random.Generator | None = None,
    stratify=None,
    shuffle: bool = True,
):
    """Split any number of same-length arrays into train/test partitions.

    With ``stratify`` given, class proportions are preserved in both
    partitions (the paper's known-data split keeps benign/malware ratios).
    """
    if not arrays:
        raise ValueError("At least one array is required.")
    n_samples = len(arrays[0])
    for a in arrays:
        if len(a) != n_samples:
            raise ValueError("All arrays must share the same length.")
    n_test = _resolve_test_size(n_samples, test_size)
    rng = check_random_state(random_state)

    if stratify is not None:
        if not shuffle:
            raise ValueError("Stratified splitting requires shuffle=True.")
        strat = column_or_1d(stratify, name="stratify")
        if len(strat) != n_samples:
            raise ValueError("stratify must match the array length.")
        test_idx_parts = []
        for label in np.unique(strat):
            members = np.flatnonzero(strat == label)
            rng.shuffle(members)
            # Proportional allocation, at least one test sample per class
            # when the class is large enough.
            n_label_test = int(round(len(members) * n_test / n_samples))
            n_label_test = min(max(n_label_test, 1 if len(members) > 1 else 0),
                               len(members) - 1 if len(members) > 1 else 0)
            test_idx_parts.append(members[:n_label_test])
        test_idx = np.concatenate(test_idx_parts) if test_idx_parts else np.array([], dtype=int)
        test_mask = np.zeros(n_samples, dtype=bool)
        test_mask[test_idx] = True
        train_idx = np.flatnonzero(~test_mask)
        test_idx = np.flatnonzero(test_mask)
    else:
        indices = np.arange(n_samples)
        if shuffle:
            rng.shuffle(indices)
        test_idx = indices[:n_test]
        train_idx = indices[n_test:]

    result = []
    for a in arrays:
        a = np.asarray(a)
        result.append(a[train_idx])
        result.append(a[test_idx])
    return result


class KFold:
    """Plain K-fold cross-validation splitter."""

    def __init__(
        self,
        n_splits: int = 5,
        *,
        shuffle: bool = False,
        random_state: int | np.random.Generator | None = None,
    ):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2; got {n_splits}.")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` for each fold."""
        n_samples = len(X)
        if self.n_splits > n_samples:
            raise ValueError(
                f"n_splits={self.n_splits} > n_samples={n_samples}."
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            check_random_state(self.random_state).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test_idx = indices[start : start + size]
            train_idx = np.concatenate([indices[:start], indices[start + size :]])
            yield train_idx, test_idx
            start += size

    def get_n_splits(self) -> int:
        """Number of folds."""
        return self.n_splits


class StratifiedKFold(KFold):
    """K-fold preserving per-class proportions in every fold."""

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield stratified ``(train_indices, test_indices)`` folds."""
        if y is None:
            raise ValueError("StratifiedKFold requires y.")
        y = column_or_1d(y)
        n_samples = len(y)
        if self.n_splits > n_samples:
            raise ValueError(
                f"n_splits={self.n_splits} > n_samples={n_samples}."
            )
        rng = check_random_state(self.random_state)
        # Assign each sample a fold id, round-robin within its class.
        fold_of = np.empty(n_samples, dtype=int)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(members)
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for fold in range(self.n_splits):
            test_idx = np.flatnonzero(fold_of == fold)
            train_idx = np.flatnonzero(fold_of != fold)
            yield train_idx, test_idx


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    *,
    cv: int | KFold = 5,
    scoring=None,
) -> np.ndarray:
    """Fit a clone of ``estimator`` per fold and return per-fold scores.

    ``scoring`` is a callable ``(y_true, y_pred) -> float``; ``None``
    uses accuracy.
    """
    X = np.asarray(X)
    y = column_or_1d(y)
    splitter = StratifiedKFold(cv) if isinstance(cv, int) else cv
    if scoring is None:
        from .metrics import accuracy_score as scoring  # noqa: PLW0127

    scores = []
    for train_idx, test_idx in splitter.split(X, y):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(scoring(y[test_idx], model.predict(X[test_idx])))
    return np.asarray(scores)


class GridSearchCV(BaseEstimator):
    """Exhaustive parameter search by cross-validated score.

    A deliberately small implementation: a dict of parameter lists, the
    cartesian product of which is evaluated with :func:`cross_val_score`;
    the best combination refits on the full data.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: dict,
        *,
        cv: int = 3,
        scoring=None,
    ):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scoring = scoring

    def _iter_grid(self) -> Iterator[dict]:
        names = sorted(self.param_grid)
        values = [self.param_grid[name] for name in names]

        def recurse(i: int, current: dict) -> Iterator[dict]:
            if i == len(names):
                yield dict(current)
                return
            for v in values[i]:
                current[names[i]] = v
                yield from recurse(i + 1, current)

        yield from recurse(0, {})

    def fit(self, X, y) -> "GridSearchCV":
        """Evaluate the grid, keep the best parameters and refit."""
        if not self.param_grid:
            raise ValueError("param_grid is empty.")
        results = []
        for params in self._iter_grid():
            candidate = clone(self.estimator).set_params(**params)
            scores = cross_val_score(candidate, X, y, cv=self.cv, scoring=self.scoring)
            results.append((float(scores.mean()), params))
        if not results:
            raise ValueError("param_grid is empty.")
        results.sort(key=lambda item: -item[0])
        self.best_score_, self.best_params_ = results[0]
        self.cv_results_ = results
        self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict with the refitted best estimator."""
        return self.best_estimator_.predict(X)
