"""k-nearest-neighbour classifier.

Used (a) as an additional base classifier in diversity ablations and
(b) by the latent-space overlap metrics that quantify the paper's Fig. 8
t-SNE argument.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin
from .metrics.pairwise import squared_euclidean_distances
from .validation import check_X_y

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Brute-force k-NN with uniform or distance weighting.

    Brute force is appropriate here: HMD feature matrices are a few
    thousand rows by a few dozen columns, where a vectorised distance
    matrix beats tree indexes in NumPy.
    """

    def __init__(self, *, n_neighbors: int = 5, weights: str = "uniform"):
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X, y, sample_weight=None) -> "KNeighborsClassifier":
        """Memorise the training set."""
        X, y = check_X_y(X, y)
        if sample_weight is not None:
            weights = np.round(np.asarray(sample_weight)).astype(int)
            if np.any(weights < 0):
                raise ValueError("sample_weight must be non-negative.")
            X = np.repeat(X, weights, axis=0)
            y = np.repeat(y, weights, axis=0)
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1.")
        if self.n_neighbors > len(y):
            raise ValueError(
                f"n_neighbors={self.n_neighbors} > n_samples={len(y)}."
            )
        if self.weights not in ("uniform", "distance"):
            raise ValueError(f"Unknown weights {self.weights!r}.")
        self.classes_, self._y_encoded = np.unique(y, return_inverse=True)
        self.n_features_in_ = X.shape[1]
        self._fit_X = X
        return self

    def _neighbor_votes(self, X: np.ndarray) -> np.ndarray:
        d2 = squared_euclidean_distances(X, self._fit_X)
        k = self.n_neighbors
        neighbor_idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        labels = self._y_encoded[neighbor_idx]  # (n, k)
        n_classes = len(self.classes_)
        if self.weights == "uniform":
            w = np.ones_like(labels, dtype=float)
        else:
            rows = np.arange(X.shape[0])[:, None]
            dist = np.sqrt(d2[rows, neighbor_idx])
            w = 1.0 / np.maximum(dist, 1e-12)
        votes = np.zeros((X.shape[0], n_classes))
        for cls in range(n_classes):
            votes[:, cls] = np.sum(w * (labels == cls), axis=1)
        return votes

    def predict_proba(self, X) -> np.ndarray:
        """Vote fractions over the k nearest neighbours."""
        X = self._check_predict_input(X)
        votes = self._neighbor_votes(X)
        return votes / votes.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        """Majority-vote class labels."""
        X = self._check_predict_input(X)
        votes = self._neighbor_votes(X)
        return self.classes_[np.argmax(votes, axis=1)]

    def kneighbors(self, X, n_neighbors: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Distances and indices of the k nearest training points."""
        X = self._check_predict_input(X)
        k = n_neighbors or self.n_neighbors
        d2 = squared_euclidean_distances(X, self._fit_X)
        idx = np.argsort(d2, axis=1)[:, :k]
        rows = np.arange(X.shape[0])[:, None]
        return np.sqrt(d2[rows, idx]), idx
