"""Support Vector Machines.

Two implementations are provided:

* :class:`LinearSVC` — primal L2-regularised squared-hinge SVM solved
  with L-BFGS.  Because the primal problem is strictly convex, bagging
  replicas trained on bootstrap resamples land on nearly identical
  hyperplanes — exactly the low-diversity failure mode the paper reports
  for the SVM ensemble ("bagging is unable to generate enough diversity",
  Section V.A).
* :class:`SVC` — kernel SVM (RBF/linear/poly) trained with a simplified
  SMO working-set solver.  Practical for the DVFS-scale datasets
  (thousands of samples); mirrors the paper in that it does not converge
  within budget on the much larger HPC dataset.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy import optimize

from .base import BaseEstimator, ClassifierMixin
from .exceptions import ConvergenceError, ConvergenceWarning
from .metrics.pairwise import linear_kernel, polynomial_kernel, rbf_kernel
from .validation import check_random_state, check_X_y

__all__ = ["LinearSVC", "SVC"]


class LinearSVC(BaseEstimator, ClassifierMixin):
    """Linear SVM minimising squared hinge loss + L2 penalty (primal).

    Parameters mirror :class:`LogisticRegression`: ``C`` is the inverse
    regularisation strength.
    """

    def __init__(
        self,
        *,
        C: float = 1.0,
        max_iter: int = 500,
        tol: float = 1e-6,
        fit_intercept: bool = True,
        random_state: int | np.random.Generator | None = None,
    ):
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.random_state = random_state

    def fit(self, X, y, sample_weight=None) -> "LinearSVC":
        """Fit the primal squared-hinge problem with L-BFGS."""
        X, y = check_X_y(X, y)
        if sample_weight is not None:
            weights = np.round(np.asarray(sample_weight)).astype(int)
            if np.any(weights < 0):
                raise ValueError("sample_weight must be non-negative.")
            X = np.repeat(X, weights, axis=0)
            y = np.repeat(y, weights, axis=0)
        if self.C <= 0:
            raise ValueError(f"C must be positive; got {self.C}.")
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError("LinearSVC supports binary classification only.")
        self.n_features_in_ = X.shape[1]
        y_signed = np.where(y == self.classes_[1], 1.0, -1.0)
        n_samples, n_features = X.shape
        alpha = 1.0 / (self.C * n_samples)

        def objective(w_full: np.ndarray):
            w = w_full[:n_features]
            b = w_full[n_features] if self.fit_intercept else 0.0
            margins = y_signed * (X @ w + b)
            slack = np.maximum(0.0, 1.0 - margins)
            loss = np.mean(slack**2) + 0.5 * alpha * (w @ w)
            coeff = -2.0 * y_signed * slack / n_samples
            grad_w = X.T @ coeff + alpha * w
            if self.fit_intercept:
                return loss, np.concatenate([grad_w, [coeff.sum()]])
            return loss, grad_w

        rng = check_random_state(self.random_state)
        size = n_features + (1 if self.fit_intercept else 0)
        w0 = rng.normal(scale=1e-3, size=size)
        result = optimize.minimize(
            objective,
            w0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        if not result.success:
            warnings.warn(
                "LinearSVC solver did not fully converge.",
                ConvergenceWarning,
                stacklevel=2,
            )
        self.coef_ = result.x[:n_features][None, :]
        self.intercept_ = np.array(
            [result.x[n_features] if self.fit_intercept else 0.0]
        )
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed distance to the separating hyperplane."""
        X = self._check_predict_input(X)
        return (X @ self.coef_.T + self.intercept_).ravel()

    def predict(self, X) -> np.ndarray:
        """Predicted class labels."""
        return self.classes_[(self.decision_function(X) > 0).astype(int)]


class SVC(BaseEstimator, ClassifierMixin):
    """Kernel SVM trained with a simplified SMO working-set solver.

    Parameters
    ----------
    C:
        Box constraint on the dual variables.
    kernel:
        ``"rbf"`` (default), ``"linear"`` or ``"poly"``.
    gamma:
        Kernel coefficient; ``"scale"`` uses ``1 / (n_features * X.var())``.
    max_passes:
        Number of consecutive no-progress sweeps before declaring
        convergence.
    max_iter:
        Hard cap on full sweeps over the data.  If exhausted,
        behaviour follows ``on_no_convergence``: ``"warn"`` (keep the
        current model) or ``"raise"`` (:class:`ConvergenceError`) — the
        latter reproduces the paper's "SVM failed to converge using the
        bootstrapped dataset" observation on oversized inputs.
    """

    def __init__(
        self,
        *,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        degree: int = 3,
        coef0: float = 1.0,
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 100,
        on_no_convergence: str = "warn",
        random_state: int | np.random.Generator | None = None,
    ):
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.on_no_convergence = on_no_convergence
        self.random_state = random_state

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0 / X.shape[1]
        if self.gamma == "auto":
            return 1.0 / X.shape[1]
        gamma = float(self.gamma)
        if gamma <= 0:
            raise ValueError(f"gamma must be positive; got {gamma}.")
        return gamma

    def _kernel_matrix(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        gamma = self._gamma_
        if self.kernel == "rbf":
            return rbf_kernel(X, Y, gamma=gamma)
        if self.kernel == "linear":
            return linear_kernel(X, Y)
        if self.kernel == "poly":
            return polynomial_kernel(
                X, Y, degree=self.degree, gamma=gamma, coef0=self.coef0
            )
        raise ValueError(f"Unknown kernel {self.kernel!r}.")

    def fit(self, X, y, sample_weight=None) -> "SVC":
        """Train dual variables with SMO; stores support vectors only."""
        X, y = check_X_y(X, y)
        if sample_weight is not None:
            weights = np.round(np.asarray(sample_weight)).astype(int)
            if np.any(weights < 0):
                raise ValueError("sample_weight must be non-negative.")
            X = np.repeat(X, weights, axis=0)
            y = np.repeat(y, weights, axis=0)
        if self.C <= 0:
            raise ValueError(f"C must be positive; got {self.C}.")
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError("SVC supports binary classification only.")
        self.n_features_in_ = X.shape[1]
        self._gamma_ = self._resolve_gamma(X)

        y_signed = np.where(y == self.classes_[1], 1.0, -1.0)
        n = len(y_signed)
        K = self._kernel_matrix(X)
        alphas = np.zeros(n)
        b = 0.0
        rng = check_random_state(self.random_state)

        # f(i) cached as K @ (alphas * y) + b is recomputed incrementally.
        errors = -y_signed.copy()  # f(x)=0 initially, E = f - y
        passes = 0
        sweeps = 0
        converged = False
        while passes < self.max_passes:
            if sweeps >= self.max_iter:
                break
            sweeps += 1
            changed = 0
            for i in range(n):
                E_i = errors[i]
                r_i = E_i * y_signed[i]
                if not ((r_i < -self.tol and alphas[i] < self.C) or
                        (r_i > self.tol and alphas[i] > 0)):
                    continue
                # Second-choice heuristic: max |E_i - E_j|.
                j = int(np.argmax(np.abs(errors - E_i)))
                if j == i:
                    j = int(rng.integers(n - 1))
                    if j >= i:
                        j += 1
                if self._smo_step(i, j, K, y_signed, alphas, errors):
                    changed += 1
                    continue
                # Fall back to a random second index.
                j = int(rng.integers(n - 1))
                if j >= i:
                    j += 1
                if self._smo_step(i, j, K, y_signed, alphas, errors):
                    changed += 1
            if changed == 0:
                passes += 1
            else:
                passes = 0
        else:
            converged = True

        if not converged:
            message = (
                f"SVC/SMO did not converge within max_iter={self.max_iter} "
                f"sweeps on n={n} samples."
            )
            if self.on_no_convergence == "raise":
                raise ConvergenceError(message)
            warnings.warn(message, ConvergenceWarning, stacklevel=2)

        # Recover the bias from the KKT conditions of free vectors.
        free = (alphas > 1e-8) & (alphas < self.C - 1e-8)
        f_no_bias = K @ (alphas * y_signed)
        if free.any():
            b = float(np.mean(y_signed[free] - f_no_bias[free]))
        else:
            support = alphas > 1e-8
            b = (
                float(np.mean(y_signed[support] - f_no_bias[support]))
                if support.any()
                else 0.0
            )

        support = alphas > 1e-8
        self.support_ = np.flatnonzero(support)
        self.support_vectors_ = X[support]
        self.dual_coef_ = (alphas * y_signed)[support]
        self.intercept_ = np.array([b])
        self.n_iter_ = sweeps
        return self

    def _smo_step(
        self,
        i: int,
        j: int,
        K: np.ndarray,
        y: np.ndarray,
        alphas: np.ndarray,
        errors: np.ndarray,
    ) -> bool:
        """One SMO pair update; returns True when alphas changed."""
        if i == j:
            return False
        a_i_old, a_j_old = alphas[i], alphas[j]
        if y[i] != y[j]:
            low = max(0.0, a_j_old - a_i_old)
            high = min(self.C, self.C + a_j_old - a_i_old)
        else:
            low = max(0.0, a_i_old + a_j_old - self.C)
            high = min(self.C, a_i_old + a_j_old)
        if low >= high:
            return False
        eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
        if eta >= 0:
            return False
        a_j = a_j_old - y[j] * (errors[i] - errors[j]) / eta
        a_j = float(np.clip(a_j, low, high))
        if abs(a_j - a_j_old) < 1e-7 * (a_j + a_j_old + 1e-7):
            return False
        a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j)
        alphas[i], alphas[j] = a_i, a_j
        # Incremental error update: f changes by the two delta terms.
        delta_i = (a_i - a_i_old) * y[i]
        delta_j = (a_j - a_j_old) * y[j]
        errors += delta_i * K[:, i] + delta_j * K[:, j]
        return True

    def decision_function(self, X) -> np.ndarray:
        """Kernel expansion over the support vectors plus bias."""
        X = self._check_predict_input(X)
        if len(self.support_vectors_) == 0:
            return np.full(X.shape[0], self.intercept_[0])
        K = self._kernel_matrix(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_[0]

    def predict(self, X) -> np.ndarray:
        """Predicted class labels."""
        return self.classes_[(self.decision_function(X) > 0).astype(int)]
