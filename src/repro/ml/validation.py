"""Input validation helpers shared by every estimator in :mod:`repro.ml`.

These mirror the small subset of scikit-learn's ``utils.validation`` that
the reproduction needs: array coercion, shape checks, fitted-state checks
and RNG normalisation.  Keeping them in one module means every estimator
fails with the same, predictable error messages.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from .exceptions import DataDimensionError, NotFittedError

__all__ = [
    "check_array",
    "check_X_y",
    "check_is_fitted",
    "check_random_state",
    "check_sample_weight",
    "column_or_1d",
    "check_consistent_length",
    "unique_labels",
]


def check_random_state(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for a fresh nondeterministic generator, an ``int`` seed,
        or an existing generator (returned unchanged).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"random_state must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )


def check_array(
    X: Any,
    *,
    dtype: type | None = np.float64,
    ensure_2d: bool = True,
    allow_empty: bool = False,
    name: str = "X",
) -> np.ndarray:
    """Coerce ``X`` to a validated :class:`numpy.ndarray`.

    Rejects NaN/inf values, enforces two-dimensionality when requested
    and (by default) refuses empty inputs.
    """
    arr = np.asarray(X, dtype=dtype)
    if ensure_2d:
        if arr.ndim == 1:
            raise DataDimensionError(
                f"{name} must be 2-dimensional (n_samples, n_features); got a "
                f"1-d array of shape {arr.shape}. Reshape with X.reshape(-1, 1) "
                "for a single feature or X.reshape(1, -1) for a single sample."
            )
        if arr.ndim != 2:
            raise DataDimensionError(
                f"{name} must be 2-dimensional; got {arr.ndim} dimensions."
            )
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} is empty; at least one sample is required.")
    if arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values.")
    return arr


def column_or_1d(y: Any, *, name: str = "y") -> np.ndarray:
    """Ravel ``y`` into a 1-d array, accepting column vectors."""
    arr = np.asarray(y)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr.ravel()
    if arr.ndim != 1:
        raise DataDimensionError(
            f"{name} must be 1-dimensional; got shape {arr.shape}."
        )
    return arr


def check_consistent_length(*arrays: Sequence | np.ndarray) -> None:
    """Raise if the first dimensions of ``arrays`` differ."""
    lengths = {len(a) for a in arrays if a is not None}
    if len(lengths) > 1:
        raise ValueError(
            f"Inconsistent numbers of samples: {sorted(lengths)}."
        )


def check_X_y(
    X: Any,
    y: Any,
    *,
    dtype: type | None = np.float64,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / label vector pair."""
    X = check_array(X, dtype=dtype)
    y = column_or_1d(y)
    check_consistent_length(X, y)
    return X, y


def check_is_fitted(estimator: Any, attributes: Iterable[str] | str | None = None) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` looks fitted.

    An estimator is considered fitted when it exposes at least one
    attribute ending in an underscore (the convention used throughout
    :mod:`repro.ml`), or when the explicitly named ``attributes`` exist.
    """
    if attributes is not None:
        if isinstance(attributes, str):
            attributes = [attributes]
        fitted = all(hasattr(estimator, attr) for attr in attributes)
    else:
        fitted = any(
            attr.endswith("_") and not attr.startswith("__")
            for attr in vars(estimator)
        )
    if not fitted:
        raise NotFittedError(
            f"This {type(estimator).__name__} instance is not fitted yet. "
            "Call 'fit' with appropriate arguments first."
        )


def check_sample_weight(
    sample_weight: Any, n_samples: int, *, name: str = "sample_weight"
) -> np.ndarray:
    """Validate per-sample weights: finite, non-negative, length-matched.

    Returns a float64 copy.  Fractional weights are first-class — the
    historical "non-negative integers only, applied by replication"
    contract (pre-histogram-backend trees) is deprecated; estimators
    that still round internally document it on their ``fit``.
    """
    weights = column_or_1d(np.asarray(sample_weight, dtype=np.float64), name=name)
    if len(weights) != n_samples:
        raise ValueError(
            f"{name} has {len(weights)} entries for {n_samples} samples."
        )
    if not np.all(np.isfinite(weights)):
        raise ValueError(f"{name} contains NaN or infinite values.")
    if np.any(weights < 0):
        raise ValueError(f"{name} must be non-negative.")
    return weights


def unique_labels(y: np.ndarray) -> np.ndarray:
    """Sorted unique labels of ``y`` (stable across dtypes)."""
    return np.unique(np.asarray(y))
