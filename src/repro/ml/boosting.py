"""Boosting ensembles: AdaBoost (SAMME) and extremely-randomised trees.

The HMD literature the paper builds on (EnsembleHMD, Sayadi et al.)
uses boosted ensembles to raise accuracy.  Boosting, however, trains
its members *sequentially on reweighted data* — they are deliberately
correlated, which makes their vote dispersion a poor uncertainty
signal.  :class:`AdaBoostClassifier` exists here so the ablation suite
can demonstrate that contrast against bagging; it exposes the same
``decisions`` interface so the uncertainty estimator accepts it.

:class:`ExtraTreesClassifier` goes the other way: *more* randomisation
than a random forest (random split thresholds, no bootstrap by
default), producing higher member diversity — a useful upper-contrast
point in the diversity ablation.
"""

from __future__ import annotations

import numpy as np

from .backend import CompiledVotePath
from .base import BaseEstimator, ClassifierMixin, clone
from .training import BinMapper, BinnedDataset, BinnedPartialRefitMixin
from .tree import DecisionTreeClassifier
from .validation import check_random_state, check_X_y

__all__ = ["AdaBoostClassifier", "ExtraTreesClassifier"]


class AdaBoostClassifier(CompiledVotePath, BaseEstimator, ClassifierMixin):
    """Discrete AdaBoost (SAMME) over shallow decision trees.

    Parameters
    ----------
    estimator:
        Base learner prototype (default: depth-1 decision stump).
    n_estimators:
        Maximum number of boosting rounds.
    learning_rate:
        Shrinkage applied to each member's weight.
    """

    def __init__(
        self,
        estimator: BaseEstimator | None = None,
        *,
        n_estimators: int = 50,
        learning_rate: float = 1.0,
        random_state: int | np.random.Generator | None = None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.random_state = random_state

    def fit(self, X, y) -> "AdaBoostClassifier":
        """Run SAMME boosting rounds.

        Base learners that take fractional weights natively (our
        decision trees, flagged by ``_native_sample_weight``) are
        trained on the **real-valued** boosting weights — the classic
        reweighting algorithm, with no resampling noise and no
        ``np.repeat`` replication blowup.  Other base learners keep the
        legacy 'boosting by resampling' variant (a weighted bootstrap
        per round).
        """
        X, y = check_X_y(X, y)
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1.")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive.")
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("AdaBoost needs at least 2 classes.")
        self.n_features_in_ = X.shape[1]
        self._invalidate_backend()

        rng = check_random_state(self.random_state)
        n = len(y)
        weights = np.full(n, 1.0 / n)
        self.estimators_: list[BaseEstimator] = []
        self.estimator_weights_: list[float] = []
        self.estimator_errors_: list[float] = []

        template = (
            self.estimator
            if self.estimator is not None
            else DecisionTreeClassifier(max_depth=1)
        )
        weighted_fit = getattr(template, "_native_sample_weight", False)
        for _ in range(self.n_estimators):
            prototype = clone(template)
            if "random_state" in prototype.get_params():
                prototype.set_params(random_state=int(rng.integers(2**32)))
            if weighted_fit:
                prototype.fit(X, y, sample_weight=weights)
            else:
                sample_idx = rng.choice(n, size=n, replace=True, p=weights)
                # Guarantee all classes survive the resample.
                if len(np.unique(y[sample_idx])) < n_classes:
                    continue
                prototype.fit(X[sample_idx], y[sample_idx])
            pred = prototype.predict(X)
            miss = pred != y
            error = float(np.sum(weights * miss))

            if error >= 1.0 - 1.0 / n_classes:
                if weighted_fit:
                    # Deterministic weighted fits would just repeat the
                    # degenerate round; boosting has converged.
                    break
                continue  # worse than chance: skip the round
            if error <= 0:
                # Perfect member: give it a large but finite weight.
                alpha = self.learning_rate * 10.0
                self.estimators_.append(prototype)
                self.estimator_weights_.append(alpha)
                self.estimator_errors_.append(error)
                break
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(n_classes - 1.0)
            )
            self.estimators_.append(prototype)
            self.estimator_weights_.append(float(alpha))
            self.estimator_errors_.append(error)

            weights *= np.exp(alpha * miss)
            weights /= weights.sum()

        if not self.estimators_:
            raise ValueError(
                "AdaBoost could not fit any base learner better than chance."
            )
        return self

    # decisions / decisions_fast / vote_distribution come from
    # CompiledVotePath (votes are unweighted; the boosting weights only
    # enter decision_scores).  predict stays weighted-majority below.

    def decision_scores(self, X) -> np.ndarray:
        """Weighted class scores, shape ``(n, n_classes)``."""
        X = self._check_predict_input(X)
        scores = np.zeros((X.shape[0], len(self.classes_)))
        for member, alpha in zip(self.estimators_, self.estimator_weights_):
            pred = member.predict(X)
            for k, cls in enumerate(self.classes_):
                scores[:, k] += alpha * (pred == cls)
        return scores

    def predict_proba(self, X) -> np.ndarray:
        """Normalised weighted vote scores."""
        scores = self.decision_scores(X)
        totals = scores.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return scores / totals

    def predict(self, X) -> np.ndarray:
        """Weighted-majority class labels."""
        return self.classes_[np.argmax(self.decision_scores(X), axis=1)]


class _ExtraTreeClassifier(DecisionTreeClassifier):
    """Decision tree with fully random split thresholds.

    Overrides the split search: instead of scanning all cut positions,
    a single random threshold per candidate feature is drawn and the
    best of those is kept (Geurts et al., 2006).  The binned grower
    mirrors this via its ``"random"`` splitter — one random cut *bin*
    per candidate feature.
    """

    _splitter = "random"

    def _best_split(
        self,
        X,
        onehot,
        indices,
        counts,
        node_impurity,
        n_candidate_features,
        rng,
        criterion,
    ):
        n_node = len(indices)
        n_features = X.shape[1]
        if n_candidate_features < n_features:
            feats = rng.choice(n_features, size=n_candidate_features, replace=False)
        else:
            feats = np.arange(n_features)

        Xn = X[np.ix_(indices, feats)]
        lo = Xn.min(axis=0)
        hi = Xn.max(axis=0)
        usable = hi > lo
        if not usable.any():
            return None
        thresholds = lo + rng.random(len(feats)) * (hi - lo)

        best = None
        for j in np.flatnonzero(usable):
            go_left = Xn[:, j] <= thresholds[j]
            n_left = int(go_left.sum())
            n_right = n_node - n_left
            if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                continue
            left_counts = onehot[indices[go_left]].sum(axis=0)
            right_counts = counts - left_counts
            from .tree import _impurity

            child = (
                n_left * _impurity(left_counts, criterion)
                + n_right * _impurity(right_counts, criterion)
            ) / n_node
            gain = node_impurity - float(child)
            if gain > 1e-12 and (best is None or gain > best[2]):
                best = (int(feats[j]), float(thresholds[j]), gain)
        return best


class ExtraTreesClassifier(
    CompiledVotePath, BinnedPartialRefitMixin, BaseEstimator, ClassifierMixin
):
    """Ensemble of extremely-randomised trees (no bootstrap by default).

    ``grower="hist"`` bins the training set once and grows every tree
    from the shared codes (random cut *bins* instead of random
    thresholds), and enables :meth:`partial_refit`.
    """

    def __init__(
        self,
        *,
        n_estimators: int = 100,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = False,
        grower: str = "exact",
        max_bins: int = 256,
        random_state: int | np.random.Generator | None = None,
    ):
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.grower = grower
        self.max_bins = max_bins
        self.random_state = random_state

    def _make_tree(self, seed: int) -> _ExtraTreeClassifier:
        return _ExtraTreeClassifier(
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            grower=self.grower,
            max_bins=self.max_bins,
            random_state=seed,
        )

    def fit(self, X, y) -> "ExtraTreesClassifier":
        """Fit ``n_estimators`` extremely-randomised trees."""
        X, y = check_X_y(X, y)
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1.")
        self._invalidate_backend()
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        if self.grower == "hist":
            self._binned_ = BinnedDataset(BinMapper(max_bins=self.max_bins), X)
            self._train_y_ = y
            self._refit_members(rng)
            return self
        self._binned_ = None
        n = len(y)
        self.estimators_: list[_ExtraTreeClassifier] = []
        while len(self.estimators_) < self.n_estimators:
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                if len(np.unique(y[idx])) < len(self.classes_):
                    continue
            else:
                idx = np.arange(n)
            tree = self._make_tree(int(rng.integers(2**32)))
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)
        return self

    def _refit_members(self, rng) -> None:
        """Shared-binned loop: one code matrix feeds every random tree."""
        binned = self._binned_
        y = self._train_y_
        n = binned.n_rows
        view = binned.view()
        self.estimators_ = []
        while len(self.estimators_) < self.n_estimators:
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                if len(np.unique(y[idx])) < len(self.classes_):
                    continue
                weights = np.bincount(idx, minlength=n).astype(np.float64)
            else:
                weights = None
            tree = self._make_tree(int(rng.integers(2**32)))
            tree._fit_binned(view, y, sample_weight=weights)
            self.estimators_.append(tree)

    # decisions / decisions_fast / vote_distribution / predict come from
    # CompiledVotePath.

    def predict_proba(self, X) -> np.ndarray:
        """Mean per-tree leaf probabilities."""
        X = self._check_predict_input(X)
        proba = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            proba += tree.predict_proba(X)
        return proba / len(self.estimators_)

