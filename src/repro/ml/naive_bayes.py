"""Gaussian Naive Bayes — a cheap probabilistic base classifier.

Not used in the paper's headline figures, but valuable in the ablation
benchmarks (ensemble-diversity study) and as a sanity baseline in tests:
it trains in closed form, so expected behaviour is easy to verify.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin
from .validation import check_X_y

__all__ = ["GaussianNB"]


class GaussianNB(BaseEstimator, ClassifierMixin):
    """Gaussian Naive Bayes with per-class diagonal covariance.

    ``var_smoothing`` adds a fraction of the largest feature variance to
    every variance estimate for numerical stability (as in sklearn).
    """

    def __init__(self, *, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing

    def fit(self, X, y, sample_weight=None) -> "GaussianNB":
        """Estimate per-class means, variances and priors."""
        X, y = check_X_y(X, y)
        if sample_weight is not None:
            weights = np.round(np.asarray(sample_weight)).astype(int)
            if np.any(weights < 0):
                raise ValueError("sample_weight must be non-negative.")
            X = np.repeat(X, weights, axis=0)
            y = np.repeat(y, weights, axis=0)
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        n_classes = len(self.classes_)
        self.theta_ = np.zeros((n_classes, X.shape[1]))
        self.var_ = np.zeros((n_classes, X.shape[1]))
        self.class_prior_ = np.zeros(n_classes)
        epsilon = self.var_smoothing * X.var(axis=0).max()
        for i, cls in enumerate(self.classes_):
            members = X[y == cls]
            if len(members) == 0:
                raise ValueError(f"Class {cls!r} has no samples.")
            self.theta_[i] = members.mean(axis=0)
            self.var_[i] = members.var(axis=0) + epsilon
            self.class_prior_[i] = len(members) / len(y)
        self.var_[self.var_ == 0.0] = max(epsilon, 1e-12)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        log_prior = np.log(self.class_prior_)
        # (n_samples, n_classes): sum over features of log N(x; mu, var)
        diff = X[:, None, :] - self.theta_[None, :, :]
        log_lik = -0.5 * np.sum(
            np.log(2.0 * np.pi * self.var_)[None, :, :] + diff**2 / self.var_[None, :, :],
            axis=2,
        )
        return log_lik + log_prior[None, :]

    def predict_log_proba(self, X) -> np.ndarray:
        """Log posterior probabilities per class."""
        X = self._check_predict_input(X)
        jll = self._joint_log_likelihood(X)
        log_norm = np.logaddexp.reduce(jll, axis=1, keepdims=True)
        return jll - log_norm

    def predict_proba(self, X) -> np.ndarray:
        """Posterior probabilities per class."""
        return np.exp(self.predict_log_proba(X))

    def predict(self, X) -> np.ndarray:
        """Maximum-posterior class labels."""
        X = self._check_predict_input(X)
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]
