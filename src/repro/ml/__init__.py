"""From-scratch ML substrate (systems S1-S6 in DESIGN.md).

Implements the subset of a classical ML toolkit that the paper's
evaluation framework obtains from scikit-learn: estimator API, bagging
ensembles with accessible base classifiers, Random Forest / Logistic
Regression / SVM base learners, preprocessing, PCA, t-SNE, metrics,
model selection, and Platt calibration.
"""

from .backend import (
    BackendCompileError,
    CompiledVotePath,
    CompositeBackend,
    FlatForest,
    QuantizedForest,
    compile_flat_forest,
    compile_quantized_forest,
)
from .base import BaseEstimator, ClassifierMixin, TransformerMixin, clone
from .boosting import AdaBoostClassifier, ExtraTreesClassifier
from .calibration import CalibratedClassifier, PlattScaler
from .cluster import KMeans
from .decomposition import PCA
from .ensemble import BaggingClassifier, RandomForestClassifier, VotingClassifier
from .feature_selection import (
    SelectKBest,
    VarianceThreshold,
    f_classif,
    mutual_info_classif,
)
from .exceptions import (
    ConvergenceError,
    ConvergenceWarning,
    DataDimensionError,
    NotFittedError,
)
from .linear import LogisticRegression, Perceptron
from .manifold import TSNE
from .naive_bayes import GaussianNB
from .neighbors import KNeighborsClassifier
from .pipeline import Pipeline, make_pipeline
from .preprocessing import LabelEncoder, MinMaxScaler, RobustScaler, StandardScaler
from .svm import SVC, LinearSVC
from .training import BinMapper, BinnedDataset, grow_tree_binned
from .tree import DecisionTreeClassifier

__all__ = [
    "AdaBoostClassifier",
    "BackendCompileError",
    "BaseEstimator",
    "BaggingClassifier",
    "BinMapper",
    "BinnedDataset",
    "grow_tree_binned",
    "CompiledVotePath",
    "CompositeBackend",
    "FlatForest",
    "QuantizedForest",
    "compile_flat_forest",
    "compile_quantized_forest",
    "CalibratedClassifier",
    "ClassifierMixin",
    "ConvergenceError",
    "ConvergenceWarning",
    "DataDimensionError",
    "DecisionTreeClassifier",
    "ExtraTreesClassifier",
    "GaussianNB",
    "KMeans",
    "KNeighborsClassifier",
    "LabelEncoder",
    "LinearSVC",
    "LogisticRegression",
    "MinMaxScaler",
    "NotFittedError",
    "PCA",
    "Perceptron",
    "Pipeline",
    "PlattScaler",
    "RandomForestClassifier",
    "RobustScaler",
    "SVC",
    "SelectKBest",
    "StandardScaler",
    "TSNE",
    "TransformerMixin",
    "VarianceThreshold",
    "VotingClassifier",
    "clone",
    "f_classif",
    "make_pipeline",
    "mutual_info_classif",
]
