"""Clustering: k-means (Lloyd's algorithm with k-means++ seeding).

Used by the forensic-triage extension: signatures flagged as uncertain
by the Trusted HMD are clustered so a security analyst can label novel
workload *groups* instead of individual windows — one label per new
malware family rather than thousands of per-sample decisions.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, TransformerMixin
from .metrics.pairwise import squared_euclidean_distances
from .validation import check_array, check_is_fitted, check_random_state

__all__ = ["KMeans"]


class KMeans(BaseEstimator, TransformerMixin):
    """Lloyd's k-means with k-means++ initialisation.

    Parameters
    ----------
    n_clusters:
        Number of centroids k.
    n_init:
        Independent restarts; the lowest-inertia run is kept.
    max_iter:
        Lloyd iterations per restart.
    tol:
        Relative centroid-shift tolerance for convergence.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        n_init: int = 4,
        max_iter: int = 200,
        tol: float = 1e-6,
        random_state: int | np.random.Generator | None = None,
    ):
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def _kmeanspp(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread the initial centroids."""
        n = X.shape[0]
        centers = np.empty((self.n_clusters, X.shape[1]))
        centers[0] = X[rng.integers(n)]
        closest = squared_euclidean_distances(X, centers[:1]).ravel()
        for k in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0:
                centers[k] = X[rng.integers(n)]
                continue
            probs = closest / total
            centers[k] = X[rng.choice(n, p=probs)]
            distances = squared_euclidean_distances(X, centers[k : k + 1]).ravel()
            closest = np.minimum(closest, distances)
        return centers

    def _lloyd(self, X: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
        """Run Lloyd iterations from the given centroids."""
        for _ in range(self.max_iter):
            distances = squared_euclidean_distances(X, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = X[labels == k]
                if len(members):
                    new_centers[k] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift <= self.tol * (1.0 + float(np.linalg.norm(centers))):
                break
        distances = squared_euclidean_distances(X, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(len(labels)), labels].sum())
        return centers, labels, inertia

    def fit(self, X, y=None) -> "KMeans":
        """Fit centroids; keeps the best of ``n_init`` restarts."""
        X = check_array(X)
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1.")
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"n_samples={X.shape[0]} < n_clusters={self.n_clusters}."
            )
        if self.n_init < 1:
            raise ValueError("n_init must be >= 1.")
        rng = check_random_state(self.random_state)

        best = None
        for _ in range(self.n_init):
            centers = self._kmeanspp(X, rng)
            centers, labels, inertia = self._lloyd(X, centers)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        self.cluster_centers_, self.labels_, self.inertia_ = best
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        """Nearest-centroid assignment."""
        check_is_fitted(self, "cluster_centers_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        distances = squared_euclidean_distances(X, self.cluster_centers_)
        return np.argmin(distances, axis=1)

    def transform(self, X) -> np.ndarray:
        """Distances to every centroid (cluster-space embedding)."""
        check_is_fitted(self, "cluster_centers_")
        X = check_array(X)
        return np.sqrt(squared_euclidean_distances(X, self.cluster_centers_))

    def fit_predict(self, X, y=None) -> np.ndarray:
        """Fit and return the training-point labels."""
        return self.fit(X).labels_
