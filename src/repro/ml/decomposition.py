"""Dimensionality reduction (the "Dimensionality Reduction" box of the
paper's HMD pipeline, Figs. 1-2).

:class:`PCA` is computed with a thin SVD on centred data — exact,
deterministic up to sign, and fast at HMD feature dimensionalities.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, TransformerMixin
from .validation import check_array, check_is_fitted

__all__ = ["PCA"]


class PCA(BaseEstimator, TransformerMixin):
    """Principal component analysis via singular value decomposition.

    Parameters
    ----------
    n_components:
        ``None`` keeps all components; an int keeps that many; a float
        in (0, 1) keeps the smallest number of components explaining at
        least that fraction of variance.
    whiten:
        If True, scale projected components to unit variance.
    """

    def __init__(self, n_components: int | float | None = None, *, whiten: bool = False):
        self.n_components = n_components
        self.whiten = whiten

    def fit(self, X, y=None) -> "PCA":
        """Compute principal axes of ``X``."""
        X = check_array(X)
        n_samples, n_features = X.shape
        self.n_features_in_ = n_features
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_

        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        explained_variance = (singular_values**2) / max(n_samples - 1, 1)
        total_variance = explained_variance.sum()
        ratio = (
            explained_variance / total_variance
            if total_variance > 0
            else np.zeros_like(explained_variance)
        )

        max_rank = len(singular_values)
        if self.n_components is None:
            k = max_rank
        elif isinstance(self.n_components, float):
            if not 0.0 < self.n_components <= 1.0:
                raise ValueError(
                    f"n_components fraction must be in (0, 1]; got {self.n_components}."
                )
            cumulative = np.cumsum(ratio)
            k = int(np.searchsorted(cumulative, self.n_components - 1e-12) + 1)
            k = min(k, max_rank)
        else:
            k = int(self.n_components)
            if not 1 <= k <= max_rank:
                raise ValueError(
                    f"n_components={k} out of range [1, {max_rank}]."
                )

        # Deterministic sign convention: largest-|loading| entry positive.
        components = vt[:k]
        for i in range(k):
            j = np.argmax(np.abs(components[i]))
            if components[i, j] < 0:
                components[i] = -components[i]

        self.components_ = components
        self.singular_values_ = singular_values[:k]
        self.explained_variance_ = explained_variance[:k]
        self.explained_variance_ratio_ = ratio[:k]
        self.n_components_ = k
        return self

    def transform(self, X) -> np.ndarray:
        """Project ``X`` onto the principal axes."""
        check_is_fitted(self, "components_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"Expected {self.n_features_in_} features, got {X.shape[1]}."
            )
        projected = (X - self.mean_) @ self.components_.T
        if self.whiten:
            scale = np.sqrt(self.explained_variance_)
            scale[scale == 0.0] = 1.0
            projected = projected / scale
        return projected

    def inverse_transform(self, X) -> np.ndarray:
        """Reconstruct samples from their projections."""
        check_is_fitted(self, "components_")
        X = check_array(X)
        if self.whiten:
            X = X * np.sqrt(self.explained_variance_)
        return X @ self.components_ + self.mean_

    def as_affine(self, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
        """The fitted projection as ``X @ weight + bias``.

        ``weight`` is ``(n_features, n_components)`` with whitening
        folded in; ``bias`` absorbs the centering.  Lets upstream
        pipelines fuse scaling and projection into one matmul.  Equal to
        :meth:`transform` up to floating-point associativity.

        ``dtype`` selects the storage precision of the returned pair;
        the composition itself always runs in float64 and is rounded
        once at the end (see ``StandardScaler.as_affine``).
        """
        check_is_fitted(self, "components_")
        weight = np.array(self.components_.T)
        if self.whiten:
            scale = np.sqrt(self.explained_variance_)
            scale[scale == 0.0] = 1.0
            weight = weight / scale
        bias = -(self.mean_ @ weight)
        dtype = np.dtype(dtype)
        return weight.astype(dtype, copy=False), bias.astype(dtype, copy=False)
