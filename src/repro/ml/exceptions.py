"""Exceptions and warnings used across the :mod:`repro.ml` substrate."""

from __future__ import annotations


class NotFittedError(ValueError, AttributeError):
    """Raised when an estimator is used before :meth:`fit` was called.

    Inherits from both :class:`ValueError` and :class:`AttributeError`
    so that callers that guard with either exception type keep working.
    """


class ConvergenceError(RuntimeError):
    """Raised when an iterative solver fails to converge and the caller
    requested strict behaviour (``on_no_convergence="raise"``)."""


class ConvergenceWarning(UserWarning):
    """Emitted when an iterative solver exhausts its iteration budget."""


class DataDimensionError(ValueError):
    """Raised when input arrays have incompatible or unsupported shapes."""
