"""Dataset containers for the HMD reproduction (S10).

A :class:`HmdDataset` holds the three buckets of Fig. 6 / Table I:

* ``train`` — known-application signatures used to fit models;
* ``test`` — held-out signatures of the *same* known applications,
  used to evaluate in-distribution uncertainty;
* ``unknown`` — signatures of applications never seen in training,
  used to evaluate out-of-distribution / zero-day behaviour.

True labels are retained for the unknown bucket so that F1-after-
rejection (Fig. 7b) can be computed on the pooled test ∪ unknown data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DataSplit", "HmdDataset"]


@dataclass
class DataSplit:
    """One bucket of samples: features, labels and source app names."""

    X: np.ndarray
    y: np.ndarray
    apps: np.ndarray

    def __post_init__(self) -> None:
        if len(self.X) != len(self.y) or len(self.X) != len(self.apps):
            raise ValueError(
                f"Inconsistent split sizes: X={len(self.X)}, y={len(self.y)}, "
                f"apps={len(self.apps)}."
            )

    @property
    def n_samples(self) -> int:
        """Number of samples in the split."""
        return len(self.y)

    def class_counts(self) -> dict[int, int]:
        """Samples per label."""
        labels, counts = np.unique(self.y, return_counts=True)
        return {int(label): int(count) for label, count in zip(labels, counts)}

    def app_counts(self) -> dict[str, int]:
        """Samples per source application."""
        apps, counts = np.unique(self.apps, return_counts=True)
        return {str(app): int(count) for app, count in zip(apps, counts)}

    def subset(self, mask: np.ndarray) -> "DataSplit":
        """Boolean-mask a split into a smaller one."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.n_samples:
            raise ValueError("Mask length does not match split size.")
        return DataSplit(X=self.X[mask], y=self.y[mask], apps=self.apps[mask])


@dataclass
class HmdDataset:
    """The full known/unknown dataset of one HMD domain."""

    name: str
    train: DataSplit
    test: DataSplit
    unknown: DataSplit
    feature_names: tuple[str, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n_features = len(self.feature_names)
        for split_name, split in (
            ("train", self.train),
            ("test", self.test),
            ("unknown", self.unknown),
        ):
            if split.X.shape[1] != n_features:
                raise ValueError(
                    f"{split_name} split has {split.X.shape[1]} features, "
                    f"expected {n_features}."
                )

    @property
    def n_features(self) -> int:
        """Feature dimensionality."""
        return len(self.feature_names)

    def taxonomy(self) -> dict[str, int]:
        """Sample counts per split — the rows of Table I."""
        return {
            "train": self.train.n_samples,
            "test": self.test.n_samples,
            "unknown": self.unknown.n_samples,
        }

    def summary(self) -> str:
        """Human-readable dataset overview."""
        lines = [f"HmdDataset {self.name!r}: {self.n_features} features"]
        for split_name, split in (
            ("train", self.train),
            ("test", self.test),
            ("unknown", self.unknown),
        ):
            counts = split.class_counts()
            lines.append(
                f"  {split_name:8s} {split.n_samples:6d} samples "
                f"(benign={counts.get(0, 0)}, malware={counts.get(1, 0)}, "
                f"apps={len(split.app_counts())})"
            )
        return "\n".join(lines)
