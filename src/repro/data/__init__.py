"""Dataset construction (system S10 in DESIGN.md)."""

from .builders import (
    DVFS_TABLE1,
    EM_TABLE,
    HPC_TABLE1,
    build_dvfs_dataset,
    build_em_dataset,
    build_hpc_dataset,
    clear_dataset_cache,
)
from .dataset import DataSplit, HmdDataset

__all__ = [
    "DVFS_TABLE1",
    "DataSplit",
    "EM_TABLE",
    "HPC_TABLE1",
    "HmdDataset",
    "build_dvfs_dataset",
    "build_em_dataset",
    "build_hpc_dataset",
    "clear_dataset_cache",
]
