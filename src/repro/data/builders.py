"""Dataset builders: simulate traces, extract features, form Table I (S10).

At ``scale=1.0`` the builders reproduce the paper's Table I sample
counts exactly:

========  =======  ============  ========
Dataset   Train    Test (known)  Unknown
========  =======  ============  ========
DVFS      2100     700           284
HPC       44605    6372          12727
========  =======  ============  ========

``scale`` shrinks every bucket proportionally for fast tests and
benchmark smoke runs.  Datasets are memoised per (domain, seed, scale)
because the experiment harness reuses them across figures.
"""

from __future__ import annotations

import numpy as np

from ..hmd.apps import (
    dvfs_known_apps,
    dvfs_unknown_apps,
    hpc_known_apps,
    hpc_unknown_apps,
)
from ..hmd.features import DvfsFeatureExtractor, HpcFeatureExtractor
from ..ml.validation import check_random_state
from ..sim.cpu import HpcSimulator
from ..sim.power import SocSimulator
from ..sim.workloads import WorkloadGenerator, WorkloadSpec

__all__ = [
    "build_dvfs_dataset",
    "build_em_dataset",
    "build_hpc_dataset",
    "clear_dataset_cache",
    "DVFS_TABLE1",
    "EM_TABLE",
    "HPC_TABLE1",
]

from .dataset import DataSplit, HmdDataset

#: Table I counts for the DVFS dataset (train, test, unknown).
DVFS_TABLE1 = {"train": 2100, "test": 700, "unknown": 284}
#: Table I counts for the HPC dataset.
HPC_TABLE1 = {"train": 44605, "test": 6372, "unknown": 12727}

#: DVFS signature window: 240 governor samples at 50 ms = 12 s.
DVFS_WINDOW_STEPS = 240

_CACHE: dict[tuple, HmdDataset] = {}


def clear_dataset_cache() -> None:
    """Drop memoised datasets (used by tests that tweak generation)."""
    _CACHE.clear()


def _allocate(total: int, n_parts: int) -> list[int]:
    """Split ``total`` into ``n_parts`` integers differing by at most 1."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1.")
    if total < n_parts:
        raise ValueError(
            f"Cannot allocate {total} samples over {n_parts} parts "
            "(need at least one each)."
        )
    base = total // n_parts
    remainder = total % n_parts
    return [base + (1 if i < remainder else 0) for i in range(n_parts)]


def _scaled(count: int, scale: float) -> int:
    return max(1, int(round(count * scale)))


# ----------------------------------------------------------------------
# DVFS dataset
# ----------------------------------------------------------------------

def _dvfs_windows_for_app(
    spec: WorkloadSpec,
    n_windows: int,
    seed: int,
    governor=None,
) -> np.ndarray:
    """Simulate ``n_windows`` DVFS signature windows for one app.

    Runs entirely on the batched simulator backend: one
    ``generate_batch`` / ``run_batch`` tensor pass over all windows,
    then a single batched
    :meth:`~repro.hmd.features.DvfsFeatureExtractor.extract_windows`
    pass over the window-concatenated trace — bitwise identical to the
    per-window reference loop (``generate``/``run`` per window).
    """
    generator = WorkloadGenerator(dt=0.05, random_state=seed)
    soc = SocSimulator(random_state=seed + 1, governor=governor)
    extractor = DvfsFeatureExtractor()
    batch = generator.generate_batch(spec, n_windows, DVFS_WINDOW_STEPS)
    dvfs = soc.run_batch(batch)
    return extractor.extract_windows(dvfs.as_trace(name=spec.name), DVFS_WINDOW_STEPS)


def build_dvfs_dataset(
    *, seed: int = 7, scale: float = 1.0, governor=None
) -> HmdDataset:
    """Build the DVFS-based HMD dataset (Chawla et al. analogue).

    Parameters
    ----------
    seed:
        Master seed; per-app generator seeds derive from it.
    scale:
        Fraction of the Table I sample counts to generate.
    governor:
        Optional governor policy object (default: ``OndemandGovernor``).
        Used by the sensor-choice ablation — e.g. a
        ``PerformanceGovernor`` pins the top states and destroys the
        DVFS signature.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive; got {scale}.")
    governor_tag = type(governor).__name__ if governor is not None else "ondemand"
    key = ("dvfs", seed, round(scale, 6), governor_tag)
    if key in _CACHE:
        return _CACHE[key]

    known = dvfs_known_apps()
    unknown = dvfs_unknown_apps()
    train_per_app = _scaled(DVFS_TABLE1["train"] // len(known), scale)
    test_per_app = _scaled(DVFS_TABLE1["test"] // len(known), scale)
    unknown_per_app_list = [
        _scaled(c, scale) for c in _allocate(DVFS_TABLE1["unknown"], len(unknown))
    ]

    rng = check_random_state(seed)
    train_parts, test_parts = [], []
    for app_idx, spec in enumerate(known):
        n_windows = train_per_app + test_per_app
        X = _dvfs_windows_for_app(
            spec, n_windows, seed=seed * 1000 + app_idx, governor=governor
        )
        order = rng.permutation(n_windows)
        train_idx, test_idx = order[:train_per_app], order[train_per_app:]
        train_parts.append((X[train_idx], spec))
        test_parts.append((X[test_idx], spec))

    unknown_parts = []
    for app_idx, (spec, n_windows) in enumerate(zip(unknown, unknown_per_app_list)):
        X = _dvfs_windows_for_app(
            spec, n_windows, seed=seed * 1000 + 500 + app_idx, governor=governor
        )
        unknown_parts.append((X, spec))

    def _combine(parts) -> DataSplit:
        X = np.vstack([p[0] for p in parts])
        y = np.concatenate([np.full(len(p[0]), p[1].label) for p in parts])
        apps = np.concatenate([np.full(len(p[0]), p[1].name) for p in parts])
        order = rng.permutation(len(y))
        return DataSplit(X=X[order], y=y[order], apps=apps[order])

    # Feature names come from a probe trace of the first app.
    probe_activity = WorkloadGenerator(dt=0.05, random_state=0).generate(
        known[0], DVFS_WINDOW_STEPS
    )
    probe_trace = SocSimulator(random_state=0).run(probe_activity)
    feature_names = tuple(DvfsFeatureExtractor().feature_names(probe_trace))

    dataset = HmdDataset(
        name="dvfs",
        train=_combine(train_parts),
        test=_combine(test_parts),
        unknown=_combine(unknown_parts),
        feature_names=feature_names,
        metadata={
            "seed": seed,
            "scale": scale,
            "governor": governor_tag,
            "window_steps": DVFS_WINDOW_STEPS,
            "known_apps": [s.name for s in known],
            "unknown_apps": [s.name for s in unknown],
        },
    )
    _CACHE[key] = dataset
    return dataset


# ----------------------------------------------------------------------
# HPC dataset
# ----------------------------------------------------------------------

#: Counter sampling runs are simulated in chunks of this many intervals;
#: each chunk is an independent application session.
HPC_CHUNK_INTERVALS = 500


def _hpc_intervals_for_app(
    spec: WorkloadSpec,
    n_intervals: int,
    seed: int,
) -> np.ndarray:
    """Simulate ``n_intervals`` HPC feature rows for one app.

    Full-size chunks (independent application sessions) run through one
    ``generate_batch`` / ``run_batch`` tensor pass; a shorter trailing
    chunk gets its own single-window batch.  Bitwise identical to the
    per-chunk reference loop.
    """
    generator = WorkloadGenerator(dt=0.05, random_state=seed)
    extractor = HpcFeatureExtractor()
    simulator = HpcSimulator(random_state=seed + 1)
    steps_per_interval = int(round(simulator.dt / generator.dt))
    n_full, tail = divmod(n_intervals, HPC_CHUNK_INTERVALS)
    traces, kept = [], []
    if n_full:
        batch = generator.generate_batch(
            spec, n_full, HPC_CHUNK_INTERVALS * steps_per_interval
        )
        traces.extend(simulator.run_batch(batch).windows())
        kept.extend([HPC_CHUNK_INTERVALS] * n_full)
    if tail:
        batch = generator.generate_batch(spec, 1, tail * steps_per_interval)
        traces.append(simulator.run_batch(batch).window(0))
        kept.append(tail)
    # One bulk featurisation pass over every chunk; per-chunk trailing
    # intervals beyond the requested count are dropped as before.
    feats = extractor.extract_many(traces)
    offsets = np.cumsum([0] + [t.n_intervals for t in traces])
    rows = [
        feats[offsets[i] : offsets[i] + kept[i]] for i in range(len(traces))
    ]
    return np.vstack(rows)[:n_intervals]


def build_hpc_dataset(*, seed: int = 7, scale: float = 1.0) -> HmdDataset:
    """Build the HPC-based HMD dataset (Zhou et al. analogue)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive; got {scale}.")
    key = ("hpc", seed, round(scale, 6))
    if key in _CACHE:
        return _CACHE[key]

    known = hpc_known_apps()
    unknown = hpc_unknown_apps()
    train_counts = _allocate(_scaled(HPC_TABLE1["train"], scale), len(known))
    test_counts = _allocate(_scaled(HPC_TABLE1["test"], scale), len(known))
    unknown_counts = _allocate(_scaled(HPC_TABLE1["unknown"], scale), len(unknown))

    rng = check_random_state(seed)
    train_parts, test_parts = [], []
    for app_idx, spec in enumerate(known):
        n_total = train_counts[app_idx] + test_counts[app_idx]
        X = _hpc_intervals_for_app(spec, n_total, seed=seed * 2000 + app_idx)
        order = rng.permutation(n_total)
        train_idx = order[: train_counts[app_idx]]
        test_idx = order[train_counts[app_idx] :]
        train_parts.append((X[train_idx], spec))
        test_parts.append((X[test_idx], spec))

    unknown_parts = []
    for app_idx, (spec, count) in enumerate(zip(unknown, unknown_counts)):
        X = _hpc_intervals_for_app(spec, count, seed=seed * 2000 + 900 + app_idx)
        unknown_parts.append((X, spec))

    def _combine(parts) -> DataSplit:
        X = np.vstack([p[0] for p in parts])
        y = np.concatenate([np.full(len(p[0]), p[1].label) for p in parts])
        apps = np.concatenate([np.full(len(p[0]), p[1].name) for p in parts])
        order = rng.permutation(len(y))
        return DataSplit(X=X[order], y=y[order], apps=apps[order])

    probe_activity = WorkloadGenerator(dt=0.05, random_state=0).generate(known[0], 20)
    probe_trace = HpcSimulator(random_state=0).run(probe_activity)
    feature_names = tuple(HpcFeatureExtractor().feature_names(probe_trace))

    dataset = HmdDataset(
        name="hpc",
        train=_combine(train_parts),
        test=_combine(test_parts),
        unknown=_combine(unknown_parts),
        feature_names=feature_names,
        metadata={
            "seed": seed,
            "scale": scale,
            "known_apps": [s.name for s in known],
            "unknown_apps": [s.name for s in unknown],
        },
    )
    _CACHE[key] = dataset
    return dataset


# ----------------------------------------------------------------------
# EM dataset (extension E1 — third HMD sensor family)
# ----------------------------------------------------------------------

#: Extension dataset sizing (not from the paper): per known app
#: train/test windows and total unknown windows.
EM_TABLE = {"train": 1400, "test": 560, "unknown": 284}

#: EM capture window: 256 activity steps at 50 ms ≈ 12.8 s.
EM_WINDOW_STEPS = 256


def _em_windows_for_app(spec: WorkloadSpec, n_windows: int, seed: int) -> np.ndarray:
    """Simulate ``n_windows`` EM spectra feature rows for one app."""
    from ..sim.em import EmFeatureExtractor, EmSimulator

    generator = WorkloadGenerator(dt=0.05, random_state=seed)
    simulator = EmSimulator(random_state=seed + 1)
    extractor = EmFeatureExtractor()
    rows = []
    for _ in range(n_windows):
        activity = generator.generate(spec, EM_WINDOW_STEPS)
        rows.append(extractor.extract(simulator.run(activity)))
    return np.stack(rows)


def build_em_dataset(*, seed: int = 7, scale: float = 1.0) -> HmdDataset:
    """Build an EM side-channel HMD dataset (extension E1).

    Reuses the DVFS application catalogue — the same phone workloads
    observed through the electromagnetic channel instead of the
    governor's state sequence.  Not part of the paper's evaluation; it
    demonstrates that the uncertainty framework is sensor-agnostic.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive; got {scale}.")
    key = ("em", seed, round(scale, 6))
    if key in _CACHE:
        return _CACHE[key]

    known = dvfs_known_apps()
    unknown = dvfs_unknown_apps()
    train_per_app = _scaled(EM_TABLE["train"] // len(known), scale)
    test_per_app = _scaled(EM_TABLE["test"] // len(known), scale)
    unknown_per_app_list = [
        _scaled(c, scale) for c in _allocate(EM_TABLE["unknown"], len(unknown))
    ]

    rng = check_random_state(seed)
    train_parts, test_parts = [], []
    for app_idx, spec in enumerate(known):
        n_windows = train_per_app + test_per_app
        X = _em_windows_for_app(spec, n_windows, seed=seed * 3000 + app_idx)
        order = rng.permutation(n_windows)
        train_parts.append((X[order[:train_per_app]], spec))
        test_parts.append((X[order[train_per_app:]], spec))

    unknown_parts = []
    for app_idx, (spec, n_windows) in enumerate(zip(unknown, unknown_per_app_list)):
        X = _em_windows_for_app(spec, n_windows, seed=seed * 3000 + 700 + app_idx)
        unknown_parts.append((X, spec))

    def _combine(parts) -> DataSplit:
        X = np.vstack([p[0] for p in parts])
        y = np.concatenate([np.full(len(p[0]), p[1].label) for p in parts])
        apps = np.concatenate([np.full(len(p[0]), p[1].name) for p in parts])
        order = rng.permutation(len(y))
        return DataSplit(X=X[order], y=y[order], apps=apps[order])

    from ..sim.em import EmFeatureExtractor

    dataset = HmdDataset(
        name="em",
        train=_combine(train_parts),
        test=_combine(test_parts),
        unknown=_combine(unknown_parts),
        feature_names=tuple(EmFeatureExtractor().feature_names()),
        metadata={
            "seed": seed,
            "scale": scale,
            "window_steps": EM_WINDOW_STEPS,
            "known_apps": [s.name for s in known],
            "unknown_apps": [s.name for s in unknown],
        },
    )
    _CACHE[key] = dataset
    return dataset
