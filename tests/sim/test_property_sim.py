"""Property-based tests for the hardware substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    ActivityTrace,
    ConservativeGovernor,
    DvfsChannelConfig,
    HpcSimulator,
    OndemandGovernor,
    SocSimulator,
    WorkloadGenerator,
    WorkloadPhase,
    WorkloadSpec,
)

_CHANNEL = DvfsChannelConfig(
    name="cpu_big",
    frequencies_mhz=(100, 250, 500, 1000, 2000),
    voltages_v=(0.5, 0.6, 0.7, 0.8, 1.0),
    demand_share=1.0,
)


class TestGovernorProperties:
    @given(
        state=st.integers(0, 4),
        utilization=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_ondemand_state_always_valid(self, state, utilization):
        gov = OndemandGovernor()
        next_state = gov.next_state(state, utilization, _CHANNEL)
        assert 0 <= next_state < _CHANNEL.n_states

    @given(
        state=st.integers(0, 4),
        utilization=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_ondemand_never_drops_more_than_one(self, state, utilization):
        gov = OndemandGovernor()
        next_state = gov.next_state(state, utilization, _CHANNEL)
        assert next_state >= state - 1

    @given(
        state=st.integers(0, 4),
        utilization=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_conservative_moves_at_most_one(self, state, utilization):
        gov = ConservativeGovernor()
        next_state = gov.next_state(state, utilization, _CHANNEL)
        assert abs(next_state - state) <= 1
        assert 0 <= next_state < _CHANNEL.n_states


@st.composite
def workload_specs(draw):
    """Random two-phase workload specs."""
    cpu1 = draw(st.floats(0.0, 1.0, allow_nan=False))
    cpu2 = draw(st.floats(0.0, 1.0, allow_nan=False))
    duration = draw(st.integers(1, 50))
    return WorkloadSpec(
        name="prop",
        label=draw(st.integers(0, 1)),
        family="prop",
        phases=(
            WorkloadPhase("a", cpu_mean=cpu1, mean_duration_steps=duration),
            WorkloadPhase("b", cpu_mean=cpu2, mean_duration_steps=duration),
        ),
    )


class TestWorkloadProperties:
    @given(spec=workload_specs(), n_steps=st.integers(1, 300), seed=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_trace_invariants(self, spec, n_steps, seed):
        trace = WorkloadGenerator(random_state=seed).generate(spec, n_steps)
        assert trace.n_steps == n_steps
        assert np.all((trace.cpu_demand >= 0) & (trace.cpu_demand <= 1))
        assert np.all((trace.branch_entropy >= 0) & (trace.branch_entropy <= 1))
        assert np.all(trace.working_set_kib > 0)
        np.testing.assert_allclose(trace.instr_mix.sum(axis=1), 1.0, atol=1e-9)

    @given(spec=workload_specs(), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_simulators_accept_any_trace(self, spec, seed):
        trace = WorkloadGenerator(random_state=seed).generate(spec, 60)
        dvfs = SocSimulator(random_state=seed).run(trace)
        assert dvfs.states.min() >= 0
        for c in range(dvfs.n_channels):
            assert dvfs.states[:, c].max() < dvfs.n_states(c)
        hpc = HpcSimulator(random_state=seed).run(trace)
        assert np.all(hpc.counters >= 0)
        assert np.all(np.isfinite(hpc.counters))
