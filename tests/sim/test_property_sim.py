"""Property-based tests for the hardware substrates.

The invariant battery at the bottom runs over *both* generation paths —
the per-window reference (``generate``) and the batched kernel
(``generate_batch``) — through one shared harness, so a property can
never hold on one path and silently break on the other.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    ActivityTrace,
    ConservativeGovernor,
    DvfsChannelConfig,
    HpcSimulator,
    OndemandGovernor,
    SocSimulator,
    WorkloadGenerator,
    WorkloadPhase,
    WorkloadSpec,
)

_CHANNEL = DvfsChannelConfig(
    name="cpu_big",
    frequencies_mhz=(100, 250, 500, 1000, 2000),
    voltages_v=(0.5, 0.6, 0.7, 0.8, 1.0),
    demand_share=1.0,
)


class TestGovernorProperties:
    @given(
        state=st.integers(0, 4),
        utilization=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_ondemand_state_always_valid(self, state, utilization):
        gov = OndemandGovernor()
        next_state = gov.next_state(state, utilization, _CHANNEL)
        assert 0 <= next_state < _CHANNEL.n_states

    @given(
        state=st.integers(0, 4),
        utilization=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_ondemand_never_drops_more_than_one(self, state, utilization):
        gov = OndemandGovernor()
        next_state = gov.next_state(state, utilization, _CHANNEL)
        assert next_state >= state - 1

    @given(
        state=st.integers(0, 4),
        utilization=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_conservative_moves_at_most_one(self, state, utilization):
        gov = ConservativeGovernor()
        next_state = gov.next_state(state, utilization, _CHANNEL)
        assert abs(next_state - state) <= 1
        assert 0 <= next_state < _CHANNEL.n_states


@st.composite
def workload_specs(draw):
    """Random two-phase workload specs."""
    cpu1 = draw(st.floats(0.0, 1.0, allow_nan=False))
    cpu2 = draw(st.floats(0.0, 1.0, allow_nan=False))
    duration = draw(st.integers(1, 50))
    return WorkloadSpec(
        name="prop",
        label=draw(st.integers(0, 1)),
        family="prop",
        phases=(
            WorkloadPhase("a", cpu_mean=cpu1, mean_duration_steps=duration),
            WorkloadPhase("b", cpu_mean=cpu2, mean_duration_steps=duration),
        ),
    )


class TestWorkloadProperties:
    @given(spec=workload_specs(), n_steps=st.integers(1, 300), seed=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_trace_invariants(self, spec, n_steps, seed):
        trace = WorkloadGenerator(random_state=seed).generate(spec, n_steps)
        assert trace.n_steps == n_steps
        assert np.all((trace.cpu_demand >= 0) & (trace.cpu_demand <= 1))
        assert np.all((trace.branch_entropy >= 0) & (trace.branch_entropy <= 1))
        assert np.all(trace.working_set_kib > 0)
        np.testing.assert_allclose(trace.instr_mix.sum(axis=1), 1.0, atol=1e-9)

    @given(spec=workload_specs(), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_simulators_accept_any_trace(self, spec, seed):
        trace = WorkloadGenerator(random_state=seed).generate(spec, 60)
        dvfs = SocSimulator(random_state=seed).run(trace)
        assert dvfs.states.min() >= 0
        for c in range(dvfs.n_channels):
            assert dvfs.states[:, c].max() < dvfs.n_states(c)
        hpc = HpcSimulator(random_state=seed).run(trace)
        assert np.all(hpc.counters >= 0)
        assert np.all(np.isfinite(hpc.counters))


# --------------------------------------------------------------------------
# shared invariant harness: reference and batched paths
# --------------------------------------------------------------------------


def _windows(path, spec, n_windows, n_steps, seed):
    """Generate windows through the requested path."""
    generator = WorkloadGenerator(random_state=seed)
    if path == "reference":
        return [generator.generate(spec, n_steps) for _ in range(n_windows)]
    return generator.generate_batch(spec, n_windows, n_steps).windows()


def _dwell_lengths(phase_ids):
    """Run lengths of the phase sequence."""
    changes = np.flatnonzero(np.diff(phase_ids)) + 1
    bounds = np.concatenate([[0], changes, [len(phase_ids)]])
    return np.diff(bounds)


_TIMER_SPEC = WorkloadSpec(
    name="timer",
    label=1,
    family="prop",
    phases=(
        WorkloadPhase("beacon", cpu_mean=0.7, mean_duration_steps=20, dwell_cv=0.05),
        WorkloadPhase("sleep", cpu_mean=0.05, mean_duration_steps=20, dwell_cv=0.05),
    ),
    # Forced alternation so phase run lengths are exactly the sampled
    # dwells (no same-phase merges).
    transitions=((0.0, 1.0), (1.0, 0.0)),
)

_GEOMETRIC_SPEC = WorkloadSpec(
    name="human",
    label=0,
    family="prop",
    phases=(
        WorkloadPhase("idle", cpu_mean=0.1, mean_duration_steps=10),
        WorkloadPhase("busy", cpu_mean=0.8, mean_duration_steps=10),
    ),
    transitions=((0.0, 1.0), (1.0, 0.0)),
)


@pytest.mark.parametrize("path", ["reference", "batched"])
class TestSharedInvariants:
    """Every invariant runs against both generation paths."""

    @pytest.mark.parametrize("n_steps", [1, 17, 240])
    def test_bounded_demands(self, path, n_steps):
        spec = _TIMER_SPEC
        for trace in _windows(path, spec, 8, n_steps, seed=3):
            assert np.all((trace.cpu_demand >= 0) & (trace.cpu_demand <= 1))
            assert np.all((trace.gpu_demand >= 0) & (trace.gpu_demand <= 1))
            assert np.all((trace.branch_entropy >= 0) & (trace.branch_entropy <= 1))
            assert np.all((trace.io_rate >= 0) & (trace.io_rate <= 1))
            assert np.all(trace.working_set_kib > 0)

    def test_mix_rows_sum_to_one(self, path):
        for trace in _windows(path, _GEOMETRIC_SPEC, 6, 120, seed=8):
            np.testing.assert_allclose(
                trace.instr_mix.sum(axis=1), 1.0, atol=1e-9
            )
            assert np.all(trace.instr_mix >= 0)

    def test_timer_dwell_means_within_cv_bounds(self, path):
        # Timer-driven dwells: normal(mean=20, sd=cv*20=1).  The pooled
        # dwell mean over many windows must sit well inside 20 ± 3.
        dwells = np.concatenate(
            [
                _dwell_lengths(t.phase_id)[1:-1]  # drop truncated ends
                for t in _windows(path, _TIMER_SPEC, 20, 400, seed=5)
            ]
        )
        assert dwells.size > 100
        mean = dwells.mean()
        assert 17.0 < mean < 23.0, f"timer dwell mean {mean} out of bounds"
        # Rigid cadence: dispersion stays near cv * mean, nowhere close
        # to the geometric regime (sd ≈ mean).
        assert dwells.std() < 0.25 * mean

    def test_geometric_dwell_means_within_bounds(self, path):
        dwells = np.concatenate(
            [
                _dwell_lengths(t.phase_id)[1:-1]
                for t in _windows(path, _GEOMETRIC_SPEC, 20, 400, seed=5)
            ]
        )
        assert dwells.size > 100
        mean = dwells.mean()
        assert 7.0 < mean < 13.0, f"geometric dwell mean {mean} out of bounds"

    def test_phase_ids_index_spec_phases(self, path):
        for trace in _windows(path, _TIMER_SPEC, 4, 60, seed=1):
            assert trace.phase_id.min() >= 0
            assert trace.phase_id.max() < len(_TIMER_SPEC.phases)

    def test_substrates_accept_windows_from_both_paths(self, path):
        traces = _windows(path, _GEOMETRIC_SPEC, 3, 60, seed=2)
        soc = SocSimulator(random_state=0)
        hpc = HpcSimulator(random_state=0)
        for trace in traces:
            dvfs = soc.run(trace)
            assert dvfs.states.min() >= 0
            counters = hpc.run(trace).counters
            assert np.all(counters >= 0) and np.all(np.isfinite(counters))
