"""Tests for the HPC counter simulator."""

import numpy as np
import pytest

from repro.sim import HPC_COUNTERS, ActivityTrace, CpuConfig, HpcSimulator


def _activity(n=100, *, util=0.8, ws=512.0, be=0.3, io=0.1, mix=(0.5, 0.2, 0.2, 0.1)):
    return ActivityTrace(
        cpu_demand=np.full(n, util),
        gpu_demand=np.zeros(n),
        instr_mix=np.tile(mix, (n, 1)),
        working_set_kib=np.full(n, ws),
        branch_entropy=np.full(n, be),
        io_rate=np.full(n, io),
        phase_id=np.zeros(n, dtype=int),
        dt=0.05,
        name="t",
    )


class TestConfigValidation:
    def test_cache_ordering_enforced(self):
        with pytest.raises(ValueError):
            CpuConfig(l1d_size_kib=1024.0, l2_size_kib=512.0)

    def test_positive_frequency(self):
        with pytest.raises(ValueError):
            CpuConfig(freq_ghz=0.0)


class TestHpcSimulator:
    def test_output_shape_and_names(self):
        sim = HpcSimulator(random_state=0)
        trace = sim.run(_activity(200))
        assert trace.counters.shape == (100, len(HPC_COUNTERS))  # dt ratio 2
        assert trace.counter_names == HPC_COUNTERS

    def test_counters_nonnegative_finite(self):
        trace = HpcSimulator(random_state=1).run(_activity(300))
        assert np.all(trace.counters >= 0)
        assert np.all(np.isfinite(trace.counters))

    def test_instructions_below_cycles_times_width(self):
        trace = HpcSimulator(random_state=2).run(_activity(200))
        # base CPI 0.45 => IPC <= ~2.2 before noise; noise is bounded.
        ipc = trace.column("instructions") / np.maximum(trace.column("cycles"), 1)
        assert ipc.mean() < 4.0

    def test_higher_util_more_cycles(self):
        lo = HpcSimulator(random_state=3).run(_activity(200, util=0.2))
        hi = HpcSimulator(random_state=3).run(_activity(200, util=0.9))
        assert hi.column("cycles").mean() > lo.column("cycles").mean()

    def test_bigger_working_set_more_cache_misses(self):
        small = HpcSimulator(random_state=4).run(_activity(200, ws=64.0))
        large = HpcSimulator(random_state=4).run(_activity(200, ws=65536.0))
        small_mpki = small.column("llc_misses") / small.column("instructions")
        large_mpki = large.column("llc_misses") / large.column("instructions")
        assert large_mpki.mean() > small_mpki.mean() * 5

    def test_branch_entropy_drives_mispredictions(self):
        predictable = HpcSimulator(random_state=5).run(_activity(200, be=0.05))
        random_branches = HpcSimulator(random_state=5).run(_activity(200, be=0.9))
        rate_p = predictable.column("branch_misses") / predictable.column(
            "branch_instructions"
        )
        rate_r = random_branches.column("branch_misses") / random_branches.column(
            "branch_instructions"
        )
        assert rate_r.mean() > rate_p.mean() * 3

    def test_io_drives_os_events(self):
        quiet = HpcSimulator(random_state=6).run(_activity(200, io=0.02))
        noisy = HpcSimulator(random_state=6).run(_activity(200, io=0.9))
        assert noisy.column("page_faults").mean() > quiet.column("page_faults").mean()
        assert (
            noisy.column("context_switches").mean()
            > quiet.column("context_switches").mean()
        )

    def test_memory_mix_drives_cache_accesses(self):
        compute = HpcSimulator(random_state=7).run(
            _activity(200, mix=(0.85, 0.05, 0.05, 0.05))
        )
        memory = HpcSimulator(random_state=7).run(
            _activity(200, mix=(0.2, 0.1, 0.5, 0.2))
        )
        compute_rate = compute.column("l1d_accesses") / compute.column("instructions")
        memory_rate = memory.column("l1d_accesses") / memory.column("instructions")
        assert memory_rate.mean() > compute_rate.mean() * 2

    def test_stall_decomposition_bounded(self):
        trace = HpcSimulator(random_state=8).run(_activity(300, ws=32768.0, be=0.8))
        total_stalls = trace.column("stalled_cycles_frontend") + trace.column(
            "stalled_cycles_backend"
        )
        assert np.all(total_stalls <= 1.9 * trace.column("cycles"))

    def test_deterministic_given_seed(self):
        a = HpcSimulator(random_state=9).run(_activity(100))
        b = HpcSimulator(random_state=9).run(_activity(100))
        np.testing.assert_array_equal(a.counters, b.counters)

    def test_interval_rounding_exact(self):
        # Regression: float truncation used to drop the last interval.
        for n_steps in (374, 400, 1000):
            trace = HpcSimulator(random_state=10).run(_activity(n_steps))
            assert trace.n_intervals == round(n_steps * 0.05 / 0.1)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            HpcSimulator(dt=0.0)
