"""Tests for the DVFS governor / SoC power simulator."""

import numpy as np
import pytest

from repro.sim import (
    DEFAULT_SOC,
    ActivityTrace,
    ConservativeGovernor,
    DvfsChannelConfig,
    OndemandGovernor,
    PerformanceGovernor,
    SocConfig,
    SocSimulator,
)


def _activity(cpu, gpu=None, io=None, n=None, dt=0.05):
    cpu = np.asarray(cpu, dtype=float)
    n = len(cpu) if n is None else n
    return ActivityTrace(
        cpu_demand=cpu,
        gpu_demand=np.zeros(n) if gpu is None else np.asarray(gpu, dtype=float),
        instr_mix=np.tile([0.5, 0.2, 0.2, 0.1], (n, 1)),
        working_set_kib=np.full(n, 512.0),
        branch_entropy=np.full(n, 0.3),
        io_rate=np.zeros(n) if io is None else np.asarray(io, dtype=float),
        phase_id=np.zeros(n, dtype=int),
        dt=dt,
        name="t",
    )


_CHANNEL = DvfsChannelConfig(
    name="cpu_big",
    frequencies_mhz=(100, 200, 400, 800),
    voltages_v=(0.5, 0.6, 0.7, 0.9),
    demand_share=1.0,
)


class TestChannelConfig:
    def test_frequency_table_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            DvfsChannelConfig("x", (200, 100), (0.5, 0.6), 0.5)

    def test_voltage_length_checked(self):
        with pytest.raises(ValueError):
            DvfsChannelConfig("x", (100, 200), (0.5,), 0.5)

    def test_needs_two_states(self):
        with pytest.raises(ValueError):
            DvfsChannelConfig("x", (100,), (0.5,), 0.5)

    def test_demand_share_range(self):
        with pytest.raises(ValueError):
            DvfsChannelConfig("x", (100, 200), (0.5, 0.6), 1.5)


class TestOndemandGovernor:
    def test_high_util_jumps_to_max(self):
        gov = OndemandGovernor(up_threshold=0.8)
        assert gov.next_state(0, 0.95, _CHANNEL) == _CHANNEL.n_states - 1

    def test_low_util_steps_down_one(self):
        gov = OndemandGovernor()
        # From the top state with near-zero utilisation: hysteresis
        # limits the step-down to one state per decision.
        assert gov.next_state(3, 0.01, _CHANNEL) == 2

    def test_medium_util_picks_adequate_state(self):
        gov = OndemandGovernor(up_threshold=0.8, down_differential=0.1)
        # utilization 0.5 at state 1 (200 MHz) => demand 100 MHz;
        # target capacity 100/0.7 ≈ 143 => state 1 (200 MHz).
        assert gov.next_state(1, 0.5, _CHANNEL) == 1

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            OndemandGovernor(up_threshold=1.5)
        with pytest.raises(ValueError):
            OndemandGovernor(up_threshold=0.5, down_differential=0.6)


class TestConservativeGovernor:
    def test_steps_up_one(self):
        gov = ConservativeGovernor()
        assert gov.next_state(1, 0.9, _CHANNEL) == 2

    def test_steps_down_one(self):
        gov = ConservativeGovernor()
        assert gov.next_state(2, 0.1, _CHANNEL) == 1

    def test_holds_in_band(self):
        gov = ConservativeGovernor(up_threshold=0.75, down_threshold=0.35)
        assert gov.next_state(2, 0.5, _CHANNEL) == 2

    def test_clamps_at_bounds(self):
        gov = ConservativeGovernor()
        assert gov.next_state(3, 0.99, _CHANNEL) == 3
        assert gov.next_state(0, 0.0, _CHANNEL) == 0


class TestPerformanceGovernor:
    def test_always_max(self):
        gov = PerformanceGovernor()
        for state in range(4):
            assert gov.next_state(state, 0.0, _CHANNEL) == 3


class TestSocSimulator:
    def test_output_shapes(self):
        sim = SocSimulator(random_state=0)
        trace = sim.run(_activity(np.full(100, 0.5)))
        assert trace.states.shape == (100, len(DEFAULT_SOC.channels))
        assert trace.temperature_c.shape == (100,)

    def test_states_within_tables(self):
        sim = SocSimulator(random_state=1)
        trace = sim.run(_activity(np.random.default_rng(0).random(300)))
        for c in range(trace.n_channels):
            assert trace.states[:, c].min() >= 0
            assert trace.states[:, c].max() < trace.n_states(c)

    def test_idle_stays_low_busy_goes_high(self):
        sim = SocSimulator(random_state=2)
        idle = sim.run(_activity(np.full(200, 0.02)))
        busy = SocSimulator(random_state=2).run(_activity(np.full(200, 0.97)))
        assert idle.states[:, 0].mean() < busy.states[:, 0].mean()
        # Sustained high demand pins the big cluster near the top state.
        assert busy.states[50:, 0].mean() > busy.n_states(0) - 2

    def test_gpu_channel_follows_gpu_demand(self):
        sim = SocSimulator(random_state=3)
        no_gpu = sim.run(_activity(np.full(200, 0.3)))
        with_gpu = SocSimulator(random_state=3).run(
            _activity(np.full(200, 0.3), gpu=np.full(200, 0.8))
        )
        gpu_idx = list(no_gpu.channel_names).index("gpu")
        assert with_gpu.states[:, gpu_idx].mean() > no_gpu.states[:, gpu_idx].mean() + 1.0

    def test_io_loads_little_cluster(self):
        sim = SocSimulator(random_state=4)
        quiet = sim.run(_activity(np.full(300, 0.1)))
        io_heavy = SocSimulator(random_state=4).run(
            _activity(np.full(300, 0.1), io=np.full(300, 0.9))
        )
        little = list(quiet.channel_names).index("cpu_little")
        assert io_heavy.states[:, little].mean() > quiet.states[:, little].mean()

    def test_temperature_rises_under_load(self):
        sim = SocSimulator(random_state=5)
        trace = sim.run(_activity(np.full(400, 0.95)))
        assert trace.temperature_c[-1] > trace.temperature_c[0]

    def test_thermal_throttling_caps_states(self):
        config = SocConfig(
            channels=DEFAULT_SOC.channels,
            throttle_temp_c=31.0,  # throttle almost immediately
            throttle_cap_states=3,
        )
        sim = SocSimulator(config, random_state=6)
        trace = sim.run(_activity(np.full(500, 1.0)))
        cap = trace.n_states(0) - 1 - 3
        assert trace.states[100:, 0].max() <= cap

    def test_deterministic_given_seed(self):
        a = SocSimulator(random_state=7).run(_activity(np.full(100, 0.5)))
        b = SocSimulator(random_state=7).run(_activity(np.full(100, 0.5)))
        np.testing.assert_array_equal(a.states, b.states)

    def test_custom_governor_used(self):
        sim = SocSimulator(governor=PerformanceGovernor(), random_state=8)
        trace = sim.run(_activity(np.full(50, 0.01)))
        # Performance governor pins max states regardless of demand.
        assert trace.states[:, 0].min() == trace.n_states(0) - 1
