"""Tests for the trace containers."""

import numpy as np
import pytest

from repro.sim import ActivityTrace, DvfsTrace, HpcTrace


def _activity(n=20, dt=0.05):
    return ActivityTrace(
        cpu_demand=np.linspace(0, 1, n),
        gpu_demand=np.zeros(n),
        instr_mix=np.tile([0.5, 0.2, 0.2, 0.1], (n, 1)),
        working_set_kib=np.full(n, 512.0),
        branch_entropy=np.full(n, 0.3),
        io_rate=np.zeros(n),
        phase_id=np.zeros(n, dtype=int),
        dt=dt,
        name="probe",
    )


class TestActivityTrace:
    def test_basic_properties(self):
        trace = _activity(30, dt=0.1)
        assert trace.n_steps == 30
        assert trace.duration == pytest.approx(3.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            ActivityTrace(
                cpu_demand=np.zeros(5),
                gpu_demand=np.zeros(5),
                instr_mix=np.zeros((4, 4)),
                working_set_kib=np.zeros(5),
                branch_entropy=np.zeros(5),
                io_rate=np.zeros(5),
                phase_id=np.zeros(5, dtype=int),
            )

    def test_bad_mix_shape_raises(self):
        with pytest.raises(ValueError, match="instr_mix"):
            ActivityTrace(
                cpu_demand=np.zeros(5),
                gpu_demand=np.zeros(5),
                instr_mix=np.zeros((5, 3)),
                working_set_kib=np.zeros(5),
                branch_entropy=np.zeros(5),
                io_rate=np.zeros(5),
                phase_id=np.zeros(5, dtype=int),
            )

    def test_nonpositive_dt_raises(self):
        with pytest.raises(ValueError, match="dt"):
            _activity(dt=0.0)

    def test_slice(self):
        trace = _activity(20)
        sub = trace.slice(5, 15)
        assert sub.n_steps == 10
        np.testing.assert_array_equal(sub.cpu_demand, trace.cpu_demand[5:15])

    def test_slice_bounds_checked(self):
        trace = _activity(10)
        with pytest.raises(ValueError):
            trace.slice(5, 50)
        with pytest.raises(ValueError):
            trace.slice(8, 3)


class TestDvfsTrace:
    def _trace(self):
        return DvfsTrace(
            states=np.zeros((10, 2), dtype=int),
            frequencies_mhz=((100.0, 200.0), (300.0, 400.0, 500.0)),
            channel_names=("a", "b"),
            temperature_c=np.full(10, 40.0),
        )

    def test_shape_properties(self):
        trace = self._trace()
        assert trace.n_steps == 10
        assert trace.n_channels == 2
        assert trace.n_states(0) == 2
        assert trace.n_states(1) == 3

    def test_frequency_decoding(self):
        trace = self._trace()
        trace.states[:, 1] = 2
        freqs = trace.frequency_mhz()
        np.testing.assert_allclose(freqs[:, 0], 100.0)
        np.testing.assert_allclose(freqs[:, 1], 500.0)

    def test_channel_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            DvfsTrace(
                states=np.zeros((5, 3), dtype=int),
                frequencies_mhz=((1.0, 2.0),),
                channel_names=("a", "b"),
                temperature_c=np.zeros(5),
            )


class TestHpcTrace:
    def _trace(self):
        return HpcTrace(
            counters=np.arange(12.0).reshape(4, 3),
            counter_names=("instructions", "cycles", "branch_misses"),
        )

    def test_column_lookup(self):
        trace = self._trace()
        np.testing.assert_array_equal(trace.column("cycles"), [1.0, 4.0, 7.0, 10.0])

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            self._trace().column("nonexistent")

    def test_negative_counters_rejected(self):
        with pytest.raises(ValueError):
            HpcTrace(
                counters=np.array([[-1.0]]),
                counter_names=("instructions",),
            )

    def test_n_intervals(self):
        assert self._trace().n_intervals == 4
