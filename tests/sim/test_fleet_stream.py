"""RNG-discipline tests for fleet-scale trace generation.

The per-device seed derivation (:func:`repro.sim.batch.device_stream_key`
/ :func:`device_seed_sequence`) is a *compatibility contract*: a
device's trace stream is a pure function of the root seed and its
``device_id``.  These tests pin the hash values and golden draws, and
check the behavioural consequences the fleet relies on — a device's
output is invariant under fleet reordering, fleet subsetting and
batch-size changes, and :meth:`FleetTraceGenerator.stream` (a thin
wrapper over :meth:`stream_batch`) reproduces the per-device reference
loop bitwise.
"""

import numpy as np
import pytest

from repro.sim import (
    FleetDevice,
    FleetTraceGenerator,
    WorkloadPhase,
    WorkloadSpec,
    device_seed_sequence,
    device_stream_key,
)
from repro.sim.batch import DUTY_STREAM, TRACE_STREAM


def _spec(name, cpu=0.5, dwell_cv=None):
    return WorkloadSpec(
        name=name,
        label=0,
        family="test",
        phases=(
            WorkloadPhase("a", cpu_mean=cpu, mean_duration_steps=8, dwell_cv=dwell_cv),
            WorkloadPhase("b", cpu_mean=1.0 - cpu, mean_duration_steps=12),
        ),
        transitions=((0.3, 0.7), (0.6, 0.4)),
    )


_SPEC_A = _spec("app-a", 0.2)
_SPEC_B = _spec("app-b", 0.8)
_SPEC_C = _spec("app-c", 0.5, dwell_cv=0.05)


def _fleet(n=6):
    specs = (_SPEC_A, _SPEC_B, _SPEC_C)
    return tuple(
        FleetDevice(f"dev-{i:04d}", specs[i % len(specs)], "benign")
        for i in range(n)
    )


def _assert_traces_equal(a, b):
    for attr in (
        "cpu_demand",
        "gpu_demand",
        "instr_mix",
        "working_set_kib",
        "branch_entropy",
        "io_rate",
        "phase_id",
    ):
        np.testing.assert_array_equal(
            getattr(a, attr), getattr(b, attr), err_msg=attr
        )


class TestSeedDerivationContract:
    """Pin the derivation itself — changing any of this breaks stored
    fleets' reproducibility and is a compatibility break."""

    def test_stream_key_golden_values(self):
        assert device_stream_key("dev-0000") == 0xA65EEBC39CA3BC93
        assert device_stream_key("dev-0001") == 0xA65EEAC39CA3BAE0
        assert device_stream_key("fleet/alpha") == 0x83BDA0CBE69C94B4

    def test_stream_key_is_fnv1a64(self):
        # Independent re-implementation of 64-bit FNV-1a over UTF-8.
        h = 0xCBF29CE484222325
        for byte in "dev-0042".encode("utf-8"):
            h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        assert device_stream_key("dev-0042") == h

    def test_seed_sequence_structure(self):
        ss = device_seed_sequence(7, "dev-0000")
        assert ss.entropy == 7
        assert ss.spawn_key == (TRACE_STREAM, device_stream_key("dev-0000"))
        duty = device_seed_sequence(7, "dev-0000", stream=DUTY_STREAM)
        assert duty.spawn_key == (DUTY_STREAM, device_stream_key("dev-0000"))
        assert TRACE_STREAM == 0 and DUTY_STREAM == 1

    def test_golden_trace_stream_draws(self):
        rng = np.random.default_rng(device_seed_sequence(7, "dev-0000"))
        np.testing.assert_allclose(
            [rng.random() for _ in range(3)],
            [0.5228534497046528, 0.7339612615447103, 0.16360081779285363],
            rtol=0,
            atol=0,
        )

    def test_integer_root_seed_is_the_entropy(self):
        # An int root seed is used verbatim, so the whole contract is a
        # pure function of user-visible inputs.
        fleet = FleetTraceGenerator(_fleet(2), random_state=123)
        assert fleet.root_entropy == 123


class TestStreamInvariances:
    def test_invariant_under_reordering(self):
        devices = _fleet(6)
        forward = FleetTraceGenerator(devices, random_state=7)
        backward = FleetTraceGenerator(devices[::-1], random_state=7)
        want = {
            d.device_id: t for d, t in forward.stream(n_rounds=3, window_steps=40)
        }
        got = {
            d.device_id: t for d, t in backward.stream(n_rounds=3, window_steps=40)
        }
        assert want.keys() == got.keys()
        for device_id in want:
            _assert_traces_equal(got[device_id], want[device_id])

    def test_invariant_under_subsetting(self):
        devices = _fleet(6)
        full = FleetTraceGenerator(devices, random_state=7)
        sub = FleetTraceGenerator(devices[2:4], random_state=7)
        want = {
            d.device_id: t for d, t in full.stream(n_rounds=1, window_steps=60)
        }
        for device, trace in sub.stream(n_rounds=1, window_steps=60):
            _assert_traces_equal(trace, want[device.device_id])

    def test_invariant_under_batch_size(self):
        # 4 windows in one batched call vs 2+2 vs 1+1+1+1 — the
        # device's stream position depends only on windows generated.
        devices = _fleet(3)
        one = FleetTraceGenerator(devices, random_state=5)
        many = FleetTraceGenerator(devices, random_state=5)
        device = devices[0]
        all_at_once = one.device_windows(device, 4, 30)
        dribbled = many.device_windows(device, 2, 30) + many.device_windows(
            device, 2, 30
        )
        for a, b in zip(all_at_once, dribbled):
            _assert_traces_equal(a, b)

    def test_stream_matches_reference_bitwise(self):
        devices = _fleet(5)
        fast = FleetTraceGenerator(devices, random_state=11)
        slow = FleetTraceGenerator(devices, random_state=11)
        fast_events = list(fast.stream(n_rounds=4, window_steps=50))
        slow_events = list(slow.stream_reference(n_rounds=4, window_steps=50))
        assert len(fast_events) == len(slow_events) == 20
        for (fd, ft), (sd, st) in zip(fast_events, slow_events):
            assert fd.device_id == sd.device_id
            _assert_traces_equal(ft, st)

    def test_stream_matches_reference_with_duty_cycle(self):
        devices = _fleet(8)
        fast = FleetTraceGenerator(devices, duty_cycle=0.6, random_state=3)
        slow = FleetTraceGenerator(devices, duty_cycle=0.6, random_state=3)
        fast_events = list(fast.stream(n_rounds=6, window_steps=30))
        slow_events = list(slow.stream_reference(n_rounds=6, window_steps=30))
        assert 0 < len(fast_events) < 48  # duty thinning engaged
        for (fd, ft), (sd, st) in zip(fast_events, slow_events):
            assert fd.device_id == sd.device_id
            _assert_traces_equal(ft, st)

    def test_duty_stream_is_independent_of_trace_stream(self):
        # A device's k-th *emitted* window is bitwise its k-th window
        # under duty_cycle=1.0: duty draws come from the separate duty
        # stream and never perturb the trace stream.
        devices = _fleet(4)
        thinned = FleetTraceGenerator(devices, duty_cycle=0.5, random_state=9)
        always = FleetTraceGenerator(devices, duty_cycle=1.0, random_state=9)
        per_device: dict[str, list] = {d.device_id: [] for d in devices}
        for device, trace in thinned.stream(n_rounds=8, window_steps=25):
            per_device[device.device_id].append(trace)
        dense: dict[str, list] = {d.device_id: [] for d in devices}
        for device, trace in always.stream(n_rounds=8, window_steps=25):
            dense[device.device_id].append(trace)
        assert any(per_device.values())
        for device_id, traces in per_device.items():
            for k, trace in enumerate(traces):
                _assert_traces_equal(trace, dense[device_id][k])


class TestStreamBatch:
    def test_rows_align_with_emitting_devices(self):
        devices = _fleet(5)
        fleet = FleetTraceGenerator(devices, random_state=2)
        rounds = list(fleet.stream_batch(n_rounds=2, window_steps=40))
        assert len(rounds) == 2
        for emitting, batch in rounds:
            assert emitting == devices  # duty_cycle=1: everyone, fleet order
            assert batch.n_windows == len(emitting)
            assert batch.names == tuple(d.spec.name for d in emitting)

    def test_stream_is_thin_wrapper_over_stream_batch(self):
        devices = _fleet(4)
        a = FleetTraceGenerator(devices, random_state=6)
        b = FleetTraceGenerator(devices, random_state=6)
        via_stream = list(a.stream(n_rounds=3, window_steps=35))
        via_batch = [
            (device, batch.window(i))
            for emitting, batch in b.stream_batch(n_rounds=3, window_steps=35)
            for i, device in enumerate(emitting)
        ]
        for (fd, ft), (sd, st) in zip(via_stream, via_batch):
            assert fd.device_id == sd.device_id
            _assert_traces_equal(ft, st)

    def test_window_views_are_zero_copy(self):
        devices = _fleet(3)
        fleet = FleetTraceGenerator(devices, random_state=1)
        (_, batch), = fleet.stream_batch(n_rounds=1, window_steps=20)
        view = batch.window(1)
        assert view.cpu_demand.base is batch.cpu_demand

    def test_rejects_bad_rounds(self):
        fleet = FleetTraceGenerator(_fleet(2), random_state=0)
        with pytest.raises(ValueError, match="n_rounds"):
            list(fleet.stream_batch(0, 10))
