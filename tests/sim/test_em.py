"""Tests for the EM side-channel substrate."""

import numpy as np
import pytest

from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE
from repro.sim import EmConfig, EmFeatureExtractor, EmSimulator, WorkloadGenerator
from repro.sim.em import EmSpectrum


def _activity(spec, n=256, seed=0):
    return WorkloadGenerator(random_state=seed).generate(spec, n)


class TestEmConfig:
    def test_carrier_bounds(self):
        with pytest.raises(ValueError):
            EmConfig(carrier_freq=0.6)
        with pytest.raises(ValueError):
            EmConfig(carrier_freq=0.0)

    def test_harmonics_must_fit(self):
        with pytest.raises(ValueError):
            EmConfig(carrier_freq=0.4, n_harmonics=3)

    def test_min_bins(self):
        with pytest.raises(ValueError):
            EmConfig(spectrum_bins=8)


class TestEmSimulator:
    def test_spectrum_shape(self):
        sim = EmSimulator(random_state=0)
        spectrum = sim.run(_activity(DVFS_KNOWN_BENIGN[0]))
        assert spectrum.n_bins == sim.config.spectrum_bins
        assert np.all(np.isfinite(spectrum.power_db))

    def test_carrier_peaks_visible(self):
        config = EmConfig(measurement_noise_db=0.0)
        sim = EmSimulator(config, random_state=0)
        spectrum = sim.run(_activity(DVFS_KNOWN_MALWARE[1]))  # cryptominer
        n = spectrum.n_bins
        carrier_idx = int(round(config.carrier_freq * n))
        # The fundamental stands well above the local floor.
        floor = np.median(spectrum.power_db)
        assert spectrum.power_db[carrier_idx] > floor + 10.0

    def test_activity_scales_carrier(self):
        config = EmConfig(measurement_noise_db=0.0)
        idle = _activity(DVFS_KNOWN_MALWARE[6], seed=1)     # keylogger (quiet)
        busy = _activity(DVFS_KNOWN_MALWARE[1], seed=1)     # cryptominer (busy)
        sim_idle = EmSimulator(config, random_state=2).run(idle)
        sim_busy = EmSimulator(config, random_state=2).run(busy)
        idx = int(round(config.carrier_freq * config.spectrum_bins))
        assert sim_busy.power_db[idx] > sim_idle.power_db[idx]

    def test_deterministic_given_seed(self):
        activity = _activity(DVFS_KNOWN_BENIGN[0], seed=3)
        a = EmSimulator(random_state=5).run(activity)
        b = EmSimulator(random_state=5).run(activity)
        np.testing.assert_array_equal(a.power_db, b.power_db)

    def test_spectrum_validation(self):
        with pytest.raises(ValueError):
            EmSpectrum(power_db=np.zeros(4), frequencies=np.zeros(5))


class TestEmFeatureExtractor:
    def test_names_match_vector(self):
        extractor = EmFeatureExtractor()
        spectrum = EmSimulator(random_state=0).run(_activity(DVFS_KNOWN_BENIGN[0]))
        assert len(extractor.extract(spectrum)) == len(extractor.feature_names())

    def test_features_finite(self):
        extractor = EmFeatureExtractor()
        spectrum = EmSimulator(random_state=1).run(_activity(DVFS_KNOWN_MALWARE[0]))
        assert np.all(np.isfinite(extractor.extract(spectrum)))

    def test_flatness_in_unit_interval(self):
        extractor = EmFeatureExtractor()
        spectrum = EmSimulator(random_state=2).run(_activity(DVFS_KNOWN_BENIGN[2]))
        names = extractor.feature_names()
        value = extractor.extract(spectrum)[names.index("spectral_flatness")]
        assert 0.0 <= value <= 1.0 + 1e-9

    def test_extract_windows(self):
        extractor = EmFeatureExtractor()
        sim = EmSimulator(random_state=3)
        activity = _activity(DVFS_KNOWN_BENIGN[0], n=512, seed=4)
        X = extractor.extract_windows(activity, 128, simulator=sim)
        assert X.shape == (4, len(extractor.feature_names()))

    def test_extract_windows_validation(self):
        extractor = EmFeatureExtractor()
        sim = EmSimulator(random_state=5)
        activity = _activity(DVFS_KNOWN_BENIGN[0], n=64, seed=6)
        with pytest.raises(ValueError):
            extractor.extract_windows(activity, 4, simulator=sim)
        with pytest.raises(ValueError):
            extractor.extract_windows(activity, 128, simulator=sim)
