"""Tests for workload archetypes and trace generation."""

import numpy as np
import pytest

from repro.sim import WorkloadGenerator, WorkloadPhase, WorkloadSpec


def _spec(dwell_cv=None, jitter=0.05):
    return WorkloadSpec(
        name="toy",
        label=0,
        family="test",
        phases=(
            WorkloadPhase("low", cpu_mean=0.1, mean_duration_steps=10, dwell_cv=dwell_cv),
            WorkloadPhase("high", cpu_mean=0.9, mean_duration_steps=10, dwell_cv=dwell_cv),
        ),
        transitions=((0.2, 0.8), (0.8, 0.2)),
        app_jitter=jitter,
    )


class TestWorkloadPhaseValidation:
    def test_cpu_mean_range(self):
        with pytest.raises(ValueError):
            WorkloadPhase("bad", cpu_mean=1.5)

    def test_mix_length(self):
        with pytest.raises(ValueError):
            WorkloadPhase("bad", cpu_mean=0.5, mix=(1.0, 0.0))

    def test_mix_nonnegative(self):
        with pytest.raises(ValueError):
            WorkloadPhase("bad", cpu_mean=0.5, mix=(-0.1, 0.5, 0.4, 0.2))

    def test_duration_positive(self):
        with pytest.raises(ValueError):
            WorkloadPhase("bad", cpu_mean=0.5, mean_duration_steps=0)


class TestWorkloadSpecValidation:
    def test_label_checked(self):
        with pytest.raises(ValueError, match="label"):
            WorkloadSpec("x", 2, "f", (WorkloadPhase("p", cpu_mean=0.5),))

    def test_needs_phases(self):
        with pytest.raises(ValueError, match="phase"):
            WorkloadSpec("x", 0, "f", ())

    def test_transition_shape_checked(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                "x", 0, "f",
                (WorkloadPhase("a", cpu_mean=0.5), WorkloadPhase("b", cpu_mean=0.5)),
                transitions=((1.0,),),
            )

    def test_transition_rows_stochastic(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                "x", 0, "f",
                (WorkloadPhase("a", cpu_mean=0.5), WorkloadPhase("b", cpu_mean=0.5)),
                transitions=((0.5, 0.4), (0.5, 0.5)),
            )

    def test_default_transitions_uniform(self):
        spec = WorkloadSpec(
            "x", 0, "f",
            (WorkloadPhase("a", cpu_mean=0.5), WorkloadPhase("b", cpu_mean=0.5)),
        )
        np.testing.assert_allclose(spec.transition_matrix(), 0.5)


class TestGeneration:
    def test_trace_length_and_bounds(self):
        gen = WorkloadGenerator(random_state=0)
        trace = gen.generate(_spec(), 200)
        assert trace.n_steps == 200
        assert np.all((trace.cpu_demand >= 0) & (trace.cpu_demand <= 1))
        assert np.all((trace.gpu_demand >= 0) & (trace.gpu_demand <= 1))
        assert np.all((trace.io_rate >= 0) & (trace.io_rate <= 1))
        assert np.all(trace.working_set_kib > 0)

    def test_mix_rows_sum_to_one(self):
        trace = WorkloadGenerator(random_state=1).generate(_spec(), 100)
        np.testing.assert_allclose(trace.instr_mix.sum(axis=1), 1.0, atol=1e-9)

    def test_phase_ids_valid(self):
        trace = WorkloadGenerator(random_state=2).generate(_spec(), 150)
        assert set(np.unique(trace.phase_id)) <= {0, 1}

    def test_both_phases_visited_eventually(self):
        trace = WorkloadGenerator(random_state=3).generate(_spec(), 500)
        assert len(np.unique(trace.phase_id)) == 2

    def test_phase_means_respected(self):
        trace = WorkloadGenerator(random_state=4).generate(_spec(jitter=0.001), 3000)
        low = trace.cpu_demand[trace.phase_id == 0]
        high = trace.cpu_demand[trace.phase_id == 1]
        assert abs(low.mean() - 0.1) < 0.05
        assert abs(high.mean() - 0.9) < 0.05

    def test_deterministic_with_seed(self):
        a = WorkloadGenerator(random_state=5).generate(_spec(), 100)
        b = WorkloadGenerator(random_state=5).generate(_spec(), 100)
        np.testing.assert_array_equal(a.cpu_demand, b.cpu_demand)

    def test_session_personality_differs_between_windows(self):
        gen = WorkloadGenerator(random_state=6)
        w1 = gen.generate(_spec(jitter=0.2), 200)
        w2 = gen.generate(_spec(jitter=0.2), 200)
        assert abs(w1.cpu_demand.mean() - w2.cpu_demand.mean()) > 1e-3

    def test_low_dwell_cv_gives_regular_cadence(self):
        # Timer-driven (dwell_cv small) phases produce much more regular
        # run lengths than geometric dwells.
        def run_length_cv(trace):
            changes = np.flatnonzero(np.diff(trace.phase_id) != 0)
            bounds = np.concatenate([[-1], changes, [trace.n_steps - 1]])
            runs = np.diff(bounds)
            return runs.std() / runs.mean()

        regular = WorkloadGenerator(random_state=7).generate(_spec(dwell_cv=0.05), 2000)
        geometric = WorkloadGenerator(random_state=7).generate(_spec(), 2000)
        assert run_length_cv(regular) < run_length_cv(geometric)

    def test_generate_windows_count(self):
        gen = WorkloadGenerator(random_state=8)
        windows = gen.generate_windows(_spec(), 5, 50)
        assert len(windows) == 5
        assert all(w.n_steps == 50 for w in windows)

    def test_invalid_args(self):
        gen = WorkloadGenerator(random_state=9)
        with pytest.raises(ValueError):
            gen.generate(_spec(), 0)
        with pytest.raises(ValueError):
            gen.generate_windows(_spec(), 0, 10)
        with pytest.raises(ValueError):
            WorkloadGenerator(dt=-1.0)


class TestBlendSpecs:
    def _sources(self):
        from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE

        return DVFS_KNOWN_MALWARE[0], DVFS_KNOWN_BENIGN[0]

    def test_blended_spec_valid(self):
        from repro.sim import blend_specs

        malware, benign = self._sources()
        blended = blend_specs(malware, benign, 0.5)
        assert blended.label == 1
        assert len(blended.phases) == len(malware.phases) + len(benign.phases)
        np.testing.assert_allclose(blended.transition_matrix().sum(axis=1), 1.0)

    def test_stealth_controls_benign_residency(self):
        from repro.sim import blend_specs

        malware, benign = self._sources()
        n_mal = len(malware.phases)

        def benign_fraction(stealth, seed=0):
            spec = blend_specs(malware, benign, stealth)
            trace = WorkloadGenerator(random_state=seed).generate(spec, 4000)
            return float(np.mean(trace.phase_id >= n_mal))

        low = benign_fraction(0.2)
        high = benign_fraction(0.8)
        assert high > low + 0.3

    def test_zero_stealth_is_malware_like(self):
        from repro.sim import blend_specs

        malware, benign = self._sources()
        blended = blend_specs(malware, benign, 0.0)
        trace = WorkloadGenerator(random_state=1).generate(blended, 2000)
        # Starting phase may be benign, but residency stays malware-side.
        assert float(np.mean(trace.phase_id < len(malware.phases))) > 0.9

    def test_validation(self):
        from repro.sim import blend_specs

        malware, benign = self._sources()
        with pytest.raises(ValueError):
            blend_specs(benign, malware, 0.5)  # labels swapped
        with pytest.raises(ValueError):
            blend_specs(malware, benign, 1.0)

    def test_custom_name(self):
        from repro.sim import blend_specs

        malware, benign = self._sources()
        assert blend_specs(malware, benign, 0.5, name="evil").name == "evil"
