"""Bitwise fuzz gates: batched simulator paths vs. the per-step reference.

The vectorized backend (``generate_batch`` / ``run_batch``) promises
*bitwise identity* with the retained per-step reference paths
(``generate`` / ``run_reference``): the batched kernels consume the RNG
stream window-by-window in the reference order and keep every remaining
operation elementwise, so no float changes.  These tests fuzz that
promise across phase counts, window lengths (including ``n_steps=1``),
channel counts, governors, dt ratios and seeds.

Where a reduction order *would* have to change there is a drift-gated
(≤ 1e-9) variant instead — currently nothing needs it, and the
downstream check pins that: features extracted from both paths drift by
exactly 0.0 and the trusted-HMD verdicts are unchanged.
"""

import numpy as np
import pytest

from repro.ml import RandomForestClassifier
from repro.hmd.features import DvfsFeatureExtractor
from repro.sim import (
    ActivityBatch,
    ConservativeGovernor,
    DvfsChannelConfig,
    HpcSimulator,
    OndemandGovernor,
    PerformanceGovernor,
    SocConfig,
    SocSimulator,
    WorkloadGenerator,
    WorkloadPhase,
    WorkloadSpec,
)
from repro.uncertainty import TrustedHMD

# --------------------------------------------------------------------------
# fuzz material
# --------------------------------------------------------------------------


def _spec(n_phases, *, dwell_cv=None, jitter=0.05, seed=0):
    """A random-ish but deterministic spec with ``n_phases`` phases."""
    rng = np.random.default_rng(seed)
    phases = tuple(
        WorkloadPhase(
            f"p{i}",
            cpu_mean=float(rng.uniform(0.05, 0.95)),
            cpu_std=float(rng.uniform(0.01, 0.1)),
            gpu_mean=float(rng.uniform(0.0, 0.4)),
            burst_prob=float(rng.uniform(0.0, 0.2)),
            burst_height=float(rng.uniform(0.0, 0.4)),
            working_set_kib=float(rng.uniform(64, 4096)),
            io_rate=float(rng.uniform(0.0, 0.5)),
            mean_duration_steps=int(rng.integers(1, 40)),
            dwell_cv=dwell_cv,
        )
        for i in range(n_phases)
    )
    transitions = None
    if n_phases > 1:
        matrix = rng.uniform(0.05, 1.0, size=(n_phases, n_phases))
        matrix /= matrix.sum(axis=1, keepdims=True)
        transitions = tuple(tuple(row) for row in matrix)
    return WorkloadSpec(
        name=f"fuzz-{n_phases}-{seed}",
        label=0,
        family="fuzz",
        phases=phases,
        transitions=transitions,
        app_jitter=jitter,
    )


def _assert_traces_equal(batch_window, reference):
    """Bitwise equality of an activity window against a reference trace."""
    for attr in (
        "cpu_demand",
        "gpu_demand",
        "instr_mix",
        "working_set_kib",
        "branch_entropy",
        "io_rate",
        "phase_id",
    ):
        np.testing.assert_array_equal(
            getattr(batch_window, attr), getattr(reference, attr), err_msg=attr
        )
    assert batch_window.dt == reference.dt
    assert batch_window.name == reference.name


# --------------------------------------------------------------------------
# workload generation
# --------------------------------------------------------------------------


class TestWorkloadBatchEquivalence:
    @pytest.mark.parametrize("n_phases", [1, 2, 3, 5])
    @pytest.mark.parametrize("n_steps", [1, 2, 37, 240])
    def test_generate_batch_bitwise(self, n_phases, n_steps):
        for seed in (0, 7, 123):
            spec = _spec(n_phases, seed=seed)
            reference = WorkloadGenerator(random_state=seed)
            batched = WorkloadGenerator(random_state=seed)
            n_windows = 5
            expected = [reference.generate(spec, n_steps) for _ in range(n_windows)]
            batch = batched.generate_batch(spec, n_windows, n_steps)
            assert batch.n_windows == n_windows and batch.n_steps == n_steps
            for i, ref in enumerate(expected):
                _assert_traces_equal(batch.window(i), ref)

    def test_generate_batch_timer_driven_dwells(self):
        # dwell_cv != None exercises the normal-dwell branch of the
        # shared phase machine (malware-style rigid cadence).
        spec = _spec(3, dwell_cv=0.05, seed=11)
        reference = WorkloadGenerator(random_state=42)
        batched = WorkloadGenerator(random_state=42)
        expected = [reference.generate(spec, 120) for _ in range(8)]
        batch = batched.generate_batch(spec, 8, 120)
        for i, ref in enumerate(expected):
            _assert_traces_equal(batch.window(i), ref)

    def test_generate_windows_matches_reference_path(self):
        spec = _spec(2, seed=3)
        a = WorkloadGenerator(random_state=9)
        b = WorkloadGenerator(random_state=9)
        fast = a.generate_windows(spec, 6, 80)
        slow = b.generate_windows_reference(spec, 6, 80)
        for f, s in zip(fast, slow):
            _assert_traces_equal(f, s)

    def test_rng_stream_advances_identically(self):
        # After generating, both paths must leave the generator in the
        # same stream position — the property that lets callers mix
        # batched and per-window calls freely.
        spec = _spec(2, seed=5)
        a = WorkloadGenerator(random_state=1)
        b = WorkloadGenerator(random_state=1)
        a.generate_batch(spec, 4, 50)
        for _ in range(4):
            b.generate(spec, 50)
        assert a.rng.integers(2**63) == b.rng.integers(2**63)

    def test_choice_vs_cdf_searchsorted_pin(self):
        # The phase machine replaces ``rng.choice(n, p=row)`` with one
        # uniform inverted through the row CDF.  Pin the bitwise
        # equivalence (and the single-draw stream consumption) that
        # substitution relies on.
        rng = np.random.default_rng(0)
        for trial in range(200):
            n = int(rng.integers(1, 7))
            p = rng.uniform(0.0, 1.0, size=n) + 1e-12
            p /= p.sum()
            cdf = p.cumsum()
            cdf /= cdf[-1]
            a = np.random.default_rng(trial)
            b = np.random.default_rng(trial)
            via_choice = int(a.choice(n, p=p))
            via_cdf = int(cdf.searchsorted(b.random(), side="right"))
            assert via_choice == via_cdf
            assert a.integers(2**63) == b.integers(2**63)

    def test_clip_is_max_then_min_pin(self):
        # The batched kernels compose clipping as maximum-then-minimum
        # in place; pin that this is bitwise np.clip.
        rng = np.random.default_rng(4)
        x = rng.normal(size=(64, 64)) * 2.0
        via_clip = np.clip(x, 0.0, 1.0)
        y = x.copy()
        np.maximum(y, 0.0, out=y)
        np.minimum(y, 1.0, out=y)
        np.testing.assert_array_equal(via_clip, y)


# --------------------------------------------------------------------------
# SoC DVFS simulation
# --------------------------------------------------------------------------

_SMALL_SOC = SocConfig(
    channels=(
        DvfsChannelConfig(
            name="cpu",
            frequencies_mhz=(200.0, 600.0, 1200.0, 1800.0),
            voltages_v=(0.6, 0.7, 0.85, 1.0),
            demand_share=1.0,
        ),
    ),
)

_TWO_CHANNEL_SOC = SocConfig(
    channels=(
        DvfsChannelConfig(
            name="cpu_big",
            frequencies_mhz=(300.0, 900.0, 1600.0, 2100.0, 2600.0),
            voltages_v=(0.55, 0.65, 0.8, 0.9, 1.05),
            demand_share=0.7,
        ),
        DvfsChannelConfig(
            name="cpu_little",
            frequencies_mhz=(300.0, 700.0, 1100.0),
            voltages_v=(0.55, 0.62, 0.72),
            demand_share=0.3,
            background_util=0.05,
        ),
    ),
    # Low throttle point so the fuzz windows actually exercise the
    # thermal-cap branch of both paths.
    throttle_temp_c=40.0,
)


class _StubbornGovernor:
    """A custom governor with no ``next_state_batch`` — exercises the
    scalar fallback of the batched scan."""

    def next_state(self, state, utilization, channel):
        if utilization > 0.9:
            return channel.n_states - 1
        if utilization < 0.2 and state > 0:
            return state - 1
        return state


def _activity_batch(n_windows, n_steps, seed=0):
    spec = _spec(3, seed=seed)
    return WorkloadGenerator(random_state=seed).generate_batch(
        spec, n_windows, n_steps
    )


class TestSocBatchEquivalence:
    @pytest.mark.parametrize(
        "governor_factory",
        [
            OndemandGovernor,
            ConservativeGovernor,
            PerformanceGovernor,
            _StubbornGovernor,
        ],
    )
    @pytest.mark.parametrize("config", [None, _SMALL_SOC, _TWO_CHANNEL_SOC])
    def test_run_batch_bitwise(self, governor_factory, config):
        batch = _activity_batch(6, 90, seed=17)
        kwargs = {} if config is None else {"config": config}
        reference = SocSimulator(
            governor=governor_factory(), random_state=5, **kwargs
        )
        batched = SocSimulator(
            governor=governor_factory(), random_state=5, **kwargs
        )
        expected = [reference.run_reference(w) for w in batch.windows()]
        result = batched.run_batch(batch)
        assert result.n_windows == batch.n_windows
        for i, ref in enumerate(expected):
            np.testing.assert_array_equal(result.window(i).states, ref.states)
            np.testing.assert_array_equal(
                result.window(i).temperature_c, ref.temperature_c
            )

    @pytest.mark.parametrize("n_steps", [1, 2, 240])
    def test_run_batch_window_lengths(self, n_steps):
        batch = _activity_batch(4, n_steps, seed=2)
        reference = SocSimulator(random_state=1)
        batched = SocSimulator(random_state=1)
        expected = [reference.run_reference(w) for w in batch.windows()]
        result = batched.run_batch(batch)
        for i, ref in enumerate(expected):
            np.testing.assert_array_equal(result.window(i).states, ref.states)
            np.testing.assert_array_equal(
                result.window(i).temperature_c, ref.temperature_c
            )

    def test_run_batch_per_window_rngs(self):
        # Fleet use: one generator per window means window i is bitwise
        # what a dedicated simulator seeded the same way would produce.
        batch = _activity_batch(5, 60, seed=9)
        batched = SocSimulator(random_state=0)
        result = batched.run_batch(
            batch, rngs=[np.random.default_rng(100 + w) for w in range(5)]
        )
        for w in range(5):
            solo = SocSimulator(random_state=np.random.default_rng(100 + w))
            ref = solo.run_reference(batch.window(w))
            np.testing.assert_array_equal(result.window(w).states, ref.states)
            np.testing.assert_array_equal(
                result.window(w).temperature_c, ref.temperature_c
            )

    def test_run_batch_rejects_mismatched_rngs(self):
        batch = _activity_batch(3, 20)
        with pytest.raises(ValueError, match="rngs"):
            SocSimulator().run_batch(batch, rngs=[np.random.default_rng(0)])

    def test_throttling_actually_engaged(self):
        # Guard against the throttle branch silently never firing in
        # the fuzz above.
        batch = _activity_batch(4, 120, seed=17)
        result = SocSimulator(config=_TWO_CHANNEL_SOC, random_state=5).run_batch(
            batch
        )
        assert (result.temperature_c > _TWO_CHANNEL_SOC.throttle_temp_c).any()


# --------------------------------------------------------------------------
# HPC counter synthesis
# --------------------------------------------------------------------------


class TestHpcBatchEquivalence:
    @pytest.mark.parametrize("dt", [0.1, 0.07])  # integer and fractional
    @pytest.mark.parametrize("n_steps", [1, 11, 200])
    def test_run_batch_bitwise(self, dt, n_steps):
        batch = _activity_batch(5, n_steps, seed=23)
        reference = HpcSimulator(dt=dt, random_state=3)
        batched = HpcSimulator(dt=dt, random_state=3)
        expected = [reference.run_reference(w) for w in batch.windows()]
        result = batched.run_batch(batch)
        assert result.n_windows == batch.n_windows
        for i, ref in enumerate(expected):
            np.testing.assert_array_equal(
                result.window(i).counters, ref.counters
            )

    def test_as_matrix_is_window_concat(self):
        batch = _activity_batch(3, 40, seed=1)
        result = HpcSimulator(random_state=0).run_batch(batch)
        stacked = np.vstack([w.counters for w in result.windows()])
        np.testing.assert_array_equal(result.as_matrix(), stacked)


# --------------------------------------------------------------------------
# downstream: features and verdicts (fig. 5 style)
# --------------------------------------------------------------------------


class TestDownstreamVerdicts:
    def test_feature_drift_zero_and_verdicts_unchanged(self):
        # Features from both simulator paths must drift by exactly 0.0,
        # so any trusted-HMD verdict computed on top is unchanged.
        window_steps = 120
        n_windows = 16
        spec_b = _spec(3, seed=31)
        spec_m = _spec(3, dwell_cv=0.05, seed=32)
        extractor = DvfsFeatureExtractor()

        rows = {"reference": [], "batched": []}
        for spec in (spec_b, spec_m):
            gen_ref = WorkloadGenerator(random_state=77)
            soc_ref = SocSimulator(random_state=78)
            for _ in range(n_windows):
                trace = soc_ref.run_reference(gen_ref.generate(spec, window_steps))
                rows["reference"].append(extractor.extract(trace))

            gen_fast = WorkloadGenerator(random_state=77)
            soc_fast = SocSimulator(random_state=78)
            activity = gen_fast.generate_batch(spec, n_windows, window_steps)
            dvfs = soc_fast.run_batch(activity)
            X = extractor.extract_windows(
                dvfs.as_trace(name=spec.name), window_steps
            )
            rows["batched"].extend(X)

        X_ref = np.asarray(rows["reference"])
        X_fast = np.asarray(rows["batched"])
        drift = np.abs(X_ref - X_fast).max()
        assert drift == 0.0, f"feature drift {drift} exceeds the bitwise gate"

        y = np.repeat([0, 1], n_windows)
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=12, random_state=0),
            threshold=0.40,
        ).fit(X_ref, y)
        verdict_ref = hmd.analyze(X_ref)
        verdict_fast = hmd.analyze(X_fast)
        np.testing.assert_array_equal(
            verdict_ref.predictions, verdict_fast.predictions
        )
        np.testing.assert_array_equal(verdict_ref.entropy, verdict_fast.entropy)
        np.testing.assert_array_equal(
            verdict_ref.accepted, verdict_fast.accepted
        )
