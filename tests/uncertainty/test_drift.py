"""Tests for dataset-shift detection on entropy streams."""

import numpy as np
import pytest

from repro.uncertainty import EntropyDriftMonitor, PageHinkleyDetector


class TestPageHinkley:
    def test_stationary_stream_no_alarm(self):
        rng = np.random.default_rng(0)
        detector = PageHinkleyDetector(delta=0.05, threshold=3.0)
        for value in rng.normal(0.1, 0.02, size=500):
            assert not detector.update(value)

    def test_step_change_detected(self):
        rng = np.random.default_rng(1)
        detector = PageHinkleyDetector(delta=0.02, threshold=1.0)
        for value in rng.normal(0.1, 0.02, size=200):
            detector.update(value)
        fired = False
        for value in rng.normal(0.8, 0.02, size=100):
            if detector.update(value):
                fired = True
                break
        assert fired

    def test_reset_clears_state(self):
        detector = PageHinkleyDetector(delta=0.0, threshold=0.5)
        for value in (0.0, 0.0, 1.0, 1.0, 1.0):
            detector.update(value)
        detector.reset()
        assert detector.statistic == 0.0
        assert not detector.drift_detected

    def test_statistic_nonnegative(self):
        rng = np.random.default_rng(2)
        detector = PageHinkleyDetector()
        for value in rng.random(100):
            detector.update(value)
            assert detector.statistic >= 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PageHinkleyDetector(delta=-1.0)
        with pytest.raises(ValueError):
            PageHinkleyDetector(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkleyDetector(alpha=0.0)


class TestEntropyDriftMonitor:
    def _reference(self, seed=0):
        return np.random.default_rng(seed).uniform(0.0, 0.15, size=200)

    def test_stable_regime(self):
        monitor = EntropyDriftMonitor(self._reference(), window=20)
        state = monitor.observe(np.full(40, 0.08))
        assert state.status == "stable"
        assert not state.is_drifting

    def test_warning_before_drift(self):
        monitor = EntropyDriftMonitor(
            self._reference(),
            window=20,
            detector=PageHinkleyDetector(delta=0.02, threshold=50.0),  # hard to trip
        )
        state = monitor.observe(np.full(20, 0.2))
        assert state.status == "warning"

    def test_sustained_shift_is_drift(self):
        monitor = EntropyDriftMonitor(self._reference(), window=20)
        state = monitor.observe(np.full(80, 0.9))
        assert state.status == "drift"

    def test_recent_mean_tracked(self):
        monitor = EntropyDriftMonitor(self._reference(), window=10)
        state = monitor.observe(np.full(10, 0.5))
        assert state.recent_mean == pytest.approx(0.5)

    def test_reset(self):
        monitor = EntropyDriftMonitor(self._reference(), window=10)
        monitor.observe(np.full(50, 0.9))
        monitor.reset()
        assert monitor.n_observed == 0
        state = monitor.observe(np.full(5, 0.05))
        assert state.status == "stable"

    def test_scalar_observation(self):
        monitor = EntropyDriftMonitor(self._reference(), window=5)
        state = monitor.observe(0.05)
        assert monitor.n_observed == 1
        assert state.status == "stable"

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EntropyDriftMonitor([0.1, 0.2])  # too few references
        with pytest.raises(ValueError):
            EntropyDriftMonitor(self._reference(), window=1)
        with pytest.raises(ValueError):
            EntropyDriftMonitor(self._reference(), warning_quantile=0.3)

    def test_integration_with_hmd_entropies(self, dvfs_small):
        from repro.ml import RandomForestClassifier
        from repro.uncertainty import TrustedHMD

        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=20, random_state=0)
        ).fit(dvfs_small.train.X, dvfs_small.train.y)
        reference = hmd.predictive_entropy(dvfs_small.test.X)
        monitor = EntropyDriftMonitor(reference, window=20)
        # Known traffic: stable.
        state = monitor.observe(reference)
        assert state.status in ("stable", "warning")
        # A flood of unknown-app signatures: drift.
        unknown_entropy = hmd.predictive_entropy(dvfs_small.unknown.X)
        state = monitor.observe(np.tile(unknown_entropy, 4))
        assert state.status in ("warning", "drift")
