"""Tests for reliability diagrams and ECE."""

import numpy as np
import pytest

from repro.uncertainty import (
    expected_calibration_error,
    reliability_diagram,
)

CLASSES = np.array([0, 1])


def _distribution(confidences, predicted):
    """Build binary vote distributions with given max-fraction rows."""
    dist = np.empty((len(confidences), 2))
    for i, (c, p) in enumerate(zip(confidences, predicted)):
        dist[i, p] = c
        dist[i, 1 - p] = 1.0 - c
    return dist


class TestReliabilityDiagram:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(0)
        n = 20000
        confidences = rng.uniform(0.5, 1.0, size=n)
        predicted = rng.integers(0, 2, size=n)
        # Truth agrees with the prediction with probability = confidence.
        agree = rng.random(n) < confidences
        y_true = np.where(agree, predicted, 1 - predicted)
        diagram = reliability_diagram(
            y_true, _distribution(confidences, predicted), CLASSES
        )
        assert diagram.ece() < 0.03

    def test_overconfident_detector(self):
        rng = np.random.default_rng(1)
        n = 5000
        confidences = np.full(n, 0.95)
        predicted = rng.integers(0, 2, size=n)
        agree = rng.random(n) < 0.6  # actual accuracy far below confidence
        y_true = np.where(agree, predicted, 1 - predicted)
        diagram = reliability_diagram(
            y_true, _distribution(confidences, predicted), CLASSES
        )
        assert diagram.ece() > 0.25

    def test_counts_sum_to_n(self):
        rng = np.random.default_rng(2)
        confidences = rng.uniform(0.5, 1.0, size=300)
        predicted = rng.integers(0, 2, size=300)
        diagram = reliability_diagram(
            predicted, _distribution(confidences, predicted), CLASSES
        )
        assert diagram.bin_counts.sum() == 300

    def test_correct_prediction_bin_accuracy_one(self):
        confidences = np.array([0.9, 0.95, 0.99])
        predicted = np.array([1, 1, 0])
        diagram = reliability_diagram(
            predicted, _distribution(confidences, predicted), CLASSES
        )
        populated = diagram.bin_counts > 0
        np.testing.assert_allclose(diagram.bin_accuracy[populated], 1.0)

    def test_as_text_renders(self):
        confidences = np.array([0.7, 0.8, 0.9])
        predicted = np.array([0, 1, 1])
        text = reliability_diagram(
            predicted, _distribution(confidences, predicted), CLASSES
        ).as_text()
        assert "ECE" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            reliability_diagram([0, 1], np.zeros((2, 3)), CLASSES)
        with pytest.raises(ValueError):
            reliability_diagram([0], np.array([[0.5, 0.5], [0.5, 0.5]]), CLASSES)
        with pytest.raises(ValueError):
            reliability_diagram(
                [0, 1], np.array([[0.5, 0.5], [0.5, 0.5]]), CLASSES, n_bins=1
            )


class TestEce:
    def test_wrapper_matches_diagram(self):
        rng = np.random.default_rng(3)
        confidences = rng.uniform(0.5, 1.0, size=200)
        predicted = rng.integers(0, 2, size=200)
        dist = _distribution(confidences, predicted)
        assert expected_calibration_error(
            predicted, dist, CLASSES
        ) == pytest.approx(reliability_diagram(predicted, dist, CLASSES).ece())

    def test_rf_ensemble_reasonably_calibrated(self, dvfs_small):
        from repro.ml import RandomForestClassifier, StandardScaler

        scaler = StandardScaler().fit(dvfs_small.train.X)
        rf = RandomForestClassifier(n_estimators=30, random_state=0).fit(
            scaler.transform(dvfs_small.train.X), dvfs_small.train.y
        )
        dist = rf.vote_distribution(scaler.transform(dvfs_small.test.X))
        ece = expected_calibration_error(dvfs_small.test.y, dist, rf.classes_)
        assert ece < 0.2
